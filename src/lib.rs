//! # OPEC — operation-based security isolation for bare-metal embedded systems
//!
//! A from-scratch Rust reproduction of *OPEC: Operation-based Security
//! Isolation for Bare-metal Embedded Systems* (EuroSys '22), including
//! every substrate the paper depends on: an ARMv7-M machine model with
//! an 8-region MPU, an IR compiler stack with Andersen points-to
//! analysis, the OPEC partitioner and monitor, the ACES comparison
//! system, the seven evaluation workloads, and the harness that
//! regenerates the paper's tables and figures.
//!
//! ## Quickstart
//!
//! ```
//! use opec::prelude::*;
//!
//! // 1. Write firmware in the IR.
//! let mut mb = ModuleBuilder::new("demo");
//! let counter = mb.global("counter", Ty::I32, "main.c");
//! let tick = mb.func("tick_task", vec![], None, "main.c", |fb| {
//!     let v = fb.load_global(counter, 0, 4);
//!     let v2 = fb.bin(BinOp::Add, Operand::Reg(v), Operand::Imm(1));
//!     fb.store_global(counter, 0, Operand::Reg(v2), 4);
//!     fb.ret_void();
//! });
//! mb.func("main", vec![], None, "main.c", move |fb| {
//!     fb.call_void(tick, vec![]);
//!     fb.halt();
//!     fb.ret_void();
//! });
//!
//! // 2. Compile with OPEC: `tick_task` becomes an isolated operation.
//! let board = Board::stm32f4_discovery();
//! let out = compile(mb.finish(), board, &[OperationSpec::plain("tick_task")]).unwrap();
//!
//! // 3. Run under the monitor on the simulated machine.
//! let policy = out.policy.clone();
//! let mut vm = Vm::builder(Machine::new(board), out.image)
//!     .supervisor(OpecMonitor::new(policy))
//!     .build()
//!     .unwrap();
//! let outcome = vm.run(10_000_000).unwrap();
//! assert!(outcome.cycles() > 0);
//! assert_eq!(vm.supervisor.stats.switches, 1);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | [`opec_armv7m`] | machine model: memory map, MPU, privilege, faults, Thumb-2 codec |
//! | [`opec_ir`] | the compiler IR and builder |
//! | [`opec_analysis`] | points-to, call graph, constant-address slicing, resources |
//! | [`opec_core`] | the paper's system: partitioner, layout, image, OPEC-Monitor |
//! | [`opec_vm`] | the firmware execution engine |
//! | [`opec_aces`] | the ACES baseline (three partitioning strategies) |
//! | [`opec_devices`] | peripheral models (UART, SD, LCD, ETH, DCMI, USB, ...) |
//! | [`opec_apps`] | the seven evaluation workloads |
//! | [`opec_eval`] | the table/figure harness (`opec-eval` binary) |

#![warn(missing_docs)]

pub use opec_aces as aces;
pub use opec_analysis as analysis;
pub use opec_apps as apps;
pub use opec_armv7m as armv7m;
pub use opec_core as core;
pub use opec_devices as devices;
pub use opec_eval as eval;
pub use opec_ir as ir;
pub use opec_pmp as pmp;
pub use opec_vm as vm;

/// The most common imports for building and running isolated firmware.
pub mod prelude {
    pub use opec_armv7m::{Board, Machine, Mode};
    pub use opec_core::{compile, OpecMonitor, OperationSpec};
    pub use opec_ir::{BinOp, ModuleBuilder, Operand, Ty};
    pub use opec_vm::{link_baseline, NullSupervisor, RunOutcome, Vm, VmError};
}
