//! Build-and-execute orchestration for the evaluation.
//!
//! Every application is measured exactly like the paper measures it:
//! two individual binaries are produced — one vanilla, one armed with
//! the isolation system — each is run to its workload's stop condition
//! on a freshly scripted machine, and cycle counts come from the
//! simulated DWT (the machine clock).
//!
//! Runs are pure functions of `(app, configuration)`, so
//! [`evaluate_app`] fans the baseline/OPEC/ACES runs of one app across
//! scoped threads and [`evaluate_many`] fans whole apps, joining in
//! input order so output is deterministic regardless of scheduling.
//! The `*_sequential` variants preserve the seed's single-threaded
//! behaviour for benchmarking against. Shareable artifacts are held in
//! [`Arc`] so the memoized pipeline (`crate::cache`) can hand the same
//! run to every renderer.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::thread;

use opec_aces::{build_aces_image, AcesRuntime, AcesStrategy, Compartments, DataRegions};
use opec_apps::App;
use opec_armv7m::{Board, Machine};
use opec_core::{compile, CompileOutput, MonitorStats, OpecMonitor};
use opec_vm::{link_baseline, Obs, RunOutcome, Trace, Vm};

/// Fuel for evaluation runs.
pub const FUEL: u64 = opec_vm::exec::DEFAULT_FUEL;

/// The three ACES strategies, in the paper's Table 2 order.
pub const ACES_STRATEGIES: [AcesStrategy; 3] =
    [AcesStrategy::Filename, AcesStrategy::FilenameNoOpt, AcesStrategy::Peripheral];

/// Joins a scoped thread, re-raising any panic from inside it.
fn join<T>(handle: thread::ScopedJoinHandle<'_, T>) -> T {
    handle.join().unwrap_or_else(|e| std::panic::resume_unwind(e))
}

/// Artifacts of the OPEC build + run of one application.
pub struct OpecRun {
    /// Cycles to the workload stop point.
    pub cycles: u64,
    /// Flash footprint of the OPEC image.
    pub flash_used: u32,
    /// SRAM footprint of the OPEC image.
    pub sram_used: u32,
    /// Everything the compiler produced (partition, policy, analyses).
    pub compile: CompileOutput,
    /// The function-level execution trace (for the ET metric).
    pub trace: Trace,
    /// Monitor counters.
    pub monitor: MonitorStats,
}

/// Artifacts of one ACES build + run.
pub struct AcesRun {
    /// Strategy used.
    pub strategy: AcesStrategy,
    /// Cycles to the stop point.
    pub cycles: u64,
    /// Flash footprint.
    pub flash_used: u32,
    /// SRAM footprint.
    pub sram_used: u32,
    /// The compartmentalisation.
    pub comps: Compartments,
    /// The (merged) data-region assignment.
    pub regions: DataRegions,
    /// Bytes of application code lifted to the privileged level.
    pub privileged_code_bytes: u32,
    /// Total application code bytes.
    pub total_code_bytes: u32,
}

/// Everything measured for one application. Cloning is cheap: the run
/// artifacts are behind [`Arc`] and shared, which is what lets the
/// memoized pipeline serve every renderer from one set of runs.
#[derive(Clone)]
pub struct AppEval {
    /// Application name.
    pub name: &'static str,
    /// Board (decides the Flash/SRAM denominators).
    pub board: Board,
    /// Baseline cycles.
    pub base_cycles: u64,
    /// Baseline Flash footprint.
    pub base_flash: u32,
    /// Baseline SRAM footprint.
    pub base_sram: u32,
    /// The OPEC build + run.
    pub opec: Arc<OpecRun>,
    /// ACES builds + runs (empty unless requested).
    pub aces: Vec<Arc<AcesRun>>,
}

fn fresh_machine(app: &App) -> Machine {
    let mut m = Machine::new(app.board);
    (app.setup)(&mut m);
    m
}

/// Runs the vanilla baseline. Returns `(cycles, flash, sram)`.
pub(crate) fn run_baseline(app: &App) -> (u64, u32, u32) {
    let (module, _) = (app.build)();
    let image = link_baseline(module, app.board).expect("baseline link");
    let flash = image.flash_used;
    let sram = image.sram_used;
    let mut vm = Vm::builder(fresh_machine(app), image).build().expect("baseline vm");
    let out = vm.run(FUEL).unwrap_or_else(|e| panic!("{} baseline: {e}", app.name));
    assert!(matches!(out, RunOutcome::Halted { .. }));
    (app.check)(&mut vm.machine).unwrap_or_else(|e| panic!("{} baseline check: {e}", app.name));
    (out.cycles(), flash, sram)
}

/// Runs the OPEC build with tracing.
pub(crate) fn run_opec(app: &App) -> OpecRun {
    let (module, specs) = (app.build)();
    let out =
        compile(module, app.board, &specs).unwrap_or_else(|e| panic!("{} compile: {e}", app.name));
    let flash = out.image.flash_used;
    let sram = out.image.sram_used;
    let policy = out.policy.clone();
    let trace = Rc::new(RefCell::new(Trace::new()));
    let mut vm = Vm::builder(fresh_machine(app), out.image.clone())
        .supervisor(OpecMonitor::new(policy))
        .obs(Obs::single(trace.clone()))
        .build()
        .expect("opec vm");
    let run = vm.run(FUEL).unwrap_or_else(|e| panic!("{} under OPEC: {e}", app.name));
    assert!(matches!(run, RunOutcome::Halted { .. }));
    (app.check)(&mut vm.machine).unwrap_or_else(|e| panic!("{} OPEC check: {e}", app.name));
    let trace = trace.borrow().clone();
    OpecRun {
        cycles: run.cycles(),
        flash_used: flash,
        sram_used: sram,
        compile: out,
        trace,
        monitor: vm.supervisor.stats,
    }
}

/// Runs one ACES build.
pub(crate) fn run_aces(app: &App, strategy: AcesStrategy) -> AcesRun {
    let (module, _) = (app.build)();
    let total_code_bytes = module.total_code_size();
    let out = build_aces_image(module, app.board, strategy)
        .unwrap_or_else(|e| panic!("{} ACES build: {e}", app.name));
    let flash = out.image.flash_used;
    let sram = out.image.sram_used;
    let privileged_code_bytes = out.comps.privileged_code_bytes(&out.image.module);
    let main_comp = out.comps.of(out.image.entry);
    let rt = AcesRuntime::new(
        &out.image.module,
        out.comps.clone(),
        out.regions.clone(),
        app.board,
        out.stack,
        main_comp,
    );
    let mut vm =
        Vm::builder(fresh_machine(app), out.image).supervisor(rt).build().expect("aces vm");
    let run =
        vm.run(FUEL).unwrap_or_else(|e| panic!("{} under {}: {e}", app.name, strategy.label()));
    assert!(matches!(run, RunOutcome::Halted { .. }));
    (app.check)(&mut vm.machine)
        .unwrap_or_else(|e| panic!("{} {} check: {e}", app.name, strategy.label()));
    AcesRun {
        strategy,
        cycles: run.cycles(),
        flash_used: flash,
        sram_used: sram,
        comps: out.comps,
        regions: out.regions,
        privileged_code_bytes,
        total_code_bytes,
    }
}

/// Evaluates one application; `with_aces` additionally builds and runs
/// the three ACES strategies (used for the five comparison apps).
///
/// The baseline, OPEC, and ACES runs are independent of each other
/// (each rebuilds its own module and machine), so they execute on
/// scoped threads; joins happen in a fixed order, so the result is
/// identical to the sequential variant.
pub fn evaluate_app(app: &App, with_aces: bool) -> AppEval {
    thread::scope(|s| {
        let base = s.spawn(|| run_baseline(app));
        let opec = s.spawn(|| run_opec(app));
        let aces_handles: Vec<_> = if with_aces {
            ACES_STRATEGIES.iter().map(|&st| s.spawn(move || run_aces(app, st))).collect()
        } else {
            Vec::new()
        };
        let (base_cycles, base_flash, base_sram) = join(base);
        let opec = Arc::new(join(opec));
        let aces = aces_handles.into_iter().map(|h| Arc::new(join(h))).collect();
        AppEval { name: app.name, board: app.board, base_cycles, base_flash, base_sram, opec, aces }
    })
}

/// Evaluates one application on the calling thread only (the seed's
/// behaviour; the `bench-json` naive baseline measures this path).
pub fn evaluate_app_sequential(app: &App, with_aces: bool) -> AppEval {
    let (base_cycles, base_flash, base_sram) = run_baseline(app);
    let opec = Arc::new(run_opec(app));
    let aces = if with_aces {
        ACES_STRATEGIES.into_iter().map(|st| Arc::new(run_aces(app, st))).collect()
    } else {
        Vec::new()
    };
    AppEval { name: app.name, board: app.board, base_cycles, base_flash, base_sram, opec, aces }
}

/// Evaluates a list of applications, one scoped thread per app, results
/// in input order.
pub fn evaluate_many(apps: &[App], with_aces: bool) -> Vec<AppEval> {
    thread::scope(|s| {
        let handles: Vec<_> =
            apps.iter().map(|a| s.spawn(move || evaluate_app(a, with_aces))).collect();
        handles.into_iter().map(join).collect()
    })
}

/// Sequential [`evaluate_many`] (the seed's behaviour).
pub fn evaluate_many_sequential(apps: &[App], with_aces: bool) -> Vec<AppEval> {
    apps.iter().map(|a| evaluate_app_sequential(a, with_aces)).collect()
}

impl AppEval {
    /// Runtime overhead of OPEC vs the baseline, in percent.
    pub fn runtime_overhead_pct(&self) -> f64 {
        (self.opec.cycles as f64 / self.base_cycles as f64 - 1.0) * 100.0
    }

    /// Flash overhead (increase over baseline / device flash), percent.
    pub fn flash_overhead_pct(&self) -> f64 {
        (self.opec.flash_used.saturating_sub(self.base_flash)) as f64 / self.board.flash.size as f64
            * 100.0
    }

    /// SRAM overhead (increase over baseline / device SRAM), percent.
    pub fn sram_overhead_pct(&self) -> f64 {
        (self.opec.sram_used.saturating_sub(self.base_sram)) as f64 / self.board.sram.size as f64
            * 100.0
    }
}

impl AcesRun {
    /// Runtime overhead ratio vs a baseline cycle count.
    pub fn runtime_ratio(&self, base_cycles: u64) -> f64 {
        self.cycles as f64 / base_cycles as f64
    }

    /// Flash overhead percent vs the baseline footprint on `board`.
    pub fn flash_overhead_pct(&self, base_flash: u32, board: Board) -> f64 {
        (self.flash_used.saturating_sub(base_flash)) as f64 / board.flash.size as f64 * 100.0
    }

    /// SRAM overhead percent.
    pub fn sram_overhead_pct(&self, base_sram: u32, board: Board) -> f64 {
        (self.sram_used.saturating_sub(base_sram)) as f64 / board.sram.size as f64 * 100.0
    }

    /// Privileged application code, percent of total application code.
    pub fn pac_pct(&self) -> f64 {
        self.privileged_code_bytes as f64 / self.total_code_bytes as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinlock_evaluates_under_all_systems() {
        let app = opec_apps::programs::pinlock::app();
        let eval = evaluate_app(&app, true);
        assert!(eval.base_cycles > 0);
        assert!(eval.opec.cycles > eval.base_cycles, "OPEC adds switch work");
        assert_eq!(eval.aces.len(), 3);
        for a in &eval.aces {
            assert!(a.cycles >= eval.base_cycles);
        }
        // Footprints: OPEC image is bigger than the baseline.
        assert!(eval.opec.flash_used > eval.base_flash);
        assert!(eval.opec.sram_used > eval.base_sram);
        // Overheads are positive and sane.
        assert!(eval.runtime_overhead_pct() > 0.0);
        assert!(eval.flash_overhead_pct() > 0.0);
        assert!(eval.sram_overhead_pct() > 0.0);
        assert!(eval.runtime_overhead_pct() < 400.0);
    }

    #[test]
    fn coremark_evaluates_without_aces() {
        let app = opec_apps::programs::coremark::app();
        let eval = evaluate_app(&app, false);
        assert!(eval.aces.is_empty());
        assert!(!eval.opec.trace.is_empty());
        assert!(eval.opec.monitor.switches >= 60);
    }
}
