//! The paper's metrics: Table 1 security numbers, the PT metric
//! (Equation 1), and the ET metric (Equation 2).

use std::collections::{BTreeMap, BTreeSet};

use opec_aces::{Compartments, DataRegions};
use opec_ir::{FuncId, GlobalId, Module};
use opec_vm::OpId;

use crate::runs::AppEval;

fn bytes_of(module: &Module, globals: &BTreeSet<GlobalId>) -> u64 {
    globals.iter().map(|g| u64::from(module.global_size(*g).max(1))).sum()
}

fn total_mutable_global_bytes(module: &Module) -> u64 {
    module
        .globals
        .iter()
        .enumerate()
        .filter(|(_, g)| !g.is_const)
        .map(|(i, _)| u64::from(module.global_size(GlobalId(i as u32)).max(1)))
        .sum()
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Application name.
    pub app: String,
    /// Number of operations (the developer-specified entries; the
    /// default `main` operation exists besides, as in the paper).
    pub ops: usize,
    /// Average member functions per operation.
    pub avg_funcs: f64,
    /// Privileged code bytes (the monitor).
    pub pri_code_bytes: u32,
    /// Privileged code as a percentage of the application code (all of
    /// which runs privileged in the baseline).
    pub pri_code_pct: f64,
    /// Average accessible global-variable bytes per operation.
    pub avg_gvars_bytes: f64,
    /// ... as a percentage of all mutable global bytes.
    pub avg_gvars_pct: f64,
}

/// Computes the Table 1 row for one evaluated application.
pub fn table1_row(eval: &AppEval) -> Table1Row {
    let module = &eval.opec.compile.image.module;
    let partition = &eval.opec.compile.partition;
    // Exclude the default main operation, matching the paper's counts
    // (PinLock: 6).
    let ops: Vec<_> = partition.ops.iter().filter(|o| o.id != 0).collect();
    let n = ops.len().max(1);
    let avg_funcs = ops.iter().map(|o| o.funcs.len()).sum::<usize>() as f64 / n as f64;
    let total_code = module.total_code_size();
    let pri = opec_core::MONITOR_CODE_BYTES;
    let total_gv = total_mutable_global_bytes(module).max(1);
    let avg_gv =
        ops.iter().map(|o| bytes_of(module, &o.resources.globals()) as f64).sum::<f64>() / n as f64;
    Table1Row {
        app: eval.name.to_string(),
        ops: ops.len(),
        avg_funcs,
        pri_code_bytes: pri,
        pri_code_pct: pri as f64 / (total_code + pri) as f64 * 100.0,
        avg_gvars_bytes: avg_gv,
        avg_gvars_pct: avg_gv / total_gv as f64 * 100.0,
    }
}

/// Per-compartment PT values (Equation 1): the share of a
/// compartment's *accessible* global bytes that it does not need.
pub fn pt_of_compartments(
    module: &Module,
    comps: &Compartments,
    regions: &DataRegions,
) -> Vec<f64> {
    comps
        .comps
        .iter()
        .map(|c| {
            let granted = regions.granted_globals(c.id);
            let accessible = bytes_of(module, &granted);
            if accessible == 0 {
                return 0.0;
            }
            let needed: BTreeSet<GlobalId> =
                granted.intersection(&c.resources.globals()).copied().collect();
            let unneeded = accessible - bytes_of(module, &needed);
            unneeded as f64 / accessible as f64
        })
        .collect()
}

/// Cumulative-distribution points for a PT population: returns
/// `(pt_value, cumulative_ratio)` pairs sorted by PT.
pub fn cumulative(mut values: Vec<f64>) -> Vec<(f64, f64)> {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = values.len().max(1) as f64;
    values.iter().enumerate().map(|(i, v)| (*v, (i + 1) as f64 / n)).collect()
}

/// The ET metric per task, for OPEC and each ACES strategy.
#[derive(Debug, Clone)]
pub struct EtSeries {
    /// Task labels (operation names), in task-number order.
    pub tasks: Vec<String>,
    /// OPEC ET per task.
    pub opec: Vec<f64>,
    /// ACES ET per task, one series per strategy label.
    pub aces: Vec<(String, Vec<f64>)>,
}

/// Computes ET (Equation 2) for every executed task of an application.
///
/// The executed-function sets come from the VM trace (the stand-in for
/// the paper's GDB single-stepping); for OPEC the needed set is the
/// operation's dependency, for ACES it is the dependency of every
/// compartment involved in the task's execution.
pub fn et_by_task(eval: &AppEval) -> EtSeries {
    let module = &eval.opec.compile.image.module;
    let partition = &eval.opec.compile.partition;
    let resources = &eval.opec.compile.resources;
    // Aggregate executed functions per operation across invocations.
    let mut executed: BTreeMap<OpId, BTreeSet<FuncId>> = BTreeMap::new();
    for (op, _entry, funcs) in eval.opec.trace.tasks() {
        executed.entry(op).or_default().extend(funcs);
    }
    let mut tasks = Vec::new();
    let mut opec_et = Vec::new();
    let mut aces_et: Vec<(String, Vec<f64>)> =
        eval.aces.iter().map(|a| (a.strategy.label().to_string(), Vec::new())).collect();
    for (op, funcs) in &executed {
        let used: BTreeSet<GlobalId> =
            funcs.iter().flat_map(|f| resources.of(*f).globals()).collect();
        let used_bytes = bytes_of(module, &used);
        tasks.push(partition.op(*op).name.clone());
        // OPEC: needed = the operation's dependency.
        let needed = bytes_of(module, &partition.op(*op).resources.globals());
        opec_et.push(et(used_bytes, needed));
        // ACES: needed = dependencies of every compartment involved.
        for (ai, aces) in eval.aces.iter().enumerate() {
            let involved: BTreeSet<_> = funcs.iter().map(|f| aces.comps.of(*f)).collect();
            let needed_globals: BTreeSet<GlobalId> = involved
                .iter()
                .flat_map(|c| aces.comps.comps[usize::from(*c)].resources.globals())
                .collect();
            let needed = bytes_of(module, &needed_globals);
            aces_et[ai].1.push(et(used_bytes, needed));
        }
    }
    EtSeries { tasks, opec: opec_et, aces: aces_et }
}

fn et(used: u64, needed: u64) -> f64 {
    if needed == 0 {
        0.0
    } else {
        1.0 - (used.min(needed)) as f64 / needed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runs::evaluate_app;

    #[test]
    fn cumulative_points_are_sorted_and_normalised() {
        let pts = cumulative(vec![0.5, 0.0, 0.25, 0.25]);
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0], (0.0, 0.25));
        assert_eq!(pts[3], (0.5, 1.0));
    }

    #[test]
    fn et_bounds() {
        assert_eq!(et(0, 0), 0.0);
        assert_eq!(et(10, 10), 0.0);
        assert_eq!(et(5, 10), 0.5);
        assert_eq!(et(20, 10), 0.0); // clamped
    }

    #[test]
    fn pinlock_metrics_have_paper_shape() {
        let app = opec_apps::programs::pinlock::app();
        let eval = evaluate_app(&app, true);
        let row = table1_row(&eval);
        assert_eq!(row.ops, 6);
        assert!(row.avg_funcs > 1.0);
        assert!(row.avg_gvars_pct > 0.0 && row.avg_gvars_pct <= 100.0);
        // OPEC has zero partition-time over-privilege by construction:
        // every operation's section holds exactly its dependency.
        // ACES strategies may show PT > 0 once regions merge.
        for aces in &eval.aces {
            let module = &eval.opec.compile.image.module;
            let pts = pt_of_compartments(module, &aces.comps, &aces.regions);
            assert_eq!(pts.len(), aces.comps.comps.len());
            for p in pts {
                assert!((0.0..=1.0).contains(&p));
            }
        }
        // ET series cover the executed tasks for all four systems.
        let ets = et_by_task(&eval);
        assert!(!ets.tasks.is_empty());
        assert_eq!(ets.opec.len(), ets.tasks.len());
        for (_, series) in &ets.aces {
            assert_eq!(series.len(), ets.tasks.len());
        }
        for v in ets.opec.iter().chain(ets.aces.iter().flat_map(|(_, s)| s.iter())) {
            assert!((0.0..=1.0).contains(v));
        }
    }
}
