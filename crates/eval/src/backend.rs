//! Backend selection for `opec-eval --backend {armv7m,rv32-pmp}`.
//!
//! Every backend-aware subcommand (`attack-matrix`, `check`,
//! `bench-vm`, `report`) resolves the `--backend` flag through
//! [`BackendSel::from_args`] and then builds machines/monitors through
//! [`BackendSel::dyn_backend`]. The ACES comparison stack and the
//! unprotected baseline are ARMv7-M artifacts (ACES is an MPU
//! compartmentalisation scheme); subcommands consult
//! [`BackendSel::has_aces`] and record a skip note instead of
//! pretending ACES ports exist.

use std::sync::Arc;

use opec_core::{Armv7mBackend, DynBackend};
use opec_pmp::Rv32PmpBackend;

use crate::cli::CliArgs;

/// One of the two protection backends the evaluation can drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendSel {
    /// The paper's platform: ARMv7-M MPU (the default).
    #[default]
    Armv7m,
    /// The §7 port: RISC-V PMP.
    Rv32Pmp,
}

impl BackendSel {
    /// Every backend, in CLI-vocabulary order.
    pub const ALL: [BackendSel; 2] = [BackendSel::Armv7m, BackendSel::Rv32Pmp];

    /// Resolves `--backend`; absence means ARMv7-M (back-compat with
    /// every pre-backend invocation). An unknown name is a usage error
    /// (the caller exits 2).
    pub fn from_args(args: &CliArgs) -> Result<BackendSel, String> {
        match args.backend.as_deref() {
            None | Some("armv7m") => Ok(BackendSel::Armv7m),
            Some("rv32-pmp") => Ok(BackendSel::Rv32Pmp),
            Some(other) => Err(format!("unknown backend {other:?} (expected armv7m or rv32-pmp)")),
        }
    }

    /// The stable CLI/report label.
    pub fn name(self) -> &'static str {
        match self {
            BackendSel::Armv7m => "armv7m",
            BackendSel::Rv32Pmp => "rv32-pmp",
        }
    }

    /// The erased backend the monitor/oracle stack programs against.
    pub fn dyn_backend(self) -> Arc<dyn DynBackend> {
        match self {
            BackendSel::Armv7m => Arc::new(Armv7mBackend),
            BackendSel::Rv32Pmp => Arc::new(Rv32PmpBackend),
        }
    }

    /// Whether the ACES comparison stack exists on this backend. ACES
    /// compartmentalisation targets the ARMv7-M MPU; on other backends
    /// its cells are recorded as skips, never silently dropped.
    pub fn has_aces(self) -> bool {
        self == BackendSel::Armv7m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_backend(name: Option<&str>) -> CliArgs {
        CliArgs { backend: name.map(str::to_string), ..CliArgs::default() }
    }

    #[test]
    fn resolves_known_backends_and_defaults_to_arm() {
        assert_eq!(BackendSel::from_args(&with_backend(None)).unwrap(), BackendSel::Armv7m);
        assert_eq!(
            BackendSel::from_args(&with_backend(Some("armv7m"))).unwrap(),
            BackendSel::Armv7m
        );
        assert_eq!(
            BackendSel::from_args(&with_backend(Some("rv32-pmp"))).unwrap(),
            BackendSel::Rv32Pmp
        );
    }

    #[test]
    fn unknown_backend_is_a_usage_error_naming_the_operand() {
        let err = BackendSel::from_args(&with_backend(Some("avr"))).unwrap_err();
        assert!(err.contains("avr"), "{err}");
        assert!(err.contains("armv7m"), "{err}");
    }

    #[test]
    fn names_and_aces_availability() {
        assert_eq!(BackendSel::Armv7m.name(), "armv7m");
        assert_eq!(BackendSel::Rv32Pmp.name(), "rv32-pmp");
        assert!(BackendSel::Armv7m.has_aces());
        assert!(!BackendSel::Rv32Pmp.has_aces());
        assert_eq!(BackendSel::Armv7m.dyn_backend().name(), "armv7m");
        assert_eq!(BackendSel::Rv32Pmp.dyn_backend().name(), "rv32-pmp");
    }
}
