//! `opec-eval`: regenerates the paper's tables and figures.
//!
//! Run `opec-eval help` for the full usage text (also in
//! [`USAGE`]). Every subcommand shares one flag vocabulary
//! ([`opec_eval::CliArgs`]); flags a subcommand does not use are
//! rejected rather than ignored.
//!
//! Every subcommand draws its runs from one process-wide memoized
//! cache, so `all` (and `csv`, which needs both evaluation shapes)
//! performs each baseline/OPEC/ACES run exactly once and the renderers
//! share the results.

use std::io::Write as _;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use opec_apps::programs::all_apps;
use opec_eval::engine::EngineOpts;
use opec_eval::{attack, benchjson, benchvm, check, fuzz, obsreport, report, BackendSel, CliArgs};
use opec_fleet::{
    fleet_bench, resolve_workers, run_fleet, BenchConfig, FleetBackend, FleetConfig, FleetShared,
    Mix, ServeState,
};

/// The usage text (`opec-eval help`).
const USAGE: &str = "\
opec-eval — regenerate the paper's tables and figures

  opec-eval all                 everything (Tables 1-3, Figures 9-11, case study)
  opec-eval table1              security metrics
  opec-eval figure9             OPEC overheads
  opec-eval table2              OPEC vs ACES overheads + PAC
  opec-eval figure10            PT cumulative distributions
  opec-eval figure11            ET per task
  opec-eval table3              icall analysis efficiency
  opec-eval case-study          the §6.1 PinLock attack demonstration
  opec-eval csv [--out DIR]     every table/figure as CSV (default: results/)
  opec-eval bench-json [--json FILE]
                                machine-readable timings (default: stdout)
  opec-eval bench-vm [--backend B] [--seeds N] [--json FILE] [CAMPAIGN FLAGS]
                                VM fast-path benchmark (BENCH_vm.json):
                                plain vs pre-decoded instructions/sec per app,
                                per-backend protection-switch costs (always
                                both backends), campaign resets/sec (rebuild
                                vs snapshot restore), restore latency, and the
                                cached-vs-plain lockstep sweep over the apps +
                                N generated firmwares (default: 16).
                                Exits 1 on any lockstep divergence.
  opec-eval attack-matrix [--backend B] [--seeds N] [--json FILE]
                          [CAMPAIGN FLAGS]
                                §7 containment matrix (default: 4 seeds)
  opec-eval check [--backend B] [--seeds N] [--shrink] [--lockstep]
                  [--json FILE] [CAMPAIGN FLAGS]
                                differential security oracle: every app under
                                OPEC (comparison apps also under ACES) plus N
                                generated firmwares (default: 16), run in
                                lockstep against the ground-truth access
                                matrix; PT/ET recomputed independently and
                                cross-checked. --shrink reduces a divergent
                                generated firmware to a minimal program.
                                --lockstep instead runs every subject twice —
                                plain interpreter vs pre-decoded block cache —
                                and reports any event-stream, counter, or
                                outcome difference.
                                Exits 1 on any divergence.
  opec-eval fuzz [--backend B] [--seeds N] [--corpus DIR] [--mode M]
                 [--json FILE] [CAMPAIGN FLAGS]
                                coverage-guided fuzzing of the whole pipeline:
                                N structure-aware inputs (fresh plans plus
                                stacked mutants of earlier ones), each compiled
                                and run under the shadow oracle, with coverage
                                folded from the obs event stream. Plans that
                                contribute new coverage join the minimized
                                corpus at DIR (re-minimized on load; stale
                                entries pruned on save). --mode guided (default)
                                schedules mutation bases from the corpus;
                                --mode random mutates uniformly over all prior
                                inputs, with no coverage feedback.
                                Exits 1 on any divergence or run error.
  opec-eval fuzz --time-to-find [--trials T] [--seeds N] [--json FILE]
                                the fuzzing benchmark (BENCH_fuzz.json): median
                                jobs and wall-clock until the planted latent
                                broken-MPU bug is detected, guided vs random,
                                on both backends (T trials each, budget N jobs
                                per trial), plus a corpus-replay determinism
                                check. Exits 1 if the replay digests differ.
  opec-eval fleet [--devices N] [--duration SECS] [--mix SPEC] [--backend B]
                  [--quantum N] [--workers N] [--json FILE]
                                fleet-scale sustained-traffic benchmark
                                (BENCH_fleet.json): N logical device VMs
                                (default 2048) multiplexed over the worker
                                pool, every device forked from a pooled
                                golden snapshot. Reports device-steps/sec
                                across a three-point fleet ladder, the
                                worker-scaling curve, pooled-vs-scratch
                                spawn latency, and p50/p99 protection-switch
                                latency under load. --mix picks firmware
                                proportions (kind[=weight],... over
                                tcp_echo|pinlock|camera|fuzz; default all
                                equally). Exits 1 if any events were shed
                                or the pooled spawn speedup falls below 10x.
  opec-eval serve [--port P] [--devices N] [--duration SECS] [--mix SPEC]
                  [--backend B] [--quantum N] [--workers N] [--ring N]
                                resident fleet daemon on 127.0.0.1:P
                                (default 9100): runs the fleet continuously
                                (forever unless --duration is given) while
                                serving
                                  GET  /metrics   Prometheus text format
                                  GET  /devices   per-device status JSON
                                  POST /firmware  submit a generated-firmware
                                                  plan (JSON body: a plan, a
                                                  {\"spec\": ...} wrapper, or
                                                  {\"seed\": N}); the reply is
                                                  its differential-oracle
                                                  verdict, also readable back
                                                  at GET /firmware/<id>
                                --ring N arms a bounded diagnostic event
                                ring per worker; shed counts surface in
                                /metrics as opec_ring_shed_events_total.
  opec-eval report [--backend B] [--obs-json FILE] [--trace FILE]
                   [--apps FILTER] [--ring N] [--funcs]
                                per-operation overhead breakdown from the
                                observability stream, OPEC and ACES measured
                                from the same event format. Without --backend,
                                OPEC runs on both backends and the report ends
                                with a per-backend switch-cost comparison.
                                  --obs-json  write metrics JSON
                                  --trace     write a Chrome trace_event JSON
                                              of the first run (pick the app
                                              with --apps; load in Perfetto)
                                  --apps      comma-separated name filter
                                  --ring      event ring capacity (default 2^20)
                                  --funcs     keep function enter/exit events
                                              in the ring (bigger traces)
                                Exits 1 if any ring shed events.

--backend B (bench-vm, attack-matrix, check, fuzz, report, fleet, serve)
selects the protection backend: armv7m (the paper's ARMv7-M MPU, the
default) or rv32-pmp (the §7 RISC-V PMP port). The ACES comparison stack
is an ARMv7-M artifact; under rv32-pmp its cells are recorded as skips.
For fleet and serve, omitting --backend runs devices on BOTH backends,
alternating.

CAMPAIGN FLAGS (bench-vm, attack-matrix, check, fuzz): these subcommands run
their VM work as supervised campaign jobs — fuel-budgeted, watchdogged,
panic-contained, and resumable.

  --fuel N        guest instruction budget per job (default: 200e6)
  --timeout SECS  wall-clock watchdog per job attempt; 0 disarms it
                  (default: 120; always disarmed for lockstep runs,
                  where wall-clock would manufacture divergence)
  --journal FILE  crash-safe job journal (JSONL, fsynced); rerunning
                  with the same path resumes, skipping recorded jobs —
                  the aggregate output is byte-identical to an
                  uninterrupted run
  --workers N     campaign worker threads (default: one per core)

Exit codes: 0 clean; 1 hard failures (escapes, divergences, crashes);
2 usage errors; 3 no hard failures but unknown outcomes — jobs that
exhausted fuel, timed out, or panicked, or verdicts left undecided.

Legacy positional forms `csv DIR` and `bench-json FILE` still work.
";

/// The subcommand's own flags plus the shared campaign supervision
/// flags (`bench-vm`, `attack-matrix`, `check`, and `fuzz` all accept
/// them).
fn campaign_flags(base: &[&'static str]) -> Vec<&'static str> {
    let mut v = base.to_vec();
    v.extend(["--fuel", "--timeout", "--journal", "--workers"]);
    v
}

fn fail(msg: &str) -> ! {
    eprintln!("opec-eval: {msg}");
    eprintln!("run `opec-eval help` for usage");
    std::process::exit(2);
}

/// Opens `path` for writing, failing fast: runs take a while, so an
/// unwritable artifact path should abort before them, not after.
fn create(path: &str) -> std::fs::File {
    std::fs::File::create(path).unwrap_or_else(|e| fail(&format!("cannot create {path}: {e}")))
}

fn main() {
    let cmd = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let args = CliArgs::parse(std::env::args().skip(2)).unwrap_or_else(|e| fail(&e));
    let no_flags = |allowed: &[&str]| {
        args.forbid_unused(&cmd, allowed).unwrap_or_else(|e| fail(&e));
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => print!("{USAGE}"),
        "table1" => {
            no_flags(&[]);
            println!("{}", report::table1(&report::run_all_apps()));
        }
        "figure9" => {
            no_flags(&[]);
            println!("{}", report::figure9(&report::run_all_apps()));
        }
        "table2" => {
            no_flags(&[]);
            println!("{}", report::table2(&report::run_comparison_apps()));
        }
        "figure10" => {
            no_flags(&[]);
            println!("{}", report::figure10(&report::run_comparison_apps()));
        }
        "figure11" => {
            no_flags(&[]);
            println!("{}", report::figure11(&report::run_comparison_apps()));
        }
        "table3" => {
            no_flags(&[]);
            println!("{}", report::table3(&report::run_all_apps()));
        }
        "case-study" => {
            no_flags(&[]);
            println!("{}", report::case_study());
        }
        "csv" => {
            no_flags(&["--out", "positional"]);
            let dir = args
                .out
                .clone()
                .or_else(|| args.positional.first().cloned())
                .unwrap_or_else(|| "results".to_string());
            eprintln!("[opec-eval] running all workloads for CSV export...");
            let evals = report::run_all_apps();
            let cmp = report::run_comparison_apps();
            let written = report::write_csv(std::path::Path::new(&dir), &evals, &cmp)
                .expect("write CSV files");
            for p in written {
                println!("wrote {}", p.display());
            }
        }
        "all" => {
            no_flags(&[]);
            eprintln!(
                "[opec-eval] building and running all workloads once \
                 (baseline + OPEC, memoized)..."
            );
            let evals = report::run_all_apps();
            println!("{}", report::table1(&evals));
            println!("{}", report::figure9(&evals));
            println!("{}", report::table3(&evals));
            eprintln!(
                "[opec-eval] ACES comparison (baseline/OPEC reused from cache; \
                 3 strategies x 5 apps run now)..."
            );
            let cmp = report::run_comparison_apps();
            println!("{}", report::table2(&cmp));
            println!("{}", report::figure10(&cmp));
            println!("{}", report::figure11(&cmp));
            println!("{}", report::case_study());
        }
        "bench-json" => {
            no_flags(&["--json", "positional"]);
            let path = args.json.clone().or_else(|| args.positional.first().cloned());
            let out = path.map(|p| (create(&p), p));
            let json = benchjson::bench_json();
            match out {
                Some((mut file, path)) => {
                    file.write_all(json.as_bytes()).expect("write bench JSON");
                    eprintln!("[opec-eval] wrote {path}");
                }
                None => print!("{json}"),
            }
        }
        "bench-vm" => {
            no_flags(&campaign_flags(&["--backend", "--seeds", "--json"]));
            let sel = BackendSel::from_args(&args).unwrap_or_else(|e| fail(&e));
            let seeds = args.seeds.unwrap_or(16);
            let engine = EngineOpts::from_args(&args);
            let out = args.json.clone().map(|p| (create(&p), p));
            let (json, divergences, campaign) =
                benchvm::bench_vm_campaign(seeds, &engine, sel).unwrap_or_else(|e| fail(&e));
            match out {
                Some((mut file, path)) => {
                    file.write_all(json.as_bytes()).expect("write BENCH_vm.json");
                    eprintln!("[opec-eval] wrote {path}");
                }
                None => print!("{json}"),
            }
            eprintln!("[opec-eval] {}", campaign.summary());
            if divergences > 0 {
                eprintln!("[opec-eval] bench-vm FAILED: {divergences} lockstep divergences");
                std::process::exit(1);
            }
            if campaign.unknown() > 0 {
                eprintln!(
                    "[opec-eval] bench-vm UNKNOWN: {} lockstep jobs without a verdict",
                    campaign.unknown()
                );
                std::process::exit(3);
            }
            eprintln!("[opec-eval] bench-vm clean: decoded path lockstep-identical");
        }
        "attack-matrix" => {
            no_flags(&campaign_flags(&["--backend", "--seeds", "--json"]));
            let sel = BackendSel::from_args(&args).unwrap_or_else(|e| fail(&e));
            let seeds = args.seeds.unwrap_or(4);
            let engine = EngineOpts::from_args(&args);
            let out = args.json.clone().map(|p| (create(&p), p));
            eprintln!(
                "[opec-eval] running attack campaigns ({seeds} seeds per cell, backend {})...",
                sel.name()
            );
            let (matrix, campaign) =
                attack::attack_matrix_campaign(&all_apps(), seeds, &engine, sel)
                    .unwrap_or_else(|e| fail(&e));
            print!("{}", matrix.render());
            if let Some((mut file, path)) = out {
                file.write_all(matrix.to_json().as_bytes()).expect("write matrix JSON");
                eprintln!("[opec-eval] wrote {path}");
            }
            eprintln!("[opec-eval] {}", campaign.summary());
            let failures = matrix.failures();
            if !failures.is_empty() {
                eprintln!("[opec-eval] containment FAILURES:");
                for f in &failures {
                    eprintln!("  {f}");
                }
                std::process::exit(1);
            }
            let unknown = campaign.unknown() + matrix.undecided();
            if unknown > 0 {
                eprintln!(
                    "[opec-eval] attack-matrix UNKNOWN: {} jobs without a final outcome, \
                     {} undecided verdicts (raise --fuel / --timeout)",
                    campaign.unknown(),
                    matrix.undecided()
                );
                std::process::exit(3);
            }
            eprintln!("[opec-eval] containment matrix clean: no OPEC escapes, no crashes");
        }
        "check" => {
            no_flags(&campaign_flags(&[
                "--backend",
                "--seeds",
                "--json",
                "--shrink",
                "--lockstep",
                "--corpus",
            ]));
            let sel = BackendSel::from_args(&args).unwrap_or_else(|e| fail(&e));
            let seeds = args.seeds.unwrap_or(16);
            let engine = EngineOpts::from_args(&args);
            let out = args.json.clone().map(|p| (create(&p), p));
            let (rep, campaign) = if args.lockstep {
                if args.shrink {
                    fail("--shrink does not apply to --lockstep");
                }
                if args.corpus.is_some() {
                    fail("--corpus does not apply to --lockstep");
                }
                eprintln!(
                    "[opec-eval] cached-vs-plain lockstep: apps + {seeds} generated \
                     firmwares on backend {}, each run under both execution modes...",
                    sel.name()
                );
                check::run_lockstep_campaign(seeds, &engine, sel).unwrap_or_else(|e| fail(&e))
            } else {
                eprintln!(
                    "[opec-eval] differential oracle: 7 apps + {seeds} generated firmwares \
                     on backend {}...",
                    sel.name()
                );
                check::run_check_campaign(
                    &check::CheckOptions {
                        seeds,
                        shrink: args.shrink,
                        backend: sel,
                        corpus: args.corpus.clone(),
                    },
                    &engine,
                )
                .unwrap_or_else(|e| fail(&e))
            };
            print!("{}", rep.render());
            if let Some((mut file, path)) = out {
                file.write_all(rep.to_json().as_bytes()).expect("write oracle JSON");
                eprintln!("[opec-eval] wrote {path}");
            }
            eprintln!("[opec-eval] {}", campaign.summary());
            let failures = rep.failures();
            if !failures.is_empty() {
                eprintln!(
                    "[opec-eval] {} FAILURES:",
                    if args.lockstep { "lockstep" } else { "oracle" }
                );
                for f in &failures {
                    eprintln!("  {f}");
                }
                std::process::exit(1);
            }
            if campaign.unknown() > 0 {
                eprintln!(
                    "[opec-eval] check UNKNOWN: {} jobs without a final outcome \
                     (raise --fuel / --timeout)",
                    campaign.unknown()
                );
                std::process::exit(3);
            }
            if args.lockstep {
                eprintln!(
                    "[opec-eval] lockstep clean: the decoded fast path is \
                     observationally identical to the plain interpreter"
                );
            } else {
                eprintln!(
                    "[opec-eval] oracle clean: every enforcement layer agrees with the \
                     ground-truth matrix"
                );
            }
        }
        "fuzz" => {
            no_flags(&campaign_flags(&[
                "--backend",
                "--seeds",
                "--json",
                "--corpus",
                "--mode",
                "--time-to-find",
                "--trials",
            ]));
            let sel = BackendSel::from_args(&args).unwrap_or_else(|e| fail(&e));
            let out = args.json.clone().map(|p| (create(&p), p));
            if args.time_to_find {
                if args.corpus.is_some() || args.mode.is_some() || args.journal.is_some() {
                    fail("--time-to-find runs both modes in-process; --corpus, --mode and --journal do not apply");
                }
                let defaults = fuzz::BenchOptions::default();
                let bopts = fuzz::BenchOptions {
                    trials: args.trials.unwrap_or(defaults.trials),
                    budget: args.seeds.unwrap_or(defaults.budget),
                };
                eprintln!(
                    "[opec-eval] time-to-find: guided vs random, both backends, {} trials \
                     x {} jobs budget...",
                    bopts.trials, bopts.budget
                );
                let json = fuzz::bench_time_to_find(&bopts).unwrap_or_else(|e| {
                    eprintln!("opec-eval: fuzz benchmark FAILED: {e}");
                    std::process::exit(1);
                });
                match out {
                    Some((mut file, path)) => {
                        file.write_all(json.as_bytes()).expect("write BENCH_fuzz.json");
                        eprintln!("[opec-eval] wrote {path}");
                    }
                    None => print!("{json}"),
                }
                return;
            }
            if args.trials.is_some() {
                fail("--trials only applies to --time-to-find");
            }
            let mode = fuzz::FuzzMode::from_flag(args.mode.as_deref()).unwrap_or_else(|e| fail(&e));
            let opts = fuzz::FuzzOptions {
                seeds: args.seeds.unwrap_or(256),
                backend: sel,
                corpus: args.corpus.clone(),
                mode,
                round: fuzz::DEFAULT_ROUND,
            };
            let engine = EngineOpts::from_args(&args);
            eprintln!(
                "[opec-eval] coverage-guided fuzz: {} jobs on backend {}, mode {}{}...",
                opts.seeds,
                sel.name(),
                mode.name(),
                match &opts.corpus {
                    Some(d) => format!(", corpus {d}"),
                    None => ", in-memory corpus".to_string(),
                }
            );
            let (rep, campaign) =
                fuzz::run_fuzz_campaign(&opts, &engine).unwrap_or_else(|e| fail(&e));
            print!("{}", rep.render());
            if let Some((mut file, path)) = out {
                file.write_all(rep.to_json().as_bytes()).expect("write fuzz JSON");
                eprintln!("[opec-eval] wrote {path}");
            }
            eprintln!("[opec-eval] {}", campaign.summary());
            let failures = rep.failures();
            if !failures.is_empty() {
                eprintln!("[opec-eval] fuzz FAILURES:");
                for f in &failures {
                    eprintln!("  {f}");
                }
                std::process::exit(1);
            }
            if campaign.unknown() > 0 {
                eprintln!(
                    "[opec-eval] fuzz UNKNOWN: {} jobs without a final outcome \
                     (raise --fuel / --timeout)",
                    campaign.unknown()
                );
                std::process::exit(3);
            }
            eprintln!(
                "[opec-eval] fuzz clean: {} jobs, {} corpus entries, {} features, no divergences",
                rep.jobs, rep.entries, rep.features
            );
        }
        "fleet" => {
            no_flags(&[
                "--backend",
                "--devices",
                "--duration",
                "--mix",
                "--quantum",
                "--workers",
                "--json",
            ]);
            let backends =
                FleetBackend::list_from_flag(args.backend.as_deref()).unwrap_or_else(|e| fail(&e));
            let mix = match args.mix.as_deref() {
                Some(spec) => Mix::parse(spec).unwrap_or_else(|e| fail(&e)),
                None => Mix::default(),
            };
            let defaults = BenchConfig::default();
            let cfg = BenchConfig {
                devices: args.devices.unwrap_or(defaults.devices),
                duration: args.duration.unwrap_or(defaults.duration),
                workers: args.workers,
                quantum_fuel: args.quantum.unwrap_or(defaults.quantum_fuel),
                mix,
                backends,
            };
            let out = args.json.clone().map(|p| (create(&p), p));
            eprintln!(
                "[opec-eval] fleet benchmark: up to {} devices, ~{:.0}s budget, mix {}, \
                 backends {}...",
                cfg.devices,
                cfg.duration,
                cfg.mix.spec(),
                cfg.backends.iter().map(|b| b.name()).collect::<Vec<_>>().join("+"),
            );
            let rep = fleet_bench(&cfg).unwrap_or_else(|e| fail(&e));
            match out {
                Some((mut file, path)) => {
                    file.write_all(rep.json.as_bytes()).expect("write BENCH_fleet.json");
                    eprintln!("[opec-eval] wrote {path}");
                }
                None => print!("{}", rep.json),
            }
            if rep.sheds > 0 {
                eprintln!(
                    "[opec-eval] fleet FAILED: {} events shed during benchmark runs — \
                     the numbers are not trustworthy",
                    rep.sheds
                );
                std::process::exit(1);
            }
            if rep.min_spawn_speedup < 10.0 {
                eprintln!(
                    "[opec-eval] fleet FAILED: pooled spawn only {:.1}x faster than \
                     init-from-scratch (floor is 10x)",
                    rep.min_spawn_speedup
                );
                std::process::exit(1);
            }
            eprintln!(
                "[opec-eval] fleet clean: no sheds, pooled spawn {:.0}x faster than scratch",
                rep.min_spawn_speedup
            );
        }
        "serve" => {
            no_flags(&[
                "--backend",
                "--devices",
                "--duration",
                "--mix",
                "--quantum",
                "--workers",
                "--port",
                "--ring",
            ]);
            let backends =
                FleetBackend::list_from_flag(args.backend.as_deref()).unwrap_or_else(|e| fail(&e));
            let mix = match args.mix.as_deref() {
                Some(spec) => Mix::parse(spec).unwrap_or_else(|e| fail(&e)),
                None => Mix::default(),
            };
            let workers = resolve_workers(args.workers);
            let cfg = FleetConfig {
                devices: args.devices.unwrap_or(64),
                workers: Some(workers),
                quantum_fuel: args.quantum.unwrap_or(opec_fleet::DEFAULT_QUANTUM_FUEL),
                rounds: None,
                duration: args.duration.map(std::time::Duration::from_secs_f64),
                mix,
                backends,
                ring: args.ring,
            };
            let port = args.port.unwrap_or(9100);
            let listener = std::net::TcpListener::bind(("127.0.0.1", port))
                .unwrap_or_else(|e| fail(&format!("cannot bind 127.0.0.1:{port}: {e}")));
            let shared = Arc::new(FleetShared::new(workers));
            let state = Arc::new(ServeState::new(shared.clone()));
            eprintln!(
                "[opec-eval] serving http://127.0.0.1:{port} — GET /metrics, GET /devices, \
                 POST /firmware ({} devices, {} workers{})",
                cfg.devices,
                workers,
                match cfg.duration {
                    Some(d) => format!(", stopping after {:.0}s", d.as_secs_f64()),
                    None => ", until killed".to_string(),
                },
            );
            let server = {
                let state = state.clone();
                std::thread::spawn(move || opec_fleet::serve(listener, state))
            };
            // The fleet runs on the main thread; without --duration it
            // only returns on an error. Either way the HTTP thread is
            // told to stop before we report.
            let outcome = run_fleet(&cfg, Some(shared.clone()));
            shared.stop.store(true, Ordering::Relaxed);
            server
                .join()
                .expect("HTTP server thread")
                .unwrap_or_else(|e| fail(&format!("HTTP server: {e}")));
            let fleet = outcome.unwrap_or_else(|e| fail(&e));
            eprintln!(
                "[opec-eval] fleet drained: {} devices, {} steps ({:.0} steps/sec), \
                 {} sheds, {} panics",
                fleet.devices.len(),
                fleet.steps(),
                fleet.steps_per_sec(),
                fleet.sheds,
                fleet.panics.len(),
            );
            if !fleet.panics.is_empty() || fleet.sheds > 0 {
                std::process::exit(1);
            }
        }
        "report" => {
            no_flags(&["--backend", "--obs-json", "--trace", "--apps", "--ring", "--funcs"]);
            let _ = BackendSel::from_args(&args).unwrap_or_else(|e| fail(&e));
            // Fail on unwritable artifact paths before the runs.
            let obs_out = args.obs_json.clone().map(|p| (create(&p), p));
            let trace_out = args.trace.clone().map(|p| (create(&p), p));
            eprintln!(
                "[opec-eval] instrumented runs (OPEC all apps on {}, ACES comparison apps)...",
                match args.backend.as_deref() {
                    None => "both backends",
                    Some(b) => b,
                }
            );
            let rep = obsreport::collect(&args);
            print!("{}", obsreport::render(&rep));
            if let Some((mut file, path)) = obs_out {
                file.write_all(obsreport::to_json(&rep).as_bytes()).expect("write metrics JSON");
                eprintln!("[opec-eval] wrote {path}");
            }
            if let Some((mut file, path)) = trace_out {
                match obsreport::first_chrome_trace(&rep) {
                    Some((label, json)) => {
                        file.write_all(json.as_bytes()).expect("write chrome trace");
                        eprintln!("[opec-eval] wrote {path} ({label}; open in Perfetto)");
                    }
                    None => eprintln!("[opec-eval] no runs collected; {path} left empty"),
                }
            }
            let dropped = rep.total_dropped();
            if dropped > 0 {
                eprintln!("[opec-eval] {dropped} events shed — raise --ring");
                std::process::exit(1);
            }
            eprintln!("[opec-eval] event stream complete: no drops at the configured capacity");
        }
        other => {
            fail(&format!("unknown command {other}"));
        }
    }
}
