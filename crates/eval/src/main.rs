//! `opec-eval`: regenerates the paper's tables and figures.
//!
//! ```text
//! opec-eval all          # everything (Tables 1–3, Figures 9–11, case study)
//! opec-eval table1       # security metrics
//! opec-eval figure9      # OPEC overheads
//! opec-eval table2       # OPEC vs ACES overheads + PAC
//! opec-eval figure10     # PT cumulative distributions
//! opec-eval figure11     # ET per task
//! opec-eval table3       # icall analysis efficiency
//! opec-eval case-study   # the §6.1 PinLock attack demonstration
//! opec-eval csv [DIR]    # write every table/figure as CSV (default: results/)
//! opec-eval bench-json [FILE]  # machine-readable timings (default: stdout)
//! opec-eval attack-matrix [--seeds N] [--json FILE]  # §7 containment matrix
//! ```
//!
//! Every subcommand draws its runs from one process-wide memoized
//! cache, so `all` (and `csv`, which needs both evaluation shapes)
//! performs each baseline/OPEC/ACES run exactly once and the renderers
//! share the results.

use opec_eval::{attack, benchjson, report};

fn main() {
    let cmd = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match cmd.as_str() {
        "table1" => {
            let evals = report::run_all_apps();
            println!("{}", report::table1(&evals));
        }
        "figure9" => {
            let evals = report::run_all_apps();
            println!("{}", report::figure9(&evals));
        }
        "table2" => {
            let evals = report::run_comparison_apps();
            println!("{}", report::table2(&evals));
        }
        "figure10" => {
            let evals = report::run_comparison_apps();
            println!("{}", report::figure10(&evals));
        }
        "figure11" => {
            let evals = report::run_comparison_apps();
            println!("{}", report::figure11(&evals));
        }
        "table3" => {
            let evals = report::run_all_apps();
            println!("{}", report::table3(&evals));
        }
        "case-study" => {
            println!("{}", report::case_study());
        }
        "csv" => {
            let dir = std::env::args().nth(2).unwrap_or_else(|| "results".to_string());
            eprintln!("[opec-eval] running all workloads for CSV export...");
            let evals = report::run_all_apps();
            let cmp = report::run_comparison_apps();
            let written = report::write_csv(std::path::Path::new(&dir), &evals, &cmp)
                .expect("write CSV files");
            for p in written {
                println!("wrote {}", p.display());
            }
        }
        "all" => {
            eprintln!(
                "[opec-eval] building and running all workloads once \
                 (baseline + OPEC, memoized)..."
            );
            let evals = report::run_all_apps();
            println!("{}", report::table1(&evals));
            println!("{}", report::figure9(&evals));
            println!("{}", report::table3(&evals));
            eprintln!(
                "[opec-eval] ACES comparison (baseline/OPEC reused from cache; \
                 3 strategies x 5 apps run now)..."
            );
            let cmp = report::run_comparison_apps();
            println!("{}", report::table2(&cmp));
            println!("{}", report::figure10(&cmp));
            println!("{}", report::figure11(&cmp));
            println!("{}", report::case_study());
        }
        "bench-json" => {
            // Open the output first: measuring takes a while, so an
            // unwritable path should fail before the runs, not after.
            let out = std::env::args().nth(2).map(|path| {
                let file = std::fs::File::create(&path)
                    .unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
                (path, file)
            });
            let json = benchjson::bench_json();
            match out {
                Some((path, mut file)) => {
                    use std::io::Write as _;
                    file.write_all(json.as_bytes()).expect("write bench JSON");
                    eprintln!("[opec-eval] wrote {path}");
                }
                None => print!("{json}"),
            }
        }
        "attack-matrix" => {
            let mut seeds: u64 = 4;
            let mut json_path: Option<String> = None;
            let mut args = std::env::args().skip(2);
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--seeds" => {
                        let v = args.next().expect("--seeds needs a value");
                        seeds = v.parse().unwrap_or_else(|e| panic!("bad --seeds {v}: {e}"));
                    }
                    "--json" => json_path = Some(args.next().expect("--json needs a path")),
                    other => {
                        eprintln!("unknown attack-matrix flag {other}");
                        std::process::exit(2);
                    }
                }
            }
            // Open the artifact first so an unwritable path fails
            // before the campaign runs, not after.
            let out = json_path.map(|path| {
                let file = std::fs::File::create(&path)
                    .unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
                (path, file)
            });
            eprintln!("[opec-eval] running attack campaigns ({seeds} seeds per cell)...");
            let matrix = attack::attack_matrix(seeds);
            print!("{}", matrix.render());
            if let Some((path, mut file)) = out {
                use std::io::Write as _;
                file.write_all(matrix.to_json().as_bytes()).expect("write matrix JSON");
                eprintln!("[opec-eval] wrote {path}");
            }
            let failures = matrix.failures();
            if !failures.is_empty() {
                eprintln!("[opec-eval] containment FAILURES:");
                for f in &failures {
                    eprintln!("  {f}");
                }
                std::process::exit(1);
            }
            eprintln!("[opec-eval] containment matrix clean: no OPEC escapes, no crashes");
        }
        other => {
            eprintln!(
                "unknown command {other}; expected one of: all table1 figure9 \
                 table2 figure10 figure11 table3 case-study csv bench-json \
                 attack-matrix"
            );
            std::process::exit(2);
        }
    }
}
