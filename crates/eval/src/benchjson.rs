//! Machine-readable timings (`opec-eval bench-json`).
//!
//! Emits a single JSON document with two sections:
//!
//! * `"solver"` — per-app wall-clock of the Andersen worklist solver
//!   plus its difference-propagation/SCC counters;
//! * `"eval"` — the evaluation pipeline measured two ways: the seed's
//!   naive shape (every artifact triggers its own sequential, uncached
//!   pass: four seven-app passes for Table 1 / Figure 9 / Table 3 /
//!   CSV and four five-app comparison passes for Table 2 / Figure 10 /
//!   Figure 11 / CSV) versus the memoized, parallel pipeline that
//!   serves every artifact from one shared set of runs.
//!
//! Everything reported is measured in-process, on this machine, in
//! this invocation — no saved baselines.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use opec_analysis::points_to::PointsTo;
use opec_apps::programs::{aces_comparison_apps, all_apps};

use crate::cache::EvalCache;
use crate::{report, runs};

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// How many sequential passes of each shape the seed CLI performed to
/// produce every artifact (see module docs).
const NAIVE_ALL_PASSES: usize = 4;
const NAIVE_CMP_PASSES: usize = 4;

/// Runs both measurements and renders the JSON document.
pub fn bench_json() -> String {
    let mut out = String::from("{\n");

    // --- Solver micro-timings. ---
    out.push_str("  \"solver\": [\n");
    let apps = all_apps();
    for (i, app) in apps.iter().enumerate() {
        let (module, _) = (app.build)();
        let start = Instant::now();
        let pt = PointsTo::analyze(&module);
        let wall = ms(start.elapsed());
        let s = pt.stats;
        writeln!(
            out,
            "    {{\"app\": \"{}\", \"solve_ms\": {:.4}, \"nodes\": {}, \
             \"objects\": {}, \"copy_edges\": {}, \"worklist_pops\": {}, \
             \"propagated_bits\": {}, \"scc_runs\": {}, \"scc_collapsed\": {}}}{}",
            app.name,
            wall,
            s.nodes,
            s.objects,
            s.copy_edges,
            s.worklist_pops,
            s.propagated_bits,
            s.scc_runs,
            s.scc_collapsed,
            if i + 1 < apps.len() { "," } else { "" },
        )
        .expect("write to String");
    }
    out.push_str("  ],\n");

    // --- Naive pipeline: sequential, uncached, one pass per artifact. ---
    eprintln!(
        "[bench-json] measuring naive pipeline ({NAIVE_ALL_PASSES} seven-app passes \
         + {NAIVE_CMP_PASSES} comparison passes, sequential, uncached)..."
    );
    let naive_start = Instant::now();
    let mut naive_sink = 0u64;
    for _ in 0..NAIVE_ALL_PASSES {
        let evals = runs::evaluate_many_sequential(&all_apps(), false);
        naive_sink += evals.iter().map(|e| e.opec.cycles).sum::<u64>();
    }
    for _ in 0..NAIVE_CMP_PASSES {
        let cmp = runs::evaluate_many_sequential(&aces_comparison_apps(), true);
        naive_sink += cmp.iter().map(|e| e.opec.cycles).sum::<u64>();
    }
    let naive = ms(naive_start.elapsed());

    // --- Memoized, parallel pipeline: everything from one shared pass. ---
    eprintln!("[bench-json] measuring memoized parallel pipeline (the `all` path)...");
    let cache = EvalCache::new();
    let memo_start = Instant::now();
    let evals = cache.evaluate_many(&all_apps(), false);
    let cmp = cache.evaluate_many(&aces_comparison_apps(), true);
    // Render every table and figure so formatting cost is included.
    let rendered_bytes = report::table1(&evals).len()
        + report::figure9(&evals).len()
        + report::table3(&evals).len()
        + report::table2(&cmp).len()
        + report::figure10(&cmp).len()
        + report::figure11(&cmp).len();
    let memoized = ms(memo_start.elapsed());

    writeln!(
        out,
        "  \"eval\": {{\"naive_sequential_ms\": {:.3}, \
         \"memoized_parallel_ms\": {:.3}, \"speedup\": {:.2}, \
         \"naive_all_passes\": {NAIVE_ALL_PASSES}, \
         \"naive_cmp_passes\": {NAIVE_CMP_PASSES}, \
         \"rendered_bytes\": {rendered_bytes}, \"checksum\": {naive_sink}}}",
        naive,
        memoized,
        naive / memoized,
    )
    .expect("write to String");
    out.push_str("}\n");
    out
}
