//! Shared command-line argument parsing for `opec-eval`.
//!
//! Every subcommand historically grew its own ad-hoc flag loop with its
//! own spelling; this module parses one [`CliArgs`] struct with one
//! flag vocabulary, and each subcommand reads the fields it cares
//! about. Flags a subcommand does not use are rejected by
//! [`CliArgs::forbid_unused`] so typos fail loudly instead of being
//! silently ignored.
//!
//! The vocabulary:
//!
//! ```text
//! --backend NAME   protection backend           (attack-matrix, check,
//!                  armv7m | rv32-pmp             bench-vm, report)
//! --seeds N        seeds per attack cell / generated firmwares
//!                                               (attack-matrix, check)
//! --json FILE      machine-readable artifact    (attack-matrix, bench-json,
//!                                               check)
//! --shrink         shrink divergent firmwares   (check)
//! --lockstep       cached-vs-plain equivalence  (check)
//! --fuel N         guest instruction budget     (attack-matrix, check,
//!                  per campaign job              bench-vm)
//! --timeout SECS   wall-clock watchdog per job  (attack-matrix, check,
//!                  attempt; 0 disarms it         bench-vm)
//! --journal FILE   crash-safe job journal;      (attack-matrix, check,
//!                  rerun to resume               bench-vm)
//! --workers N      campaign worker threads      (attack-matrix, check,
//!                                               bench-vm, fuzz)
//! --corpus DIR     persistent fuzzing corpus    (check, fuzz)
//! --mode NAME      fuzz scheduling mode         (fuzz)
//!                  guided | random
//! --time-to-find   run the broken-MPU-plan      (fuzz)
//!                  time-to-find benchmark
//! --trials N       benchmark trials per mode    (fuzz)
//! --devices N      logical fleet device count   (fleet, serve)
//! --duration SECS  wall-clock budget / run time (fleet, serve)
//! --mix SPEC       firmware mix                 (fleet, serve)
//!                  kind[=weight],... over
//!                  tcp_echo|pinlock|camera|fuzz
//! --quantum N      guest fuel per device        (fleet, serve)
//!                  scheduling quantum
//! --port N         HTTP listen port             (serve)
//! --out DIR        output directory             (csv)
//! --obs-json FILE  observability metrics JSON   (report)
//! --trace FILE     Chrome trace_event JSON      (report)
//! --apps FILTER    comma-separated name filter  (report)
//! --ring N         event ring capacity          (report)
//! --funcs          include function events      (report)
//! ```
//!
//! For backward compatibility `csv DIR` and `bench-json FILE` also
//! accept their original positional operand.

/// Parsed command-line arguments, shared by every subcommand.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CliArgs {
    /// `--backend NAME`: protection backend (`armv7m` | `rv32-pmp`).
    pub backend: Option<String>,
    /// `--seeds N`: seeds per attack-matrix cell.
    pub seeds: Option<u64>,
    /// `--json FILE`: machine-readable artifact path.
    pub json: Option<String>,
    /// `--out DIR`: output directory.
    pub out: Option<String>,
    /// `--obs-json FILE`: observability metrics JSON path.
    pub obs_json: Option<String>,
    /// `--trace FILE`: Chrome `trace_event` JSON path.
    pub trace: Option<String>,
    /// `--apps FILTER`: comma-separated application-name filter.
    pub apps: Option<String>,
    /// `--ring N`: event ring-buffer capacity.
    pub ring: Option<usize>,
    /// `--funcs`: record function enter/exit events in the ring.
    pub funcs: bool,
    /// `--shrink`: shrink divergent generated firmwares to a minimal
    /// counterexample.
    pub shrink: bool,
    /// `--lockstep`: run the cached-vs-plain execution equivalence
    /// check instead of the differential oracle.
    pub lockstep: bool,
    /// `--fuel N`: guest instruction budget per campaign job.
    pub fuel: Option<u64>,
    /// `--timeout SECS`: wall-clock watchdog per job attempt (0
    /// disarms it).
    pub timeout: Option<u64>,
    /// `--journal FILE`: crash-safe campaign journal; rerunning with
    /// the same path resumes, skipping recorded jobs.
    pub journal: Option<String>,
    /// `--workers N`: campaign worker threads.
    pub workers: Option<usize>,
    /// `--corpus DIR`: persistent fuzzing corpus directory.
    pub corpus: Option<String>,
    /// `--mode NAME`: fuzz scheduling mode (`guided` | `random`).
    pub mode: Option<String>,
    /// `--time-to-find`: run the broken-MPU-plan time-to-find
    /// benchmark instead of a divergence hunt.
    pub time_to_find: bool,
    /// `--trials N`: benchmark trials per mode.
    pub trials: Option<u64>,
    /// `--devices N`: logical fleet device count.
    pub devices: Option<usize>,
    /// `--duration SECS`: fleet wall-clock budget (fractional seconds
    /// accepted).
    pub duration: Option<f64>,
    /// `--mix SPEC`: fleet firmware mix, `kind[=weight],...`.
    pub mix: Option<String>,
    /// `--quantum N`: guest fuel per device scheduling quantum.
    pub quantum: Option<u64>,
    /// `--port N`: HTTP listen port for `serve`.
    pub port: Option<u16>,
    /// Positional operands (legacy `csv DIR` / `bench-json FILE`).
    pub positional: Vec<String>,
}

impl CliArgs {
    /// Parses everything after the subcommand word.
    pub fn parse<I: Iterator<Item = String>>(mut args: I) -> Result<CliArgs, String> {
        let mut out = CliArgs::default();
        let need =
            |args: &mut I, flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--backend" => out.backend = Some(need(&mut args, "--backend")?),
                "--seeds" => {
                    let v = need(&mut args, "--seeds")?;
                    out.seeds =
                        Some(v.parse().map_err(|e| format!("bad --seeds value {v:?}: {e}"))?);
                }
                "--json" => out.json = Some(need(&mut args, "--json")?),
                "--out" => out.out = Some(need(&mut args, "--out")?),
                "--obs-json" => out.obs_json = Some(need(&mut args, "--obs-json")?),
                "--trace" => out.trace = Some(need(&mut args, "--trace")?),
                "--apps" => out.apps = Some(need(&mut args, "--apps")?),
                "--ring" => {
                    let v = need(&mut args, "--ring")?;
                    out.ring = Some(v.parse().map_err(|e| format!("bad --ring value {v:?}: {e}"))?);
                }
                "--funcs" => out.funcs = true,
                "--shrink" => out.shrink = true,
                "--lockstep" => out.lockstep = true,
                "--fuel" => {
                    let v = need(&mut args, "--fuel")?;
                    out.fuel = Some(v.parse().map_err(|e| format!("bad --fuel value {v:?}: {e}"))?);
                }
                "--timeout" => {
                    let v = need(&mut args, "--timeout")?;
                    out.timeout =
                        Some(v.parse().map_err(|e| format!("bad --timeout value {v:?}: {e}"))?);
                }
                "--journal" => out.journal = Some(need(&mut args, "--journal")?),
                "--corpus" => out.corpus = Some(need(&mut args, "--corpus")?),
                "--mode" => out.mode = Some(need(&mut args, "--mode")?),
                "--time-to-find" => out.time_to_find = true,
                "--trials" => {
                    let v = need(&mut args, "--trials")?;
                    out.trials =
                        Some(v.parse().map_err(|e| format!("bad --trials value {v:?}: {e}"))?);
                }
                "--workers" => {
                    let v = need(&mut args, "--workers")?;
                    let n: usize =
                        v.parse().map_err(|e| format!("bad --workers value {v:?}: {e}"))?;
                    if n == 0 {
                        return Err(format!(
                            "bad --workers value {v:?}: a campaign needs at least one \
                             worker thread (omit --workers for one per core)"
                        ));
                    }
                    out.workers = Some(n);
                }
                "--devices" => {
                    let v = need(&mut args, "--devices")?;
                    let n: usize =
                        v.parse().map_err(|e| format!("bad --devices value {v:?}: {e}"))?;
                    if n == 0 {
                        return Err(format!(
                            "bad --devices value {v:?}: a fleet needs at least one device"
                        ));
                    }
                    out.devices = Some(n);
                }
                "--duration" => {
                    let v = need(&mut args, "--duration")?;
                    let secs: f64 =
                        v.parse().map_err(|e| format!("bad --duration value {v:?}: {e}"))?;
                    if !secs.is_finite() || secs <= 0.0 {
                        return Err(format!(
                            "bad --duration value {v:?}: must be a positive number of seconds"
                        ));
                    }
                    out.duration = Some(secs);
                }
                "--mix" => out.mix = Some(need(&mut args, "--mix")?),
                "--quantum" => {
                    let v = need(&mut args, "--quantum")?;
                    let n: u64 =
                        v.parse().map_err(|e| format!("bad --quantum value {v:?}: {e}"))?;
                    if n == 0 {
                        return Err(format!(
                            "bad --quantum value {v:?}: a device quantum needs fuel"
                        ));
                    }
                    out.quantum = Some(n);
                }
                "--port" => {
                    let v = need(&mut args, "--port")?;
                    out.port = Some(v.parse().map_err(|e| format!("bad --port value {v:?}: {e}"))?);
                }
                f if f.starts_with('-') => return Err(format!("unknown flag {f}")),
                other => out.positional.push(other.to_string()),
            }
        }
        Ok(out)
    }

    /// Rejects flags the current subcommand does not consume. `allowed`
    /// lists the flag spellings the subcommand understands.
    pub fn forbid_unused(&self, cmd: &str, allowed: &[&str]) -> Result<(), String> {
        let set = |name: &str| -> bool {
            match name {
                "--backend" => self.backend.is_some(),
                "--seeds" => self.seeds.is_some(),
                "--json" => self.json.is_some(),
                "--out" => self.out.is_some(),
                "--obs-json" => self.obs_json.is_some(),
                "--trace" => self.trace.is_some(),
                "--apps" => self.apps.is_some(),
                "--ring" => self.ring.is_some(),
                "--funcs" => self.funcs,
                "--shrink" => self.shrink,
                "--lockstep" => self.lockstep,
                "--fuel" => self.fuel.is_some(),
                "--timeout" => self.timeout.is_some(),
                "--journal" => self.journal.is_some(),
                "--workers" => self.workers.is_some(),
                "--corpus" => self.corpus.is_some(),
                "--mode" => self.mode.is_some(),
                "--time-to-find" => self.time_to_find,
                "--trials" => self.trials.is_some(),
                "--devices" => self.devices.is_some(),
                "--duration" => self.duration.is_some(),
                "--mix" => self.mix.is_some(),
                "--quantum" => self.quantum.is_some(),
                "--port" => self.port.is_some(),
                "positional" => !self.positional.is_empty(),
                _ => false,
            }
        };
        for name in [
            "--backend",
            "--seeds",
            "--json",
            "--out",
            "--obs-json",
            "--trace",
            "--apps",
            "--ring",
            "--funcs",
            "--shrink",
            "--lockstep",
            "--fuel",
            "--timeout",
            "--journal",
            "--workers",
            "--corpus",
            "--mode",
            "--time-to-find",
            "--trials",
            "--devices",
            "--duration",
            "--mix",
            "--quantum",
            "--port",
            "positional",
        ] {
            if set(name) && !allowed.contains(&name) {
                return Err(if name == "positional" {
                    format!("{cmd} takes no positional operand {:?}", self.positional[0])
                } else {
                    format!("{cmd} does not understand {name}")
                });
            }
        }
        Ok(())
    }

    /// The application filter as a predicate over app names: a
    /// comma-separated list of case-insensitive substrings, any match
    /// accepting. `None` accepts everything.
    pub fn app_matches(&self, name: &str) -> bool {
        match &self.apps {
            None => true,
            Some(filter) => {
                let lname = name.to_ascii_lowercase();
                filter
                    .split(',')
                    .map(|p| p.trim().to_ascii_lowercase())
                    .filter(|p| !p.is_empty())
                    .any(|p| lname.contains(&p))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<CliArgs, String> {
        CliArgs::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn flags_and_positionals_parse() {
        let a = parse(&["--seeds", "7", "--json", "m.json", "results"]).unwrap();
        assert_eq!(a.seeds, Some(7));
        assert_eq!(a.json.as_deref(), Some("m.json"));
        assert_eq!(a.positional, vec!["results".to_string()]);
    }

    #[test]
    fn unknown_and_valueless_flags_error() {
        assert!(parse(&["--bogus"]).unwrap_err().contains("unknown flag"));
        assert!(parse(&["--seeds"]).unwrap_err().contains("needs a value"));
        assert!(parse(&["--seeds", "x"]).unwrap_err().contains("bad --seeds"));
    }

    #[test]
    fn unknown_flag_error_names_the_flag() {
        assert!(parse(&["--bogus"]).unwrap_err().contains("--bogus"));
        assert!(parse(&["--shrinkk"]).unwrap_err().contains("--shrinkk"));
    }

    #[test]
    fn forbid_unused_rejects_foreign_flags() {
        let a = parse(&["--seeds", "3"]).unwrap();
        assert!(a.forbid_unused("csv", &["--out", "positional"]).is_err());
        assert!(a.forbid_unused("attack-matrix", &["--seeds", "--json"]).is_ok());
    }

    #[test]
    fn foreign_flag_error_names_flag_and_command() {
        let a = parse(&["--shrink"]).unwrap();
        assert!(a.shrink);
        let err = a.forbid_unused("table1", &[]).unwrap_err();
        assert!(err.contains("--shrink"), "{err}");
        assert!(err.contains("table1"), "{err}");
        assert!(a.forbid_unused("check", &["--seeds", "--json", "--shrink"]).is_ok());
    }

    #[test]
    fn lockstep_flag_parses_and_is_guarded() {
        let a = parse(&["--lockstep"]).unwrap();
        assert!(a.lockstep);
        let err = a.forbid_unused("attack-matrix", &["--seeds", "--json"]).unwrap_err();
        assert!(err.contains("--lockstep"), "{err}");
        assert!(a.forbid_unused("check", &["--seeds", "--json", "--shrink", "--lockstep"]).is_ok());
    }

    #[test]
    fn legacy_positionals_still_parse() {
        // `csv DIR`: the original positional operand form.
        let a = parse(&["results-dir"]).unwrap();
        assert_eq!(a.positional, vec!["results-dir".to_string()]);
        assert!(a.forbid_unused("csv", &["--out", "positional"]).is_ok());
        // `bench-json FILE`: likewise.
        let b = parse(&["timings.json"]).unwrap();
        assert!(b.forbid_unused("bench-json", &["--json", "positional"]).is_ok());
        // But a positional where none is accepted names the operand.
        let err = b.forbid_unused("check", &["--seeds", "--json", "--shrink"]).unwrap_err();
        assert!(err.contains("timings.json"), "{err}");
    }

    #[test]
    fn campaign_flags_parse_and_are_guarded() {
        let a =
            parse(&["--fuel", "5000", "--timeout", "30", "--journal", "j.jsonl", "--workers", "4"])
                .unwrap();
        assert_eq!(a.fuel, Some(5000));
        assert_eq!(a.timeout, Some(30));
        assert_eq!(a.journal.as_deref(), Some("j.jsonl"));
        assert_eq!(a.workers, Some(4));
        assert!(parse(&["--fuel", "x"]).unwrap_err().contains("bad --fuel"));
        assert!(parse(&["--workers"]).unwrap_err().contains("needs a value"));
        // Campaign flags are rejected by non-campaign subcommands.
        let err = a.forbid_unused("table1", &[]).unwrap_err();
        assert!(err.contains("--fuel"), "{err}");
        assert!(a
            .forbid_unused("check", &["--fuel", "--timeout", "--journal", "--workers"])
            .is_ok());
    }

    #[test]
    fn fuzz_flags_parse_and_are_guarded() {
        let a = parse(&["--corpus", "corp", "--mode", "guided", "--time-to-find", "--trials", "5"])
            .unwrap();
        assert_eq!(a.corpus.as_deref(), Some("corp"));
        assert_eq!(a.mode.as_deref(), Some("guided"));
        assert!(a.time_to_find);
        assert_eq!(a.trials, Some(5));
        assert!(parse(&["--trials", "x"]).unwrap_err().contains("bad --trials"));
        assert!(parse(&["--corpus"]).unwrap_err().contains("needs a value"));
        let err = a.forbid_unused("table1", &[]).unwrap_err();
        assert!(err.contains("--corpus"), "{err}");
        assert!(a
            .forbid_unused("fuzz", &["--corpus", "--mode", "--time-to-find", "--trials"])
            .is_ok());
    }

    #[test]
    fn fleet_flags_parse_and_are_guarded() {
        let a = parse(&[
            "--devices",
            "512",
            "--duration",
            "7.5",
            "--mix",
            "tcp_echo=2,fuzz",
            "--quantum",
            "10000",
            "--port",
            "9100",
        ])
        .unwrap();
        assert_eq!(a.devices, Some(512));
        assert_eq!(a.duration, Some(7.5));
        assert_eq!(a.mix.as_deref(), Some("tcp_echo=2,fuzz"));
        assert_eq!(a.quantum, Some(10_000));
        assert_eq!(a.port, Some(9100));
        assert!(parse(&["--devices", "x"]).unwrap_err().contains("bad --devices"));
        assert!(parse(&["--duration", "soon"]).unwrap_err().contains("bad --duration"));
        assert!(parse(&["--port", "99999"]).unwrap_err().contains("bad --port"));
        let err = a.forbid_unused("table1", &[]).unwrap_err();
        assert!(err.contains("--devices"), "{err}");
        assert!(a
            .forbid_unused(
                "serve",
                &["--devices", "--duration", "--mix", "--quantum", "--port", "--workers"],
            )
            .is_ok());
    }

    #[test]
    fn zero_and_negative_resource_values_fail_naming_the_flag() {
        // `--workers 0` historically parsed fine and then hung the
        // campaign pool; now every nonsensical resource count fails at
        // the parse with the flag named.
        for (words, flag) in [
            (&["--workers", "0"][..], "--workers"),
            (&["--devices", "0"][..], "--devices"),
            (&["--quantum", "0"][..], "--quantum"),
            (&["--duration", "0"][..], "--duration"),
            (&["--duration", "-3"][..], "--duration"),
        ] {
            let err = parse(words).unwrap_err();
            assert!(err.contains(flag), "{words:?}: {err}");
            assert!(err.contains("bad"), "{words:?}: {err}");
        }
        // The boundary values stay accepted.
        assert_eq!(parse(&["--workers", "1"]).unwrap().workers, Some(1));
        assert_eq!(parse(&["--duration", "0.2"]).unwrap().duration, Some(0.2));
    }

    #[test]
    fn app_filter_is_substring_any_match() {
        let a = parse(&["--apps", "pin,core"]).unwrap();
        assert!(a.app_matches("PinLock"));
        assert!(a.app_matches("CoreMark"));
        assert!(!a.app_matches("Animation"));
        assert!(parse(&[]).unwrap().app_matches("anything"));
    }
}
