//! The `fuzz` subcommand: coverage-guided fuzzing of the OPEC
//! pipeline, with a persistent minimized corpus and a time-to-find
//! benchmark.
//!
//! Every input is a structured [`FirmwareSpec`] plan — either freshly
//! generated or a stacked mutation of an earlier plan — pushed through
//! the full production pipeline (`build_module` → `compile` → image →
//! VM with the shadow oracle attached). The coverage signal is the
//! deterministic feature set [`CoverageMap`] folds from the obs event
//! stream: operation-switch edges, virtualization hit/evict/miss
//! slots, fault classes, and the oracle's probe cells. A plan that
//! contributes a feature the corpus aggregate lacks is admitted to the
//! [`Corpus`] and becomes a mutation base for later rounds.
//!
//! The campaign runs in *rounds*: each round's inputs are planned from
//! the aggregate state after the previous round, then executed as one
//! [`run_campaign`] batch — so fuel budgets, the watchdog, panic
//! containment, `--workers` sharding, and journal resume all apply
//! unchanged. Planning is deterministic from the journal-replayable
//! round results, which is what makes a killed-and-resumed fuzz run
//! aggregate to byte-identical output (and why coverage can never be
//! double-counted: the map is a feature *set*, and union is
//! idempotent).
//!
//! Two scheduling modes share the same generator and mutator catalog
//! and differ only in where mutation bases come from:
//!
//! * `guided` — bases are drawn from the minimized corpus, biased
//!   toward the most recently admitted entries (the coverage
//!   frontier);
//! * `random` — bases are drawn uniformly from *every* previously
//!   executed plan, with no coverage feedback.
//!
//! `--time-to-find` benchmarks that difference against the self-test's
//! deliberately broken MPU plan ([`break_mpu_latent`]): a bug gated on
//! a policy shape (a non-root operation with ≥ [`LATENT_MIN_WINDOWS`]
//! peripheral windows) that fresh generation can never produce, only
//! mutation chains can. `BENCH_fuzz.json` records the median jobs and
//! wall-clock to first detection per mode and backend, plus a
//! corpus-replay determinism check.

use std::path::Path;
use std::time::Instant;

use opec_campaign::json::{self, Value};
use opec_campaign::{run_campaign, CampaignOpts, CampaignReport, Job, JobOutcome};
use opec_core::SystemPolicy;
use opec_inject::SplitMix64;
use opec_obs::{OracleKind, OracleLayer};
use opec_oracle::corpus::{spec_from, spec_json};
use opec_oracle::divergence::Observed;
use opec_oracle::{
    break_mpu_latent, generate, mutate_stacked, run_opec_cov, Corpus, CoverageMap, FirmwareSpec,
    RunBudget, Verdict, LATENT_MIN_WINDOWS,
};

use crate::backend::BackendSel;
use crate::check::{backend_segment, gen_budget, BudgetHalt};
use crate::engine::{EngineOpts, RunLimits};

/// Default jobs per campaign round. Inputs for round *r + 1* are
/// planned from the aggregate state after round *r*, so the round size
/// trades scheduling freshness against campaign-batch overhead.
pub const DEFAULT_ROUND: u64 = 32;

/// Every `FRESH_EVERY`-th input in a round is a fresh generated plan,
/// keeping exploration alive however rich the corpus gets.
const FRESH_EVERY: u64 = 8;

/// In guided mode, this fraction denominator of mutants draws its base
/// from the whole corpus; the rest mutate the coverage frontier (the
/// most recently admitted entries).
const EXPLORE_EVERY: u64 = 8;

/// How many recently admitted entries count as the frontier.
const FRONTIER: usize = 4;

/// Stacked mutations per mutant: 1..=MAX_STACK [`opec_oracle::mutate`]
/// passes. Kept shallow on purpose: deep stacks would let a *single*
/// lottery-ticket chain brute-force structural depth in one job, which
/// rewards raw throughput; shallow stacks force depth to accumulate
/// across corpus generations, which is the signal the guided mode's
/// feedback loop provides.
const MAX_STACK: u64 = 3;

/// Divergence renderings kept per job payload (totals stay uncapped).
const DIV_CAP: usize = 3;

/// Base-selection policy (the only thing that differs between the
/// benchmark's two arms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzMode {
    /// Mutation bases come from the minimized coverage corpus,
    /// frontier-biased.
    Guided,
    /// Mutation bases come uniformly from all previously executed
    /// plans — same mutators, no coverage feedback.
    Random,
}

impl FuzzMode {
    /// The CLI / job-id name.
    pub fn name(self) -> &'static str {
        match self {
            FuzzMode::Guided => "guided",
            FuzzMode::Random => "random",
        }
    }

    /// Parses `--mode`.
    pub fn from_flag(flag: Option<&str>) -> Result<FuzzMode, String> {
        match flag {
            None | Some("guided") => Ok(FuzzMode::Guided),
            Some("random") => Ok(FuzzMode::Random),
            Some(other) => Err(format!("unknown --mode {other:?} (guided, random)")),
        }
    }
}

/// Options for [`run_fuzz_campaign`].
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Total jobs to run.
    pub seeds: u64,
    /// Protection backend.
    pub backend: BackendSel,
    /// On-disk corpus directory; `None` keeps the corpus in memory.
    pub corpus: Option<String>,
    /// Base-selection mode.
    pub mode: FuzzMode,
    /// Jobs per round ([`DEFAULT_ROUND`]).
    pub round: u64,
}

impl Default for FuzzOptions {
    fn default() -> FuzzOptions {
        FuzzOptions {
            seeds: 256,
            backend: BackendSel::Armv7m,
            corpus: None,
            mode: FuzzMode::Guided,
            round: DEFAULT_ROUND,
        }
    }
}

/// What a fuzz campaign produced.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Backend name.
    pub backend: &'static str,
    /// Mode name.
    pub mode: &'static str,
    /// Jobs executed or resumed.
    pub jobs: u64,
    /// Campaign rounds.
    pub rounds: u64,
    /// Corpus entries after re-minimization.
    pub entries: usize,
    /// Entries admitted by this run (not loaded from disk).
    pub new_entries: usize,
    /// Features in the aggregate coverage map.
    pub features: usize,
    /// FNV digest of the aggregate coverage map — the replay
    /// determinism witness.
    pub coverage_digest: u64,
    /// Divergent jobs, rendered (any entry here is a hard failure).
    pub divergent: Vec<String>,
    /// Run errors and panics, rendered (also hard failures).
    pub errors: Vec<String>,
    /// Where the corpus was saved, when dir-bound.
    pub saved: Option<String>,
}

impl FuzzReport {
    /// Every hard failure, rendered.
    pub fn failures(&self) -> Vec<String> {
        self.divergent.iter().chain(&self.errors).cloned().collect()
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut s = format!(
            "Coverage-guided fuzz (backend: {}, mode: {})\n====================\n",
            self.backend, self.mode
        );
        s.push_str(&format!("  jobs      {} ({} rounds)\n", self.jobs, self.rounds));
        s.push_str(&format!(
            "  corpus    {} entries ({} admitted this run), {} features, digest {:016x}\n",
            self.entries, self.new_entries, self.features, self.coverage_digest
        ));
        if let Some(dir) = &self.saved {
            s.push_str(&format!("  saved     {dir}\n"));
        }
        s.push_str(&format!(
            "  verdicts  {} divergent, {} errors\n",
            self.divergent.len(),
            self.errors.len()
        ));
        for d in &self.divergent {
            s.push_str(&format!("      {d}\n"));
        }
        for e in &self.errors {
            s.push_str(&format!("      {e}\n"));
        }
        s
    }

    /// Machine-readable artifact (the CI `fuzz.json`).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "{{\n  \"backend\": \"{}\",\n  \"mode\": \"{}\",\n  \"jobs\": {},\n  \
             \"rounds\": {},\n  \"corpus_entries\": {},\n  \"new_entries\": {},\n  \
             \"features\": {},\n  \"coverage_digest\": \"{:016x}\",\n  \"divergent\": [",
            self.backend,
            self.mode,
            self.jobs,
            self.rounds,
            self.entries,
            self.new_entries,
            self.features,
            self.coverage_digest,
        );
        for (i, d) in self.divergent.iter().enumerate() {
            write!(s, "{}\"{}\"", if i == 0 { "" } else { ", " }, json::escape(d))
                .expect("write to String");
        }
        s.push_str("],\n  \"errors\": [");
        for (i, e) in self.errors.iter().enumerate() {
            write!(s, "{}\"{}\"", if i == 0 { "" } else { ", " }, json::escape(e))
                .expect("write to String");
        }
        s.push_str(&format!("],\n  \"failures\": {}\n}}\n", self.failures().len()));
        s
    }
}

/// One planned input: the derived plan plus a self-describing repro
/// fragment (how the plan was obtained, embedded in journal records
/// and repro artifacts).
struct Planned {
    spec: FirmwareSpec,
    desc: String,
}

/// Plans one round of inputs from the aggregate state so far. Fully
/// deterministic in `(mode, salt, round, count, corpus, frontier,
/// pool)` — resuming a killed campaign replays earlier rounds from the
/// journal, rebuilds the same state, and therefore re-plans the same
/// inputs under the same job ids.
#[allow(clippy::too_many_arguments)]
fn plan_round(
    mode: FuzzMode,
    salt: u64,
    round: u64,
    count: u64,
    corpus: &Corpus,
    frontier: &[FirmwareSpec],
    pool: &[FirmwareSpec],
) -> Vec<Planned> {
    let mut rng =
        SplitMix64::new(salt ^ round.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xf00d_5eed_c0de_face);
    let mut out = Vec::with_capacity(count as usize);
    for i in 0..count {
        let have_bases = match mode {
            FuzzMode::Guided => !corpus.entries.is_empty(),
            FuzzMode::Random => !pool.is_empty(),
        };
        if !have_bases || i % FRESH_EVERY == 0 {
            let seed = salt ^ (round * DEFAULT_ROUND.max(count) + i);
            out.push(Planned {
                spec: generate(seed),
                desc: format!("{{\"kind\":\"fresh\",\"seed\":{seed}}}"),
            });
            continue;
        }
        let steps = 1 + rng.gen_range(0, MAX_STACK) as u32;
        let mseed = rng.next_u64();
        let (base, from) = match mode {
            FuzzMode::Guided => {
                if !frontier.is_empty() && rng.gen_range(0, EXPLORE_EVERY) != 0 {
                    let k = rng.gen_range(0, frontier.len() as u64) as usize;
                    (&frontier[k], format!("frontier[{k}]"))
                } else {
                    let k = rng.gen_range(0, corpus.entries.len() as u64) as usize;
                    (&corpus.entries[k].spec, corpus.entries[k].key.clone())
                }
            }
            FuzzMode::Random => {
                let k = rng.gen_range(0, pool.len() as u64) as usize;
                (&pool[k], format!("pool[{k}]"))
            }
        };
        out.push(Planned {
            spec: mutate_stacked(base, mseed, steps),
            desc: format!(
                "{{\"kind\":\"mutant\",\"base\":\"{}\",\"mseed\":{mseed},\"steps\":{steps}}}",
                json::escape(&from)
            ),
        });
    }
    out
}

/// The single-line journal payload of one fuzz job: the input
/// descriptor, the canonical plan (so aggregation never re-derives
/// it), the run's coverage features, and its verdict summary.
fn job_payload(desc: &str, spec: &FirmwareSpec, v: &Verdict, cov: &CoverageMap) -> String {
    use std::fmt::Write as _;
    let mut s = format!("{{\"desc\":{desc},\"spec\":{},\"total\":{}", spec_json(spec), {
        v.total_divergences
    });
    match &v.run_error {
        Some(e) => write!(s, ",\"run_error\":\"{}\"", json::escape(e)).expect("write to String"),
        None => s.push_str(",\"run_error\":null"),
    }
    s.push_str(",\"divergences\":[");
    for (i, d) in v.divergences.iter().take(DIV_CAP).enumerate() {
        write!(s, "{}\"{}\"", if i == 0 { "" } else { "," }, json::escape(&format!("{d}")))
            .expect("write to String");
    }
    s.push_str("],\"coverage\":[");
    for (i, f) in cov.features().enumerate() {
        write!(s, "{}{f}", if i == 0 { "" } else { "," }).expect("write to String");
    }
    s.push_str("]}");
    s
}

/// The payload of a job whose pipeline rejected the plan outright
/// (mutants must always compile — this is a hard failure, not a skip).
fn error_payload(desc: &str, spec: &FirmwareSpec, e: &str) -> String {
    format!(
        "{{\"desc\":{desc},\"spec\":{},\"total\":0,\"run_error\":\"{}\",\
         \"divergences\":[],\"coverage\":[]}}",
        spec_json(spec),
        json::escape(e)
    )
}

/// Folds one round's records (fresh or journal-resumed — same bytes
/// either way) into the aggregate state: corpus admission, the random
/// pool, the frontier, and the report's failure lists.
fn fold_round(
    rep: &CampaignReport,
    corpus: &mut Corpus,
    frontier: &mut Vec<FirmwareSpec>,
    pool: &mut Vec<FirmwareSpec>,
    report: &mut FuzzReport,
) -> Result<(), String> {
    for rec in &rep.records {
        report.jobs += 1;
        if rec.outcome == JobOutcome::Panicked {
            report.errors.push(format!("{}: {}", rec.id, rec.payload));
            continue;
        }
        let doc = json::parse(&rec.payload).map_err(|e| format!("{} payload: {e}", rec.id))?;
        let spec = spec_from(doc.get("spec").ok_or_else(|| format!("{}: no spec", rec.id))?)
            .map_err(|e| format!("{} spec: {e}", rec.id))?;
        let total = doc
            .get("total")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{}: no total", rec.id))?;
        if total > 0 {
            let first = doc
                .get("divergences")
                .and_then(Value::as_arr)
                .and_then(|a| a.first())
                .and_then(Value::as_str)
                .unwrap_or("");
            report.divergent.push(format!("{}: {total} divergences: {first}", rec.id));
        }
        if let Some(e) = doc.get("run_error").and_then(Value::as_str) {
            report.errors.push(format!("{}: run error: {e}", rec.id));
        }
        let feats = doc
            .get("coverage")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("{}: no coverage", rec.id))?
            .iter()
            .map(|f| f.as_u64().ok_or_else(|| format!("{}: bad feature", rec.id)))
            .collect::<Result<Vec<_>, _>>()?;
        let cov = CoverageMap::from_features(feats);
        if corpus.admit(spec.clone(), cov).is_some() {
            report.new_entries += 1;
            frontier.push(spec.clone());
            if frontier.len() > FRONTIER {
                frontier.remove(0);
            }
        }
        pool.push(spec);
    }
    Ok(())
}

/// Merges per-round campaign reports into one, so `main` sees a single
/// summary / unknown count spanning the whole fuzz run.
fn merge_campaigns(into: &mut Option<CampaignReport>, rep: CampaignReport) {
    match into {
        None => *into = Some(rep),
        Some(all) => {
            all.records.extend(rep.records);
            all.resumed += rep.resumed;
            all.retried += rep.retried;
            all.recovered += rep.recovered;
            all.torn_lines += rep.torn_lines;
        }
    }
}

/// Runs the fuzz campaign under the engine's supervision options.
pub fn run_fuzz_campaign(
    opts: &FuzzOptions,
    engine: &EngineOpts,
) -> Result<(FuzzReport, CampaignReport), String> {
    run_fuzz_with(opts, &engine.campaign_opts("fuzz"))
}

/// [`run_fuzz_campaign`] under explicit campaign options (the test
/// entry point: fault-injection hooks set directly, no env).
pub fn run_fuzz_with(
    opts: &FuzzOptions,
    copts: &CampaignOpts,
) -> Result<(FuzzReport, CampaignReport), String> {
    let sel = opts.backend;
    let seg = backend_segment(sel);
    let round_size = opts.round.max(1);
    let mut corpus = match &opts.corpus {
        Some(dir) => Corpus::load(Path::new(dir))?,
        None => Corpus::in_memory(),
    };
    let mut frontier: Vec<FirmwareSpec> = Vec::new();
    let mut pool: Vec<FirmwareSpec> = Vec::new();
    let mut report =
        FuzzReport { backend: sel.name(), mode: opts.mode.name(), ..FuzzReport::default() };
    let mut campaigns: Option<CampaignReport> = None;

    let mut done = 0u64;
    let mut round = 0u64;
    while done < opts.seeds {
        let n = round_size.min(opts.seeds - done);
        let planned = plan_round(opts.mode, 0, round, n, &corpus, &frontier, &pool);
        let jobs: Vec<Job<'_>> = planned
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let spec = p.spec.clone();
                let desc = p.desc.clone();
                Job::new(
                    format!("fuzz/{seg}{}/r{round}/{i}", opts.mode.name()),
                    format!(
                        "{{\"input\":{},\"backend\":\"{}\",\"mode\":\"{}\"}}",
                        desc,
                        sel.name(),
                        opts.mode.name()
                    ),
                    move |ctx| {
                        let budget = gen_budget(&RunLimits::from_ctx(ctx));
                        match run_opec_cov(&spec, None, &budget, sel.dyn_backend()) {
                            Ok((v, cov)) => BudgetHalt::from_oracle(v.halt)
                                .result(job_payload(&desc, &spec, &v, &cov)),
                            Err(e) => BudgetHalt::Ran.result(error_payload(&desc, &spec, &e)),
                        }
                    },
                )
            })
            .collect();
        let rep = run_campaign(copts, &jobs)?;
        fold_round(&rep, &mut corpus, &mut frontier, &mut pool, &mut report)?;
        merge_campaigns(&mut campaigns, rep);
        done += n;
        round += 1;
    }

    report.rounds = round;
    report.entries = corpus.entries.len();
    report.features = corpus.aggregate.len();
    report.coverage_digest = corpus.aggregate.digest();
    if opts.corpus.is_some() {
        corpus.save()?;
        report.saved.clone_from(&opts.corpus);
    }
    let campaigns = campaigns.unwrap_or(CampaignReport {
        name: copts.name.clone(),
        records: Vec::new(),
        resumed: 0,
        retried: 0,
        recovered: 0,
        torn_lines: 0,
    });
    Ok((report, campaigns))
}

// ---------------------------------------------------------------------
// Time-to-find benchmark (`fuzz --time-to-find`).
// ---------------------------------------------------------------------

/// Options for [`bench_time_to_find`].
#[derive(Debug, Clone, Copy)]
pub struct BenchOptions {
    /// Trials per (backend, mode) cell; the JSON reports medians.
    pub trials: u64,
    /// Job budget per trial; a trial that never detects the planted
    /// bug is censored at this budget.
    pub budget: u64,
}

impl Default for BenchOptions {
    fn default() -> BenchOptions {
        BenchOptions { trials: 5, budget: 8192 }
    }
}

/// The detection signature of the planted broken-MPU bug: the shadow
/// oracle's probe sweep reports a writable flash base the matrix
/// denies. Shared (by construction) with the `oracle_checks`
/// self-test, so the benchmark and the test agree on what "found"
/// means.
fn found_broken_mpu(v: &Verdict, flash_base: u32) -> bool {
    v.divergences.iter().any(|d| {
        d.kind == OracleKind::Escape
            && d.layer == OracleLayer::Mpu
            && d.observed == Observed::Probe
            && d.addr == flash_base
    })
}

/// One trial outcome.
struct Trial {
    /// Jobs executed until first detection; `None` if censored at the
    /// budget.
    jobs: Option<u64>,
    /// Wall-clock milliseconds until detection (or until the budget).
    ms: u64,
    /// The trial's final corpus (guided trials feed the replay check).
    corpus: Corpus,
}

/// Runs one in-process time-to-find trial: the same round planner as
/// the campaign path, sequential (wall-clock stays honest), with the
/// latent broken-MPU tamper applied to every run.
fn trial(mode: FuzzMode, sel: BackendSel, opts: &BenchOptions, salt: u64) -> Trial {
    let start = Instant::now();
    let tamper = |p: &mut SystemPolicy| break_mpu_latent(p, LATENT_MIN_WINDOWS);
    let mut corpus = Corpus::in_memory();
    let mut frontier: Vec<FirmwareSpec> = Vec::new();
    let mut pool: Vec<FirmwareSpec> = Vec::new();
    let mut executed = 0u64;
    let mut round = 0u64;
    while executed < opts.budget {
        let n = DEFAULT_ROUND.min(opts.budget - executed);
        let planned = plan_round(mode, salt, round, n, &corpus, &frontier, &pool);
        for p in planned {
            executed += 1;
            let flash_base = p.spec.board().flash.base;
            let Ok((v, cov)) =
                run_opec_cov(&p.spec, Some(&tamper), &RunBudget::default(), sel.dyn_backend())
            else {
                continue;
            };
            if found_broken_mpu(&v, flash_base) {
                return Trial {
                    jobs: Some(executed),
                    ms: start.elapsed().as_millis() as u64,
                    corpus,
                };
            }
            if corpus.admit(p.spec.clone(), cov).is_some() {
                frontier.push(p.spec.clone());
                if frontier.len() > FRONTIER {
                    frontier.remove(0);
                }
            }
            pool.push(p.spec);
        }
        round += 1;
    }
    Trial { jobs: None, ms: start.elapsed().as_millis() as u64, corpus }
}

/// The median of `xs` (censored values already substituted).
fn median(xs: &mut [u64]) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Replays every corpus entry through the production pipeline and
/// folds the coverage into one aggregate digest. Two invocations over
/// the same corpus must agree bit-for-bit — the determinism the corpus
/// format (and resume) rests on.
pub fn replay_digest(corpus: &Corpus, sel: BackendSel) -> Result<u64, String> {
    let mut agg = CoverageMap::new();
    for e in &corpus.entries {
        let (_, cov) = run_opec_cov(&e.spec, None, &RunBudget::default(), sel.dyn_backend())?;
        agg.merge(&cov);
    }
    Ok(agg.digest())
}

/// One (backend, mode) cell of the benchmark.
struct Cell {
    found: u64,
    jobs: Vec<Option<u64>>,
    ms: Vec<u64>,
    median_jobs: u64,
    median_ms: u64,
}

fn bench_cell(mode: FuzzMode, sel: BackendSel, opts: &BenchOptions) -> (Cell, Option<Corpus>) {
    let mut jobs = Vec::new();
    let mut ms = Vec::new();
    let mut last_corpus = None;
    for t in 0..opts.trials {
        let r = trial(mode, sel, opts, (t + 1).wrapping_mul(0x5851_f42d_4c95_7f2d));
        eprintln!(
            "[opec-eval]   {} / {}: trial {t}: {}",
            sel.name(),
            mode.name(),
            match r.jobs {
                Some(j) => format!("found at job {j} ({} ms)", r.ms),
                None => format!("censored at {} jobs ({} ms)", opts.budget, r.ms),
            }
        );
        jobs.push(r.jobs);
        ms.push(r.ms);
        last_corpus = Some(r.corpus);
    }
    let found = jobs.iter().filter(|j| j.is_some()).count() as u64;
    let mut censored_jobs: Vec<u64> = jobs.iter().map(|j| j.unwrap_or(opts.budget)).collect();
    let median_jobs = median(&mut censored_jobs);
    let mut ms_sorted = ms.clone();
    let median_ms = median(&mut ms_sorted);
    (Cell { found, jobs, ms, median_jobs, median_ms }, last_corpus)
}

fn cell_json(c: &Cell) -> String {
    let jobs = c
        .jobs
        .iter()
        .map(|j| match j {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        })
        .collect::<Vec<_>>()
        .join(", ");
    let ms = c.ms.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
    format!(
        "{{\"found\": {}, \"median_jobs\": {}, \"median_ms\": {}, \"jobs\": [{jobs}], \
         \"ms\": [{ms}]}}",
        c.found, c.median_jobs, c.median_ms
    )
}

/// Runs the full time-to-find benchmark (both backends × both modes ×
/// `opts.trials` trials) plus the corpus-replay determinism check, and
/// renders `BENCH_fuzz.json`.
pub fn bench_time_to_find(opts: &BenchOptions) -> Result<String, String> {
    let mut out = format!(
        "{{\n  \"schema\": \"opec-bench-fuzz-v1\",\n  \"trials\": {},\n  \
         \"budget_jobs\": {},\n  \"round\": {},\n  \"latent_min_windows\": {},\n  \
         \"backends\": [\n",
        opts.trials, opts.budget, DEFAULT_ROUND, LATENT_MIN_WINDOWS
    );
    let mut replay: Option<(BackendSel, Corpus)> = None;
    let backends = [BackendSel::Armv7m, BackendSel::Rv32Pmp];
    for (bi, &sel) in backends.iter().enumerate() {
        eprintln!("[opec-eval] time-to-find on {} ({} trials per mode)...", sel.name(), {
            opts.trials
        });
        let (guided, guided_corpus) = bench_cell(FuzzMode::Guided, sel, opts);
        let (random, _) = bench_cell(FuzzMode::Random, sel, opts);
        // Advantage: random-only median jobs over guided median jobs.
        // Censored random trials count the full budget, so the true
        // ratio is at least this.
        let advantage = random.median_jobs as f64 / guided.median_jobs.max(1) as f64;
        out.push_str(&format!(
            "    {{\"backend\": \"{}\",\n     \"guided\": {},\n     \"random\": {},\n     \
             \"advantage_jobs\": {:.2},\n     \"random_censored\": {}}}{}\n",
            sel.name(),
            cell_json(&guided),
            cell_json(&random),
            advantage,
            opts.trials - random.found,
            if bi + 1 < backends.len() { "," } else { "" }
        ));
        if replay.is_none() {
            if let Some(c) = guided_corpus {
                if !c.entries.is_empty() {
                    replay = Some((sel, c));
                }
            }
        }
    }
    out.push_str("  ],\n");
    let (sel, corpus) = replay.ok_or("no guided trial produced a corpus to replay")?;
    eprintln!(
        "[opec-eval] replaying a {}-entry guided corpus twice on {}...",
        corpus.entries.len(),
        sel.name()
    );
    let a = replay_digest(&corpus, sel)?;
    let b = replay_digest(&corpus, sel)?;
    out.push_str(&format!(
        "  \"replay\": {{\"backend\": \"{}\", \"entries\": {}, \"digest_a\": \"{a:016x}\", \
         \"digest_b\": \"{b:016x}\", \"deterministic\": {}}}\n}}\n",
        sel.name(),
        corpus.entries.len(),
        a == b
    ));
    if a != b {
        return Err("corpus replay was non-deterministic".to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opec_campaign::CampaignOpts;

    fn copts() -> CampaignOpts {
        CampaignOpts {
            name: "fuzz".to_string(),
            fuel: crate::runs::FUEL,
            timeout_secs: None,
            workers: 2,
            journal: None,
            repro_dir: std::env::temp_dir()
                .join("opec-fuzz-tests/repros")
                .to_string_lossy()
                .into_owned(),
            kill_after: None,
            panic_inject: None,
        }
    }

    #[test]
    fn small_guided_campaign_is_clean_and_grows_a_corpus() {
        let opts = FuzzOptions { seeds: 10, round: 5, ..FuzzOptions::default() };
        let (report, campaign) = run_fuzz_with(&opts, &copts()).expect("fuzz");
        assert_eq!(report.jobs, 10);
        assert_eq!(report.rounds, 2);
        assert!(report.failures().is_empty(), "{:?}", report.failures());
        assert!(report.entries > 0, "nothing was admitted");
        assert!(report.features > 0);
        assert_eq!(campaign.unknown(), 0);
    }

    #[test]
    fn planning_is_deterministic() {
        let corpus = Corpus::in_memory();
        let a = plan_round(FuzzMode::Guided, 7, 3, 6, &corpus, &[], &[]);
        let b = plan_round(FuzzMode::Guided, 7, 3, 6, &corpus, &[], &[]);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.desc, y.desc);
        }
    }

    #[test]
    fn latent_tamper_is_invisible_to_fresh_generation() {
        // The benchmark's planted bug must be unreachable without
        // mutation: fresh plans stay divergence-free under the latent
        // tamper (the non-latent break_mpu self-test, by contrast,
        // fires on every fresh plan).
        let tamper = |p: &mut SystemPolicy| break_mpu_latent(p, LATENT_MIN_WINDOWS);
        for seed in 0..6 {
            let spec = generate(seed);
            let (v, _) = run_opec_cov(
                &spec,
                Some(&tamper),
                &RunBudget::default(),
                BackendSel::Armv7m.dyn_backend(),
            )
            .expect("pipeline");
            assert!(v.clean(), "seed {seed} diverged under the latent tamper");
        }
    }
}
