//! The evaluation harness: regenerates every table and figure of the
//! paper's Section 6.
//!
//! * [`runs`] — builds and executes each application three ways
//!   (vanilla baseline, OPEC, ACES under the three strategies) and
//!   collects cycles, image footprints, traces, and analysis artifacts,
//!   fanning independent runs across scoped threads;
//! * [`cache`] — memoizes runs per `(app, configuration)` so one set of
//!   runs serves every table, figure, CSV export, and bench;
//! * [`metrics`] — the paper's two new metrics: partition-time
//!   over-privilege (PT, Equation 1) and execution-time over-privilege
//!   (ET, Equation 2), plus the Table 1 security metrics;
//! * [`report`] — renderers for Table 1, Figure 9, Table 2, Figure 10,
//!   Figure 11, and Table 3, as aligned text tables and CSV series;
//! * [`table`] — a small text-table formatter;
//! * [`cli`] — one shared flag vocabulary for every subcommand;
//! * [`engine`] — the eval-side face of the shared campaign engine
//!   (`opec-campaign`): CLI flags resolved to fuel budgets, watchdog
//!   deadlines, worker counts, and the checkpoint journal that
//!   `attack-matrix`, `check`, and `bench-vm` all run under;
//! * [`obsreport`] — the `report` subcommand: per-operation overhead
//!   breakdowns, metrics JSON, and Chrome `trace_event` exports cut
//!   from the [`opec_obs`] stream, OPEC and ACES measured identically;
//! * [`attack`] — the seeded attack-campaign matrix (`attack-matrix`):
//!   every app under every `opec-inject` attack class in three
//!   configurations (OPEC / ACES / baseline), scored with containment
//!   verdicts;
//! * [`check`] — the differential security oracle (`check`): every app
//!   and a batch of generated firmwares run in lockstep against the
//!   ground-truth access matrix, with PT/ET recomputed independently
//!   and cross-checked against the report's numbers; `--lockstep`
//!   instead holds the VM's pre-decoded fast path to observational
//!   equivalence with the plain interpreter;
//! * [`benchvm`] — the VM throughput benchmark (`bench-vm`): plain vs
//!   decoded instructions/sec, campaign resets/sec, snapshot restore
//!   latency, and the lockstep divergence count (`BENCH_vm.json`);
//! * [`fuzz`] — coverage-guided fuzzing (`fuzz`): structure-aware
//!   mutation of generated firmware plans, scheduled from a persistent
//!   minimized corpus, run as supervised campaign rounds, plus the
//!   guided-vs-random time-to-find benchmark (`BENCH_fuzz.json`).
//!
//! The `opec-eval` binary drives everything:
//!
//! ```text
//! opec-eval all           # every table and figure, from one memoized pass
//! opec-eval table1 | figure9 | table2 | figure10 | figure11 | table3
//! opec-eval case-study    # the §6.1 PinLock attack demonstration
//! opec-eval bench-json    # machine-readable solver + pipeline timings
//! ```

#![warn(missing_docs)]

pub mod attack;
pub mod backend;
pub mod benchjson;
pub mod benchvm;
pub mod cache;
pub mod check;
pub mod cli;
pub mod engine;
pub mod fuzz;
pub mod metrics;
pub mod obsreport;
pub mod report;
pub mod runs;
pub mod table;

pub use backend::BackendSel;
pub use cache::EvalCache;
pub use cli::CliArgs;
pub use metrics::{et_by_task, pt_of_compartments, table1_row, EtSeries, Table1Row};
pub use runs::{evaluate_app, evaluate_many, AcesRun, AppEval, OpecRun};
