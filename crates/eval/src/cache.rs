//! Memoized evaluation pipeline.
//!
//! Every run the evaluation performs is a pure function of
//! `(application, configuration)`: the module is rebuilt from scratch,
//! the machine is freshly scripted, and the simulated clock is
//! deterministic. [`EvalCache`] exploits that by memoizing at exactly
//! that granularity — one entry per baseline run, per OPEC run, and
//! per `(app, ACES strategy)` run — so the seven-app pass and the
//! five-app comparison pass *share* their baseline and OPEC runs
//! instead of redoing them, and every renderer (tables, figures, CSV
//! export, benches) is served from a single set of runs.
//!
//! Determinism: cache hits return the same [`Arc`]-shared artifact a
//! miss would have computed, threads only decide *when* a unit is
//! computed (never *what*), and assembly joins in input order — so
//! output is byte-identical to the sequential, uncached pipeline.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;

use opec_aces::AcesStrategy;
use opec_apps::App;

use crate::runs::{self, AcesRun, AppEval, OpecRun, ACES_STRATEGIES};

/// Memoizes evaluation runs per `(app, configuration)`.
///
/// Concurrent misses on the same key may compute the unit twice; both
/// computations produce identical results (runs are deterministic), so
/// whichever insert lands last is indistinguishable from the other.
#[derive(Default)]
pub struct EvalCache {
    baseline: Mutex<HashMap<&'static str, (u64, u32, u32)>>,
    opec: Mutex<HashMap<&'static str, Arc<OpecRun>>>,
    aces: Mutex<HashMap<(&'static str, AcesStrategy), Arc<AcesRun>>>,
}

fn join<T>(handle: thread::ScopedJoinHandle<'_, T>) -> T {
    handle.join().unwrap_or_else(|e| std::panic::resume_unwind(e))
}

impl EvalCache {
    /// A fresh, empty cache (benchmarks use private caches to measure
    /// cold paths).
    pub fn new() -> EvalCache {
        EvalCache::default()
    }

    /// The process-wide cache every CLI subcommand and bench harness
    /// shares.
    pub fn global() -> &'static EvalCache {
        static GLOBAL: OnceLock<EvalCache> = OnceLock::new();
        GLOBAL.get_or_init(EvalCache::default)
    }

    fn baseline(&self, app: &App) -> (u64, u32, u32) {
        if let Some(&v) = self.baseline.lock().unwrap().get(app.name) {
            return v;
        }
        let v = runs::run_baseline(app);
        self.baseline.lock().unwrap().insert(app.name, v);
        v
    }

    fn opec(&self, app: &App) -> Arc<OpecRun> {
        if let Some(v) = self.opec.lock().unwrap().get(app.name) {
            return Arc::clone(v);
        }
        let v = Arc::new(runs::run_opec(app));
        self.opec.lock().unwrap().insert(app.name, Arc::clone(&v));
        v
    }

    fn aces(&self, app: &App, strategy: AcesStrategy) -> Arc<AcesRun> {
        let key = (app.name, strategy);
        if let Some(v) = self.aces.lock().unwrap().get(&key) {
            return Arc::clone(v);
        }
        let v = Arc::new(runs::run_aces(app, strategy));
        self.aces.lock().unwrap().insert(key, Arc::clone(&v));
        v
    }

    /// [`runs::evaluate_app`] through the cache: misses run on scoped
    /// threads, hits are handed out as shared [`Arc`]s.
    pub fn evaluate_app(&self, app: &App, with_aces: bool) -> AppEval {
        thread::scope(|s| {
            let base = s.spawn(|| self.baseline(app));
            let opec = s.spawn(|| self.opec(app));
            let aces_handles: Vec<_> = if with_aces {
                ACES_STRATEGIES.iter().map(|&st| s.spawn(move || self.aces(app, st))).collect()
            } else {
                Vec::new()
            };
            let (base_cycles, base_flash, base_sram) = join(base);
            let opec = join(opec);
            let aces = aces_handles.into_iter().map(join).collect();
            AppEval {
                name: app.name,
                board: app.board,
                base_cycles,
                base_flash,
                base_sram,
                opec,
                aces,
            }
        })
    }

    /// [`runs::evaluate_many`] through the cache: one scoped thread per
    /// app, results in input order.
    pub fn evaluate_many(&self, apps: &[App], with_aces: bool) -> Vec<AppEval> {
        thread::scope(|s| {
            let handles: Vec<_> =
                apps.iter().map(|a| s.spawn(move || self.evaluate_app(a, with_aces))).collect();
            handles.into_iter().map(join).collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_shares_runs_between_passes() {
        let cache = EvalCache::new();
        let app = opec_apps::programs::pinlock::app();
        // First pass: no ACES (the all-apps shape).
        let first = cache.evaluate_app(&app, false);
        // Second pass: with ACES (the comparison shape) — the baseline
        // and OPEC units must be reused, not recomputed.
        let second = cache.evaluate_app(&app, true);
        assert!(Arc::ptr_eq(&first.opec, &second.opec), "OPEC run not shared");
        assert_eq!(first.base_cycles, second.base_cycles);
        assert_eq!(second.aces.len(), 3);
        // Third pass: everything is a hit and aliases the same runs.
        let third = cache.evaluate_app(&app, true);
        assert!(Arc::ptr_eq(&second.opec, &third.opec));
        for (a, b) in second.aces.iter().zip(&third.aces) {
            assert!(Arc::ptr_eq(a, b), "ACES run not shared");
        }
    }

    #[test]
    fn cached_results_match_sequential_uncached() {
        let cache = EvalCache::new();
        let app = opec_apps::programs::pinlock::app();
        let cached = cache.evaluate_app(&app, true);
        let plain = runs::evaluate_app_sequential(&app, true);
        assert_eq!(cached.base_cycles, plain.base_cycles);
        assert_eq!(cached.opec.cycles, plain.opec.cycles);
        assert_eq!(cached.opec.flash_used, plain.opec.flash_used);
        let cached_cycles: Vec<u64> = cached.aces.iter().map(|a| a.cycles).collect();
        let plain_cycles: Vec<u64> = plain.aces.iter().map(|a| a.cycles).collect();
        assert_eq!(cached_cycles, plain_cycles);
    }
}
