//! Eval-side configuration for the shared campaign engine.
//!
//! Every campaign subcommand (`attack-matrix`, `check`, `bench-vm`)
//! routes its per-job VM work through [`opec_campaign::run_campaign`];
//! this module owns the translation from CLI flags to
//! [`opec_campaign::CampaignOpts`] and the per-job resource bounds
//! ([`RunLimits`]) that the job closures thread into `Vm::run` /
//! `Vm::set_deadline`.

use std::time::Instant;

use opec_campaign::{CampaignOpts, CampaignReport, JobCtx, DEFAULT_TIMEOUT_SECS};
use opec_obs::Obs;

use crate::cli::CliArgs;
use crate::runs::FUEL;

/// Supervision knobs for one eval campaign, resolved from the CLI.
#[derive(Debug, Clone)]
pub struct EngineOpts {
    /// Guest instruction budget per job (`--fuel`).
    pub fuel: u64,
    /// Host wall-clock budget per job attempt (`--timeout`, seconds);
    /// `None` disarms the watchdog (`--timeout 0`).
    pub timeout_secs: Option<u64>,
    /// Checkpoint journal path (`--journal`); a rerun with the same
    /// path skips already-recorded jobs.
    pub journal: Option<String>,
    /// Worker-thread override (`--workers`); `None` means one per core.
    pub workers: Option<usize>,
}

impl Default for EngineOpts {
    fn default() -> EngineOpts {
        EngineOpts {
            fuel: FUEL,
            timeout_secs: Some(DEFAULT_TIMEOUT_SECS),
            journal: None,
            workers: None,
        }
    }
}

impl EngineOpts {
    /// Resolves the engine options from parsed CLI flags.
    pub fn from_args(args: &CliArgs) -> EngineOpts {
        let mut opts = EngineOpts::default();
        if let Some(fuel) = args.fuel {
            opts.fuel = fuel;
        }
        if let Some(secs) = args.timeout {
            opts.timeout_secs = if secs == 0 { None } else { Some(secs) };
        }
        opts.journal.clone_from(&args.journal);
        opts.workers = args.workers;
        opts
    }

    /// The [`CampaignOpts`] for campaign `name` under these knobs (the
    /// crash/fault-injection hooks come from the environment, via
    /// [`CampaignOpts::new`]).
    pub fn campaign_opts(&self, name: &str) -> CampaignOpts {
        let mut opts = CampaignOpts::new(name, self.fuel);
        opts.timeout_secs = self.timeout_secs;
        opts.journal.clone_from(&self.journal);
        if let Some(workers) = self.workers {
            opts.workers = workers;
        }
        opts
    }

    /// Like [`EngineOpts::campaign_opts`], but with the watchdog
    /// disarmed: lockstep campaigns time the same guest work twice, and
    /// wall-clock differs between exec modes, so a deadline there would
    /// manufacture divergence between otherwise-identical runs.
    pub fn lockstep_opts(&self, name: &str) -> CampaignOpts {
        let mut opts = self.campaign_opts(name);
        opts.timeout_secs = None;
        opts
    }
}

/// The resource bounds one job attempt must thread into its VM(s).
#[derive(Debug, Clone, Copy)]
pub struct RunLimits {
    /// Guest instruction budget for this attempt.
    pub fuel: u64,
    /// Wall-clock deadline to arm via `Vm::set_deadline`.
    pub deadline: Option<Instant>,
}

impl RunLimits {
    /// The historical unsupervised bounds: default fuel, no watchdog.
    /// Used by the legacy non-campaign entry points.
    pub fn unsupervised() -> RunLimits {
        RunLimits { fuel: FUEL, deadline: None }
    }

    /// The bounds for one campaign job attempt.
    pub fn from_ctx(ctx: &JobCtx) -> RunLimits {
        RunLimits { fuel: ctx.fuel, deadline: ctx.deadline }
    }

    /// Caps a call-site-specific fuel budget (e.g. the attack matrix's
    /// short-fuel cells) by the campaign-wide budget, so `--fuel N`
    /// bounds every run even where a smaller default applies.
    pub fn capped(&self, site_fuel: u64) -> u64 {
        site_fuel.min(self.fuel)
    }
}

/// Emits a campaign's supervision milestones into `obs` (post-run, on
/// the caller thread — `Obs` is not `Sync`) and prints the end-of-run
/// summary to stderr. Nothing about supervision is ever silent.
pub fn surface(report: &CampaignReport, obs: &Obs) {
    for event in report.events() {
        obs.emit(|| event);
    }
    eprintln!("[opec-eval] {}", report.summary());
}
