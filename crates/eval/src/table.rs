//! Minimal aligned text-table formatter for console reports.

/// A text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) -> &mut TextTable {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<w$}", c, w = width[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &width));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a percentage with two decimals.
pub fn pct(v: f64) -> String {
    format!("{v:.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["App", "Value"]);
        t.row(vec!["PinLock".into(), "1".into()]);
        t.row(vec!["A".into(), "22222".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("App      Value"));
        assert!(lines[2].starts_with("PinLock  1"));
        assert!(lines[3].starts_with("A        22222"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = TextTable::new(&["A", "B"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(pct(5.349), "5.35%");
    }
}
