//! The `report` subcommand: per-operation overhead breakdown from the
//! observability stream.
//!
//! Every application runs under OPEC on *both* protection backends
//! (ARMv7-M MPU and RISC-V PMP; `--backend` narrows to one) — and the
//! five comparison applications additionally under ACES — with an
//! [`opec_obs::Recorder`] attached, so switch counts, switch-latency
//! histograms, protection-unit virtualization traffic, core-peripheral
//! emulations, and instruction attribution all come out of the *same*
//! event stream for every system and backend. That is the
//! overhead-breakdown complement to Figure 9 / Table 2: those report
//! end-to-end cycle ratios, this reports where the cycles went,
//! operation by operation — and, per backend, what one operation
//! switch costs.
//!
//! Collection fans cells across scoped threads exactly like
//! [`crate::runs`]; the `Rc`-based [`Obs`] handle never crosses a
//! thread (each cell builds, runs, and drains its recorder locally and
//! sends plain data back).

use std::cell::RefCell;
use std::rc::Rc;
use std::thread;

use opec_aces::{build_aces_image, AcesRuntime, AcesStrategy};
use opec_apps::programs::{aces_comparison_apps, all_apps};
use opec_apps::App;
use opec_armv7m::Machine;
use opec_core::{compile, OpecMonitor};
use opec_obs::{chrome_trace, metrics_json, Metrics, Obs, Recorder, Stamped};
use opec_vm::{RunOutcome, Vm};

use crate::backend::BackendSel;
use crate::cli::CliArgs;
use crate::runs::FUEL;
use crate::table::TextTable;

/// The ACES strategy the obs report instruments (the paper's default
/// filename-based compartmentalisation, as in the attack matrix).
const OBS_ACES_STRATEGY: AcesStrategy = AcesStrategy::Filename;

/// One instrumented run: the drained recorder plus run outcome.
pub struct ObsRun {
    /// Application name.
    pub app: &'static str,
    /// `"opec"` or `"aces"`.
    pub system: &'static str,
    /// Protection backend the run executed on (`"armv7m"` or
    /// `"rv32-pmp"`; ACES only exists on `"armv7m"`).
    pub backend: &'static str,
    /// Cycles to the workload stop point.
    pub cycles: u64,
    /// The raw event stream (ring contents, oldest first).
    pub events: Vec<Stamped>,
    /// Online aggregates over the *full* stream (drops never affect
    /// these; only the ring sheds).
    pub metrics: Metrics,
    /// Events offered to the ring.
    pub events_total: u64,
    /// Events the ring shed. Nonzero means the raw stream (and the
    /// Chrome trace cut from it) is incomplete; grow `--ring`.
    pub dropped: u64,
}

/// Everything the `report` subcommand collected.
pub struct ObsReport {
    /// Successful runs, apps in table order, OPEC before ACES.
    pub runs: Vec<ObsRun>,
    /// Cells that did not run: `(cell label, reason)`.
    pub skipped: Vec<(String, String)>,
}

impl ObsReport {
    /// Total events shed across all runs.
    pub fn total_dropped(&self) -> u64 {
        self.runs.iter().map(|r| r.dropped).sum()
    }
}

fn recorder(args: &CliArgs) -> Rc<RefCell<Recorder>> {
    let rec = match args.ring {
        Some(cap) => Recorder::with_capacity(cap),
        None => Recorder::new(),
    };
    Rc::new(RefCell::new(if args.funcs { rec.with_funcs() } else { rec }))
}

fn drain(
    app: &App,
    system: &'static str,
    backend: &'static str,
    cycles: u64,
    rec: &Rc<RefCell<Recorder>>,
) -> ObsRun {
    let rec = rec.borrow();
    ObsRun {
        app: app.name,
        system,
        backend,
        cycles,
        events: rec.ring.to_vec(),
        metrics: rec.metrics.clone(),
        events_total: rec.ring.total(),
        dropped: rec.ring.dropped(),
    }
}

fn run_opec_obs(app: &App, args: &CliArgs, sel: BackendSel) -> Result<ObsRun, String> {
    let (module, specs) = (app.build)();
    let out = compile(module, app.board, &specs).map_err(|e| format!("compile: {e}"))?;
    let backend = sel.dyn_backend();
    let mut machine = backend.make_machine(app.board);
    (app.setup)(&mut machine);
    let rec = recorder(args);
    let mut vm = Vm::builder(machine, out.image)
        .supervisor(OpecMonitor::with_backend(out.policy, backend))
        .obs(Obs::single(rec.clone()))
        .build()
        .map_err(|e| format!("image: {e}"))?;
    let run = vm.run(FUEL).map_err(|e| format!("run: {e}"))?;
    if !matches!(run, RunOutcome::Halted { .. }) {
        return Err(format!("unexpected outcome {run:?}"));
    }
    (app.check)(&mut vm.machine).map_err(|e| format!("check: {e}"))?;
    Ok(drain(app, "opec", sel.name(), run.cycles(), &rec))
}

fn run_aces_obs(app: &App, args: &CliArgs) -> Result<ObsRun, String> {
    let (module, _) = (app.build)();
    let out = build_aces_image(module, app.board, OBS_ACES_STRATEGY)
        .map_err(|e| format!("ACES build: {e}"))?;
    let main_comp = out.comps.of(out.image.entry);
    let rt = AcesRuntime::new(
        &out.image.module,
        out.comps,
        out.regions,
        app.board,
        out.stack,
        main_comp,
    );
    let mut machine = Machine::new(app.board);
    (app.setup)(&mut machine);
    let rec = recorder(args);
    let mut vm = Vm::builder(machine, out.image)
        .supervisor(rt)
        .obs(Obs::single(rec.clone()))
        .build()
        .map_err(|e| format!("image: {e}"))?;
    let run = vm.run(FUEL).map_err(|e| format!("run: {e}"))?;
    if !matches!(run, RunOutcome::Halted { .. }) {
        return Err(format!("unexpected outcome {run:?}"));
    }
    (app.check)(&mut vm.machine).map_err(|e| format!("check: {e}"))?;
    Ok(drain(app, "aces", "armv7m", run.cycles(), &rec))
}

/// The backends the report instruments: both when `--backend` is
/// absent (the per-backend switch-cost comparison is the point of the
/// report), just the named one otherwise.
fn selected_backends(args: &CliArgs) -> Vec<BackendSel> {
    match args.backend {
        None => BackendSel::ALL.to_vec(),
        Some(_) => vec![BackendSel::from_args(args).unwrap_or_default()],
    }
}

/// Runs every selected cell (apps × backends × {OPEC, ACES}) on scoped
/// threads and collects the drained recorders, joining in table order.
pub fn collect(args: &CliArgs) -> ObsReport {
    let apps: Vec<App> = all_apps().into_iter().filter(|a| args.app_matches(a.name)).collect();
    let aces_names: Vec<&'static str> = aces_comparison_apps().iter().map(|a| a.name).collect();
    let backends = selected_backends(args);
    let aces_available = backends.contains(&BackendSel::Armv7m);
    let mut runs = Vec::new();
    let mut skipped = Vec::new();
    thread::scope(|s| {
        let handles: Vec<_> = apps
            .iter()
            .map(|app| {
                let with_aces = aces_names.contains(&app.name) && aces_available;
                let opec: Vec<_> = backends
                    .iter()
                    .map(|&sel| (sel, s.spawn(move || run_opec_obs(app, args, sel))))
                    .collect();
                let aces = with_aces.then(|| s.spawn(move || run_aces_obs(app, args)));
                (app.name, aces_names.contains(&app.name), opec, aces)
            })
            .collect();
        for (name, is_aces_app, opec, aces) in handles {
            for (sel, h) in opec {
                match h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)) {
                    Ok(r) => runs.push(r),
                    Err(e) => skipped.push((format!("{name}/opec/{}", sel.name()), e)),
                }
            }
            match aces {
                Some(h) => match h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)) {
                    Ok(r) => runs.push(r),
                    Err(e) => skipped.push((format!("{name}/aces"), e)),
                },
                None => skipped.push((
                    format!("{name}/aces"),
                    if is_aces_app {
                        "ACES targets the ARMv7-M MPU (not instrumented on rv32-pmp)".to_string()
                    } else {
                        "not an ACES comparison app (Table 2 runs five of the seven)".to_string()
                    },
                )),
            }
        }
    });
    ObsReport { runs, skipped }
}

/// Renders the per-operation overhead breakdown as a text table.
pub fn render(report: &ObsReport) -> String {
    let mut t = TextTable::new(&[
        "App",
        "System",
        "Backend",
        "Op",
        "Enters",
        "Switch cy",
        "Avg enter cy",
        "Virt hit/evict/miss",
        "Emul L/S",
        "Insts",
        "Funcs",
    ]);
    for r in &report.runs {
        for (op, m) in r.metrics.ops() {
            let avg_enter = if m.enter_cycles.count() > 0 {
                format!("{:.0}", m.enter_cycles.mean())
            } else {
                "-".to_string()
            };
            t.row(vec![
                r.app.to_string(),
                r.system.to_string(),
                r.backend.to_string(),
                format!("op{op}"),
                m.enters.to_string(),
                m.switch_cycles().to_string(),
                avg_enter,
                format!("{}/{}/{}", m.virt_hits, m.virt_evictions, m.virt_misses),
                format!("{}/{}", m.emulated_loads, m.emulated_stores),
                m.insts_retired.to_string(),
                m.func_enters.to_string(),
            ]);
        }
        t.row(vec![
            r.app.to_string(),
            r.system.to_string(),
            r.backend.to_string(),
            "total".to_string(),
            r.metrics.total_switches().to_string(),
            r.metrics.total_switch_cycles().to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            r.metrics.total_insts.to_string(),
            format!("{} cy", r.cycles),
        ]);
    }
    let mut out = String::from("Per-operation overhead breakdown (observability stream)\n");
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(&render_switch_costs(report));
    for r in &report.runs {
        if r.dropped > 0 {
            out.push_str(&format!(
                "WARNING: {}/{} shed {} of {} events — raise --ring\n",
                r.app, r.system, r.dropped, r.events_total
            ));
        }
    }
    for (cell, reason) in &report.skipped {
        out.push_str(&format!("skipped {cell}: {reason}\n"));
    }
    out
}

/// The per-backend switch-cost summary: OPEC runs only, aggregated
/// over every collected app — the same obs event stream the breakdown
/// table is cut from, folded to what one operation switch costs on
/// each protection unit (cycles, and region/entry write traffic).
fn render_switch_costs(report: &ObsReport) -> String {
    let mut t = TextTable::new(&[
        "Backend",
        "OPEC runs",
        "Switches",
        "Switch cy",
        "Avg cy/switch",
        "Unit reloads+writes",
        "Per switch",
    ]);
    for sel in BackendSel::ALL {
        let runs: Vec<_> =
            report.runs.iter().filter(|r| r.system == "opec" && r.backend == sel.name()).collect();
        if runs.is_empty() {
            continue;
        }
        let switches: u64 = runs.iter().map(|r| r.metrics.total_switches()).sum();
        let cycles: u64 = runs.iter().map(|r| r.metrics.total_switch_cycles()).sum();
        // A switch reloads the whole unit (one MpuLoad/PmpLoad event);
        // virtualization faults additionally rewrite single slots.
        let writes: u64 = runs
            .iter()
            .map(|r| {
                r.metrics.mpu_loads
                    + r.metrics.mpu_region_writes
                    + r.metrics.pmp_loads
                    + r.metrics.pmp_entry_writes
            })
            .sum();
        let per = |n: u64| {
            if switches > 0 {
                format!("{:.1}", n as f64 / switches as f64)
            } else {
                "-".to_string()
            }
        };
        t.row(vec![
            sel.name().to_string(),
            runs.len().to_string(),
            switches.to_string(),
            cycles.to_string(),
            per(cycles),
            writes.to_string(),
            per(writes),
        ]);
    }
    let mut out = String::from("Per-backend operation-switch cost (OPEC, same obs stream)\n");
    out.push_str(&t.render());
    out
}

/// Renders the whole report as one JSON document (`--obs-json`).
pub fn to_json(report: &ObsReport) -> String {
    let mut runs = Vec::new();
    for r in &report.runs {
        runs.push(format!(
            "{{\"app\":\"{}\",\"system\":\"{}\",\"backend\":\"{}\",\"cycles\":{},\"events_total\":{},\"events_dropped\":{},\"metrics\":{}}}",
            r.app,
            r.system,
            r.backend,
            r.cycles,
            r.events_total,
            r.dropped,
            metrics_json(&r.metrics),
        ));
    }
    let skipped: Vec<String> = report
        .skipped
        .iter()
        .map(|(cell, reason)| {
            format!(
                "{{\"cell\":\"{}\",\"reason\":\"{}\"}}",
                cell,
                reason.replace('\\', "\\\\").replace('"', "\\\"")
            )
        })
        .collect();
    format!("{{\"runs\":[{}],\"skipped\":[{}]}}\n", runs.join(","), skipped.join(","))
}

/// The Chrome trace for the first collected run (`--trace`); filter
/// with `--apps` to pick the app. `None` when nothing ran.
pub fn first_chrome_trace(report: &ObsReport) -> Option<(String, String)> {
    let r = report.runs.first()?;
    let label = format!("{}/{}/{}", r.app, r.system, r.backend);
    Some((label.clone(), chrome_trace(&r.events, &label)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pinlock_args() -> CliArgs {
        CliArgs { apps: Some("pinlock".to_string()), ..CliArgs::default() }
    }

    #[test]
    fn pinlock_breakdown_under_both_systems() {
        let report = collect(&pinlock_args());
        assert_eq!(report.runs.len(), 3, "OPEC on both backends + ACES");
        assert_eq!(report.total_dropped(), 0, "default ring must not shed");
        let opec = &report.runs[0];
        assert_eq!((opec.system, opec.backend), ("opec", "armv7m"));
        assert!(opec.metrics.total_switches() > 0);
        assert!(opec.metrics.total_switch_cycles() > 0);
        assert!(opec.metrics.mpu_loads > 0, "every op switch reloads the MPU");
        assert!(!opec.events.is_empty());
        let pmp = &report.runs[1];
        assert_eq!((pmp.system, pmp.backend), ("opec", "rv32-pmp"));
        assert!(pmp.metrics.total_switches() > 0);
        assert!(pmp.metrics.pmp_loads > 0, "every op switch reloads the PMP");
        assert_eq!(
            pmp.metrics.mpu_loads + pmp.metrics.mpu_region_writes,
            0,
            "no MPU traffic on the PMP backend"
        );
        let aces = &report.runs[2];
        assert_eq!(aces.system, "aces");
        assert!(aces.metrics.total_switches() > 0);
        // All systems' switch costs come from the same event stream,
        // so they are directly comparable — including across backends.
        let text = render(&report);
        assert!(text.contains("PinLock"));
        assert!(text.contains("opec"));
        assert!(text.contains("aces"));
        assert!(text.contains("Per-backend operation-switch cost"), "{text}");
        assert!(text.contains("rv32-pmp"), "{text}");
        let json = to_json(&report);
        assert!(json.contains("\"system\":\"opec\""));
        assert!(json.contains("\"system\":\"aces\""));
        assert!(json.contains("\"backend\":\"rv32-pmp\""));
        let (label, trace) = first_chrome_trace(&report).unwrap();
        assert_eq!(label, "PinLock/opec/armv7m");
        assert!(trace.contains("\"traceEvents\""));
    }

    #[test]
    fn backend_flag_narrows_the_report_to_one_backend() {
        let args = CliArgs { backend: Some("rv32-pmp".to_string()), ..pinlock_args() };
        let report = collect(&args);
        assert_eq!(report.runs.len(), 1, "one OPEC run, ACES skipped");
        assert_eq!(report.runs[0].backend, "rv32-pmp");
        assert!(report
            .skipped
            .iter()
            .any(|(cell, reason)| cell == "PinLock/aces" && reason.contains("ARMv7-M")));
    }
}
