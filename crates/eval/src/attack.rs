//! The attack matrix (`opec-eval attack-matrix`).
//!
//! Runs every evaluation application under seeded attack campaigns
//! (crate `opec-inject`) in three configurations — OPEC, ACES, and the
//! unprotected baseline — and scores each `(app, config, attack, seed)`
//! cell with a containment [`Verdict`]. The acceptance bar mirrors the
//! paper's §7 security argument: OPEC contains every applicable attack
//! class with a typed trap, the baseline lets every data and peripheral
//! attack through, and ACES lands in between (containment depends on
//! which compartment the compromised code sits in).
//!
//! Targets are resolved *per configuration* from the artifacts the
//! builds actually produce (policy, image layout, installed devices),
//! so the same logical attack hits a meaningful address in each world.
//! Campaign trigger steps come from `(seed, app, attack class)` alone,
//! so re-running the matrix with the same seeds is bit-identical —
//! that is what lets CI fail on any OPEC escape.

use std::fmt::Write as _;
use std::panic::{self, AssertUnwindSafe};
use std::time::Instant;

use opec_aces::{build_aces_image, AcesCompileOutput, AcesRuntime, AcesStrategy};
use opec_apps::programs::{aces_comparison_apps, all_apps};
use opec_apps::App;
use opec_armv7m::{Machine, MemRegion};
use opec_campaign::json::{self, Value};
use opec_campaign::{run_campaign, CampaignOpts, CampaignReport, Job, JobOutcome, JobResult};
use opec_core::{compile, CompileOutput, OpecMonitor};
use opec_inject::{score, Attack, AttackKind, CampaignInjector, CampaignResult, Verdict};
use opec_vm::{
    link_baseline, InjectAction, LoadedImage, NullSupervisor, OpId, Supervisor, Vm, VmError,
    VmSnapshot,
};

use crate::backend::BackendSel;
use crate::engine::{EngineOpts, RunLimits};
use crate::runs::FUEL;
use crate::table::TextTable;

/// Fuel for campaign runs whose verdict is decided at (or shortly
/// after) the fire moment: hostile accesses are adjudicated on the
/// spot, and an armed switch corruption resolves at the next
/// operation/compartment call. Campaigns trigger within the first 2048
/// steps, so the tail of the run — possibly corrupted into a loop by
/// the attack itself — is not worth simulating.
const SHORT_FUEL: u64 = 300_000;

/// The ACES strategy the matrix attacks (the paper's default
/// filename-based compartmentalisation).
const ACES_MATRIX_STRATEGY: AcesStrategy = AcesStrategy::Filename;

/// MPU_CTRL, the register an in-application attacker writes to turn
/// protection off.
const MPU_CTRL: u32 = 0xE000_ED94;

/// Core-peripheral registers worth attacking, in preference order.
const PPB_TARGETS: [u32; 3] = [0xE000_E010, 0xE000_E100, 0xE000_ED08];

/// The isolation configuration of one matrix column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Config {
    /// Full OPEC: operations + privileged monitor.
    Opec,
    /// ACES compartments (filename strategy).
    Aces,
    /// Vanilla image, no MPU policy at all.
    Baseline,
}

impl Config {
    /// Display / JSON label.
    pub fn label(self) -> &'static str {
        match self {
            Config::Opec => "opec",
            Config::Aces => "aces",
            Config::Baseline => "baseline",
        }
    }

    /// Matrix column order.
    pub const ALL: [Config; 3] = [Config::Opec, Config::Aces, Config::Baseline];
}

/// One matrix cell: the verdicts of every seed for
/// `(app, config, attack)`.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Application name.
    pub app: &'static str,
    /// Isolation configuration.
    pub config: Config,
    /// Attack class.
    pub kind: AttackKind,
    /// `(seed, verdict)` per campaign, in seed order.
    pub verdicts: Vec<(u64, Verdict)>,
}

impl Cell {
    /// Aggregate display label: the common label when every seed agrees,
    /// otherwise per-label counts (`C:6 E:2`).
    pub fn agg_label(&self) -> String {
        let first = match self.verdicts.first() {
            Some((_, v)) => v.label(),
            None => return "n/a".into(),
        };
        if self.verdicts.iter().all(|(_, v)| v.label() == first) {
            return first.to_string();
        }
        let mut parts = Vec::new();
        for label in ["CONTAINED", "ESCAPED", "CRASHED", "UNDECIDED", "n/a"] {
            let n = self.verdicts.iter().filter(|(_, v)| v.label() == label).count();
            if n > 0 {
                parts.push(format!("{}:{n}", &label[..1]));
            }
        }
        parts.join(" ")
    }
}

/// The full campaign outcome.
#[derive(Debug, Clone)]
pub struct AttackMatrix {
    /// The protection backend the matrix ran against.
    pub backend: &'static str,
    /// Seeds each cell was run under (`0..seeds`).
    pub seeds: u64,
    /// All cells, in app → attack → config order.
    pub cells: Vec<Cell>,
}

/// Runs the attack matrix over all seven applications with default
/// supervision (no journal).
pub fn attack_matrix(seeds: u64) -> AttackMatrix {
    attack_matrix_for(&all_apps(), seeds)
}

/// Runs the attack matrix over `apps` with seeds `0..seeds` under
/// default supervision. Kept for the legacy call sites; the engine
/// cannot fail without a journal configured.
pub fn attack_matrix_for(apps: &[App], seeds: u64) -> AttackMatrix {
    attack_matrix_campaign(apps, seeds, &EngineOpts::default(), BackendSel::Armv7m)
        .expect("attack campaign")
        .0
}

/// Runs the attack matrix as a supervised campaign: one job per
/// application (each job's verdicts for every `attack × config × seed`
/// cell are one journal payload), scheduled by the shared engine with
/// fuel budgets, a wall-clock watchdog, panic containment, and
/// checkpoint/resume via `opts.journal`.
pub fn attack_matrix_campaign(
    apps: &[App],
    seeds: u64,
    opts: &EngineOpts,
    sel: BackendSel,
) -> Result<(AttackMatrix, CampaignReport), String> {
    attack_matrix_with(apps, seeds, &opts.campaign_opts("attack-matrix"), sel)
}

/// [`attack_matrix_campaign`] under explicit campaign options (the
/// test entry point: fault-injection hooks set directly, no env).
pub fn attack_matrix_with(
    apps: &[App],
    seeds: u64,
    opts: &CampaignOpts,
    sel: BackendSel,
) -> Result<(AttackMatrix, CampaignReport), String> {
    let seg = match sel {
        BackendSel::Armv7m => "",
        BackendSel::Rv32Pmp => "rv32-pmp/",
    };
    let aces_apps: Vec<&'static str> = aces_comparison_apps().iter().map(|a| a.name).collect();
    let meta: Vec<(&App, bool)> =
        apps.iter().map(|app| (app, aces_apps.contains(&app.name) && sel.has_aces())).collect();
    let jobs: Vec<Job<'_>> = meta
        .iter()
        .map(|&(app, with_aces)| {
            // The id carries the seed count: a resume under different
            // `--seeds` must not splice cells from a different-shaped
            // run into this one. The backend segment likewise keeps the
            // two backends' journals disjoint.
            let id = format!("attack/{seg}app/{}/seeds/{seeds}", job_slug(app.name));
            let repro = format!(
                "{{\"app\":\"{}\",\"seeds\":{seeds},\"aces\":{with_aces},\"backend\":\"{}\"}}",
                json::escape(app.name),
                sel.name()
            );
            Job::new(id, repro, move |ctx| {
                let limits = RunLimits::from_ctx(ctx);
                JobResult::Done(cells_json(&app_cells(app, seeds, with_aces, &limits, sel)))
            })
        })
        .collect();
    let report = run_campaign(opts, &jobs)?;

    // Aggregate from the records alone — fresh, resumed, or panicked,
    // the same payload bytes produce the same cells, which is what
    // makes a kill-and-resume matrix byte-identical to an
    // uninterrupted one.
    let mut cells = Vec::new();
    for (rec, &(app, with_aces)) in report.records.iter().zip(&meta) {
        match rec.outcome {
            JobOutcome::Panicked => {
                cells.extend(crashed_cells(app.name, seeds, with_aces, &rec.payload));
            }
            _ => cells.extend(cells_from(app.name, &rec.payload)?),
        }
    }
    Ok((AttackMatrix { backend: sel.name(), seeds, cells }, report))
}

/// Job-id fragment for an application name (journal id charset only).
fn job_slug(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || "._-".contains(c) { c } else { '-' })
        .collect()
}

/// The full `attack × config × seed` grid scored [`Verdict::Crashed`]:
/// the cells of an application whose job panicked on both attempts.
/// The grid has the same shape [`app_cells`] would have produced, so
/// rendering stays aligned.
fn crashed_cells(app: &'static str, seeds: u64, with_aces: bool, payload: &str) -> Vec<Cell> {
    let detail = json::parse(payload)
        .ok()
        .and_then(|v| v.get("panic").and_then(Value::as_str).map(str::to_string))
        .map_or_else(|| "host panic (lost payload)".to_string(), |m| format!("host panic: {m}"));
    let mut cells = Vec::new();
    for kind in AttackKind::ALL {
        for config in Config::ALL {
            let verdicts = if config == Config::Aces && !with_aces {
                Vec::new()
            } else {
                (0..seeds).map(|s| (s, Verdict::Crashed { detail: detail.clone() })).collect()
            };
            cells.push(Cell { app, config, kind, verdicts });
        }
    }
    cells
}

/// Per-application build artifacts, produced once and cloned into each
/// campaign run. A failed build poisons every cell of its column with
/// [`Verdict::Crashed`] — a malformed image must surface, not panic.
struct Artifacts {
    devices: Vec<Device>,
    opec: Result<CompileOutput, String>,
    aces: Option<Result<AcesCompileOutput, String>>,
    baseline: Result<LoadedImage, String>,
}

/// Converts a possibly-panicking build into a `Result`.
fn caught<T>(what: &str, r: std::thread::Result<Result<T, String>>) -> Result<T, String> {
    match r {
        Ok(inner) => inner,
        Err(payload) => Err(format!("{what}: {}", panic_message(&payload))),
    }
}

fn build_artifacts(app: &App, with_aces: bool) -> Artifacts {
    let devices = {
        let mut m = Machine::new(app.board);
        (app.setup)(&mut m);
        m.device_regions()
    };
    let opec = caught(
        "OPEC build",
        panic::catch_unwind(AssertUnwindSafe(|| {
            let (module, specs) = (app.build)();
            compile(module, app.board, &specs).map_err(|e| format!("OPEC compile: {e}"))
        })),
    );
    let aces = with_aces.then(|| {
        caught(
            "ACES build",
            panic::catch_unwind(AssertUnwindSafe(|| {
                let (module, _) = (app.build)();
                build_aces_image(module, app.board, ACES_MATRIX_STRATEGY)
                    .map_err(|e| format!("ACES build: {e}"))
            })),
        )
    });
    let baseline = caught(
        "baseline link",
        panic::catch_unwind(AssertUnwindSafe(|| {
            let (module, _) = (app.build)();
            link_baseline(module, app.board).map_err(|e| format!("baseline link: {e}"))
        })),
    );
    Artifacts { devices, opec, aces, baseline }
}

/// All cells of one application: every attack class under every
/// configuration. One VM per configuration is built, loaded and booted
/// exactly once, then reset per campaign from its post-boot snapshot —
/// the fork-server pattern that makes the matrix cheap.
fn app_cells(
    app: &App,
    seeds: u64,
    with_aces: bool,
    limits: &RunLimits,
    sel: BackendSel,
) -> Vec<Cell> {
    let art = build_artifacts(app, with_aces);
    let mut opec = caught_runner("OPEC init", || prepare_opec(app, &art, sel));
    let mut aces = with_aces.then(|| caught_runner("ACES init", || prepare_aces(app, &art)));
    let mut baseline = caught_runner("baseline init", || prepare_baseline(app, &art, sel));
    let mut cells = Vec::new();
    for kind in AttackKind::ALL {
        for config in Config::ALL {
            if config == Config::Aces && !with_aces {
                cells.push(Cell { app: app.name, config, kind, verdicts: Vec::new() });
                continue;
            }
            // Never panic out of a cell: host panics score as
            // [`Verdict::Crashed`], which the matrix (and CI) treat as
            // a robustness bug. A panic mid-campaign cannot poison the
            // next one — every campaign starts from the snapshot.
            let verdicts = (0..seeds)
                .map(|seed| {
                    let outcome = panic::catch_unwind(AssertUnwindSafe(|| match config {
                        Config::Opec => run_opec_cell(app, &art, &mut opec, kind, seed, limits),
                        Config::Aces => {
                            let runner = aces.as_mut().expect("ACES requested");
                            run_aces_cell(app, &art, runner, kind, seed, limits)
                        }
                        Config::Baseline => {
                            run_baseline_cell(app, &art, &mut baseline, kind, seed, limits)
                        }
                    }));
                    let verdict = match outcome {
                        Ok(Ok(verdict)) => verdict,
                        Ok(Err(e)) => Verdict::Crashed { detail: e },
                        Err(payload) => Verdict::Crashed { detail: panic_message(&payload) },
                    };
                    (seed, verdict)
                })
                .collect();
            cells.push(Cell { app: app.name, config, kind, verdicts });
        }
    }
    cells
}

/// One reusable VM for an `(app, config)` column: built and booted
/// once, then reset per campaign from a copy-on-write snapshot instead
/// of being reconstructed from scratch for each `attack × seed` run.
enum Runner<S: Supervisor + Clone> {
    /// Boot succeeded; each campaign restores `snap` and resumes.
    /// Boxed: a VM plus its snapshot dwarf the other variant.
    Ready {
        /// The booted VM.
        vm: Box<Vm<S>>,
        /// Its post-boot state (machine, supervisor, frames).
        snap: Box<VmSnapshot<S>>,
    },
    /// The VM aborted during boot. Boot is deterministic, so every
    /// campaign of the column would have ended the same way before the
    /// injector could fire; the stored result is replayed per cell.
    BootFailed(CampaignResult),
}

impl<S: Supervisor + Clone> Runner<S> {
    /// Boots `vm` once and snapshots the post-boot state.
    fn new(mut vm: Vm<S>) -> Result<Self, String> {
        match vm.boot() {
            Ok(()) => {}
            Err(VmError::Aborted { trap, .. }) => {
                return Ok(Runner::BootFailed(CampaignResult::Aborted(trap)));
            }
            Err(other) => {
                return Ok(Runner::BootFailed(CampaignResult::OtherError(other.to_string())));
            }
        }
        let snap = vm.snapshot().map_err(|e| format!("snapshot: {e}"))?;
        Ok(Runner::Ready { vm: Box::new(vm), snap: Box::new(snap) })
    }

    /// Restores the post-boot snapshot, installs the campaign's
    /// injector, arms the watchdog, and drives one run to a verdict.
    fn campaign(
        &mut self,
        attack: Attack,
        seed: u64,
        app: &'static str,
        kind: AttackKind,
        fuel: u64,
        deadline: Option<Instant>,
    ) -> Verdict {
        match self {
            Runner::BootFailed(result) => score(kind, &[], result),
            Runner::Ready { vm, snap } => {
                vm.restore(snap);
                vm.set_deadline(deadline);
                vm.set_injector(Some(Box::new(CampaignInjector::new(attack, seed, app))));
                debug_assert_eq!(vm.boots(), 1, "per-app init must run exactly once");
                let result = match vm.resume(fuel) {
                    Ok(_) => CampaignResult::Completed,
                    Err(VmError::Aborted { trap, .. }) => CampaignResult::Aborted(trap),
                    // Budget stops are supervision outcomes, not host
                    // errors: the scorer turns them into n/a or
                    // UNDECIDED, never CRASHED.
                    Err(VmError::OutOfFuel) => CampaignResult::FuelExhausted,
                    Err(VmError::TimedOut) => CampaignResult::TimedOut,
                    Err(other) => CampaignResult::OtherError(other.to_string()),
                };
                vm.set_deadline(None);
                score(kind, &vm.inject_log, &result)
            }
        }
    }

    /// Reads memory of the just-driven VM (`None` after a boot failure).
    fn peek(&mut self, addr: u32, size: u32) -> Option<u32> {
        match self {
            Runner::Ready { vm, .. } => vm.machine.peek(addr, size),
            Runner::BootFailed(_) => None,
        }
    }
}

/// Converts a possibly-panicking VM construction into a `Result`.
fn caught_runner<S: Supervisor + Clone>(
    what: &str,
    f: impl FnOnce() -> Result<Runner<S>, String>,
) -> Result<Runner<S>, String> {
    caught(what, panic::catch_unwind(AssertUnwindSafe(f)))
}

fn prepare_opec(
    app: &App,
    art: &Artifacts,
    sel: BackendSel,
) -> Result<Runner<OpecMonitor>, String> {
    let out = art.opec.as_ref().map_err(Clone::clone)?;
    let backend = sel.dyn_backend();
    let mut machine = backend.make_machine(app.board);
    (app.setup)(&mut machine);
    let vm = Vm::builder(machine, out.image.clone())
        .supervisor(OpecMonitor::with_backend(out.policy.clone(), backend))
        .build()
        .map_err(|e| format!("OPEC image: {e}"))?;
    Runner::new(vm)
}

fn prepare_aces(app: &App, art: &Artifacts) -> Result<Runner<AcesRuntime>, String> {
    let out = art.aces.as_ref().expect("ACES requested").as_ref().map_err(Clone::clone)?;
    let main_comp = out.comps.of(out.image.entry);
    let rt = AcesRuntime::new(
        &out.image.module,
        out.comps.clone(),
        out.regions.clone(),
        app.board,
        out.stack,
        main_comp,
    );
    let mut machine = Machine::new(app.board);
    (app.setup)(&mut machine);
    let vm = Vm::builder(machine, out.image.clone())
        .supervisor(rt)
        .build()
        .map_err(|e| format!("ACES image: {e}"))?;
    Runner::new(vm)
}

fn prepare_baseline(
    app: &App,
    art: &Artifacts,
    sel: BackendSel,
) -> Result<Runner<NullSupervisor>, String> {
    let image = art.baseline.as_ref().map_err(Clone::clone)?;
    let mut machine = sel.dyn_backend().make_machine(app.board);
    (app.setup)(&mut machine);
    let vm =
        Vm::builder(machine, image.clone()).build().map_err(|e| format!("baseline image: {e}"))?;
    Runner::new(vm)
}

type Device = (String, MemRegion);

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("host panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("host panic: {s}")
    } else {
        "host panic (non-string payload)".into()
    }
}

fn run_opec_cell(
    app: &App,
    art: &Artifacts,
    runner: &mut Result<Runner<OpecMonitor>, String>,
    kind: AttackKind,
    seed: u64,
    limits: &RunLimits,
) -> Result<Verdict, String> {
    let out = art.opec.as_ref().map_err(Clone::clone)?;
    let Some(attack) = opec_attack(kind, out, &art.devices) else {
        return Ok(Verdict::NotApplicable);
    };
    let runner = runner.as_mut().map_err(|e| e.clone())?;
    // A bit flip's verdict shows up at the faulted operation's next
    // sync-out, and an armed switch corruption at the next operation
    // entry — either may be anywhere in the workload, so those get the
    // full budget. Everything else resolves at the fire moment.
    let fuel = limits.capped(match kind {
        AttackKind::ShadowBitFlip | AttackKind::SvcCorrupt => FUEL,
        _ => SHORT_FUEL,
    });
    let mut verdict = runner.campaign(attack.clone(), seed, app.name, kind, fuel, limits.deadline);
    // A flipped shadow bit the operation legitimately overwrote before
    // its next sync-out was masked, not contained and not escaped — the
    // standard fault-injection "benign fault" outcome.
    if kind == AttackKind::ShadowBitFlip && matches!(verdict, Verdict::Escaped { .. }) {
        if let InjectAction::FlipBit { addr, bit } = attack.action {
            let still_set = runner.peek(addr, 4).is_some_and(|v| (v >> bit) & 1 == 1);
            if !still_set {
                verdict = Verdict::NotApplicable;
            }
        }
    }
    Ok(verdict)
}

fn run_aces_cell(
    app: &App,
    art: &Artifacts,
    runner: &mut Result<Runner<AcesRuntime>, String>,
    kind: AttackKind,
    seed: u64,
    limits: &RunLimits,
) -> Result<Verdict, String> {
    let out = art.aces.as_ref().expect("ACES requested").as_ref().map_err(Clone::clone)?;
    let Some(attack) = aces_attack(kind, &out.image, out.stack, &art.devices) else {
        return Ok(Verdict::NotApplicable);
    };
    let runner = runner.as_mut().map_err(|e| e.clone())?;
    let fuel = limits.capped(if kind == AttackKind::SvcCorrupt { FUEL } else { SHORT_FUEL });
    Ok(runner.campaign(attack, seed, app.name, kind, fuel, limits.deadline))
}

fn run_baseline_cell(
    app: &App,
    art: &Artifacts,
    runner: &mut Result<Runner<NullSupervisor>, String>,
    kind: AttackKind,
    seed: u64,
    limits: &RunLimits,
) -> Result<Verdict, String> {
    let image = art.baseline.as_ref().map_err(Clone::clone)?;
    let Some(attack) = baseline_attack(kind, image, &art.devices) else {
        return Ok(Verdict::NotApplicable);
    };
    let runner = runner.as_mut().map_err(|e| e.clone())?;
    Ok(runner.campaign(attack, seed, app.name, kind, limits.capped(SHORT_FUEL), limits.deadline))
}

// ---------------------------------------------------------------------
// Target resolution.
// ---------------------------------------------------------------------

/// Device registers in the memory-mapped peripheral space (PPB devices
/// are attacked separately).
fn peripheral_bases(devices: &[Device]) -> Vec<u32> {
    devices
        .iter()
        .filter(|(_, r)| (0x4000_0000..0x6000_0000).contains(&r.base))
        .map(|(_, r)| r.base)
        .collect()
}

/// Resolves `kind` against an OPEC build: a concrete address that the
/// firing operation's policy must deny, plus the set of operations the
/// campaign may fire in. `None` when the app has no such target (the
/// cell scores n/a).
fn opec_attack(kind: AttackKind, out: &CompileOutput, devices: &[Device]) -> Option<Attack> {
    let policy = &out.policy;
    let all_ops: Vec<OpId> = (0..policy.ops.len() as u8).collect();
    match kind {
        AttackKind::DataWrite => {
            // The public master copy of a shared variable: writable only
            // by the privileged monitor during switch synchronisation.
            let g = policy.externals.first()?;
            let addr = *policy.public_addrs.get(g)?;
            Some(Attack::anytime(
                kind,
                InjectAction::HostileStore { addr, size: 4, value: 0xDEAD_BEEF },
            ))
        }
        AttackKind::PeriphRead | AttackKind::PeriphWrite => {
            // The mapped device register denied to the most operations;
            // the campaign fires only in those, so the access is judged
            // against a policy that must refuse it.
            let (addr, denied) = peripheral_bases(devices)
                .into_iter()
                .map(|addr| {
                    let denied: Vec<OpId> = all_ops
                        .iter()
                        .copied()
                        .filter(|&op| {
                            !policy.op(op).periph_windows.iter().any(|w| w.contains(addr))
                        })
                        .collect();
                    (addr, denied)
                })
                .max_by_key(|(_, denied)| denied.len())?;
            if denied.is_empty() {
                return None;
            }
            let action = if kind == AttackKind::PeriphRead {
                InjectAction::HostileLoad { addr, size: 4 }
            } else {
                InjectAction::HostileStore { addr, size: 4, value: 0xFFFF_FFFF }
            };
            Some(Attack::in_ops(kind, action, denied))
        }
        AttackKind::PpbWrite => {
            let (addr, denied) = PPB_TARGETS.iter().find_map(|&addr| {
                let denied: Vec<OpId> = all_ops
                    .iter()
                    .copied()
                    .filter(|&op| !policy.op(op).core_windows.iter().any(|w| w.contains(addr)))
                    .collect();
                (!denied.is_empty()).then_some((addr, denied))
            })?;
            Some(Attack::in_ops(
                kind,
                InjectAction::HostileStore { addr, size: 4, value: 0 },
                denied,
            ))
        }
        AttackKind::MpuDisable => Some(Attack::anytime(
            kind,
            InjectAction::HostileStore { addr: MPU_CTRL, size: 4, value: 0 },
        )),
        AttackKind::StackSmash => {
            // Overwrite the calling operation's live stack data. The VM
            // resolves the address at fire time (the caller's saved
            // stack pointer), which under OPEC always falls in the
            // SRD-disabled sub-regions of the entered operation.
            let ops: Vec<OpId> = all_ops.into_iter().filter(|&op| op != 0).collect();
            if ops.is_empty() {
                return None;
            }
            Some(Attack::in_ops(kind, InjectAction::SmashCallerStack { value: 0x4141_4141 }, ops))
        }
        AttackKind::RelocWrite => {
            let addr = *policy.reloc_entries.values().next()?;
            Some(Attack::anytime(
                kind,
                InjectAction::HostileStore { addr, size: 4, value: 0x2000_0000 },
            ))
        }
        AttackKind::SvcCorrupt => {
            if policy.ops.len() < 2 {
                return None;
            }
            // Arm wherever the trigger lands: the next operation entry
            // then carries a bogus id the monitor has no policy for.
            Some(Attack::anytime(kind, InjectAction::CorruptNextSwitchOp { bogus: 200 }))
        }
        AttackKind::ShadowBitFlip => {
            // A sanitized shared variable: setting a high bit of its
            // live shadow pushes it out of declared range, which the
            // monitor must catch at the next sync-out. Prefer flipping
            // the shadow of an operation that only *reads* the variable
            // — a writer would repair the fault with its next store (a
            // masked fault), a reader carries it to sync-out.
            let mut fallback = None;
            for (op, p) in policy.ops.iter().enumerate() {
                for sv in &p.shared {
                    let Some((_, hi)) = sv.range else { continue };
                    if hi >= 0x80 {
                        continue;
                    }
                    let attack = Attack::in_ops(
                        kind,
                        InjectAction::FlipBit { addr: sv.shadow_addr, bit: 7 },
                        vec![op as OpId],
                    );
                    let Some(part_op) = out.partition.ops.get(op) else { continue };
                    let res = &part_op.resources;
                    if res.globals_read.contains(&sv.global)
                        && !res.globals_written.contains(&sv.global)
                    {
                        return Some(attack);
                    }
                    fallback.get_or_insert(attack);
                }
            }
            fallback
        }
    }
}

/// First fixed-address global of a linked image (data-attack victim).
fn first_fixed_global(image: &LoadedImage) -> Option<u32> {
    image.global_slots.iter().find_map(|slot| match slot {
        opec_vm::GlobalSlot::Fixed(addr) => Some(*addr),
        _ => None,
    })
}

/// Resolves `kind` against the unprotected baseline. Attacks on OPEC-
/// or compartment-specific infrastructure have no baseline equivalent.
fn baseline_attack(kind: AttackKind, image: &LoadedImage, devices: &[Device]) -> Option<Attack> {
    let action = match kind {
        AttackKind::DataWrite => InjectAction::HostileStore {
            addr: first_fixed_global(image)?,
            size: 4,
            value: 0xDEAD_BEEF,
        },
        AttackKind::PeriphRead => {
            InjectAction::HostileLoad { addr: *peripheral_bases(devices).first()?, size: 4 }
        }
        AttackKind::PeriphWrite => InjectAction::HostileStore {
            addr: *peripheral_bases(devices).first()?,
            size: 4,
            value: 0xFFFF_FFFF,
        },
        AttackKind::PpbWrite => {
            InjectAction::HostileStore { addr: PPB_TARGETS[0], size: 4, value: 0 }
        }
        AttackKind::MpuDisable => InjectAction::HostileStore { addr: MPU_CTRL, size: 4, value: 0 },
        AttackKind::StackSmash => {
            InjectAction::HostileStore { addr: image.stack.end() - 8, size: 4, value: 0x4141_4141 }
        }
        AttackKind::RelocWrite | AttackKind::SvcCorrupt | AttackKind::ShadowBitFlip => return None,
    };
    Some(Attack::anytime(kind, action))
}

/// Resolves `kind` against an ACES build. ACES attacks fire in whatever
/// compartment is current at the trigger step: containment there
/// genuinely depends on which compartment the compromised code sits in
/// (and on whether it was lifted to the privileged level), which is the
/// comparison the matrix is after.
fn aces_attack(
    kind: AttackKind,
    image: &LoadedImage,
    stack: MemRegion,
    devices: &[Device],
) -> Option<Attack> {
    let action = match kind {
        AttackKind::DataWrite => InjectAction::HostileStore {
            addr: first_fixed_global(image)?,
            size: 4,
            value: 0xDEAD_BEEF,
        },
        AttackKind::PeriphRead => {
            InjectAction::HostileLoad { addr: *peripheral_bases(devices).first()?, size: 4 }
        }
        AttackKind::PeriphWrite => InjectAction::HostileStore {
            addr: *peripheral_bases(devices).first()?,
            size: 4,
            value: 0xFFFF_FFFF,
        },
        AttackKind::PpbWrite => {
            InjectAction::HostileStore { addr: PPB_TARGETS[0], size: 4, value: 0 }
        }
        AttackKind::MpuDisable => InjectAction::HostileStore { addr: MPU_CTRL, size: 4, value: 0 },
        AttackKind::StackSmash => {
            // ACES keeps one flat stack region every compartment can
            // reach — the paper's point about missing stack isolation.
            InjectAction::HostileStore { addr: stack.end() - 8, size: 4, value: 0x4141_4141 }
        }
        AttackKind::SvcCorrupt => InjectAction::CorruptNextSwitchOp { bogus: 200 },
        AttackKind::RelocWrite | AttackKind::ShadowBitFlip => return None,
    };
    Some(Attack::anytime(kind, action))
}

// ---------------------------------------------------------------------
// Journal payloads.
// ---------------------------------------------------------------------

/// Serialises one application's cells as the job's single-line journal
/// payload. [`cells_from`] inverts it exactly: every verdict variant
/// round-trips field-for-field, so an aggregate rendered from a
/// resumed journal is byte-identical to the uninterrupted run's.
fn cells_json(cells: &[Cell]) -> String {
    let mut out = String::from("{\"cells\":[");
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(
            out,
            "{{\"config\":\"{}\",\"attack\":\"{}\",\"verdicts\":[",
            cell.config.label(),
            cell.kind.name()
        )
        .expect("write to String");
        for (j, (seed, verdict)) in cell.verdicts.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write!(out, "{{\"seed\":{seed},").expect("write to String");
            let field = |out: &mut String, key: &str, value: &str| {
                write!(out, ",\"{key}\":\"{}\"", json::escape(value)).expect("write to String");
            };
            match verdict {
                Verdict::Contained { op, cause } => {
                    write!(out, "\"v\":\"contained\",\"op\":{op}").expect("write to String");
                    field(&mut out, "cause", cause);
                }
                Verdict::Escaped { evidence } => {
                    out.push_str("\"v\":\"escaped\"");
                    field(&mut out, "evidence", evidence);
                }
                Verdict::Crashed { detail } => {
                    out.push_str("\"v\":\"crashed\"");
                    field(&mut out, "detail", detail);
                }
                Verdict::NotApplicable => out.push_str("\"v\":\"na\""),
                Verdict::Undecided { reason } => {
                    out.push_str("\"v\":\"undecided\"");
                    field(&mut out, "reason", reason);
                }
            }
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Parses a job payload back into cells. `app` comes from the job
/// list, not the payload — the aggregate is defined by this run's
/// applications.
fn cells_from(app: &'static str, payload: &str) -> Result<Vec<Cell>, String> {
    let bad = |what: &str| format!("{app} payload: {what}");
    let doc = json::parse(payload).map_err(|e| bad(&e))?;
    let cells = doc.get("cells").and_then(Value::as_arr).ok_or_else(|| bad("no cells"))?;
    cells
        .iter()
        .map(|cell| {
            let config = match cell.get("config").and_then(Value::as_str) {
                Some("opec") => Config::Opec,
                Some("aces") => Config::Aces,
                Some("baseline") => Config::Baseline,
                other => return Err(bad(&format!("bad config {other:?}"))),
            };
            let name = cell.get("attack").and_then(Value::as_str).unwrap_or("");
            let kind = *AttackKind::ALL
                .iter()
                .find(|k| k.name() == name)
                .ok_or_else(|| bad(&format!("bad attack {name:?}")))?;
            let verdicts = cell
                .get("verdicts")
                .and_then(Value::as_arr)
                .ok_or_else(|| bad("no verdicts"))?
                .iter()
                .map(|v| verdict_from(v).ok_or_else(|| bad("bad verdict")))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Cell { app, config, kind, verdicts })
        })
        .collect()
}

fn verdict_from(v: &Value) -> Option<(u64, Verdict)> {
    let seed = v.get("seed")?.as_u64()?;
    let text = |key: &str| v.get(key).and_then(Value::as_str).map(str::to_string);
    let verdict = match v.get("v")?.as_str()? {
        "contained" => {
            Verdict::Contained { op: v.get("op")?.as_u64()? as OpId, cause: text("cause")? }
        }
        "escaped" => Verdict::Escaped { evidence: text("evidence")? },
        "crashed" => Verdict::Crashed { detail: text("detail")? },
        "na" => Verdict::NotApplicable,
        "undecided" => Verdict::Undecided { reason: text("reason")? },
        _ => return None,
    };
    Some((seed, verdict))
}

// ---------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------

impl AttackMatrix {
    /// Cells of one app, in [`AttackKind::ALL`] × [`Config::ALL`] order.
    fn app_block(&self, app: &str) -> Vec<&Cell> {
        self.cells.iter().filter(|c| c.app == app).collect()
    }

    fn app_names(&self) -> Vec<&'static str> {
        let mut names = Vec::new();
        for c in &self.cells {
            if !names.contains(&c.app) {
                names.push(c.app);
            }
        }
        names
    }

    /// Human-readable matrix, one table per application.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "Attack containment matrix ({} seeds per cell, backend: {})",
            self.seeds, self.backend
        )
        .unwrap();
        writeln!(out, "C = contained, E = escaped, X = crashed, U = undecided\n").unwrap();
        for app in self.app_names() {
            let block = self.app_block(app);
            let mut table = TextTable::new(&["attack", "OPEC", "ACES", "baseline"]);
            for kind in AttackKind::ALL {
                let cell = |config| {
                    block
                        .iter()
                        .find(|c| c.kind == kind && c.config == config)
                        .map_or_else(|| "n/a".to_string(), |c| c.agg_label())
                };
                table.row(vec![
                    kind.name().to_string(),
                    cell(Config::Opec),
                    cell(Config::Aces),
                    cell(Config::Baseline),
                ]);
            }
            writeln!(out, "== {app} ==").unwrap();
            out.push_str(&table.render());
            out.push('\n');
        }
        out
    }

    /// Serialises every per-seed verdict as a JSON document (the CI
    /// artifact).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        writeln!(out, "  \"backend\": {},", jstr(self.backend)).unwrap();
        writeln!(out, "  \"seeds\": {},", self.seeds).unwrap();
        out.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            write!(
                out,
                "    {{\"app\": {}, \"config\": \"{}\", \"attack\": \"{}\", \"verdicts\": [",
                jstr(cell.app),
                cell.config.label(),
                cell.kind.name()
            )
            .unwrap();
            for (j, (seed, verdict)) in cell.verdicts.iter().enumerate() {
                write!(
                    out,
                    "{}{{\"seed\": {seed}, \"verdict\": \"{}\", \"detail\": {}}}",
                    if j == 0 { "" } else { ", " },
                    verdict.label(),
                    jstr(&verdict_detail(verdict)),
                )
                .unwrap();
            }
            writeln!(out, "]}}{}", if i + 1 == self.cells.len() { "" } else { "," }).unwrap();
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Verdicts the campaign could not decide (fuel-starved or
    /// timed-out runs): not hard failures, but not clean either —
    /// they drive the distinct "unknown outcome" exit code.
    pub fn undecided(&self) -> usize {
        self.cells
            .iter()
            .flat_map(|c| &c.verdicts)
            .filter(|(_, v)| matches!(v, Verdict::Undecided { .. }))
            .count()
    }

    /// Everything that must fail CI: an OPEC cell that escaped or
    /// crashed, or a host crash in any configuration.
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for cell in &self.cells {
            for (seed, verdict) in &cell.verdicts {
                let bad = match verdict {
                    Verdict::Escaped { .. } => cell.config == Config::Opec,
                    Verdict::Crashed { .. } => true,
                    _ => false,
                };
                if bad {
                    out.push(format!(
                        "{} / {} / {} / seed {}: {} ({})",
                        cell.app,
                        cell.config.label(),
                        cell.kind.name(),
                        seed,
                        verdict.label(),
                        verdict_detail(verdict),
                    ));
                }
            }
        }
        out
    }
}

/// The human-readable payload of a verdict.
fn verdict_detail(v: &Verdict) -> String {
    match v {
        Verdict::Contained { op, cause } => format!("operation {op}: {cause}"),
        Verdict::Escaped { evidence } => evidence.clone(),
        Verdict::Crashed { detail } => detail.clone(),
        Verdict::NotApplicable => String::new(),
        Verdict::Undecided { reason } => reason.clone(),
    }
}

/// Minimal JSON string escaping.
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pinlock_matrix(seeds: u64) -> AttackMatrix {
        attack_matrix_for(&[opec_apps::programs::pinlock::app()], seeds)
    }

    #[test]
    fn pinlock_opec_contains_every_applicable_attack() {
        let m = pinlock_matrix(2);
        for cell in m.cells.iter().filter(|c| c.config == Config::Opec) {
            for (seed, v) in &cell.verdicts {
                assert!(
                    matches!(v, Verdict::Contained { .. } | Verdict::NotApplicable),
                    "OPEC {} seed {seed}: {v:?}",
                    cell.kind.name()
                );
            }
        }
        // The core attack classes actually fire (and are contained)
        // rather than silently scoring n/a. Stack smashing is not in
        // this list: PinLock never passes stack arguments across an
        // operation boundary, so there is no caller frame to smash
        // (the VM-level containment test lives in `opec-vm`).
        for kind in [
            AttackKind::DataWrite,
            AttackKind::PeriphRead,
            AttackKind::PeriphWrite,
            AttackKind::PpbWrite,
            AttackKind::MpuDisable,
            AttackKind::RelocWrite,
            AttackKind::SvcCorrupt,
        ] {
            let cell = m
                .cells
                .iter()
                .find(|c| c.config == Config::Opec && c.kind == kind)
                .expect("cell exists");
            assert!(
                cell.verdicts.iter().all(|(_, v)| matches!(v, Verdict::Contained { .. })),
                "{}: {:?}",
                kind.name(),
                cell.verdicts
            );
        }
        assert!(m.failures().is_empty(), "{:?}", m.failures());
    }

    #[test]
    fn pinlock_baseline_lets_data_and_peripheral_attacks_through() {
        let m = pinlock_matrix(2);
        for kind in [
            AttackKind::DataWrite,
            AttackKind::PeriphRead,
            AttackKind::PeriphWrite,
            AttackKind::PpbWrite,
            AttackKind::MpuDisable,
            AttackKind::StackSmash,
        ] {
            let cell = m
                .cells
                .iter()
                .find(|c| c.config == Config::Baseline && c.kind == kind)
                .expect("cell exists");
            assert!(
                cell.verdicts.iter().all(|(_, v)| matches!(v, Verdict::Escaped { .. })),
                "baseline {}: {:?}",
                kind.name(),
                cell.verdicts
            );
        }
    }

    fn test_opts(name: &str) -> CampaignOpts {
        let mut o = CampaignOpts::new(name, FUEL);
        // Debug-build runs are slow; fuel still bounds every cell, so
        // the watchdog would only add flakiness here. The hooks are
        // cleared so a stray environment cannot leak into the test.
        o.timeout_secs = None;
        o.kill_after = None;
        o.panic_inject = None;
        o.workers = 2;
        o.repro_dir =
            std::env::temp_dir().join("opec-eval-tests/repros").to_string_lossy().into_owned();
        o
    }

    #[test]
    fn panicking_job_is_retried_contained_and_scored_crashed() {
        let mut o = test_opts("attack-panic");
        o.panic_inject = Some("attack/app/PinLock".to_string());
        let (m, rep) =
            attack_matrix_with(&[opec_apps::programs::pinlock::app()], 1, &o, BackendSel::Armv7m)
                .unwrap();
        // The injected fault panicked both attempts: one retry, then
        // classified deterministic — and the campaign itself survived.
        assert_eq!(rep.records.len(), 1);
        assert_eq!(rep.records[0].outcome, JobOutcome::Panicked);
        assert_eq!(rep.records[0].attempts, 2);
        assert_eq!(rep.retried, 1);
        assert_eq!(rep.unknown(), 1);
        // The matrix still renders a full grid, every run cell CRASHED.
        assert_eq!(m.cells.len(), AttackKind::ALL.len() * Config::ALL.len());
        for cell in m.cells.iter().filter(|c| c.config != Config::Aces) {
            assert!(
                cell.verdicts.iter().all(|(_, v)| matches!(v, Verdict::Crashed { .. })),
                "{}: {:?}",
                cell.kind.name(),
                cell.verdicts
            );
        }
        assert!(!m.failures().is_empty(), "host crashes must fail the matrix");
    }

    #[test]
    fn journalled_matrix_resumes_byte_identically() {
        let dir = std::env::temp_dir().join("opec-eval-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir
            .join(format!("attack-resume-{}.jsonl", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let _ = std::fs::remove_file(&path);
        let mut o = test_opts("attack-resume");
        o.journal = Some(path.clone());
        let apps = [opec_apps::programs::pinlock::app()];
        let (fresh, first) = attack_matrix_with(&apps, 2, &o, BackendSel::Armv7m).unwrap();
        assert_eq!(first.resumed, 0);
        let (resumed, second) = attack_matrix_with(&apps, 2, &o, BackendSel::Armv7m).unwrap();
        assert_eq!(second.resumed, 1, "the journaled job must not re-run");
        assert_eq!(fresh.to_json(), resumed.to_json());
        assert_eq!(fresh.render(), resumed.render());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn matrix_is_deterministic_and_serialisable() {
        let a = pinlock_matrix(2);
        let b = pinlock_matrix(2);
        let flat = |m: &AttackMatrix| {
            m.cells
                .iter()
                .flat_map(|c| {
                    c.verdicts.iter().map(move |(s, v)| {
                        (c.app, c.config.label(), c.kind.name(), *s, format!("{v:?}"))
                    })
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(flat(&a), flat(&b));
        let json = a.to_json();
        assert!(json.contains("\"app\": \"PinLock\""), "{json}");
        assert!(json.contains("\"attack\": \"data-write\""), "{json}");
        assert!(!a.render().is_empty());
    }
}
