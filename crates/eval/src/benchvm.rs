//! The VM fast-path throughput benchmark (`opec-eval bench-vm`).
//!
//! Emits `BENCH_vm.json`, the perf-trajectory file for the execution
//! engine, with four sections — everything measured in-process, in this
//! invocation, with no saved baselines:
//!
//! * `"microbench"` — a dense-ALU loop firmware interpreted under the
//!   plain per-`Inst` path and under the pre-decoded block cache, as
//!   instructions/second each (the headline fast-path speedup);
//! * `"apps"` — the same before/after for every paper application
//!   (seven under OPEC, five under ACES), full pipeline included;
//! * `"campaign"` — campaign resets/second the seed way (rebuild the
//!   machine, reload the image, boot, per seed) versus the fork-server
//!   way (restore a copy-on-write snapshot per seed), plus the raw
//!   restore latency;
//! * `"lockstep"` — the cached-vs-plain equivalence sweep
//!   ([`crate::check::run_lockstep`]) folded to a divergence count, so
//!   CI can fail the benchmark if the fast path ever stops being a
//!   pure optimisation.

use std::fmt::Write as _;
use std::time::Instant;

use opec_aces::{build_aces_image, AcesRuntime, AcesStrategy};
use opec_apps::programs::{aces_comparison_apps, all_apps};
use opec_apps::App;
use opec_armv7m::{Board, Machine};
use opec_core::{compile, OpecMonitor};
use opec_ir::{BinOp, Module, ModuleBuilder, Operand, Ty};
use opec_vm::{link_baseline, ExecMode, LoadedImage, Supervisor, Vm};

use opec_campaign::CampaignReport;

use crate::backend::BackendSel;
use crate::check::run_lockstep_campaign;
use crate::engine::EngineOpts;
use crate::runs::FUEL;

/// Loop iterations of the ALU microbenchmark (~40 instructions each).
const MICRO_ITERS: u32 = 100_000;

/// Timed repetitions per application run (averages out clock noise).
const APP_REPS: u32 = 3;

/// Rebuild-from-scratch resets timed for the naive campaign shape.
const NAIVE_RESETS: u32 = 50;

/// Snapshot restores timed for the fork-server campaign shape.
const SNAP_RESETS: u32 = 2_000;

/// Fuel spent dirtying the VM between resets, so every restore has
/// real dirty pages to undo (charged outside the timed region on both
/// sides).
const DIRTY_FUEL: u64 = 5_000;

/// A countdown loop whose body is a chain of ALU ops ending in one
/// global store: the densest straight-line dispatch the IR can express,
/// which is exactly what the decoded path accelerates.
fn alu_module() -> Module {
    let mut mb = ModuleBuilder::new("vmbench");
    let acc = mb.global("acc", Ty::I32, "bench.c");
    mb.func("main", vec![], Some(Ty::I32), "bench.c", |fb| {
        let header = fb.block();
        let body = fb.block();
        let exit = fb.block();
        let i = fb.reg();
        fb.mov(i, Operand::Imm(MICRO_ITERS));
        fb.br(header);
        fb.switch_to(header);
        fb.cond_br(Operand::Reg(i), body, exit);
        fb.switch_to(body);
        let mut v = fb.bin(BinOp::Add, Operand::Reg(i), Operand::Imm(0x9E37_79B9));
        for k in 0..32u32 {
            v = fb.bin(BinOp::Xor, Operand::Reg(v), Operand::Imm(k.wrapping_mul(0x85EB_CA6B)));
        }
        fb.store_global(acc, 0, Operand::Reg(v), 4);
        let next = fb.bin(BinOp::Sub, Operand::Reg(i), Operand::Imm(1));
        fb.mov(i, Operand::Reg(next));
        fb.br(header);
        fb.switch_to(exit);
        let r = fb.load_global(acc, 0, 4);
        fb.ret(Operand::Reg(r));
    });
    mb.finish()
}

/// One timed run: executes `image` under `mode` and returns
/// `(instructions, seconds)`.
fn timed_run<S: Supervisor>(
    image: std::sync::Arc<LoadedImage>,
    supervisor: S,
    machine: Machine,
    mode: ExecMode,
) -> (u64, f64) {
    let mut vm = Vm::builder(machine, image)
        .supervisor(supervisor)
        .exec_mode(mode)
        .build()
        .expect("bench image");
    let start = Instant::now();
    let _ = vm.run(FUEL);
    (vm.stats.insts, start.elapsed().as_secs_f64())
}

/// Instructions/second of one subject under both execution modes.
struct Throughput {
    name: String,
    system: &'static str,
    insts: u64,
    plain_ips: f64,
    decoded_ips: f64,
}

impl Throughput {
    fn speedup(&self) -> f64 {
        if self.plain_ips > 0.0 {
            self.decoded_ips / self.plain_ips
        } else {
            0.0
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"app\": \"{}\", \"system\": \"{}\", \"insts\": {}, \
             \"plain_insts_per_sec\": {:.0}, \"decoded_insts_per_sec\": {:.0}, \
             \"speedup\": {:.2}}}",
            self.name,
            self.system,
            self.insts,
            self.plain_ips,
            self.decoded_ips,
            self.speedup(),
        )
    }
}

/// Measures one subject `reps` times per mode and keeps each mode's
/// best rate: scheduler noise only ever slows a rep down, so the
/// fastest rep is the least-perturbed measurement. `run` performs one
/// fresh, timed execution under the given mode.
fn throughput(
    name: String,
    system: &'static str,
    reps: u32,
    run: impl Fn(ExecMode) -> (u64, f64),
) -> Throughput {
    let measure = |mode| {
        let (mut insts, mut best) = (0u64, 0f64);
        for _ in 0..reps {
            let (i, s) = run(mode);
            insts = i;
            best = best.max(i as f64 / s.max(1e-9));
        }
        (insts, best)
    };
    let (insts, plain_ips) = measure(ExecMode::Plain);
    let (_, decoded_ips) = measure(ExecMode::Decoded);
    Throughput { name, system, insts, plain_ips, decoded_ips }
}

/// The ALU microbenchmark: baseline link, no supervisor, no devices.
fn micro_throughput() -> Throughput {
    let board = Board::stm32f4_discovery();
    let image = std::sync::Arc::new(link_baseline(alu_module(), board).expect("bench link"));
    throughput("alu-loop".into(), "micro", 5, |mode| {
        timed_run(image.clone(), opec_vm::NullSupervisor, Machine::new(board), mode)
    })
}

fn opec_throughput(app: &App, sel: BackendSel) -> Throughput {
    let (module, specs) = (app.build)();
    let out =
        compile(module, app.board, &specs).unwrap_or_else(|e| panic!("{} compile: {e}", app.name));
    let policy = out.policy.clone();
    let image = std::sync::Arc::new(out.image);
    let backend = sel.dyn_backend();
    throughput(app.name.to_string(), "OPEC", APP_REPS, |mode| {
        let mut m = backend.make_machine(app.board);
        (app.setup)(&mut m);
        timed_run(
            image.clone(),
            OpecMonitor::with_backend(policy.clone(), std::sync::Arc::clone(&backend)),
            m,
            mode,
        )
    })
}

/// Protection-switch cost of one application on one backend: a single
/// full OPEC run, read back from the monitor's own counters. The same
/// firmware image runs on both backends, so the per-switch write counts
/// are directly comparable (ARMv7-M MPU region writes vs RISC-V PMP
/// entry writes).
struct SwitchCost {
    app: &'static str,
    switches: u64,
    prot_writes: u64,
}

impl SwitchCost {
    fn json(&self) -> String {
        let per_switch =
            if self.switches > 0 { self.prot_writes as f64 / self.switches as f64 } else { 0.0 };
        format!(
            "{{\"app\": \"{}\", \"switches\": {}, \"prot_writes\": {}, \
             \"writes_per_switch\": {per_switch:.2}}}",
            self.app, self.switches, self.prot_writes,
        )
    }
}

fn switch_costs(sel: BackendSel) -> Vec<SwitchCost> {
    all_apps()
        .iter()
        .map(|app| {
            let (module, specs) = (app.build)();
            let out = compile(module, app.board, &specs)
                .unwrap_or_else(|e| panic!("{} compile: {e}", app.name));
            let backend = sel.dyn_backend();
            let mut m = backend.make_machine(app.board);
            (app.setup)(&mut m);
            let mut vm = Vm::builder(m, out.image)
                .supervisor(OpecMonitor::with_backend(out.policy.clone(), backend))
                .build()
                .unwrap_or_else(|e| panic!("{} image: {e}", app.name));
            let _ = vm.run(FUEL);
            let stats = &vm.supervisor.stats;
            SwitchCost { app: app.name, switches: stats.switches, prot_writes: stats.prot_writes }
        })
        .collect()
}

fn aces_throughput(app: &App) -> Throughput {
    let (module, _) = (app.build)();
    let out = build_aces_image(module, app.board, AcesStrategy::Filename)
        .unwrap_or_else(|e| panic!("{} ACES build: {e}", app.name));
    let main_comp = out.comps.of(out.image.entry);
    let image = std::sync::Arc::new(out.image);
    throughput(app.name.to_string(), "ACES", APP_REPS, |mode| {
        let rt = AcesRuntime::new(
            &image.module,
            out.comps.clone(),
            out.regions.clone(),
            app.board,
            out.stack,
            main_comp,
        );
        let mut m = Machine::new(app.board);
        (app.setup)(&mut m);
        timed_run(image.clone(), rt, m, mode)
    })
}

/// Campaign reset rates: rebuild-per-seed vs snapshot-restore-per-seed
/// over the PinLock OPEC configuration (the attack matrix's subject).
struct CampaignBench {
    naive_resets_per_sec: f64,
    snapshot_resets_per_sec: f64,
    restore_latency_us: f64,
}

fn campaign_bench() -> CampaignBench {
    let app = opec_apps::programs::pinlock::app();
    let (module, specs) = (app.build)();
    let out = compile(module, app.board, &specs).expect("pinlock compile");
    let policy = out.policy.clone();
    let image = std::sync::Arc::new(out.image);

    // The seed shape: every campaign reconstructs the world.
    let mut naive_secs = 0f64;
    for _ in 0..NAIVE_RESETS {
        let start = Instant::now();
        let mut machine = Machine::new(app.board);
        (app.setup)(&mut machine);
        let mut vm = Vm::builder(machine, image.clone())
            .supervisor(OpecMonitor::new(policy.clone()))
            .build()
            .expect("pinlock image");
        vm.boot().expect("pinlock boot");
        naive_secs += start.elapsed().as_secs_f64();
        let _ = vm.resume(DIRTY_FUEL);
    }

    // The fork-server shape: one world, reset by dirty-page restore.
    let mut machine = Machine::new(app.board);
    (app.setup)(&mut machine);
    let mut vm = Vm::builder(machine, image.clone())
        .supervisor(OpecMonitor::new(policy))
        .build()
        .expect("pinlock image");
    vm.boot().expect("pinlock boot");
    let snap = vm.snapshot().expect("pinlock snapshot");
    let _ = vm.resume(DIRTY_FUEL);
    let mut snap_secs = 0f64;
    for _ in 0..SNAP_RESETS {
        let start = Instant::now();
        vm.restore(&snap);
        snap_secs += start.elapsed().as_secs_f64();
        let _ = vm.resume(DIRTY_FUEL);
    }

    CampaignBench {
        naive_resets_per_sec: f64::from(NAIVE_RESETS) / naive_secs.max(1e-9),
        snapshot_resets_per_sec: f64::from(SNAP_RESETS) / snap_secs.max(1e-9),
        restore_latency_us: snap_secs * 1e6 / f64::from(SNAP_RESETS),
    }
}

/// Runs every measurement and renders `BENCH_vm.json` with default
/// supervision. Returns the document and the lockstep divergence count
/// (non-zero must fail the caller).
pub fn bench_vm(gen_seeds: u64) -> (String, u64) {
    let (doc, bad, _) =
        bench_vm_campaign(gen_seeds, &EngineOpts::default(), BackendSel::Armv7m).expect("bench-vm");
    (doc, bad)
}

/// [`bench_vm`] with the lockstep sweep routed through the supervised
/// campaign engine: `--fuel` bounds every lockstep subject, a panicking
/// subject is contained and reported instead of tearing the benchmark
/// down, and `--journal` lets a killed sweep resume. The timing
/// sections stay inline — they are wall-clock measurements, and
/// journaling a timing would just replay a stale number.
pub fn bench_vm_campaign(
    gen_seeds: u64,
    engine: &EngineOpts,
    sel: BackendSel,
) -> Result<(String, u64, CampaignReport), String> {
    let mut out = String::from("{\n");
    writeln!(out, "  \"schema\": \"opec-bench-vm-v1\",").expect("write to String");
    writeln!(out, "  \"host\": {},", opec_fleet::bench::host_json()).expect("write to String");
    writeln!(out, "  \"backend\": \"{}\",", sel.name()).expect("write to String");

    eprintln!("[bench-vm] ALU microbenchmark (plain vs decoded)...");
    let micro = micro_throughput();
    writeln!(
        out,
        "  \"microbench\": {{\"iters\": {MICRO_ITERS}, \"insts\": {}, \
         \"plain_insts_per_sec\": {:.0}, \"decoded_insts_per_sec\": {:.0}, \
         \"speedup\": {:.2}}},",
        micro.insts,
        micro.plain_ips,
        micro.decoded_ips,
        micro.speedup(),
    )
    .expect("write to String");

    eprintln!(
        "[bench-vm] per-app throughput ({APP_REPS} reps per mode, backend {})...",
        sel.name()
    );
    let mut apps: Vec<Throughput> =
        all_apps().iter().map(|app| opec_throughput(app, sel)).collect();
    if sel.has_aces() {
        apps.extend(aces_comparison_apps().iter().map(aces_throughput));
    }
    out.push_str("  \"apps\": [\n");
    for (i, t) in apps.iter().enumerate() {
        writeln!(out, "    {}{}", t.json(), if i + 1 < apps.len() { "," } else { "" })
            .expect("write to String");
    }
    out.push_str("  ],\n");

    eprintln!("[bench-vm] per-backend protection-switch costs (both backends)...");
    out.push_str("  \"switch_costs\": {\n");
    for (bi, backend) in BackendSel::ALL.iter().enumerate() {
        let costs = switch_costs(*backend);
        writeln!(out, "    \"{}\": [", backend.name()).expect("write to String");
        for (i, c) in costs.iter().enumerate() {
            writeln!(out, "      {}{}", c.json(), if i + 1 < costs.len() { "," } else { "" })
                .expect("write to String");
        }
        writeln!(out, "    ]{}", if bi + 1 < BackendSel::ALL.len() { "," } else { "" })
            .expect("write to String");
    }
    out.push_str("  },\n");

    eprintln!("[bench-vm] campaign resets ({NAIVE_RESETS} rebuilds vs {SNAP_RESETS} restores)...");
    let camp = campaign_bench();
    writeln!(
        out,
        "  \"campaign\": {{\"naive_resets_per_sec\": {:.1}, \
         \"snapshot_resets_per_sec\": {:.1}, \"speedup\": {:.2}, \
         \"restore_latency_us\": {:.3}}},",
        camp.naive_resets_per_sec,
        camp.snapshot_resets_per_sec,
        camp.snapshot_resets_per_sec / camp.naive_resets_per_sec.max(1e-9),
        camp.restore_latency_us,
    )
    .expect("write to String");

    eprintln!(
        "[bench-vm] cached-vs-plain lockstep ({gen_seeds} firmwares, backend {})...",
        sel.name()
    );
    let (rep, campaign) = run_lockstep_campaign(gen_seeds, engine, sel)?;
    let divergences: u64 = rep.cases.iter().map(|c| c.total).sum();
    let build_errors = rep.cases.iter().filter(|c| c.run_error.is_some()).count();
    writeln!(
        out,
        "  \"lockstep\": {{\"subjects\": {}, \"generated_seeds\": {gen_seeds}, \
         \"divergences\": {divergences}, \"build_errors\": {build_errors}}}",
        rep.cases.len(),
    )
    .expect("write to String");
    out.push_str("}\n");
    Ok((out, divergences + build_errors as u64, campaign))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microbench_decoded_is_not_slower_and_counts_are_stable() {
        let t = micro_throughput();
        // Both modes execute the same firmware, so the instruction
        // count is architecture-determined, not timing-determined.
        assert!(t.insts > u64::from(MICRO_ITERS) * 30, "{}", t.insts);
        assert!(t.plain_ips > 0.0 && t.decoded_ips > 0.0);
        let json = t.json();
        assert!(json.contains("\"speedup\""), "{json}");
    }

    #[test]
    fn campaign_snapshot_reset_beats_rebuild() {
        let c = campaign_bench();
        assert!(
            c.snapshot_resets_per_sec > c.naive_resets_per_sec,
            "restore {:.1}/s vs rebuild {:.1}/s",
            c.snapshot_resets_per_sec,
            c.naive_resets_per_sec
        );
        assert!(c.restore_latency_us > 0.0);
    }
}
