//! The `check` subcommand: the differential security oracle over the
//! whole pipeline.
//!
//! Runs every paper application under OPEC (and the five comparison
//! apps under ACES) with the [`opec_oracle`] shadow monitor attached,
//! plus a batch of seeded random firmwares under both stacks, and
//! reports every divergence between the enforcement layers and the
//! ground-truth access matrix. On top of the lockstep checks it
//! cross-validates the evaluation's own numbers: PT recomputed from
//! the matrix's granted/needed byte counts must equal
//! [`pt_of_compartments`], and ET recomputed from the oracle's
//! independently recorded execution sets must equal [`et_by_task`].
//!
//! Exit policy (enforced by `main`): any divergence, run error, or
//! failed cross-check is a failure. ACES build rejections of generated
//! firmwares (group-region overflow) are recorded as skips — that is
//! an ACES scalability property the paper discusses, not an oracle
//! disagreement.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use std::sync::Arc;
use std::thread;

use opec_aces::{build_aces_image, AcesRuntime, AcesStrategy};
use opec_apps::programs::{aces_comparison_apps, all_apps};
use opec_apps::App;
use opec_armv7m::Machine;
use opec_core::{compile, OpecMonitor};
use opec_ir::{GlobalId, Module};
use opec_obs::export::{event_log, metrics_json};
use opec_obs::{Obs, OpId, Recorder};
use opec_oracle::{
    describe, generate, run_aces, run_opec, shadow, shrink, AccessMatrix, OracleState, Verdict,
};
use opec_vm::{ExecMode, LoadedImage, RunOutcome, Supervisor, Trace, Vm, VmStats};

use crate::metrics::{et_by_task, pt_of_compartments};
use crate::runs::{AppEval, OpecRun, FUEL};

/// Tolerance for the PT/ET cross-checks: both sides are exact integer
/// byte ratios, so any disagreement beyond rounding is a real bug.
const EPS: f64 = 1e-9;

/// Shrink budget (pipeline re-runs) per divergent generated firmware.
const SHRINK_BUDGET: usize = 200;

/// Options for [`run_check`].
#[derive(Debug, Clone, Copy)]
pub struct CheckOptions {
    /// How many generated firmware seeds to run.
    pub seeds: u64,
    /// Shrink divergent generated firmwares to a minimal program.
    pub shrink: bool,
}

/// The oracle's verdict over one subject (one app or one generated
/// firmware under one enforcement stack).
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Subject name (`PinLock`, `gen[7]`, ...).
    pub name: String,
    /// Enforcement stack (`OPEC` or `ACES`).
    pub system: &'static str,
    /// Rendered divergences (capped by the oracle).
    pub divergences: Vec<String>,
    /// Total divergence count (uncapped).
    pub total: u64,
    /// Lockstep access checks performed.
    pub checks: u64,
    /// MPU probes performed.
    pub probes: u64,
    /// Accepted switches observed.
    pub switches: u64,
    /// Terminal run error, if the run did not end cleanly.
    pub run_error: Option<String>,
    /// Shrunk counterexample description, when shrinking ran.
    pub shrunk: Option<String>,
    /// Non-failure annotation (e.g. an ACES build skip).
    pub note: Option<String>,
}

impl CaseResult {
    fn failed(&self) -> bool {
        self.total > 0 || self.run_error.is_some()
    }
}

/// One recomputed-metric agreement check.
#[derive(Debug, Clone)]
pub struct CrossCheck {
    /// What was compared.
    pub name: String,
    /// Whether the two derivations agree.
    pub ok: bool,
    /// Agreement summary or the first disagreement.
    pub detail: String,
}

/// Everything `check` produced.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Per-subject oracle verdicts.
    pub cases: Vec<CaseResult>,
    /// Metric cross-checks.
    pub crosschecks: Vec<CrossCheck>,
}

impl CheckReport {
    /// Every failure, rendered: divergent cases, run errors, failed
    /// cross-checks.
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for c in &self.cases {
            if c.total > 0 {
                out.push(format!("{} ({}): {} divergences", c.name, c.system, c.total));
            }
            if let Some(e) = &c.run_error {
                out.push(format!("{} ({}): run error: {e}", c.name, c.system));
            }
        }
        for x in &self.crosschecks {
            if !x.ok {
                out.push(format!("cross-check {}: {}", x.name, x.detail));
            }
        }
        out
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("Differential oracle\n===================\n");
        for c in &self.cases {
            let status = if c.failed() { "FAIL" } else { "  ok" };
            s.push_str(&format!(
                "{status}  {:<22} {:<4}  {:>3} divergences  {:>8} checks  {:>5} probes  {:>4} switches",
                c.name, c.system, c.total, c.checks, c.probes, c.switches
            ));
            if let Some(n) = &c.note {
                s.push_str(&format!("  [{n}]"));
            }
            s.push('\n');
            if let Some(e) = &c.run_error {
                s.push_str(&format!("      run error: {e}\n"));
            }
            for d in &c.divergences {
                s.push_str(&format!("      {d}\n"));
            }
            if let Some(sh) = &c.shrunk {
                s.push_str("      shrunk counterexample:\n");
                for line in sh.lines() {
                    s.push_str(&format!("        {line}\n"));
                }
            }
        }
        s.push_str("\nMetric cross-checks\n-------------------\n");
        for x in &self.crosschecks {
            let status = if x.ok { "  ok" } else { "FAIL" };
            s.push_str(&format!("{status}  {:<30} {}\n", x.name, x.detail));
        }
        let failures = self.failures();
        s.push_str(&format!(
            "\n{} cases, {} cross-checks, {} failures\n",
            self.cases.len(),
            self.crosschecks.len(),
            failures.len()
        ));
        s
    }

    /// Machine-readable artifact (the CI `oracle.json`).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
        }
        fn opt(s: &Option<String>) -> String {
            match s {
                Some(v) => format!("\"{}\"", esc(v)),
                None => "null".to_string(),
            }
        }
        let mut s = String::from("{\n  \"cases\": [\n");
        for (i, c) in self.cases.iter().enumerate() {
            let divs = c
                .divergences
                .iter()
                .map(|d| format!("\"{}\"", esc(d)))
                .collect::<Vec<_>>()
                .join(", ");
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"system\": \"{}\", \"total_divergences\": {}, \
                 \"checks\": {}, \"probes\": {}, \"switches\": {}, \"run_error\": {}, \
                 \"note\": {}, \"shrunk\": {}, \"divergences\": [{divs}]}}{}\n",
                esc(&c.name),
                c.system,
                c.total,
                c.checks,
                c.probes,
                c.switches,
                opt(&c.run_error),
                opt(&c.note),
                opt(&c.shrunk),
                if i + 1 < self.cases.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n  \"crosschecks\": [\n");
        for (i, x) in self.crosschecks.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"ok\": {}, \"detail\": \"{}\"}}{}\n",
                esc(&x.name),
                x.ok,
                esc(&x.detail),
                if i + 1 < self.crosschecks.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!("  ],\n  \"failures\": {}\n}}\n", self.failures().len()));
        s
    }
}

fn bytes_of(module: &Module, globals: &BTreeSet<GlobalId>) -> u64 {
    globals.iter().map(|&g| u64::from(module.global_size(g).max(1))).sum()
}

fn et(used: u64, needed: u64) -> f64 {
    if needed == 0 {
        0.0
    } else {
        1.0 - (used.min(needed)) as f64 / needed as f64
    }
}

fn state_case(
    name: String,
    system: &'static str,
    st: &OracleState,
    run_error: Option<String>,
) -> CaseResult {
    CaseResult {
        name,
        system,
        divergences: st.divergences.iter().map(|d| d.to_string()).collect(),
        total: st.total_divergences,
        checks: st.checks,
        probes: st.probes,
        switches: st.switches,
        run_error,
        shrunk: None,
        note: None,
    }
}

fn verdict_case(name: String, system: &'static str, v: &Verdict) -> CaseResult {
    CaseResult {
        name,
        system,
        divergences: v.divergences.iter().map(|d| d.to_string()).collect(),
        total: v.total_divergences,
        checks: v.checks,
        probes: v.probes,
        switches: v.switches,
        run_error: v.run_error.clone(),
        shrunk: None,
        note: None,
    }
}

/// Runs one application under OPEC with the oracle attached and
/// cross-checks ET: the trace-derived execution sets against the
/// oracle's, and Equation 2 recomputed from the matrix against
/// [`et_by_task`].
fn check_opec_app(app: &App) -> (CaseResult, Vec<CrossCheck>) {
    let (module, specs) = (app.build)();
    let out =
        compile(module, app.board, &specs).unwrap_or_else(|e| panic!("{} compile: {e}", app.name));
    let matrix = AccessMatrix::opec(&out.image.module, &out.partition, &out.policy);
    let trace = Rc::new(RefCell::new(Trace::new()));
    let obs = Obs::single(trace.clone());
    let (watcher, handle) = shadow(matrix.clone(), obs.clone());
    let mut machine = Machine::new(app.board);
    (app.setup)(&mut machine);
    let mut vm = Vm::builder(machine, out.image.clone())
        .supervisor(OpecMonitor::new(out.policy.clone()))
        .obs(obs)
        .watcher(watcher)
        .build()
        .expect("opec vm");
    let (cycles, mut run_error) = match vm.run(FUEL) {
        Ok(run @ RunOutcome::Halted { .. }) => (run.cycles(), None),
        Ok(run) => (run.cycles(), Some(format!("did not halt: {run:?}"))),
        Err(e) => (0, Some(format!("{e}"))),
    };
    if run_error.is_none() {
        if let Err(e) = (app.check)(&mut vm.machine) {
            run_error = Some(format!("workload check: {e}"));
        }
    }
    let st = handle.take();
    let case = state_case(app.name.to_string(), "OPEC", &st, run_error);

    // The evaluation's view of the same run, for the ET cross-check.
    let eval = AppEval {
        name: app.name,
        board: app.board,
        base_cycles: 1,
        base_flash: 0,
        base_sram: 0,
        opec: Arc::new(OpecRun {
            cycles,
            flash_used: out.image.flash_used,
            sram_used: out.image.sram_used,
            trace: trace.borrow().clone(),
            monitor: vm.supervisor.stats,
            compile: out,
        }),
        aces: Vec::new(),
    };
    let mut crosschecks = Vec::new();

    // 1. Execution sets: the trace's per-task attribution vs the
    //    oracle's independent per-switch recording (op 0 is main's
    //    residue, which the trace's task list never reports).
    let mut from_trace: BTreeMap<OpId, BTreeSet<_>> = BTreeMap::new();
    for (op, _entry, funcs) in eval.opec.trace.tasks() {
        from_trace.entry(op).or_default().extend(funcs);
    }
    let from_oracle: BTreeMap<OpId, BTreeSet<_>> = st
        .exec
        .iter()
        .filter(|(op, _)| usize::from(**op) != 0)
        .map(|(op, fs)| (*op, fs.clone()))
        .collect();
    crosschecks.push(CrossCheck {
        name: format!("{}: exec sets", app.name),
        ok: from_trace == from_oracle,
        detail: if from_trace == from_oracle {
            format!("{} operations, identical function sets", from_trace.len())
        } else {
            format!("trace sees {} operations, oracle sees {}", from_trace.len(), from_oracle.len())
        },
    });

    // 2. ET (Equation 2): recompute from the oracle's execution sets
    //    and the matrix's needed-byte counts, compare against the
    //    evaluation's own series.
    let series = et_by_task(&eval);
    let module = &eval.opec.compile.image.module;
    let resources = &eval.opec.compile.resources;
    let oracle_et: Vec<f64> = from_oracle
        .iter()
        .map(|(op, funcs)| {
            let used: BTreeSet<GlobalId> =
                funcs.iter().flat_map(|f| resources.of(*f).globals()).collect();
            let needed = matrix.ops.get(usize::from(*op)).map(|e| e.needed_bytes).unwrap_or(0);
            et(bytes_of(module, &used), needed)
        })
        .collect();
    let ok = oracle_et.len() == series.opec.len()
        && oracle_et.iter().zip(&series.opec).all(|(a, b)| (a - b).abs() < EPS);
    crosschecks.push(CrossCheck {
        name: format!("{}: ET recompute", app.name),
        ok,
        detail: if ok {
            format!("{} tasks agree to {EPS}", oracle_et.len())
        } else {
            format!("oracle {oracle_et:?} vs report {:?}", series.opec)
        },
    });
    (case, crosschecks)
}

/// Runs one comparison application under ACES (Filename strategy) with
/// the oracle attached and cross-checks PT: Equation 1 recomputed from
/// the matrix's granted/needed byte counts against
/// [`pt_of_compartments`].
fn check_aces_app(app: &App) -> (CaseResult, Vec<CrossCheck>) {
    let (module, _) = (app.build)();
    let out = build_aces_image(module, app.board, AcesStrategy::Filename)
        .unwrap_or_else(|e| panic!("{} ACES build: {e}", app.name));
    let main_comp = out.comps.of(out.image.entry);
    let matrix = AccessMatrix::aces(
        &out.image.module,
        &out.comps,
        &out.regions,
        out.stack,
        app.board.flash.base,
        main_comp,
    );

    let reference = pt_of_compartments(&out.image.module, &out.comps, &out.regions);
    let matrix_pt: Vec<f64> = matrix
        .ops
        .iter()
        .map(|e| {
            if e.granted_bytes == 0 {
                0.0
            } else {
                e.granted_bytes.saturating_sub(e.needed_bytes) as f64 / e.granted_bytes as f64
            }
        })
        .collect();
    let ok = matrix_pt.len() == reference.len()
        && matrix_pt.iter().zip(&reference).all(|(a, b)| (a - b).abs() < EPS);
    let crosschecks = vec![CrossCheck {
        name: format!("{}: PT recompute", app.name),
        ok,
        detail: if ok {
            format!("{} compartments agree to {EPS}", matrix_pt.len())
        } else {
            format!("matrix {matrix_pt:?} vs report {reference:?}")
        },
    }];

    let rt = AcesRuntime::new(
        &out.image.module,
        out.comps.clone(),
        out.regions.clone(),
        app.board,
        out.stack,
        main_comp,
    );
    let (watcher, handle) = shadow(matrix, Obs::disabled());
    let mut machine = Machine::new(app.board);
    (app.setup)(&mut machine);
    let mut vm =
        Vm::builder(machine, out.image).supervisor(rt).watcher(watcher).build().expect("aces vm");
    let mut run_error = match vm.run(FUEL) {
        Ok(RunOutcome::Halted { .. }) => None,
        Ok(run) => Some(format!("did not halt: {run:?}")),
        Err(e) => Some(format!("{e}")),
    };
    if run_error.is_none() {
        if let Err(e) = (app.check)(&mut vm.machine) {
            run_error = Some(format!("workload check: {e}"));
        }
    }
    let st = handle.take();
    (state_case(app.name.to_string(), "ACES", &st, run_error), crosschecks)
}

fn join<T>(handle: thread::ScopedJoinHandle<'_, T>) -> T {
    handle.join().unwrap_or_else(|e| std::panic::resume_unwind(e))
}

/// Runs the whole differential check: all seven applications under
/// OPEC, the five comparison applications under ACES, and
/// `opts.seeds` generated firmwares under both stacks.
pub fn run_check(opts: &CheckOptions) -> CheckReport {
    let apps = all_apps();
    let cmp = aces_comparison_apps();
    let mut report = CheckReport::default();
    thread::scope(|s| {
        let opec: Vec<_> = apps.iter().map(|a| s.spawn(move || check_opec_app(a))).collect();
        let aces: Vec<_> = cmp.iter().map(|a| s.spawn(move || check_aces_app(a))).collect();
        for h in opec.into_iter().chain(aces) {
            let (case, crosschecks) = join(h);
            report.cases.push(case);
            report.crosschecks.extend(crosschecks);
        }
    });
    for seed in 0..opts.seeds {
        let spec = generate(seed);
        match run_opec(&spec, None) {
            Ok(v) => {
                let mut case = verdict_case(format!("gen[{seed}]"), "OPEC", &v);
                if !v.clean() && opts.shrink {
                    let small = shrink(
                        &spec,
                        |s| run_opec(s, None).is_ok_and(|v| v.total_divergences > 0),
                        SHRINK_BUDGET,
                    );
                    case.shrunk = Some(describe(&small));
                }
                report.cases.push(case);
            }
            Err(e) => report.cases.push(CaseResult {
                name: format!("gen[{seed}]"),
                system: "OPEC",
                divergences: Vec::new(),
                total: 0,
                checks: 0,
                probes: 0,
                switches: 0,
                run_error: Some(e),
                shrunk: None,
                note: None,
            }),
        }
        match run_aces(&spec) {
            Ok(v) => {
                let mut case = verdict_case(format!("gen[{seed}]"), "ACES", &v);
                if !v.clean() && opts.shrink {
                    let small = shrink(
                        &spec,
                        |s| run_aces(s).is_ok_and(|v| v.total_divergences > 0),
                        SHRINK_BUDGET,
                    );
                    case.shrunk = Some(describe(&small));
                }
                report.cases.push(case);
            }
            // ACES can reject a plan outright (group-region overflow on
            // MPU hardware limits) — a scalability property, not a
            // divergence.
            Err(e) => report.cases.push(CaseResult {
                name: format!("gen[{seed}]"),
                system: "ACES",
                divergences: Vec::new(),
                total: 0,
                checks: 0,
                probes: 0,
                switches: 0,
                run_error: None,
                shrunk: None,
                note: Some(format!("build skipped: {e}")),
            }),
        }
    }
    report
}

// ---------------------------------------------------------------------
// Cached-vs-plain lockstep (`check --lockstep`).
// ---------------------------------------------------------------------

/// Ring capacity for lockstep recorders: big enough that every app's
/// full event stream (functions included) fits without shedding, so the
/// streams are compared event for event, not just in aggregate.
const LOCKSTEP_RING: usize = 1 << 18;

/// Everything one lockstep side produced.
struct LockRun {
    /// Rendered event stream (the same format as the golden file).
    log: String,
    /// Aggregate metrics JSON.
    metrics: String,
    /// Total events emitted (including any the ring shed).
    total_events: u64,
    /// Accepted switches (the [`CaseResult::switches`] column).
    switches: u64,
    /// VM execution counters.
    stats: VmStats,
    /// How the run ended, rendered (outcome or error).
    outcome: String,
}

/// Runs one subject once under `mode` with a recorder attached.
fn lock_run<S: Supervisor>(
    image: Arc<LoadedImage>,
    supervisor: S,
    machine: Machine,
    mode: ExecMode,
) -> LockRun {
    let rec = Rc::new(RefCell::new(Recorder::with_capacity(LOCKSTEP_RING).with_funcs()));
    let mut vm = Vm::builder(machine, image)
        .supervisor(supervisor)
        .exec_mode(mode)
        .obs(Obs::single(rec.clone()))
        .build()
        .expect("lockstep image");
    let outcome = match vm.run(FUEL) {
        Ok(o) => format!("{o:?}"),
        Err(e) => format!("error: {e}"),
    };
    let stats = vm.stats;
    drop(vm);
    let rec = Rc::try_unwrap(rec).expect("sole recorder handle").into_inner();
    LockRun {
        log: event_log(&rec.ring.to_vec()),
        metrics: metrics_json(&rec.metrics),
        total_events: rec.ring.total(),
        switches: rec.metrics.total_switches(),
        stats,
        outcome,
    }
}

/// Folds the two sides into a [`CaseResult`]; every difference is a
/// divergence. A trap is fine — as long as both modes trap identically.
fn compare_lock(name: String, system: &'static str, plain: &LockRun, dec: &LockRun) -> CaseResult {
    let mut divergences = Vec::new();
    if plain.outcome != dec.outcome {
        divergences.push(format!("outcome: plain {} vs decoded {}", plain.outcome, dec.outcome));
    }
    if plain.stats != dec.stats {
        divergences.push(format!("vm stats: plain {:?} vs decoded {:?}", plain.stats, dec.stats));
    }
    if plain.total_events != dec.total_events {
        divergences.push(format!(
            "event count: plain {} vs decoded {}",
            plain.total_events, dec.total_events
        ));
    }
    if plain.log != dec.log {
        divergences.push(first_log_diff(&plain.log, &dec.log));
    }
    if plain.metrics != dec.metrics {
        divergences.push("metrics aggregates differ".to_string());
    }
    CaseResult {
        name,
        system,
        total: divergences.len() as u64,
        divergences,
        checks: plain.total_events,
        probes: 0,
        switches: plain.switches,
        run_error: None,
        shrunk: None,
        note: Some("plain vs decoded lockstep".into()),
    }
}

/// The first differing event of two rendered streams.
fn first_log_diff(a: &str, b: &str) -> String {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("event stream diverges at event {i}: plain `{la}` vs decoded `{lb}`");
        }
    }
    format!(
        "event stream lengths differ: plain {} vs decoded {} events",
        a.lines().count(),
        b.lines().count()
    )
}

/// A subject that could not be built at all (neither side ran).
fn lock_error(name: String, system: &'static str, error: String) -> CaseResult {
    CaseResult {
        name,
        system,
        divergences: Vec::new(),
        total: 0,
        checks: 0,
        probes: 0,
        switches: 0,
        run_error: Some(error),
        shrunk: None,
        note: Some("plain vs decoded lockstep".into()),
    }
}

fn lockstep_opec_app(app: &App) -> CaseResult {
    let (module, specs) = (app.build)();
    match compile(module, app.board, &specs) {
        Ok(out) => {
            let policy = out.policy.clone();
            let image = Arc::new(out.image);
            let run = |mode| {
                let mut machine = Machine::new(app.board);
                (app.setup)(&mut machine);
                lock_run(image.clone(), OpecMonitor::new(policy.clone()), machine, mode)
            };
            let plain = run(ExecMode::Plain);
            let decoded = run(ExecMode::Decoded);
            compare_lock(app.name.to_string(), "OPEC", &plain, &decoded)
        }
        Err(e) => lock_error(app.name.to_string(), "OPEC", format!("compile: {e}")),
    }
}

fn lockstep_aces_app(app: &App) -> CaseResult {
    let (module, _) = (app.build)();
    match build_aces_image(module, app.board, AcesStrategy::Filename) {
        Ok(out) => {
            let main_comp = out.comps.of(out.image.entry);
            let image = Arc::new(out.image);
            let run = |mode| {
                let rt = AcesRuntime::new(
                    &image.module,
                    out.comps.clone(),
                    out.regions.clone(),
                    app.board,
                    out.stack,
                    main_comp,
                );
                let mut machine = Machine::new(app.board);
                (app.setup)(&mut machine);
                lock_run(image.clone(), rt, machine, mode)
            };
            let plain = run(ExecMode::Plain);
            let decoded = run(ExecMode::Decoded);
            compare_lock(app.name.to_string(), "ACES", &plain, &decoded)
        }
        Err(e) => lock_error(app.name.to_string(), "ACES", format!("ACES build: {e}")),
    }
}

fn lockstep_generated(seed: u64) -> CaseResult {
    let spec = generate(seed);
    let specs = spec.op_specs();
    match compile(spec.build_module(), spec.board(), &specs) {
        Ok(out) => {
            let policy = out.policy.clone();
            let image = Arc::new(out.image);
            let run = |mode| {
                let mut machine = Machine::new(spec.board());
                spec.install_devices(&mut machine);
                lock_run(image.clone(), OpecMonitor::new(policy.clone()), machine, mode)
            };
            let plain = run(ExecMode::Plain);
            let decoded = run(ExecMode::Decoded);
            compare_lock(format!("gen[{seed}]"), "OPEC", &plain, &decoded)
        }
        Err(e) => lock_error(format!("gen[{seed}]"), "OPEC", format!("compile: {e}")),
    }
}

/// Runs every subject twice — plain interpreter vs the pre-decoded
/// block cache — and reports any difference in the event stream, the
/// aggregate metrics, the execution counters, or the run outcome as a
/// divergence. This is the fast path's correctness contract: the cache
/// is an optimisation, never a semantic change.
///
/// Subjects: the seven paper applications under OPEC, the five
/// comparison applications under ACES, and `seeds` generated firmwares
/// under OPEC.
pub fn run_lockstep(seeds: u64) -> CheckReport {
    let apps = all_apps();
    let cmp = aces_comparison_apps();
    let mut report = CheckReport::default();
    thread::scope(|s| {
        let opec: Vec<_> = apps.iter().map(|a| s.spawn(move || lockstep_opec_app(a))).collect();
        let aces: Vec<_> = cmp.iter().map(|a| s.spawn(move || lockstep_aces_app(a))).collect();
        for h in opec.into_iter().chain(aces) {
            report.cases.push(join(h));
        }
    });
    for seed in 0..seeds {
        report.cases.push(lockstep_generated(seed));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinlock_is_divergence_free_with_agreeing_metrics() {
        let app = opec_apps::programs::pinlock::app();
        let (case, crosschecks) = check_opec_app(&app);
        assert!(!case.failed(), "{:?}", case);
        assert!(case.checks > 0 && case.probes > 0 && case.switches > 0);
        assert!(crosschecks.iter().all(|x| x.ok), "{crosschecks:?}");

        let (case, crosschecks) = check_aces_app(&app);
        assert!(!case.failed(), "{:?}", case);
        assert!(crosschecks.iter().all(|x| x.ok), "{crosschecks:?}");
    }

    #[test]
    fn pinlock_lockstep_has_zero_divergences() {
        let app = opec_apps::programs::pinlock::app();
        let case = lockstep_opec_app(&app);
        assert_eq!(case.total, 0, "OPEC: {:?}", case.divergences);
        assert!(case.run_error.is_none(), "{:?}", case.run_error);
        assert!(case.checks > 0 && case.switches > 0);
        let case = lockstep_aces_app(&app);
        assert_eq!(case.total, 0, "ACES: {:?}", case.divergences);
        let case = lockstep_generated(0);
        assert_eq!(case.total, 0, "gen[0]: {:?}", case.divergences);
    }

    #[test]
    fn report_json_is_wellformed_enough() {
        let report = CheckReport {
            cases: vec![CaseResult {
                name: "gen[0]".into(),
                system: "OPEC",
                divergences: vec!["op 1: escape \"quoted\"".into()],
                total: 1,
                checks: 10,
                probes: 4,
                switches: 2,
                run_error: None,
                shrunk: Some("seed 0\nmain: call op1".into()),
                note: None,
            }],
            crosschecks: vec![CrossCheck { name: "x".into(), ok: false, detail: "a\\b".into() }],
        };
        let json = report.to_json();
        assert!(json.contains("\"total_divergences\": 1"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("a\\\\b"));
        assert!(json.contains("\"failures\": 2"));
        assert_eq!(report.failures().len(), 2);
    }
}
