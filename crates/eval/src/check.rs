//! The `check` subcommand: the differential security oracle over the
//! whole pipeline.
//!
//! Runs every paper application under OPEC (and the five comparison
//! apps under ACES) with the [`opec_oracle`] shadow monitor attached,
//! plus a batch of seeded random firmwares under both stacks, and
//! reports every divergence between the enforcement layers and the
//! ground-truth access matrix. On top of the lockstep checks it
//! cross-validates the evaluation's own numbers: PT recomputed from
//! the matrix's granted/needed byte counts must equal
//! [`pt_of_compartments`], and ET recomputed from the oracle's
//! independently recorded execution sets must equal [`et_by_task`].
//!
//! Exit policy (enforced by `main`): any divergence, run error, or
//! failed cross-check is a failure. ACES build rejections of generated
//! firmwares (group-region overflow) are recorded as skips — that is
//! an ACES scalability property the paper discusses, not an oracle
//! disagreement.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use std::sync::Arc;

use opec_aces::{build_aces_image, AcesRuntime, AcesStrategy};
use opec_apps::programs::{aces_comparison_apps, all_apps};
use opec_apps::App;
use opec_armv7m::Machine;
use opec_campaign::json::{self, Value};
use opec_campaign::{run_campaign, CampaignOpts, CampaignReport, Job, JobOutcome, JobResult};
use opec_core::{compile, OpecMonitor};
use opec_ir::{GlobalId, Module};
use opec_obs::export::{event_log, metrics_json};
use opec_obs::{Obs, OpId, Recorder};
use opec_oracle::{
    describe, divergence_key, generate, run_aces_with, run_opec_on, shadow, shrink, AccessMatrix,
    Corpus, FirmwareSpec, OracleState, RunBudget, RunHalt, Verdict, GEN_FUEL,
};
use opec_vm::{ExecMode, LoadedImage, RunOutcome, Supervisor, Trace, Vm, VmError, VmStats};

use crate::backend::BackendSel;
use crate::engine::{EngineOpts, RunLimits};
use crate::metrics::{et_by_task, pt_of_compartments};
use crate::runs::{AppEval, OpecRun};

/// Tolerance for the PT/ET cross-checks: both sides are exact integer
/// byte ratios, so any disagreement beyond rounding is a real bug.
const EPS: f64 = 1e-9;

/// Shrink budget (pipeline re-runs) per divergent generated firmware.
const SHRINK_BUDGET: usize = 200;

/// Options for [`run_check`].
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// How many generated firmware seeds to run.
    pub seeds: u64,
    /// Shrink divergent generated firmwares to a minimal program.
    pub shrink: bool,
    /// Protection backend the OPEC stack runs on. The ACES comparison
    /// exists only on ARMv7-M; on other backends its cases are
    /// recorded as skip notes.
    pub backend: BackendSel,
    /// Fuzzing corpus directory: when set, `--shrink` consults the
    /// corpus for a smaller already-known plan covering the same
    /// divergence key and shrinks from the smaller of the two.
    pub corpus: Option<String>,
}

impl Default for CheckOptions {
    fn default() -> CheckOptions {
        CheckOptions { seeds: 16, shrink: false, backend: BackendSel::Armv7m, corpus: None }
    }
}

/// The oracle's verdict over one subject (one app or one generated
/// firmware under one enforcement stack).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseResult {
    /// Subject name (`PinLock`, `gen[7]`, ...).
    pub name: String,
    /// Enforcement stack (`OPEC` or `ACES`).
    pub system: &'static str,
    /// Rendered divergences (capped by the oracle).
    pub divergences: Vec<String>,
    /// Total divergence count (uncapped).
    pub total: u64,
    /// Lockstep access checks performed.
    pub checks: u64,
    /// MPU probes performed.
    pub probes: u64,
    /// Accepted switches observed.
    pub switches: u64,
    /// Terminal run error, if the run did not end cleanly.
    pub run_error: Option<String>,
    /// Shrunk counterexample description, when shrinking ran.
    pub shrunk: Option<String>,
    /// Non-failure annotation (e.g. an ACES build skip).
    pub note: Option<String>,
}

impl CaseResult {
    fn failed(&self) -> bool {
        self.total > 0 || self.run_error.is_some()
    }
}

/// One recomputed-metric agreement check.
#[derive(Debug, Clone)]
pub struct CrossCheck {
    /// What was compared.
    pub name: String,
    /// Whether the two derivations agree.
    pub ok: bool,
    /// Agreement summary or the first disagreement.
    pub detail: String,
}

/// Everything `check` produced.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// The protection backend the OPEC cases ran on.
    pub backend: &'static str,
    /// Per-subject oracle verdicts.
    pub cases: Vec<CaseResult>,
    /// Metric cross-checks.
    pub crosschecks: Vec<CrossCheck>,
}

impl Default for CheckReport {
    fn default() -> CheckReport {
        CheckReport {
            backend: BackendSel::Armv7m.name(),
            cases: Vec::new(),
            crosschecks: Vec::new(),
        }
    }
}

impl CheckReport {
    /// Every failure, rendered: divergent cases, run errors, failed
    /// cross-checks.
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for c in &self.cases {
            if c.total > 0 {
                out.push(format!("{} ({}): {} divergences", c.name, c.system, c.total));
            }
            if let Some(e) = &c.run_error {
                out.push(format!("{} ({}): run error: {e}", c.name, c.system));
            }
        }
        for x in &self.crosschecks {
            if !x.ok {
                out.push(format!("cross-check {}: {}", x.name, x.detail));
            }
        }
        out
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "Differential oracle (backend: {})\n===================\n",
            self.backend
        ));
        for c in &self.cases {
            let status = if c.failed() { "FAIL" } else { "  ok" };
            s.push_str(&format!(
                "{status}  {:<22} {:<4}  {:>3} divergences  {:>8} checks  {:>5} probes  {:>4} switches",
                c.name, c.system, c.total, c.checks, c.probes, c.switches
            ));
            if let Some(n) = &c.note {
                s.push_str(&format!("  [{n}]"));
            }
            s.push('\n');
            if let Some(e) = &c.run_error {
                s.push_str(&format!("      run error: {e}\n"));
            }
            for d in &c.divergences {
                s.push_str(&format!("      {d}\n"));
            }
            if let Some(sh) = &c.shrunk {
                s.push_str("      shrunk counterexample:\n");
                for line in sh.lines() {
                    s.push_str(&format!("        {line}\n"));
                }
            }
        }
        s.push_str("\nMetric cross-checks\n-------------------\n");
        for x in &self.crosschecks {
            let status = if x.ok { "  ok" } else { "FAIL" };
            s.push_str(&format!("{status}  {:<30} {}\n", x.name, x.detail));
        }
        let failures = self.failures();
        s.push_str(&format!(
            "\n{} cases, {} cross-checks, {} failures\n",
            self.cases.len(),
            self.crosschecks.len(),
            failures.len()
        ));
        s
    }

    /// Machine-readable artifact (the CI `oracle.json`).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
        }
        fn opt(s: &Option<String>) -> String {
            match s {
                Some(v) => format!("\"{}\"", esc(v)),
                None => "null".to_string(),
            }
        }
        let mut s = format!("{{\n  \"backend\": \"{}\",\n  \"cases\": [\n", self.backend);
        for (i, c) in self.cases.iter().enumerate() {
            let divs = c
                .divergences
                .iter()
                .map(|d| format!("\"{}\"", esc(d)))
                .collect::<Vec<_>>()
                .join(", ");
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"system\": \"{}\", \"total_divergences\": {}, \
                 \"checks\": {}, \"probes\": {}, \"switches\": {}, \"run_error\": {}, \
                 \"note\": {}, \"shrunk\": {}, \"divergences\": [{divs}]}}{}\n",
                esc(&c.name),
                c.system,
                c.total,
                c.checks,
                c.probes,
                c.switches,
                opt(&c.run_error),
                opt(&c.note),
                opt(&c.shrunk),
                if i + 1 < self.cases.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n  \"crosschecks\": [\n");
        for (i, x) in self.crosschecks.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"ok\": {}, \"detail\": \"{}\"}}{}\n",
                esc(&x.name),
                x.ok,
                esc(&x.detail),
                if i + 1 < self.crosschecks.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!("  ],\n  \"failures\": {}\n}}\n", self.failures().len()));
        s
    }
}

/// Whether (and how) a job's VM work was cut short by its budget.
/// Folded over every run the job performs, then mapped onto the
/// engine's [`JobResult`]: a watchdog stop may be transient host load
/// (retried once), fuel exhaustion is guest-deterministic (never
/// retried).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BudgetHalt {
    /// Every run finished within budget.
    Ran,
    /// A run exhausted its guest fuel budget.
    Fuel,
    /// The wall-clock watchdog stopped a run.
    Timeout,
}

impl BudgetHalt {
    pub(crate) fn from_oracle(halt: Option<RunHalt>) -> BudgetHalt {
        match halt {
            None => BudgetHalt::Ran,
            Some(RunHalt::FuelExhausted) => BudgetHalt::Fuel,
            Some(RunHalt::TimedOut) => BudgetHalt::Timeout,
        }
    }

    /// The more severe of two halts (`Timeout > Fuel > Ran`).
    fn worst(self, other: BudgetHalt) -> BudgetHalt {
        self.max(other)
    }

    pub(crate) fn result(self, payload: String) -> JobResult {
        match self {
            BudgetHalt::Ran => JobResult::Done(payload),
            BudgetHalt::Fuel => JobResult::FuelExhausted(payload),
            BudgetHalt::Timeout => JobResult::TimedOut(payload),
        }
    }
}

// ---------------------------------------------------------------------
// Journal payloads.
// ---------------------------------------------------------------------

/// Serialises a case as single-line JSON. [`case_from`] inverts it
/// field-for-field, so aggregates rendered from a resumed journal are
/// byte-identical to the uninterrupted run's.
fn case_json(c: &CaseResult) -> String {
    use std::fmt::Write as _;
    let opt = |v: &Option<String>| match v {
        Some(s) => format!("\"{}\"", json::escape(s)),
        None => "null".to_string(),
    };
    let mut s = format!(
        "{{\"name\":\"{}\",\"system\":\"{}\",\"total\":{},\"checks\":{},\"probes\":{},\
         \"switches\":{},\"run_error\":{},\"shrunk\":{},\"note\":{},\"divergences\":[",
        json::escape(&c.name),
        c.system,
        c.total,
        c.checks,
        c.probes,
        c.switches,
        opt(&c.run_error),
        opt(&c.shrunk),
        opt(&c.note),
    );
    for (i, d) in c.divergences.iter().enumerate() {
        write!(s, "{}\"{}\"", if i == 0 { "" } else { "," }, json::escape(d))
            .expect("write to String");
    }
    s.push_str("]}");
    s
}

/// Parses a [`case_json`] document back.
fn case_from(v: &Value) -> Result<CaseResult, String> {
    let text = |key: &str| v.get(key).and_then(Value::as_str).map(str::to_string);
    let num = |key: &str| v.get(key).and_then(Value::as_u64).ok_or_else(|| format!("no {key}"));
    let system = match v.get("system").and_then(Value::as_str) {
        Some("OPEC") => "OPEC",
        Some("ACES") => "ACES",
        other => return Err(format!("bad system {other:?}")),
    };
    Ok(CaseResult {
        name: text("name").ok_or("no name")?,
        system,
        divergences: v
            .get("divergences")
            .and_then(Value::as_arr)
            .ok_or("no divergences")?
            .iter()
            .map(|d| d.as_str().map(str::to_string).ok_or("bad divergence".to_string()))
            .collect::<Result<Vec<_>, _>>()?,
        total: num("total")?,
        checks: num("checks")?,
        probes: num("probes")?,
        switches: num("switches")?,
        run_error: text("run_error"),
        shrunk: text("shrunk"),
        note: text("note"),
    })
}

fn crosscheck_json(x: &CrossCheck) -> String {
    format!(
        "{{\"name\":\"{}\",\"ok\":{},\"detail\":\"{}\"}}",
        json::escape(&x.name),
        x.ok,
        json::escape(&x.detail)
    )
}

fn crosscheck_from(v: &Value) -> Result<CrossCheck, String> {
    Ok(CrossCheck {
        name: v.get("name").and_then(Value::as_str).ok_or("no name")?.to_string(),
        ok: v.get("ok").and_then(Value::as_bool).ok_or("no ok")?,
        detail: v.get("detail").and_then(Value::as_str).ok_or("no detail")?.to_string(),
    })
}

/// The case synthesised for a job that panicked on both attempts: the
/// subject is preserved in the report with the panic as its run error,
/// so a host bug is a visible failure, never a missing row.
fn panicked_case(name: String, system: &'static str, payload: &str) -> CaseResult {
    let msg = json::parse(payload)
        .ok()
        .and_then(|v| v.get("panic").and_then(Value::as_str).map(str::to_string))
        .unwrap_or_else(|| "lost payload".to_string());
    CaseResult {
        name,
        system,
        divergences: Vec::new(),
        total: 0,
        checks: 0,
        probes: 0,
        switches: 0,
        run_error: Some(format!("host panic: {msg}")),
        shrunk: None,
        note: None,
    }
}

fn bytes_of(module: &Module, globals: &BTreeSet<GlobalId>) -> u64 {
    globals.iter().map(|&g| u64::from(module.global_size(g).max(1))).sum()
}

fn et(used: u64, needed: u64) -> f64 {
    if needed == 0 {
        0.0
    } else {
        1.0 - (used.min(needed)) as f64 / needed as f64
    }
}

fn state_case(
    name: String,
    system: &'static str,
    st: &OracleState,
    run_error: Option<String>,
) -> CaseResult {
    CaseResult {
        name,
        system,
        divergences: st.divergences.iter().map(|d| d.to_string()).collect(),
        total: st.total_divergences,
        checks: st.checks,
        probes: st.probes,
        switches: st.switches,
        run_error,
        shrunk: None,
        note: None,
    }
}

fn verdict_case(name: String, system: &'static str, v: &Verdict) -> CaseResult {
    CaseResult {
        name,
        system,
        divergences: v.divergences.iter().map(|d| d.to_string()).collect(),
        total: v.total_divergences,
        checks: v.checks,
        probes: v.probes,
        switches: v.switches,
        run_error: v.run_error.clone(),
        shrunk: None,
        note: None,
    }
}

/// Runs one application under OPEC with the oracle attached and
/// cross-checks ET: the trace-derived execution sets against the
/// oracle's, and Equation 2 recomputed from the matrix against
/// [`et_by_task`].
pub fn check_opec_app(
    app: &App,
    limits: &RunLimits,
    sel: BackendSel,
) -> (CaseResult, Vec<CrossCheck>, BudgetHalt) {
    let backend = sel.dyn_backend();
    let (module, specs) = (app.build)();
    let out =
        compile(module, app.board, &specs).unwrap_or_else(|e| panic!("{} compile: {e}", app.name));
    let matrix = AccessMatrix::opec(&out.image.module, &out.partition, &out.policy)
        .with_boundary_granularity(backend.boundary_granularity(out.policy.stack));
    let trace = Rc::new(RefCell::new(Trace::new()));
    let obs = Obs::single(trace.clone());
    let (watcher, handle) = shadow(matrix.clone(), obs.clone());
    let mut machine = backend.make_machine(app.board);
    (app.setup)(&mut machine);
    let mut vm = Vm::builder(machine, out.image.clone())
        .supervisor(OpecMonitor::with_backend(out.policy.clone(), backend))
        .obs(obs)
        .watcher(watcher)
        .build()
        .expect("opec vm");
    vm.set_deadline(limits.deadline);
    // A budget stop is still a run error here — a paper app that fails
    // to halt within its budget is a check failure — but it is also
    // surfaced as the job's outcome, so the campaign summary and exit
    // code distinguish "bounded" from "diverged".
    let (cycles, mut run_error, halt) = match vm.run(limits.fuel) {
        Ok(run @ RunOutcome::Halted { .. }) => (run.cycles(), None, BudgetHalt::Ran),
        Ok(run) => (run.cycles(), Some(format!("did not halt: {run:?}")), BudgetHalt::Ran),
        Err(e @ VmError::OutOfFuel) => (0, Some(format!("{e}")), BudgetHalt::Fuel),
        Err(e @ VmError::TimedOut) => (0, Some(format!("{e}")), BudgetHalt::Timeout),
        Err(e) => (0, Some(format!("{e}")), BudgetHalt::Ran),
    };
    if run_error.is_none() {
        if let Err(e) = (app.check)(&mut vm.machine) {
            run_error = Some(format!("workload check: {e}"));
        }
    }
    let st = handle.take();
    let case = state_case(app.name.to_string(), "OPEC", &st, run_error);

    // The evaluation's view of the same run, for the ET cross-check.
    let eval = AppEval {
        name: app.name,
        board: app.board,
        base_cycles: 1,
        base_flash: 0,
        base_sram: 0,
        opec: Arc::new(OpecRun {
            cycles,
            flash_used: out.image.flash_used,
            sram_used: out.image.sram_used,
            trace: trace.borrow().clone(),
            monitor: vm.supervisor.stats,
            compile: out,
        }),
        aces: Vec::new(),
    };
    let mut crosschecks = Vec::new();

    // 1. Execution sets: the trace's per-task attribution vs the
    //    oracle's independent per-switch recording (op 0 is main's
    //    residue, which the trace's task list never reports).
    let mut from_trace: BTreeMap<OpId, BTreeSet<_>> = BTreeMap::new();
    for (op, _entry, funcs) in eval.opec.trace.tasks() {
        from_trace.entry(op).or_default().extend(funcs);
    }
    let from_oracle: BTreeMap<OpId, BTreeSet<_>> = st
        .exec
        .iter()
        .filter(|(op, _)| usize::from(**op) != 0)
        .map(|(op, fs)| (*op, fs.clone()))
        .collect();
    crosschecks.push(CrossCheck {
        name: format!("{}: exec sets", app.name),
        ok: from_trace == from_oracle,
        detail: if from_trace == from_oracle {
            format!("{} operations, identical function sets", from_trace.len())
        } else {
            format!("trace sees {} operations, oracle sees {}", from_trace.len(), from_oracle.len())
        },
    });

    // 2. ET (Equation 2): recompute from the oracle's execution sets
    //    and the matrix's needed-byte counts, compare against the
    //    evaluation's own series.
    let series = et_by_task(&eval);
    let module = &eval.opec.compile.image.module;
    let resources = &eval.opec.compile.resources;
    let oracle_et: Vec<f64> = from_oracle
        .iter()
        .map(|(op, funcs)| {
            let used: BTreeSet<GlobalId> =
                funcs.iter().flat_map(|f| resources.of(*f).globals()).collect();
            let needed = matrix.ops.get(usize::from(*op)).map(|e| e.needed_bytes).unwrap_or(0);
            et(bytes_of(module, &used), needed)
        })
        .collect();
    let ok = oracle_et.len() == series.opec.len()
        && oracle_et.iter().zip(&series.opec).all(|(a, b)| (a - b).abs() < EPS);
    crosschecks.push(CrossCheck {
        name: format!("{}: ET recompute", app.name),
        ok,
        detail: if ok {
            format!("{} tasks agree to {EPS}", oracle_et.len())
        } else {
            format!("oracle {oracle_et:?} vs report {:?}", series.opec)
        },
    });
    (case, crosschecks, halt)
}

/// Runs one comparison application under ACES (Filename strategy) with
/// the oracle attached and cross-checks PT: Equation 1 recomputed from
/// the matrix's granted/needed byte counts against
/// [`pt_of_compartments`].
fn check_aces_app(app: &App, limits: &RunLimits) -> (CaseResult, Vec<CrossCheck>, BudgetHalt) {
    let (module, _) = (app.build)();
    let out = build_aces_image(module, app.board, AcesStrategy::Filename)
        .unwrap_or_else(|e| panic!("{} ACES build: {e}", app.name));
    let main_comp = out.comps.of(out.image.entry);
    let matrix = AccessMatrix::aces(
        &out.image.module,
        &out.comps,
        &out.regions,
        out.stack,
        app.board.flash.base,
        main_comp,
    );

    let reference = pt_of_compartments(&out.image.module, &out.comps, &out.regions);
    let matrix_pt: Vec<f64> = matrix
        .ops
        .iter()
        .map(|e| {
            if e.granted_bytes == 0 {
                0.0
            } else {
                e.granted_bytes.saturating_sub(e.needed_bytes) as f64 / e.granted_bytes as f64
            }
        })
        .collect();
    let ok = matrix_pt.len() == reference.len()
        && matrix_pt.iter().zip(&reference).all(|(a, b)| (a - b).abs() < EPS);
    let crosschecks = vec![CrossCheck {
        name: format!("{}: PT recompute", app.name),
        ok,
        detail: if ok {
            format!("{} compartments agree to {EPS}", matrix_pt.len())
        } else {
            format!("matrix {matrix_pt:?} vs report {reference:?}")
        },
    }];

    let rt = AcesRuntime::new(
        &out.image.module,
        out.comps.clone(),
        out.regions.clone(),
        app.board,
        out.stack,
        main_comp,
    );
    let (watcher, handle) = shadow(matrix, Obs::disabled());
    let mut machine = Machine::new(app.board);
    (app.setup)(&mut machine);
    let mut vm =
        Vm::builder(machine, out.image).supervisor(rt).watcher(watcher).build().expect("aces vm");
    vm.set_deadline(limits.deadline);
    let (mut run_error, halt) = match vm.run(limits.fuel) {
        Ok(RunOutcome::Halted { .. }) => (None, BudgetHalt::Ran),
        Ok(run) => (Some(format!("did not halt: {run:?}")), BudgetHalt::Ran),
        Err(e @ VmError::OutOfFuel) => (Some(format!("{e}")), BudgetHalt::Fuel),
        Err(e @ VmError::TimedOut) => (Some(format!("{e}")), BudgetHalt::Timeout),
        Err(e) => (Some(format!("{e}")), BudgetHalt::Ran),
    };
    if run_error.is_none() {
        if let Err(e) = (app.check)(&mut vm.machine) {
            run_error = Some(format!("workload check: {e}"));
        }
    }
    let st = handle.take();
    (state_case(app.name.to_string(), "ACES", &st, run_error), crosschecks, halt)
}

/// The plan shrinking should start from: the divergent input itself,
/// or a strictly smaller corpus entry recorded under the same
/// divergence coverage key. A corpus entry's recorded coverage may
/// date from another backend or an older build, so the candidate is
/// re-verified to still diverge before it displaces the original —
/// otherwise shrinking would chase a stale reproducer and report a
/// "minimal" program that no longer exhibits the bug.
fn shrink_start<'a>(
    spec: &'a FirmwareSpec,
    v: &Verdict,
    corpus: Option<&'a Corpus>,
    diverges: &mut dyn FnMut(&FirmwareSpec) -> bool,
) -> &'a FirmwareSpec {
    let Some(corpus) = corpus else { return spec };
    for d in &v.divergences {
        let key = divergence_key(d.op, d.kind, d.layer);
        if let Some(entry) = corpus.smallest_with(key) {
            if entry.size() < spec.size() && diverges(&entry.spec) {
                return &entry.spec;
            }
        }
    }
    spec
}

/// One generated firmware under the OPEC stack on `sel`, within
/// `budget`.
fn gen_opec_case(
    spec: &FirmwareSpec,
    seed: u64,
    do_shrink: bool,
    budget: &RunBudget,
    sel: BackendSel,
    corpus: Option<&Corpus>,
) -> (CaseResult, BudgetHalt) {
    match run_opec_on(spec, None, budget, sel.dyn_backend()) {
        Ok(v) => {
            let mut case = verdict_case(format!("gen[{seed}]"), "OPEC", &v);
            let halt = BudgetHalt::from_oracle(v.halt);
            if halt != BudgetHalt::Ran {
                case.note = Some("stopped by budget".to_string());
            }
            if !v.clean() && do_shrink {
                let mut diverges = |s: &FirmwareSpec| {
                    run_opec_on(s, None, budget, sel.dyn_backend())
                        .is_ok_and(|v| v.total_divergences > 0)
                };
                let start = shrink_start(spec, &v, corpus, &mut diverges);
                let small = shrink(start, &mut diverges, SHRINK_BUDGET);
                case.shrunk = Some(describe(&small));
            }
            (case, halt)
        }
        Err(e) => (
            CaseResult {
                name: format!("gen[{seed}]"),
                system: "OPEC",
                divergences: Vec::new(),
                total: 0,
                checks: 0,
                probes: 0,
                switches: 0,
                run_error: Some(e),
                shrunk: None,
                note: None,
            },
            BudgetHalt::Ran,
        ),
    }
}

/// One generated firmware under the ACES stack, within `budget`.
fn gen_aces_case(
    spec: &FirmwareSpec,
    seed: u64,
    do_shrink: bool,
    budget: &RunBudget,
) -> (CaseResult, BudgetHalt) {
    match run_aces_with(spec, budget) {
        Ok(v) => {
            let mut case = verdict_case(format!("gen[{seed}]"), "ACES", &v);
            let halt = BudgetHalt::from_oracle(v.halt);
            if halt != BudgetHalt::Ran {
                case.note = Some("stopped by budget".to_string());
            }
            if !v.clean() && do_shrink {
                let small = shrink(
                    spec,
                    |s| run_aces_with(s, budget).is_ok_and(|v| v.total_divergences > 0),
                    SHRINK_BUDGET,
                );
                case.shrunk = Some(describe(&small));
            }
            (case, halt)
        }
        // ACES can reject a plan outright (group-region overflow on
        // MPU hardware limits) — a scalability property, not a
        // divergence.
        Err(e) => (
            CaseResult {
                name: format!("gen[{seed}]"),
                system: "ACES",
                divergences: Vec::new(),
                total: 0,
                checks: 0,
                probes: 0,
                switches: 0,
                run_error: None,
                shrunk: None,
                note: Some(format!("build skipped: {e}")),
            },
            BudgetHalt::Ran,
        ),
    }
}

/// Job-id fragment for an application name (journal id charset only).
fn job_slug(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || "._-".contains(c) { c } else { '-' })
        .collect()
}

/// Job-id segment for the backend: empty on ARMv7-M (the historical id
/// shape, so existing journals still resume) and `rv32-pmp/` on the
/// port — a journal written under one backend must never satisfy a
/// resume under the other.
pub(crate) fn backend_segment(sel: BackendSel) -> &'static str {
    match sel {
        BackendSel::Armv7m => "",
        BackendSel::Rv32Pmp => "rv32-pmp/",
    }
}

/// The ACES-side skip case recorded for every comparison subject when
/// the selected backend has no ACES port.
fn aces_skip_case(name: String, sel: BackendSel) -> CaseResult {
    CaseResult {
        name,
        system: "ACES",
        divergences: Vec::new(),
        total: 0,
        checks: 0,
        probes: 0,
        switches: 0,
        run_error: None,
        shrunk: None,
        note: Some(format!("skipped: ACES targets the ARMv7-M MPU, not {}", sel.name())),
    }
}

/// The oracle's generated-firmware budget for one job attempt: the
/// site default [`GEN_FUEL`] capped by the campaign budget, plus the
/// attempt's watchdog deadline.
pub(crate) fn gen_budget(limits: &RunLimits) -> RunBudget {
    RunBudget { fuel: limits.capped(GEN_FUEL), deadline: limits.deadline }
}

/// What kind of subject a check job runs — kept alongside the job list
/// so aggregation can synthesise the right case shape for a job that
/// panicked on both attempts.
#[derive(Clone, Copy)]
enum CheckJob<'a> {
    OpecApp(&'a App),
    AcesApp(&'a App),
    Gen(u64),
}

/// Runs the whole differential check: all seven applications under
/// OPEC, the five comparison applications under ACES, and
/// `opts.seeds` generated firmwares under both stacks — with default
/// supervision (no journal).
pub fn run_check(opts: &CheckOptions) -> CheckReport {
    run_check_campaign(opts, &EngineOpts::default()).expect("check campaign").0
}

/// [`run_check`] as a supervised campaign: one job per application and
/// one per generated seed (its OPEC and ACES runs share a payload),
/// with fuel budgets, a watchdog, panic containment, and
/// checkpoint/resume via the engine options.
pub fn run_check_campaign(
    opts: &CheckOptions,
    engine: &EngineOpts,
) -> Result<(CheckReport, CampaignReport), String> {
    run_check_with(opts, &engine.campaign_opts("check"))
}

/// [`run_check_campaign`] under explicit campaign options (the test
/// entry point: fault-injection hooks set directly, no env).
pub fn run_check_with(
    opts: &CheckOptions,
    copts: &CampaignOpts,
) -> Result<(CheckReport, CampaignReport), String> {
    let sel = opts.backend;
    let seg = backend_segment(sel);
    // Loaded once up front (re-minimized); shared read-only by every
    // generated-firmware job. Shrinking never mutates the corpus.
    let corpus = match &opts.corpus {
        Some(dir) => Some(Corpus::load(std::path::Path::new(dir))?),
        None => None,
    };
    let corpus = corpus.as_ref();
    let apps = all_apps();
    let cmp = aces_comparison_apps();
    let mut kinds: Vec<CheckJob<'_>> = Vec::new();
    kinds.extend(apps.iter().map(CheckJob::OpecApp));
    if sel.has_aces() {
        kinds.extend(cmp.iter().map(CheckJob::AcesApp));
    }
    kinds.extend((0..opts.seeds).map(CheckJob::Gen));
    let do_shrink = opts.shrink;

    let jobs: Vec<Job<'_>> = kinds
        .iter()
        .map(|&kind| match kind {
            CheckJob::OpecApp(app) => Job::new(
                format!("check/{seg}app/{}/opec", job_slug(app.name)),
                format!(
                    "{{\"app\":\"{}\",\"system\":\"OPEC\",\"backend\":\"{}\"}}",
                    json::escape(app.name),
                    sel.name()
                ),
                move |ctx| {
                    let limits = RunLimits::from_ctx(ctx);
                    let (case, xcs, halt) = check_opec_app(app, &limits, sel);
                    halt.result(app_payload(&case, &xcs))
                },
            ),
            CheckJob::AcesApp(app) => Job::new(
                format!("check/{seg}app/{}/aces", job_slug(app.name)),
                format!("{{\"app\":\"{}\",\"system\":\"ACES\"}}", json::escape(app.name)),
                move |ctx| {
                    let limits = RunLimits::from_ctx(ctx);
                    let (case, xcs, halt) = check_aces_app(app, &limits);
                    halt.result(app_payload(&case, &xcs))
                },
            ),
            CheckJob::Gen(seed) => Job::new(
                format!("check/{seg}gen/{seed}"),
                format!(
                    "{{\"seed\":{seed},\"shrink\":{do_shrink},\"backend\":\"{}\"}}",
                    sel.name()
                ),
                move |ctx| {
                    let budget = gen_budget(&RunLimits::from_ctx(ctx));
                    let spec = generate(seed);
                    let (opec_case, h1) =
                        gen_opec_case(&spec, seed, do_shrink, &budget, sel, corpus);
                    if !sel.has_aces() {
                        return h1.result(format!("{{\"opec\":{}}}", case_json(&opec_case)));
                    }
                    let (aces_case, h2) = gen_aces_case(&spec, seed, do_shrink, &budget);
                    h1.worst(h2).result(format!(
                        "{{\"opec\":{},\"aces\":{}}}",
                        case_json(&opec_case),
                        case_json(&aces_case)
                    ))
                },
            ),
        })
        .collect();
    let report = run_campaign(copts, &jobs)?;

    // Aggregate from the records alone, in job-definition order: the
    // same payload bytes produce the same report whether the job ran
    // now, was resumed from the journal, or panicked.
    let mut out = CheckReport { backend: sel.name(), ..CheckReport::default() };
    for (rec, &kind) in report.records.iter().zip(&kinds) {
        match (kind, rec.outcome) {
            (CheckJob::OpecApp(app), JobOutcome::Panicked) => {
                out.cases.push(panicked_case(app.name.to_string(), "OPEC", &rec.payload));
            }
            (CheckJob::AcesApp(app), JobOutcome::Panicked) => {
                out.cases.push(panicked_case(app.name.to_string(), "ACES", &rec.payload));
            }
            (CheckJob::Gen(seed), JobOutcome::Panicked) => {
                out.cases.push(panicked_case(format!("gen[{seed}]"), "OPEC", &rec.payload));
                if sel.has_aces() {
                    out.cases.push(panicked_case(format!("gen[{seed}]"), "ACES", &rec.payload));
                }
            }
            (CheckJob::OpecApp(_) | CheckJob::AcesApp(_), _) => {
                let (case, xcs) = app_payload_from(&rec.payload)?;
                out.cases.push(case);
                out.crosschecks.extend(xcs);
            }
            (CheckJob::Gen(_), _) => {
                let doc = json::parse(&rec.payload).map_err(|e| format!("gen payload: {e}"))?;
                let v = doc.get("opec").ok_or("gen payload: no opec")?;
                out.cases.push(case_from(v)?);
                match doc.get("aces") {
                    Some(v) => out.cases.push(case_from(v)?),
                    None if !sel.has_aces() => {}
                    None => return Err("gen payload: no aces".to_string()),
                }
            }
        }
    }
    // The ACES side is recorded as explicit skips on a backend without
    // an ACES port — visible in the report, never silently dropped.
    if !sel.has_aces() {
        for app in &cmp {
            out.cases.push(aces_skip_case(app.name.to_string(), sel));
        }
    }
    Ok((out, report))
}

/// The payload of one app job: its case plus its cross-checks.
fn app_payload(case: &CaseResult, xcs: &[CrossCheck]) -> String {
    use std::fmt::Write as _;
    let mut s = format!("{{\"case\":{},\"crosschecks\":[", case_json(case));
    for (i, x) in xcs.iter().enumerate() {
        write!(s, "{}{}", if i == 0 { "" } else { "," }, crosscheck_json(x))
            .expect("write to String");
    }
    s.push_str("]}");
    s
}

fn app_payload_from(payload: &str) -> Result<(CaseResult, Vec<CrossCheck>), String> {
    let doc = json::parse(payload).map_err(|e| format!("app payload: {e}"))?;
    let case = case_from(doc.get("case").ok_or("app payload: no case")?)?;
    let xcs = doc
        .get("crosschecks")
        .and_then(Value::as_arr)
        .ok_or("app payload: no crosschecks")?
        .iter()
        .map(crosscheck_from)
        .collect::<Result<Vec<_>, _>>()?;
    Ok((case, xcs))
}

// ---------------------------------------------------------------------
// Cached-vs-plain lockstep (`check --lockstep`).
// ---------------------------------------------------------------------

/// Ring capacity for lockstep recorders: big enough that every app's
/// full event stream (functions included) fits without shedding, so the
/// streams are compared event for event, not just in aggregate.
const LOCKSTEP_RING: usize = 1 << 18;

/// Everything one lockstep side produced.
struct LockRun {
    /// Rendered event stream (the same format as the golden file).
    log: String,
    /// Aggregate metrics JSON.
    metrics: String,
    /// Total events emitted (including any the ring shed).
    total_events: u64,
    /// Accepted switches (the [`CaseResult::switches`] column).
    switches: u64,
    /// VM execution counters.
    stats: VmStats,
    /// How the run ended, rendered (outcome or error).
    outcome: String,
}

/// Runs one subject once under `mode` with a recorder attached. The
/// second component reports whether the run was stopped by the fuel
/// budget (both modes burn identical fuel, so under a tight `--fuel`
/// the two sides halt at the same instruction and still compare equal).
fn lock_run<S: Supervisor>(
    image: Arc<LoadedImage>,
    supervisor: S,
    machine: Machine,
    mode: ExecMode,
    fuel: u64,
) -> (LockRun, bool) {
    let rec = Rc::new(RefCell::new(Recorder::with_capacity(LOCKSTEP_RING).with_funcs()));
    let mut vm = Vm::builder(machine, image)
        .supervisor(supervisor)
        .exec_mode(mode)
        .obs(Obs::single(rec.clone()))
        .build()
        .expect("lockstep image");
    let (outcome, halted) = match vm.run(fuel) {
        Ok(o) => (format!("{o:?}"), false),
        Err(e @ VmError::OutOfFuel) => (format!("error: {e}"), true),
        Err(e) => (format!("error: {e}"), false),
    };
    let stats = vm.stats;
    drop(vm);
    let rec = Rc::try_unwrap(rec).expect("sole recorder handle").into_inner();
    let run = LockRun {
        log: event_log(&rec.ring.to_vec()),
        metrics: metrics_json(&rec.metrics),
        total_events: rec.ring.total(),
        switches: rec.metrics.total_switches(),
        stats,
        outcome,
    };
    (run, halted)
}

/// Folds the two sides into a [`CaseResult`]; every difference is a
/// divergence. A trap is fine — as long as both modes trap identically.
fn compare_lock(name: String, system: &'static str, plain: &LockRun, dec: &LockRun) -> CaseResult {
    let mut divergences = Vec::new();
    if plain.outcome != dec.outcome {
        divergences.push(format!("outcome: plain {} vs decoded {}", plain.outcome, dec.outcome));
    }
    if plain.stats != dec.stats {
        divergences.push(format!("vm stats: plain {:?} vs decoded {:?}", plain.stats, dec.stats));
    }
    if plain.total_events != dec.total_events {
        divergences.push(format!(
            "event count: plain {} vs decoded {}",
            plain.total_events, dec.total_events
        ));
    }
    if plain.log != dec.log {
        divergences.push(first_log_diff(&plain.log, &dec.log));
    }
    if plain.metrics != dec.metrics {
        divergences.push("metrics aggregates differ".to_string());
    }
    CaseResult {
        name,
        system,
        total: divergences.len() as u64,
        divergences,
        checks: plain.total_events,
        probes: 0,
        switches: plain.switches,
        run_error: None,
        shrunk: None,
        note: Some("plain vs decoded lockstep".into()),
    }
}

/// The first differing event of two rendered streams.
fn first_log_diff(a: &str, b: &str) -> String {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("event stream diverges at event {i}: plain `{la}` vs decoded `{lb}`");
        }
    }
    format!(
        "event stream lengths differ: plain {} vs decoded {} events",
        a.lines().count(),
        b.lines().count()
    )
}

/// A subject that could not be built at all (neither side ran).
fn lock_error(name: String, system: &'static str, error: String) -> CaseResult {
    CaseResult {
        name,
        system,
        divergences: Vec::new(),
        total: 0,
        checks: 0,
        probes: 0,
        switches: 0,
        run_error: Some(error),
        shrunk: None,
        note: Some("plain vs decoded lockstep".into()),
    }
}

fn lockstep_opec_app(app: &App, fuel: u64, sel: BackendSel) -> (CaseResult, BudgetHalt) {
    let backend = sel.dyn_backend();
    let (module, specs) = (app.build)();
    match compile(module, app.board, &specs) {
        Ok(out) => {
            let policy = out.policy.clone();
            let image = Arc::new(out.image);
            let run = |mode| {
                let mut machine = backend.make_machine(app.board);
                (app.setup)(&mut machine);
                lock_run(
                    image.clone(),
                    OpecMonitor::with_backend(policy.clone(), Arc::clone(&backend)),
                    machine,
                    mode,
                    fuel,
                )
            };
            let (plain, h1) = run(ExecMode::Plain);
            let (decoded, h2) = run(ExecMode::Decoded);
            let halt = if h1 || h2 { BudgetHalt::Fuel } else { BudgetHalt::Ran };
            (compare_lock(app.name.to_string(), "OPEC", &plain, &decoded), halt)
        }
        Err(e) => {
            (lock_error(app.name.to_string(), "OPEC", format!("compile: {e}")), BudgetHalt::Ran)
        }
    }
}

fn lockstep_aces_app(app: &App, fuel: u64) -> (CaseResult, BudgetHalt) {
    let (module, _) = (app.build)();
    match build_aces_image(module, app.board, AcesStrategy::Filename) {
        Ok(out) => {
            let main_comp = out.comps.of(out.image.entry);
            let image = Arc::new(out.image);
            let run = |mode| {
                let rt = AcesRuntime::new(
                    &image.module,
                    out.comps.clone(),
                    out.regions.clone(),
                    app.board,
                    out.stack,
                    main_comp,
                );
                let mut machine = Machine::new(app.board);
                (app.setup)(&mut machine);
                lock_run(image.clone(), rt, machine, mode, fuel)
            };
            let (plain, h1) = run(ExecMode::Plain);
            let (decoded, h2) = run(ExecMode::Decoded);
            let halt = if h1 || h2 { BudgetHalt::Fuel } else { BudgetHalt::Ran };
            (compare_lock(app.name.to_string(), "ACES", &plain, &decoded), halt)
        }
        Err(e) => {
            (lock_error(app.name.to_string(), "ACES", format!("ACES build: {e}")), BudgetHalt::Ran)
        }
    }
}

fn lockstep_generated(seed: u64, fuel: u64, sel: BackendSel) -> (CaseResult, BudgetHalt) {
    let backend = sel.dyn_backend();
    let spec = generate(seed);
    let specs = spec.op_specs();
    match compile(spec.build_module(), spec.board(), &specs) {
        Ok(out) => {
            let policy = out.policy.clone();
            let image = Arc::new(out.image);
            let run = |mode| {
                let mut machine = backend.make_machine(spec.board());
                spec.install_devices(&mut machine);
                lock_run(
                    image.clone(),
                    OpecMonitor::with_backend(policy.clone(), Arc::clone(&backend)),
                    machine,
                    mode,
                    fuel,
                )
            };
            let (plain, h1) = run(ExecMode::Plain);
            let (decoded, h2) = run(ExecMode::Decoded);
            let halt = if h1 || h2 { BudgetHalt::Fuel } else { BudgetHalt::Ran };
            (compare_lock(format!("gen[{seed}]"), "OPEC", &plain, &decoded), halt)
        }
        Err(e) => {
            (lock_error(format!("gen[{seed}]"), "OPEC", format!("compile: {e}")), BudgetHalt::Ran)
        }
    }
}

/// Runs every subject twice — plain interpreter vs the pre-decoded
/// block cache — and reports any difference in the event stream, the
/// aggregate metrics, the execution counters, or the run outcome as a
/// divergence. This is the fast path's correctness contract: the cache
/// is an optimisation, never a semantic change.
///
/// Subjects: the seven paper applications under OPEC, the five
/// comparison applications under ACES, and `seeds` generated firmwares
/// under OPEC.
pub fn run_lockstep(seeds: u64, sel: BackendSel) -> CheckReport {
    run_lockstep_campaign(seeds, &EngineOpts::default(), sel).expect("lockstep campaign").0
}

/// [`run_lockstep`] as a supervised campaign: one job per subject and
/// mode pair. The watchdog stays disarmed (see
/// [`EngineOpts::lockstep_opts`]) — wall-clock differs between exec
/// modes, and a deadline would manufacture divergence — but the fuel
/// budget applies identically to both sides, so the equivalence
/// contract holds even on truncated runs.
pub fn run_lockstep_campaign(
    seeds: u64,
    engine: &EngineOpts,
    sel: BackendSel,
) -> Result<(CheckReport, CampaignReport), String> {
    run_lockstep_with(seeds, &engine.lockstep_opts("lockstep"), sel)
}

/// [`run_lockstep_campaign`] under explicit campaign options.
pub fn run_lockstep_with(
    seeds: u64,
    copts: &CampaignOpts,
    sel: BackendSel,
) -> Result<(CheckReport, CampaignReport), String> {
    let seg = backend_segment(sel);
    let apps = all_apps();
    let cmp = aces_comparison_apps();
    let mut kinds: Vec<CheckJob<'_>> = Vec::new();
    kinds.extend(apps.iter().map(CheckJob::OpecApp));
    if sel.has_aces() {
        kinds.extend(cmp.iter().map(CheckJob::AcesApp));
    }
    kinds.extend((0..seeds).map(CheckJob::Gen));

    let jobs: Vec<Job<'_>> = kinds
        .iter()
        .map(|&kind| match kind {
            CheckJob::OpecApp(app) => Job::new(
                format!("lockstep/{seg}app/{}/opec", job_slug(app.name)),
                format!(
                    "{{\"app\":\"{}\",\"system\":\"OPEC\",\"backend\":\"{}\"}}",
                    json::escape(app.name),
                    sel.name()
                ),
                move |ctx| {
                    let (case, halt) = lockstep_opec_app(app, ctx.fuel, sel);
                    halt.result(case_json(&case))
                },
            ),
            CheckJob::AcesApp(app) => Job::new(
                format!("lockstep/{seg}app/{}/aces", job_slug(app.name)),
                format!("{{\"app\":\"{}\",\"system\":\"ACES\"}}", json::escape(app.name)),
                move |ctx| {
                    let (case, halt) = lockstep_aces_app(app, ctx.fuel);
                    halt.result(case_json(&case))
                },
            ),
            CheckJob::Gen(seed) => Job::new(
                format!("lockstep/{seg}gen/{seed}"),
                format!("{{\"seed\":{seed},\"backend\":\"{}\"}}", sel.name()),
                move |ctx| {
                    let (case, halt) = lockstep_generated(seed, ctx.fuel, sel);
                    halt.result(case_json(&case))
                },
            ),
        })
        .collect();
    let report = run_campaign(copts, &jobs)?;

    let mut out = CheckReport { backend: sel.name(), ..CheckReport::default() };
    for (rec, &kind) in report.records.iter().zip(&kinds) {
        let (name, system) = match kind {
            CheckJob::OpecApp(app) => (app.name.to_string(), "OPEC"),
            CheckJob::AcesApp(app) => (app.name.to_string(), "ACES"),
            CheckJob::Gen(seed) => (format!("gen[{seed}]"), "OPEC"),
        };
        if rec.outcome == JobOutcome::Panicked {
            out.cases.push(panicked_case(name, system, &rec.payload));
        } else {
            let doc = json::parse(&rec.payload).map_err(|e| format!("lockstep payload: {e}"))?;
            out.cases.push(case_from(&doc)?);
        }
    }
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runs::FUEL;

    #[test]
    fn pinlock_is_divergence_free_with_agreeing_metrics() {
        let app = opec_apps::programs::pinlock::app();
        let limits = RunLimits::unsupervised();
        let (case, crosschecks, halt) = check_opec_app(&app, &limits, BackendSel::Armv7m);
        assert!(!case.failed(), "{:?}", case);
        assert!(case.checks > 0 && case.probes > 0 && case.switches > 0);
        assert!(crosschecks.iter().all(|x| x.ok), "{crosschecks:?}");
        assert_eq!(halt, BudgetHalt::Ran);

        let (case, crosschecks, halt) = check_aces_app(&app, &limits);
        assert!(!case.failed(), "{:?}", case);
        assert!(crosschecks.iter().all(|x| x.ok), "{crosschecks:?}");
        assert_eq!(halt, BudgetHalt::Ran);
    }

    #[test]
    fn pinlock_lockstep_has_zero_divergences() {
        let app = opec_apps::programs::pinlock::app();
        let (case, halt) = lockstep_opec_app(&app, FUEL, BackendSel::Armv7m);
        assert_eq!(case.total, 0, "OPEC: {:?}", case.divergences);
        assert!(case.run_error.is_none(), "{:?}", case.run_error);
        assert!(case.checks > 0 && case.switches > 0);
        assert_eq!(halt, BudgetHalt::Ran);
        let (case, _) = lockstep_aces_app(&app, FUEL);
        assert_eq!(case.total, 0, "ACES: {:?}", case.divergences);
        let (case, _) = lockstep_generated(0, FUEL, BackendSel::Armv7m);
        assert_eq!(case.total, 0, "gen[0]: {:?}", case.divergences);
    }

    #[test]
    fn lockstep_under_tight_fuel_halts_both_sides_identically() {
        // Fuel bounds the lockstep pair identically: both sides stop at
        // the same instruction, compare equal, and the job surfaces the
        // truncation as FuelExhausted instead of diverging or hanging.
        let app = opec_apps::programs::pinlock::app();
        let (case, halt) = lockstep_opec_app(&app, 10_000, BackendSel::Armv7m);
        assert_eq!(case.total, 0, "tight fuel: {:?}", case.divergences);
        assert_eq!(halt, BudgetHalt::Fuel);
    }

    #[test]
    fn case_payload_roundtrips_byte_identically() {
        let case = CaseResult {
            name: "gen[3]".into(),
            system: "OPEC",
            divergences: vec!["op 1: escape \"quoted\"".into(), "op 2".into()],
            total: 2,
            checks: 10,
            probes: 4,
            switches: 2,
            run_error: Some("late \\ fail".into()),
            shrunk: Some("seed 3\nmain: call op1".into()),
            note: Some("n".into()),
        };
        let payload = case_json(&case);
        let doc = json::parse(&payload).unwrap();
        let back = case_from(&doc).unwrap();
        assert_eq!(case, back);
        // And re-rendering yields the same bytes — the property the
        // journal's byte-identical resume relies on.
        assert_eq!(payload, case_json(&back));
    }

    #[test]
    fn report_json_is_wellformed_enough() {
        let report = CheckReport {
            backend: "armv7m",
            cases: vec![CaseResult {
                name: "gen[0]".into(),
                system: "OPEC",
                divergences: vec!["op 1: escape \"quoted\"".into()],
                total: 1,
                checks: 10,
                probes: 4,
                switches: 2,
                run_error: None,
                shrunk: Some("seed 0\nmain: call op1".into()),
                note: None,
            }],
            crosschecks: vec![CrossCheck { name: "x".into(), ok: false, detail: "a\\b".into() }],
        };
        let json = report.to_json();
        assert!(json.contains("\"total_divergences\": 1"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("a\\\\b"));
        assert!(json.contains("\"failures\": 2"));
        assert_eq!(report.failures().len(), 2);
    }

    #[test]
    fn shrink_starts_from_the_smaller_of_spec_and_corpus_entry() {
        use opec_obs::{OracleKind, OracleLayer};
        use opec_oracle::{CoverageMap, Divergence, Observed};

        let (a, b) = (generate(1), generate(2));
        let (small, big) = if a.size() <= b.size() { (a, b) } else { (b, a) };
        assert!(small.size() < big.size(), "seeds 1 and 2 must differ in size");

        let key = divergence_key(1, OracleKind::Escape, OracleLayer::Mpu);
        let mut v = Verdict::default();
        v.divergences.push(Divergence {
            op: 1,
            kind: OracleKind::Escape,
            layer: OracleLayer::Mpu,
            observed: Observed::Probe,
            addr: 0x0800_0000,
            size: 4,
            pc: 0,
            detail: "test".into(),
        });
        let mut corpus = Corpus::in_memory();
        corpus.admit(small.clone(), CoverageMap::from_features([key]));

        // Corpus holds a smaller entry for the same coverage key that
        // still diverges: shrink from it, not the original.
        let mut always = |_: &FirmwareSpec| true;
        assert_eq!(shrink_start(&big, &v, Some(&corpus), &mut always), &small);
        // No corpus bound: shrink from the original.
        assert_eq!(shrink_start(&big, &v, None, &mut always), &big);
        // The corpus entry went stale (no longer diverges): fall back
        // to the original instead of shrinking a clean plan.
        let mut never = |_: &FirmwareSpec| false;
        assert_eq!(shrink_start(&big, &v, Some(&corpus), &mut never), &big);
        // The corpus entry is not smaller than the failing spec: keep
        // the original (re-shrinking it can only do better).
        assert_eq!(shrink_start(&small, &v, Some(&corpus), &mut always), &small);
    }
}
