//! Renderers for every table and figure of the paper's evaluation.

use opec_apps::programs::{aces_comparison_apps, all_apps, pinlock};
use opec_armv7m::Machine;
use opec_core::{compile, OpecMonitor};
use opec_devices::{DeviceConfig, Uart};
use opec_vm::{link_baseline, GlobalSlot, Vm, VmError};

use crate::cache::EvalCache;
use crate::metrics::{cumulative, et_by_task, pt_of_compartments, table1_row};
use crate::runs::AppEval;
use crate::table::{f2, pct, TextTable};

/// Runs the seven applications (no ACES) — enough for Table 1,
/// Figure 9, and Table 3. Served from the process-wide [`EvalCache`],
/// so repeated calls (and the comparison pass) reuse the same runs.
pub fn run_all_apps() -> Vec<AppEval> {
    EvalCache::global().evaluate_many(&all_apps(), false)
}

/// Runs the five comparison applications including the three ACES
/// strategies — enough for Table 2, Figure 10, and Figure 11. The
/// baseline and OPEC runs are shared with [`run_all_apps`] through the
/// process-wide [`EvalCache`]; only the ACES builds are new work.
pub fn run_comparison_apps() -> Vec<AppEval> {
    EvalCache::global().evaluate_many(&aces_comparison_apps(), true)
}

/// Table 1: the security metrics.
pub fn table1(evals: &[AppEval]) -> String {
    let mut t =
        TextTable::new(&["Application", "#OPs", "#Avg. Funcs", "#Pri. Code(%)", "#Avg. GVars(%)"]);
    let mut sum = (0usize, 0.0, 0.0, 0.0, 0.0, 0.0);
    for e in evals {
        let r = table1_row(e);
        t.row(vec![
            r.app.clone(),
            r.ops.to_string(),
            f2(r.avg_funcs),
            format!("{}({})", r.pri_code_bytes, pct(r.pri_code_pct)),
            format!("{}({})", f2(r.avg_gvars_bytes), pct(r.avg_gvars_pct)),
        ]);
        sum.0 += r.ops;
        sum.1 += r.avg_funcs;
        sum.2 += r.pri_code_bytes as f64;
        sum.3 += r.pri_code_pct;
        sum.4 += r.avg_gvars_bytes;
        sum.5 += r.avg_gvars_pct;
    }
    let n = evals.len().max(1) as f64;
    t.row(vec![
        "Average".into(),
        f2(sum.0 as f64 / n),
        f2(sum.1 / n),
        format!("{}({})", f2(sum.2 / n), pct(sum.3 / n)),
        format!("{}({})", f2(sum.4 / n), pct(sum.5 / n)),
    ]);
    format!("Table 1: security metrics\n{}", t.render())
}

/// Figure 9: runtime / Flash / SRAM overhead per application.
pub fn figure9(evals: &[AppEval]) -> String {
    let mut t =
        TextTable::new(&["Application", "Runtime Overhead", "Flash Overhead", "SRAM Overhead"]);
    let (mut ro, mut fo, mut so) = (0.0, 0.0, 0.0);
    for e in evals {
        let r = e.runtime_overhead_pct();
        let f = e.flash_overhead_pct();
        let s = e.sram_overhead_pct();
        ro += r;
        fo += f;
        so += s;
        t.row(vec![e.name.to_string(), pct(r), pct(f), pct(s)]);
    }
    let n = evals.len().max(1) as f64;
    t.row(vec!["Average".into(), pct(ro / n), pct(fo / n), pct(so / n)]);
    format!("Figure 9: performance overhead of OPEC\n{}", t.render())
}

/// Table 2: OPEC vs the three ACES strategies on the comparison apps.
pub fn table2(evals: &[AppEval]) -> String {
    let mut t = TextTable::new(&["Application", "Policy", "RO(X)", "FO(%)", "SO(%)", "PAC(%)"]);
    for e in evals {
        t.row(vec![
            e.name.to_string(),
            "OPEC".into(),
            f2(e.opec.cycles as f64 / e.base_cycles as f64),
            f2(e.flash_overhead_pct()),
            f2(e.sram_overhead_pct()),
            "0.00".into(),
        ]);
        for a in &e.aces {
            t.row(vec![
                String::new(),
                a.strategy.label().to_string(),
                f2(a.runtime_ratio(e.base_cycles)),
                f2(a.flash_overhead_pct(e.base_flash, e.board)),
                f2(a.sram_overhead_pct(e.base_sram, e.board)),
                f2(a.pac_pct()),
            ]);
        }
    }
    format!(
        "Table 2: runtime/Flash/SRAM overhead and privileged application \
         code, OPEC vs ACES\n{}",
        t.render()
    )
}

/// Figure 10: cumulative distribution of the PT metric per ACES
/// strategy (OPEC's PT is 0 for every operation by construction).
pub fn figure10(evals: &[AppEval]) -> String {
    let mut out =
        String::from("Figure 10: cumulative ratio of PT (partition-time over-privilege)\n");
    for e in evals {
        out.push_str(&format!("\n[{}]\n", e.name));
        let module = &e.opec.compile.image.module;
        for a in &e.aces {
            let pts = pt_of_compartments(module, &a.comps, &a.regions);
            let cdf = cumulative(pts);
            out.push_str(&format!("  {}: ", a.strategy.label()));
            let series: Vec<String> =
                cdf.iter().map(|(pt, cum)| format!("({pt:.2},{cum:.2})")).collect();
            out.push_str(&series.join(" "));
            out.push('\n');
        }
        out.push_str("  OPEC  : PT = 0 for every operation (shadowing)\n");
    }
    out
}

/// Figure 11: ET per task for OPEC and the ACES strategies.
pub fn figure11(evals: &[AppEval]) -> String {
    let mut out = String::from("Figure 11: ET (execution-time over-privilege) per task\n");
    for e in evals {
        out.push_str(&format!("\n[{}]\n", e.name));
        let ets = et_by_task(e);
        let mut t = TextTable::new(&["Task", "Operation", "ACES-1", "ACES-2", "ACES-3", "OPEC"]);
        for (i, task) in ets.tasks.iter().enumerate() {
            let cell = |series: &[f64]| f2(series.get(i).copied().unwrap_or(0.0));
            t.row(vec![
                (i + 1).to_string(),
                task.clone(),
                ets.aces.first().map(|(_, s)| cell(s)).unwrap_or_default(),
                ets.aces.get(1).map(|(_, s)| cell(s)).unwrap_or_default(),
                ets.aces.get(2).map(|(_, s)| cell(s)).unwrap_or_default(),
                cell(&ets.opec),
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

/// Table 3: efficiency of the icall analysis.
pub fn table3(evals: &[AppEval]) -> String {
    let mut t =
        TextTable::new(&["Application", "#Icall", "#SVF", "Time(s)", "#Type", "#Avg.", "#Max"]);
    for e in evals {
        let ic = &e.opec.compile.report.icalls;
        t.row(vec![
            e.name.to_string(),
            ic.total.to_string(),
            ic.by_points_to.to_string(),
            format!("{:.4}", e.opec.compile.report.points_to_time.as_secs_f64()),
            ic.by_type.to_string(),
            f2(ic.avg_targets),
            ic.max_targets.to_string(),
        ]);
    }
    format!("Table 3: efficiency of the icall analysis\n{}", t.render())
}

/// Writes every table and figure as CSV files under `dir` (created if
/// missing), for plotting. One file per table; one file per app for
/// the per-app figures.
pub fn write_csv(
    dir: &std::path::Path,
    evals: &[AppEval],
    cmp: &[AppEval],
) -> std::io::Result<Vec<std::path::PathBuf>> {
    use std::io::Write;
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    let mut emit = |name: &str, content: String| -> std::io::Result<()> {
        let path = dir.join(name);
        let mut f = std::fs::File::create(&path)?;
        f.write_all(content.as_bytes())?;
        written.push(path);
        Ok(())
    };

    // Table 1.
    let mut t1 = String::from(
        "app,ops,avg_funcs,pri_code_bytes,pri_code_pct,avg_gvars_bytes,avg_gvars_pct
",
    );
    for e in evals {
        let r = table1_row(e);
        t1.push_str(&format!(
            "{},{},{:.2},{},{:.2},{:.2},{:.2}
",
            r.app,
            r.ops,
            r.avg_funcs,
            r.pri_code_bytes,
            r.pri_code_pct,
            r.avg_gvars_bytes,
            r.avg_gvars_pct
        ));
    }
    emit("table1.csv", t1)?;

    // Figure 9.
    let mut f9 = String::from(
        "app,runtime_overhead_pct,flash_overhead_pct,sram_overhead_pct
",
    );
    for e in evals {
        f9.push_str(&format!(
            "{},{:.4},{:.4},{:.4}
",
            e.name,
            e.runtime_overhead_pct(),
            e.flash_overhead_pct(),
            e.sram_overhead_pct()
        ));
    }
    emit("figure9.csv", f9)?;

    // Table 3.
    let mut t3 = String::from(
        "app,icalls,svf,time_s,type,avg_targets,max_targets
",
    );
    for e in evals {
        let ic = &e.opec.compile.report.icalls;
        t3.push_str(&format!(
            "{},{},{},{:.6},{},{:.2},{}
",
            e.name,
            ic.total,
            ic.by_points_to,
            e.opec.compile.report.points_to_time.as_secs_f64(),
            ic.by_type,
            ic.avg_targets,
            ic.max_targets
        ));
    }
    emit("table3.csv", t3)?;

    // Table 2.
    let mut t2 = String::from(
        "app,policy,ro_x,fo_pct,so_pct,pac_pct
",
    );
    for e in cmp {
        t2.push_str(&format!(
            "{},OPEC,{:.4},{:.4},{:.4},0.0
",
            e.name,
            e.opec.cycles as f64 / e.base_cycles as f64,
            e.flash_overhead_pct(),
            e.sram_overhead_pct()
        ));
        for a in &e.aces {
            t2.push_str(&format!(
                "{},{},{:.4},{:.4},{:.4},{:.4}
",
                e.name,
                a.strategy.label(),
                a.runtime_ratio(e.base_cycles),
                a.flash_overhead_pct(e.base_flash, e.board),
                a.sram_overhead_pct(e.base_sram, e.board),
                a.pac_pct()
            ));
        }
    }
    emit("table2.csv", t2)?;

    // Figure 10: one CSV per app, long format.
    for e in cmp {
        let module = &e.opec.compile.image.module;
        let mut f10 = String::from(
            "strategy,pt,cumulative_ratio
",
        );
        for a in &e.aces {
            let pts = pt_of_compartments(module, &a.comps, &a.regions);
            for (pt, cum) in cumulative(pts) {
                f10.push_str(&format!(
                    "{},{:.4},{:.4}
",
                    a.strategy.label(),
                    pt,
                    cum
                ));
            }
        }
        emit(&format!("figure10_{}.csv", e.name.to_lowercase().replace('-', "_")), f10)?;
    }

    // Figure 11: one CSV per app.
    for e in cmp {
        let ets = et_by_task(e);
        let mut f11 = String::from(
            "task,operation,aces1,aces2,aces3,opec
",
        );
        for (i, task) in ets.tasks.iter().enumerate() {
            let g = |k: usize| ets.aces.get(k).and_then(|(_, s)| s.get(i)).copied().unwrap_or(0.0);
            f11.push_str(&format!(
                "{},{},{:.4},{:.4},{:.4},{:.4}
",
                i + 1,
                task,
                g(0),
                g(1),
                g(2),
                ets.opec.get(i).copied().unwrap_or(0.0)
            ));
        }
        emit(&format!("figure11_{}.csv", e.name.to_lowercase().replace('-', "_")), f11)?;
    }
    Ok(written)
}

/// The §6.1 case study: a compromised `Lock_Task` tries to overwrite
/// `KEY` via the planted arbitrary-write bug. On the vanilla system the
/// attack unlocks the lock with a wrong pin; under OPEC the rogue write
/// raises a MemManage fault and the monitor stops the program.
pub fn case_study() -> String {
    let mut out = String::from("PinLock case study (paper Section 6.1)\n\n");
    let wrong_pin: &[u8; 4] = b"9999";
    let forged_key = opec_apps::libs::crypto::fnv1a(wrong_pin);

    // --- Vanilla system: the attack succeeds. ---
    let (module, _) = pinlock::build_vulnerable();
    let board = opec_armv7m::Board::stm32f4_discovery();
    let image = link_baseline(module, board).expect("link");
    let key = image.module.global_by_name("KEY").expect("KEY");
    let GlobalSlot::Fixed(key_addr) = image.global_slots[key.0 as usize] else {
        unreachable!("baseline slots are fixed")
    };
    let mut machine = Machine::new(board);
    opec_devices::install_standard_devices(&mut machine, DeviceConfig::default()).unwrap();
    feed_attack_script(&mut machine, key_addr, forged_key);
    let mut vm = Vm::builder(machine, image).build().expect("vm");
    vm.run(crate::runs::FUEL).expect("vanilla run");
    let uart: &mut Uart = vm.machine.device_as("USART2").unwrap();
    let tx = uart.take_tx();
    let second_attempt_unlocked = tx.get(1) == Some(&b'U');
    out.push_str(&format!(
        "Vanilla: attacker overwrites KEY at {key_addr:#010x} through the \
         Lock_Task input path,\n         then unlocks with the wrong pin \
         \"9999\" -> {}\n",
        if second_attempt_unlocked { "UNLOCKED (system compromised)" } else { "not unlocked" }
    ));

    // --- OPEC: the same attack is stopped. ---
    let (module, specs) = pinlock::build_vulnerable();
    let compiled = compile(module, board, &specs).expect("compile");
    let key = compiled.image.module.global_by_name("KEY").expect("KEY");
    let public_key_addr = compiled.policy.public_addrs[&key];
    let mut machine = Machine::new(board);
    opec_devices::install_standard_devices(&mut machine, DeviceConfig::default()).unwrap();
    feed_attack_script(&mut machine, public_key_addr, forged_key);
    let policy = compiled.policy.clone();
    let mut vm = Vm::builder(machine, compiled.image)
        .supervisor(OpecMonitor::new(policy))
        .build()
        .expect("vm");
    match vm.run(crate::runs::FUEL) {
        Err(VmError::Aborted { trap: reason, pc }) => {
            out.push_str(&format!(
                "OPEC   : the same write to KEY's master copy at \
                 {public_key_addr:#010x} faults at pc {pc:#010x}\n         \
                 and the monitor stops the program: {reason}\n",
            ));
        }
        other => {
            out.push_str(&format!("OPEC   : UNEXPECTED outcome {other:?} — isolation failed!\n"))
        }
    }
    out.push_str(
        "\nLock_Task's operation data section contains no shadow of KEY, so \
         no address the\nattacker can name from inside Lock_Task reaches \
         Unlock_Task's key material.\n",
    );
    out
}

/// Feeds the case-study input script: round 1 = normal unlock + attack
/// packet through Lock_Task; round 2 = the wrong pin (which unlocks iff
/// the overwrite landed); remaining rounds = normal traffic.
fn feed_attack_script(machine: &mut Machine, key_addr: u32, forged_key: u32) {
    let uart: &mut Uart = machine.device_as("USART2").unwrap();
    // Round 1: Unlock_Task sees the correct pin; Lock_Task receives the
    // exploit (magic + address + forged digest).
    uart.feed(pinlock::PIN);
    uart.feed(&[opec_apps::hal::uart::VULN_MAGIC, 0, 0, 0]);
    uart.feed(&key_addr.to_le_bytes());
    uart.feed(&forged_key.to_le_bytes());
    // Round 2: the wrong pin, then a normal lock.
    uart.feed(b"9999");
    uart.feed(pinlock::LOCK_CMD);
    // Remaining rounds: normal traffic.
    for _ in 2..pinlock::ROUNDS {
        uart.feed(pinlock::PIN);
        uart.feed(pinlock::LOCK_CMD);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_shows_compromise_then_containment() {
        let s = case_study();
        assert!(s.contains("UNLOCKED (system compromised)"), "{s}");
        assert!(s.contains("monitor stops the program"), "{s}");
        assert!(!s.contains("isolation failed"), "{s}");
    }

    #[test]
    fn report_renderers_produce_output() {
        // One cheap app end-to-end through every renderer.
        let evals = evaluate_many(&[opec_apps::programs::pinlock::app()], true);
        let t1 = table1(&evals);
        assert!(t1.contains("PinLock"));
        let f9 = figure9(&evals);
        assert!(f9.contains("Runtime Overhead"));
        let t2 = table2(&evals);
        assert!(t2.contains("ACES-1") && t2.contains("OPEC"));
        let f10 = figure10(&evals);
        assert!(f10.contains("ACES-2"));
        let f11 = figure11(&evals);
        assert!(f11.contains("Task"));
        let t3 = table3(&evals);
        assert!(t3.contains("#Icall"));
    }

    use crate::runs::evaluate_many;
}
