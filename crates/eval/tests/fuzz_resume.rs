//! Kill-and-resume regression for `opec-eval fuzz`.
//!
//! The fuzz campaign journals every job, and coverage is a feature
//! *set*, so a run killed mid-campaign and resumed from its journal
//! must end in exactly the state of an uninterrupted run: same corpus
//! entries (byte-identical on disk), same aggregate coverage digest —
//! resumed jobs replay their journaled payloads instead of re-running,
//! and replayed coverage must not be double-counted or drift.

use std::path::Path;
use std::process::Command;

const SEEDS: &str = "12";

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("opec-fuzz-resume-{}-{name}", std::process::id()))
}

fn fuzz_cmd(corpus: &Path, journal: Option<&Path>, json: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_opec-eval"));
    cmd.args(["fuzz", "--seeds", SEEDS, "--workers", "1"])
        .arg("--corpus")
        .arg(corpus)
        .arg("--json")
        .arg(json)
        .env_remove("OPEC_CAMPAIGN_KILL_AFTER");
    if let Some(j) = journal {
        cmd.arg("--journal").arg(j);
    }
    cmd
}

/// Sorted `(name, bytes)` of every corpus entry in `dir`.
fn corpus_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .map(|ent| {
            let p = ent.unwrap().path();
            (p.file_name().unwrap().to_string_lossy().into_owned(), std::fs::read(&p).unwrap())
        })
        .collect();
    out.sort();
    out
}

#[test]
fn killed_fuzz_campaign_resumes_to_the_uninterrupted_state() {
    let (control_dir, victim_dir) = (tmp("control"), tmp("victim"));
    let (control_json, victim_json) = (tmp("control.json"), tmp("victim.json"));
    let journal = tmp("journal.jsonl");
    for p in [&control_dir, &victim_dir] {
        std::fs::remove_dir_all(p).ok();
    }
    for p in [&control_json, &victim_json, &journal] {
        std::fs::remove_file(p).ok();
    }

    // The reference: one uninterrupted, journal-free run.
    let status = fuzz_cmd(&control_dir, None, &control_json).status().expect("spawn opec-eval");
    assert!(status.success(), "control run failed: {status:?}");

    // The victim: same campaign, journaled, killed after 5 journal
    // appends (std::process::abort — no save, no cleanup).
    let out = fuzz_cmd(&victim_dir, Some(&journal), &victim_json)
        .env("OPEC_CAMPAIGN_KILL_AFTER", "5")
        .output()
        .expect("spawn opec-eval");
    assert!(!out.status.success(), "kill_after=5 must abort the process");
    assert!(journal.exists(), "the abort must leave the journal behind");
    // The report file is opened up front but only written at the end —
    // the killed run must never have gotten there.
    assert_eq!(
        std::fs::metadata(&victim_json).map(|m| m.len()).unwrap_or(0),
        0,
        "the killed run must not have reached its report"
    );

    // Resume from the journal: completed jobs replay their journaled
    // payloads, the rest run live.
    let out =
        fuzz_cmd(&victim_dir, Some(&journal), &victim_json).output().expect("spawn opec-eval");
    assert!(out.status.success(), "resume failed: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("(0 resumed)"),
        "the resumed run must reuse journaled jobs, not restart: {stderr}"
    );

    // Byte-identical end state: every corpus entry, and the report's
    // aggregate coverage digest.
    let (control, resumed) = (corpus_files(&control_dir), corpus_files(&victim_dir));
    assert!(!control.is_empty(), "control run admitted no corpus entries");
    assert_eq!(
        control.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
        resumed.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
    );
    assert_eq!(control, resumed, "corpus entries differ after kill+resume");

    let control_report = std::fs::read_to_string(&control_json).unwrap();
    let resumed_report = std::fs::read_to_string(&victim_json).unwrap();
    for key in ["\"coverage_digest\"", "\"corpus_entries\"", "\"features\"", "\"new_entries\""] {
        let field = |s: &str| {
            s.lines()
                .find(|l| l.contains(key))
                .map(String::from)
                .unwrap_or_else(|| panic!("report missing {key}: {s}"))
        };
        assert_eq!(field(&control_report), field(&resumed_report), "{key} drifted");
    }

    for p in [&control_dir, &victim_dir] {
        std::fs::remove_dir_all(p).ok();
    }
    for p in [&control_json, &victim_json, &journal] {
        std::fs::remove_file(p).ok();
    }
}
