//! Cross-backend oracle agreement: the backend-independent access
//! matrix, checked in lockstep by the shadow watcher, must reach the
//! same verdict for every app on the ARMv7-M MPU and the RISC-V PMP.
//!
//! The matrix is derived from the partition and policy alone — neither
//! backend's region encoding enters it — so a divergence on exactly
//! one backend would mean that backend's plan (or its protection-unit
//! model) enforces something other than the policy. A divergence on
//! both would mean the compiler broke; either way this test pins the
//! §7 portability claim: same policy, same verdict, different
//! hardware.

use opec_apps::programs::all_apps;
use opec_eval::check::{check_opec_app, BudgetHalt, CaseResult};
use opec_eval::engine::RunLimits;
use opec_eval::BackendSel;

fn verdict(case: &CaseResult) -> Result<(), String> {
    if case.total > 0 {
        return Err(format!("{} divergences: {:?}", case.total, case.divergences));
    }
    if let Some(err) = &case.run_error {
        return Err(format!("run error: {err}"));
    }
    Ok(())
}

#[test]
fn access_matrix_verdicts_agree_on_both_backends() {
    let limits = RunLimits::unsupervised();
    for app in all_apps() {
        let mut verdicts = Vec::new();
        for sel in BackendSel::ALL {
            let (case, crosschecks, halt) = check_opec_app(&app, &limits, sel);
            assert!(
                matches!(halt, BudgetHalt::Ran),
                "{} on {}: run did not finish within budget ({halt:?})",
                app.name,
                sel.name()
            );
            assert!(case.checks > 0, "{} on {}: oracle saw no checks", app.name, sel.name());
            for cc in &crosschecks {
                assert!(
                    cc.ok,
                    "{} on {}: cross-check {} failed: {}",
                    app.name,
                    sel.name(),
                    cc.name,
                    cc.detail
                );
            }
            verdicts.push((sel, verdict(&case)));
        }
        // Same verdict on every backend — and that verdict is clean.
        for (sel, v) in &verdicts {
            assert_eq!(
                v,
                &Ok(()),
                "{} on {}: oracle verdict diverged from the other backend's clean run",
                app.name,
                sel.name()
            );
        }
    }
}
