//! Negative-path tests for the `opec-eval` command line: bad input must
//! exit nonzero *and* name the offending flag/operand, before any
//! expensive run starts. All paths here fail during argument
//! validation, so the tests are fast.

use std::process::Command;

fn run(args: &[&str]) -> (i32, String) {
    let out =
        Command::new(env!("CARGO_BIN_EXE_opec-eval")).args(args).output().expect("spawn opec-eval");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    (out.status.code().unwrap_or(-1), stderr)
}

#[test]
fn unknown_flag_exits_nonzero_and_names_it() {
    let (code, stderr) = run(&["table1", "--bogus"]);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stderr.contains("--bogus"), "stderr: {stderr}");
}

#[test]
fn foreign_flag_exits_nonzero_and_names_it() {
    // --shrink exists, but table1 does not take it.
    let (code, stderr) = run(&["table1", "--shrink"]);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stderr.contains("--shrink"), "stderr: {stderr}");
    assert!(stderr.contains("table1"), "stderr: {stderr}");
}

#[test]
fn valueless_flag_exits_nonzero() {
    let (code, stderr) = run(&["check", "--seeds"]);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stderr.contains("--seeds"), "stderr: {stderr}");
}

#[test]
fn unexpected_positional_exits_nonzero_and_names_it() {
    let (code, stderr) = run(&["check", "stray-operand"]);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stderr.contains("stray-operand"), "stderr: {stderr}");
}

#[test]
fn unknown_command_exits_nonzero() {
    let (code, stderr) = run(&["no-such-command"]);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stderr.contains("no-such-command"), "stderr: {stderr}");
}
