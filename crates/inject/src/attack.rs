//! The attack library: paper §7's scenarios as schedulable campaigns.

use opec_vm::{InjectAction, Injector, OpId};

use crate::prng::{hash_str, SplitMix64};

/// The attack classes of the campaign, mirroring the paper's §7
/// security evaluation (data attacks, peripheral attacks, monitor
/// attacks) plus physical-fault classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Write another operation's private data (the master copy of a
    /// secret the firing operation does not share).
    DataWrite,
    /// Read a peripheral register outside the operation's allow list.
    PeriphRead,
    /// Write a peripheral register outside the operation's allow list.
    PeriphWrite,
    /// Write a core (PPB) peripheral register without a policy grant.
    PpbWrite,
    /// Disable the MPU by writing `MPU_CTRL` from application code.
    MpuDisable,
    /// Overwrite a caller's stack frame from inside an operation.
    StackSmash,
    /// Overwrite a relocation-table entry to hijack shared-variable
    /// addressing (OPEC-specific infrastructure).
    RelocWrite,
    /// Corrupt the operation id of the next switch SVC.
    SvcCorrupt,
    /// Physically flip a bit of a sanitized variable's shadow so it
    /// leaves the operation out of range.
    ShadowBitFlip,
}

impl AttackKind {
    /// Every attack class, in matrix display order.
    pub const ALL: [AttackKind; 9] = [
        AttackKind::DataWrite,
        AttackKind::PeriphRead,
        AttackKind::PeriphWrite,
        AttackKind::PpbWrite,
        AttackKind::MpuDisable,
        AttackKind::StackSmash,
        AttackKind::RelocWrite,
        AttackKind::SvcCorrupt,
        AttackKind::ShadowBitFlip,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::DataWrite => "data-write",
            AttackKind::PeriphRead => "periph-read",
            AttackKind::PeriphWrite => "periph-write",
            AttackKind::PpbWrite => "ppb-write",
            AttackKind::MpuDisable => "mpu-disable",
            AttackKind::StackSmash => "stack-smash",
            AttackKind::RelocWrite => "reloc-write",
            AttackKind::SvcCorrupt => "svc-corrupt",
            AttackKind::ShadowBitFlip => "shadow-bitflip",
        }
    }

    /// Stable per-class salt mixed into the campaign seed.
    fn salt(self) -> u64 {
        hash_str(self.name())
    }
}

/// A concrete attack instance: which class, what to inject, and the
/// operations it is allowed to fire in.
#[derive(Debug, Clone, PartialEq)]
pub struct Attack {
    /// The attack class.
    pub kind: AttackKind,
    /// The perturbation to inject when triggered.
    pub action: InjectAction,
    /// Operations the attack may fire in (`None` = any). An attack that
    /// models a *compromised operation* must fire while that operation
    /// is current, so its access is judged against the right policy.
    pub fire_in_ops: Option<Vec<OpId>>,
}

impl Attack {
    /// An attack firing in any operation.
    pub fn anytime(kind: AttackKind, action: InjectAction) -> Attack {
        Attack { kind, action, fire_in_ops: None }
    }

    /// An attack firing only while one of `ops` is current.
    pub fn in_ops(kind: AttackKind, action: InjectAction, ops: Vec<OpId>) -> Attack {
        Attack { kind, action, fire_in_ops: Some(ops) }
    }
}

/// Fires one [`Attack`] exactly once, at a deterministic trigger step
/// derived from `(seed, app, attack class)`, and only while an allowed
/// operation is current.
#[derive(Debug, Clone)]
pub struct CampaignInjector {
    attack: Attack,
    trigger_step: u64,
    fired: bool,
}

/// Earliest trigger step: past reset + monitor initialisation.
const TRIGGER_MIN: u64 = 64;
/// Trigger window width; kept small against every workload's length so
/// campaigns fire well before the stop condition.
const TRIGGER_MAX: u64 = 2048;

impl CampaignInjector {
    /// Creates the injector for `attack` on application `app` under
    /// `seed`.
    pub fn new(attack: Attack, seed: u64, app: &str) -> CampaignInjector {
        let mut rng = SplitMix64::new(seed ^ hash_str(app) ^ attack.kind.salt());
        let trigger_step = rng.gen_range(TRIGGER_MIN, TRIGGER_MAX);
        CampaignInjector { attack, trigger_step, fired: false }
    }

    /// The step this campaign waits for (exposed for diagnostics).
    pub fn trigger_step(&self) -> u64 {
        self.trigger_step
    }
}

impl Injector for CampaignInjector {
    fn actions(&mut self, step: u64, current_op: OpId) -> Vec<InjectAction> {
        if self.fired || step < self.trigger_step {
            return Vec::new();
        }
        if let Some(ops) = &self.attack.fire_in_ops {
            if !ops.contains(&current_op) {
                return Vec::new();
            }
        }
        self.fired = true;
        vec![self.attack.action.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_fires_once_and_only_in_allowed_ops() {
        let attack = Attack::in_ops(
            AttackKind::DataWrite,
            InjectAction::HostileStore { addr: 0x2000_0000, size: 4, value: 1 },
            vec![2],
        );
        let mut inj = CampaignInjector::new(attack, 1, "PinLock");
        let t = inj.trigger_step();
        assert!((TRIGGER_MIN..TRIGGER_MAX).contains(&t));
        assert!(inj.actions(t.saturating_sub(1), 2).is_empty(), "before trigger");
        assert!(inj.actions(t, 1).is_empty(), "wrong operation");
        assert_eq!(inj.actions(t + 10, 2).len(), 1, "fires in the allowed op");
        assert!(inj.actions(t + 11, 2).is_empty(), "fires only once");
    }

    #[test]
    fn trigger_steps_are_deterministic_and_distinct() {
        let mk = |kind, seed, app: &str| {
            CampaignInjector::new(
                Attack::anytime(kind, InjectAction::FlipBit { addr: 0, bit: 0 }),
                seed,
                app,
            )
            .trigger_step()
        };
        assert_eq!(mk(AttackKind::DataWrite, 3, "A"), mk(AttackKind::DataWrite, 3, "A"));
        let distinct = [
            mk(AttackKind::DataWrite, 3, "A"),
            mk(AttackKind::PeriphRead, 3, "A"),
            mk(AttackKind::DataWrite, 4, "A"),
            mk(AttackKind::DataWrite, 3, "B"),
        ];
        assert!(distinct.windows(2).any(|w| w[0] != w[1]), "seeds/apps/kinds vary the step");
    }
}
