//! Scoring a campaign run into a containment verdict.

use opec_vm::{InjectAction, InjectOutcome, OpId, TrapCause, TrapError};

use crate::attack::AttackKind;

/// How a campaign run ended, as observed by the harness.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignResult {
    /// The workload reached its stop condition (halt or return).
    Completed,
    /// The VM terminated the run with a typed trap.
    Aborted(TrapError),
    /// The VM failed for a non-trap reason (frame limit, …).
    OtherError(String),
    /// The guest exhausted its deterministic instruction budget.
    FuelExhausted,
    /// The host wall-clock watchdog stopped the run.
    TimedOut,
    /// The *host* panicked — a robustness bug, never a valid outcome.
    Panicked(String),
}

/// The containment verdict for one `(app, config, attack, seed)` cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The isolation system stopped the attack with a typed trap
    /// attributed to the firing operation.
    Contained {
        /// Operation the trap was attributed to.
        op: OpId,
        /// Human-readable trap cause.
        cause: String,
    },
    /// The perturbation took effect and nothing stopped it.
    Escaped {
        /// What the attack achieved.
        evidence: String,
    },
    /// The host failed (panic or unattributable error).
    Crashed {
        /// The failure.
        detail: String,
    },
    /// The attack never fired in this configuration.
    NotApplicable,
    /// The run was bounded (fuel or wall clock) before the attack's
    /// effect could be judged — an unknown outcome, distinct from both
    /// a crash (host bug) and n/a (attack provably never fired).
    Undecided {
        /// Why the judgement could not be made.
        reason: String,
    },
}

impl Verdict {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Contained { .. } => "CONTAINED",
            Verdict::Escaped { .. } => "ESCAPED",
            Verdict::Crashed { .. } => "CRASHED",
            Verdict::NotApplicable => "n/a",
            Verdict::Undecided { .. } => "UNDECIDED",
        }
    }
}

/// Folds the VM's injection log and run result into a [`Verdict`].
///
/// The rules, in priority order:
///
/// 1. a host panic is always [`Verdict::Crashed`];
/// 2. a hostile access the supervisor trapped is
///    [`Verdict::Contained`] — in quarantine mode the run may still
///    have *completed*, which is the point of graceful degradation;
/// 3. a hostile access that went through ([`InjectOutcome::AccessOk`])
///    is [`Verdict::Escaped`], whatever happened afterwards;
/// 4. an applied bit flip or switch corruption is judged by how the
///    run ended: a typed abort (for [`AttackKind::ShadowBitFlip`],
///    specifically a sanitization abort) contains it, completion means
///    it escaped, and anything else crashed;
/// 5. a campaign that never fired (or only armed) is
///    [`Verdict::NotApplicable`].
pub fn score(
    kind: AttackKind,
    log: &[(InjectAction, InjectOutcome)],
    result: &CampaignResult,
) -> Verdict {
    if let CampaignResult::Panicked(detail) = result {
        return Verdict::Crashed { detail: clip(detail) };
    }
    for (action, outcome) in log {
        match outcome {
            InjectOutcome::Trapped(t) => {
                return Verdict::Contained { op: t.op, cause: t.cause.to_string() };
            }
            InjectOutcome::AccessOk { value } => {
                return Verdict::Escaped { evidence: evidence_for(action, *value) };
            }
            InjectOutcome::Applied => {
                return score_applied(kind, result);
            }
            InjectOutcome::Armed | InjectOutcome::Skipped => {}
        }
    }
    // Nothing decisive in the log. Fuel exhaustion keeps its
    // long-standing meaning here: attacks gated on operations the
    // workload never enters spin their fuel down without firing, and
    // that is a provable n/a. A watchdog stop, by contrast, says
    // nothing about the guest — the attack might have fired a cycle
    // later — so it stays unknown.
    if matches!(result, CampaignResult::TimedOut) {
        return Verdict::Undecided {
            reason: "watchdog stopped the run before the attack was judged".to_string(),
        };
    }
    Verdict::NotApplicable
}

/// Verdict for fire-and-observe actions (bit flips, switch
/// corruptions), where the effect shows up later in the run.
fn score_applied(kind: AttackKind, result: &CampaignResult) -> Verdict {
    match result {
        CampaignResult::Aborted(t) => {
            if kind == AttackKind::ShadowBitFlip
                && !matches!(t.cause, TrapCause::Sanitization { .. })
            {
                // The flip was caught, but not by the sanitizer it was
                // aimed at — still contained, but say so.
                return Verdict::Contained { op: t.op, cause: format!("(indirectly) {}", t.cause) };
            }
            Verdict::Contained { op: t.op, cause: t.cause.to_string() }
        }
        CampaignResult::Completed => Verdict::Escaped {
            evidence: format!("{} took effect and the run completed unchallenged", kind.name()),
        },
        CampaignResult::OtherError(e) => Verdict::Crashed { detail: clip(e) },
        CampaignResult::Panicked(e) => Verdict::Crashed { detail: clip(e) },
        // The perturbation was applied, but the run was bounded before
        // its effect resolved into a trap or a completion: neither
        // containment nor escape is proven.
        CampaignResult::FuelExhausted => Verdict::Undecided {
            reason: format!("fuel exhausted after {} was applied", kind.name()),
        },
        CampaignResult::TimedOut => Verdict::Undecided {
            reason: format!("watchdog fired after {} was applied", kind.name()),
        },
    }
}

fn evidence_for(action: &InjectAction, value: u32) -> String {
    match action {
        InjectAction::HostileLoad { addr, .. } => {
            format!("read {value:#010x} from {addr:#010x} out of policy")
        }
        InjectAction::HostileStore { addr, value: v, .. } => {
            format!("wrote {v:#010x} to {addr:#010x} out of policy")
        }
        InjectAction::SmashCallerStack { value: v } => {
            format!("overwrote the caller's stack frame with {v:#010x}")
        }
        other => format!("{other:?} succeeded"),
    }
}

fn clip(s: &str) -> String {
    const MAX: usize = 160;
    if s.len() <= MAX {
        s.to_string()
    } else {
        let mut end = MAX;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &s[..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opec_vm::TrapCause;

    fn trap() -> TrapError {
        TrapError::new(2, TrapCause::PolicyDeniedMem { address: 0x2000_0000, write: true })
    }

    #[test]
    fn trapped_hostile_access_is_contained_even_when_run_completes() {
        let log = vec![(
            InjectAction::HostileStore { addr: 0x2000_0000, size: 4, value: 1 },
            InjectOutcome::Trapped(trap()),
        )];
        // Quarantine mode: the run completed *and* the attack was
        // contained.
        let v = score(AttackKind::DataWrite, &log, &CampaignResult::Completed);
        assert!(matches!(v, Verdict::Contained { op: 2, .. }), "{v:?}");
    }

    #[test]
    fn permitted_hostile_access_is_an_escape() {
        let log = vec![(
            InjectAction::HostileLoad { addr: 0x4000_0000, size: 4 },
            InjectOutcome::AccessOk { value: 0xAB },
        )];
        let v = score(AttackKind::PeriphRead, &log, &CampaignResult::Completed);
        assert!(matches!(v, Verdict::Escaped { .. }), "{v:?}");
    }

    #[test]
    fn bit_flip_is_judged_by_how_the_run_ends() {
        let log =
            vec![(InjectAction::FlipBit { addr: 0x2000_0000, bit: 7 }, InjectOutcome::Applied)];
        let sanitize = TrapError::new(
            1,
            TrapCause::Sanitization { var: "g".into(), value: 128, lo: 0, hi: 1 },
        );
        let v = score(AttackKind::ShadowBitFlip, &log, &CampaignResult::Aborted(sanitize));
        assert!(matches!(v, Verdict::Contained { op: 1, .. }), "{v:?}");
        let v = score(AttackKind::ShadowBitFlip, &log, &CampaignResult::Completed);
        assert!(matches!(v, Verdict::Escaped { .. }), "{v:?}");
    }

    #[test]
    fn unfired_campaigns_and_panics_rank_correctly() {
        assert_eq!(score(AttackKind::SvcCorrupt, &[], &CampaignResult::Completed).label(), "n/a");
        let armed_only =
            vec![(InjectAction::CorruptNextSwitchOp { bogus: 9 }, InjectOutcome::Armed)];
        assert_eq!(
            score(AttackKind::SvcCorrupt, &armed_only, &CampaignResult::Completed).label(),
            "n/a"
        );
        let v = score(AttackKind::DataWrite, &[], &CampaignResult::Panicked("boom".into()));
        assert!(matches!(v, Verdict::Crashed { .. }), "{v:?}");
    }

    #[test]
    fn bounded_runs_are_undecided_not_crashed() {
        // An applied perturbation whose run was cut short by fuel or
        // the watchdog proves neither containment nor escape.
        let applied =
            vec![(InjectAction::FlipBit { addr: 0x2000_0000, bit: 7 }, InjectOutcome::Applied)];
        for result in [CampaignResult::FuelExhausted, CampaignResult::TimedOut] {
            let v = score(AttackKind::ShadowBitFlip, &applied, &result);
            assert_eq!(v.label(), "UNDECIDED", "{result:?} -> {v:?}");
        }
        // An undecisive log + fuel exhaustion keeps its historical
        // meaning: the attack provably never fired.
        assert_eq!(
            score(AttackKind::DataWrite, &[], &CampaignResult::FuelExhausted).label(),
            "n/a"
        );
        // …but a watchdog stop with an undecisive log is unknown.
        assert_eq!(
            score(AttackKind::DataWrite, &[], &CampaignResult::TimedOut).label(),
            "UNDECIDED"
        );
    }
}
