//! Seeded fault-injection and attack campaigns (paper §7).
//!
//! This crate turns the VM's raw [`opec_vm::Injector`] hook into a
//! reproducible *campaign*: an [`Attack`] names a perturbation (a
//! hostile access, a physical bit flip, a corrupted operation-switch)
//! and the operations it must fire in; a [`CampaignInjector`] fires it
//! exactly once at a deterministic, seed-derived trigger step; and
//! [`score`] folds the VM's injection log and run result into a
//! containment [`Verdict`]:
//!
//! * [`Verdict::Contained`] — the isolation system turned the attack
//!   into a typed trap attributed to the firing operation;
//! * [`Verdict::Escaped`] — the perturbation took effect and nothing
//!   stopped it (the expected outcome for the unprotected baseline);
//! * [`Verdict::Crashed`] — the *host* failed (a panic or an
//!   unattributable error), which the robustness work treats as a bug;
//! * [`Verdict::NotApplicable`] — the attack never fired (the workload
//!   ended first, or the target does not exist in this configuration).
//!
//! Everything is deterministic: the same `(seed, app, attack)` triple
//! always produces the same trigger step, so `opec-eval attack-matrix`
//! is replayable in CI.

#![warn(missing_docs)]

pub mod attack;
pub mod prng;
pub mod verdict;

pub use attack::{Attack, AttackKind, CampaignInjector};
pub use prng::SplitMix64;
pub use verdict::{score, CampaignResult, Verdict};
