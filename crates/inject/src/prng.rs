//! A tiny deterministic PRNG for campaign scheduling.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA '14) is the standard choice
//! for turning a user seed into well-mixed streams without external
//! dependencies: one add + three xor-shift-multiply steps per output,
//! full 2^64 period, and no state beyond a single word.

/// SplitMix64 generator state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Creates a generator from `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`. `hi` must be greater than `lo`; the
    /// modulo bias is irrelevant at campaign ranges (hi − lo ≪ 2^64).
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        lo + self.next_u64() % (hi - lo)
    }
}

/// FNV-1a of `s`, used to fold app names into campaign seeds.
pub fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixes() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Adjacent seeds diverge immediately.
        let mut c = SplitMix64::new(8);
        assert_ne!(xs[0], c.next_u64());
        // Range sampling stays in bounds.
        let mut d = SplitMix64::new(42);
        for _ in 0..100 {
            let v = d.gen_range(64, 2048);
            assert!((64..2048).contains(&v));
        }
    }

    #[test]
    fn hash_str_separates_app_names() {
        assert_ne!(hash_str("PinLock"), hash_str("Thermostat"));
        assert_eq!(hash_str("PinLock"), hash_str("PinLock"));
    }
}
