//! Shared helpers for the table/figure benchmark harness.
//!
//! Each Criterion bench in `benches/` regenerates one table or figure
//! of the paper (printing the rows/series) and then measures the code
//! paths behind it. `cargo bench` therefore both re-derives every
//! evaluation artifact and times the toolchain that produces it.

#![warn(missing_docs)]

use opec_apps::App;
use opec_armv7m::Machine;
use opec_core::{compile, CompileOutput, OpecMonitor};
use opec_vm::{link_baseline, RunOutcome, Vm};

/// Fuel for benchmark runs.
pub const FUEL: u64 = opec_vm::exec::DEFAULT_FUEL;

/// Compiles an app with OPEC (panicking on failure).
pub fn compile_app(app: &App) -> CompileOutput {
    let (module, specs) = (app.build)();
    compile(module, app.board, &specs).unwrap_or_else(|e| panic!("{} compile: {e}", app.name))
}

/// One full baseline run; returns cycles.
pub fn run_baseline_once(app: &App) -> u64 {
    let (module, _) = (app.build)();
    let image = link_baseline(module, app.board).expect("link");
    let mut machine = Machine::new(app.board);
    (app.setup)(&mut machine);
    let mut vm = Vm::builder(machine, image).build().expect("vm");
    match vm.run(FUEL).expect("baseline run") {
        RunOutcome::Halted { cycles } | RunOutcome::Returned { cycles, .. } => cycles,
    }
}

/// One full OPEC run; returns cycles.
pub fn run_opec_once(app: &App) -> u64 {
    let out = compile_app(app);
    let mut machine = Machine::new(app.board);
    (app.setup)(&mut machine);
    let policy = out.policy.clone();
    let mut vm =
        Vm::builder(machine, out.image).supervisor(OpecMonitor::new(policy)).build().expect("vm");
    match vm.run(FUEL).expect("OPEC run") {
        RunOutcome::Halted { cycles } | RunOutcome::Returned { cycles, .. } => cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_run_pinlock() {
        let app = opec_apps::programs::pinlock::app();
        assert!(run_baseline_once(&app) > 0);
        assert!(run_opec_once(&app) > 0);
    }
}
