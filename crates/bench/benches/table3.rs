//! Regenerates **Table 3** (efficiency of the icall analysis) and
//! measures the points-to solver — the literal "Time(s)" column of the
//! paper — plus call-graph construction per app.

use criterion::{criterion_group, criterion_main, Criterion};
use opec_analysis::{CallGraph, PointsTo};

fn bench(c: &mut Criterion) {
    let evals = opec_eval::report::run_all_apps();
    println!("\n{}", opec_eval::report::table3(&evals));

    let mut g = c.benchmark_group("table3/points-to");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    for app in opec_apps::all_apps() {
        let (module, _) = (app.build)();
        g.bench_function(format!("{}/svf", app.name), |b| {
            b.iter(|| std::hint::black_box(PointsTo::analyze(&module)));
        });
        let pt = PointsTo::analyze(&module);
        g.bench_function(format!("{}/callgraph", app.name), |b| {
            b.iter(|| std::hint::black_box(CallGraph::build(&module, &pt)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
