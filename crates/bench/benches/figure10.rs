//! Regenerates **Figure 10** (cumulative PT distributions under the
//! ACES strategies) and measures the region-grouping/merging pass that
//! produces the partition-time over-privilege.

use criterion::{criterion_group, criterion_main, Criterion};
use opec_aces::{AcesStrategy, Compartments, DataRegions};
use opec_analysis::{CallGraph, PointsTo, ResourceAnalysis};

fn bench(c: &mut Criterion) {
    let evals = opec_eval::report::run_comparison_apps();
    println!("\n{}", opec_eval::report::figure10(&evals));

    let mut g = c.benchmark_group("figure10/region-merging");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    for app in opec_apps::programs::aces_comparison_apps() {
        let (module, _) = (app.build)();
        let pt = PointsTo::analyze(&module);
        let cg = CallGraph::build(&module, &pt);
        let ra = ResourceAnalysis::analyze(&module, &pt);
        for strategy in
            [AcesStrategy::Filename, AcesStrategy::FilenameNoOpt, AcesStrategy::Peripheral]
        {
            let comps = Compartments::build(&module, &cg, &ra, strategy);
            g.bench_function(format!("{}/{}", app.name, strategy.label()), |b| {
                b.iter(|| std::hint::black_box(DataRegions::build(&module, &comps)));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
