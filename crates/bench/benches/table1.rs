//! Regenerates **Table 1** (security metrics) and measures the OPEC
//! compile pipeline (analysis + partition + layout + image) per app.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    // Regenerate the table once, so `cargo bench` reproduces the paper
    // artifact alongside the timings.
    let evals = opec_eval::report::run_all_apps();
    println!("\n{}", opec_eval::report::table1(&evals));

    let mut g = c.benchmark_group("table1/opec-compile");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    for app in opec_apps::all_apps() {
        g.bench_function(app.name, |b| {
            b.iter(|| std::hint::black_box(opec_bench::compile_app(&app)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
