//! Regenerates **Figure 9** (runtime / Flash / SRAM overhead of OPEC)
//! and measures full workload executions, baseline vs OPEC, per app.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let evals = opec_eval::report::run_all_apps();
    println!("\n{}", opec_eval::report::figure9(&evals));

    let mut g = c.benchmark_group("figure9/full-run");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    for app in opec_apps::all_apps() {
        g.bench_function(format!("{}/baseline", app.name), |b| {
            b.iter(|| std::hint::black_box(opec_bench::run_baseline_once(&app)));
        });
        g.bench_function(format!("{}/opec", app.name), |b| {
            b.iter(|| std::hint::black_box(opec_bench::run_opec_once(&app)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
