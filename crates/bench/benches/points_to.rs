//! Micro-benchmarks for the Andersen worklist solver and its hybrid
//! bitset: per-app end-to-end solves (the paper's Table 3 "Time(s)"
//! column at finer grain) plus synthetic stress shapes — a long copy
//! chain (difference propagation forwards each bit once per edge) and
//! a wide copy cycle (collapsed to one representative by the periodic
//! SCC pass).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use opec_analysis::bitset::BitSet;
use opec_analysis::PointsTo;
use opec_ir::module::BinOp;
use opec_ir::{ModuleBuilder, Operand, Ty};

/// `n` registers in a copy chain seeded by one address-of.
fn chain_module(n: u32) -> opec_ir::Module {
    let mut mb = ModuleBuilder::new("chain");
    let g = mb.global("seed", Ty::I32, "b.c");
    mb.func("chain", vec![], None, "b.c", |fb| {
        let mut r = fb.addr_of_global(g, 0);
        for _ in 1..n {
            let d = fb.reg();
            fb.mov(d, Operand::Reg(r));
            r = d;
        }
        let _ = fb.load(Operand::Reg(r), 4);
        fb.ret_void();
    });
    mb.finish()
}

/// `n` registers in one big copy cycle, plus pointer arithmetic edges.
fn cycle_module(n: u32) -> opec_ir::Module {
    let mut mb = ModuleBuilder::new("cycle");
    let g = mb.global("seed", Ty::I32, "b.c");
    mb.func("cycle", vec![], None, "b.c", |fb| {
        let first = fb.addr_of_global(g, 0);
        let mut regs = vec![first];
        for _ in 1..n {
            let prev = *regs.last().expect("non-empty");
            regs.push(fb.bin(BinOp::Add, Operand::Reg(prev), Operand::Imm(4)));
        }
        // Close the cycle.
        fb.mov(first, Operand::Reg(*regs.last().expect("non-empty")));
        fb.ret_void();
    });
    mb.finish()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("points_to/apps");
    g.sample_size(30);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for app in opec_apps::all_apps() {
        let (module, _) = (app.build)();
        g.bench_function(app.name, |b| {
            b.iter(|| black_box(PointsTo::analyze(&module)));
        });
    }
    g.finish();

    let mut g = c.benchmark_group("points_to/synthetic");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for n in [64u32, 512, 2048] {
        let m = chain_module(n);
        g.bench_function(format!("copy-chain/{n}"), |b| {
            b.iter(|| black_box(PointsTo::analyze(&m)));
        });
        let m = cycle_module(n);
        g.bench_function(format!("copy-cycle/{n}"), |b| {
            b.iter(|| black_box(PointsTo::analyze(&m)));
        });
    }
    g.finish();

    let mut g = c.benchmark_group("points_to/bitset");
    g.sample_size(50);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_secs(1));
    let sparse: BitSet = (0..8usize).map(|i| i * 97).collect();
    let dense: BitSet = (0..2048usize).filter(|i| i % 3 == 0).collect();
    g.bench_function("union_with/sparse-into-dense", |b| {
        b.iter(|| {
            let mut d = dense.clone();
            black_box(d.union_with(&sparse));
            d
        });
    });
    g.bench_function("union_into_delta/dense-into-dense", |b| {
        b.iter(|| {
            let mut d = sparse.clone();
            let mut delta = BitSet::new();
            black_box(d.union_into_delta(&dense, &mut delta));
            (d, delta)
        });
    });
    g.bench_function("iter/dense-2048", |b| {
        b.iter(|| dense.iter().sum::<usize>());
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
