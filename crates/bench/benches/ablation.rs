//! Ablations over OPEC's design choices (DESIGN.md §6):
//!
//! * **sync-cost** — how the operation-switch cost scales with the
//!   amount of shared (shadowed) data, the price of solving
//!   partition-time over-privilege by copying;
//! * **reloc-indirection** — the per-access cost of reaching external
//!   variables through the relocation table vs internal fixed slots;
//! * **sanitization** — the per-switch cost of range-checking shared
//!   variables;
//! * **mpu-virtualization** — fault-handler pressure as an operation's
//!   peripheral count exceeds the four reserved MPU regions.
//!
//! Each ablation prints the simulated-cycle numbers (the architectural
//! result) and Criterion measures one representative configuration
//! (the host-side cost of producing it).

use criterion::{criterion_group, criterion_main, Criterion};
use opec_armv7m::{Board, Machine};
use opec_core::{compile, OpecMonitor, OperationSpec};
use opec_ir::{BinOp, Module, ModuleBuilder, Operand, Ty};
use opec_vm::Vm;

const ROUNDS: u32 = 50;

/// Two tasks ping-ponging over `shared_words` shared words; main loops
/// `ROUNDS` times. Optionally every shared word carries a sanitization
/// range.
fn sync_module(shared_words: u32, sanitized: bool) -> (Module, Vec<OperationSpec>) {
    let mut mb = ModuleBuilder::new("ablate-sync");
    let ty = Ty::Array(Box::new(Ty::I32), shared_words);
    let shared = if sanitized {
        mb.sanitized_global("shared", ty, "m.c", (0, u32::MAX - 1))
    } else {
        mb.global("shared", ty, "m.c")
    };
    let t1 = mb.func("t1", vec![], None, "m.c", move |fb| {
        let v = fb.load_global(shared, 0, 4);
        let v2 = fb.bin(BinOp::Add, Operand::Reg(v), Operand::Imm(1));
        fb.store_global(shared, 0, Operand::Reg(v2), 4);
        fb.ret_void();
    });
    let t2 = mb.func("t2", vec![], None, "m.c", move |fb| {
        let _ = fb.load_global(shared, 0, 4);
        fb.ret_void();
    });
    mb.func("main", vec![], None, "m.c", move |fb| {
        opec_apps::builder::counted_loop(fb, Operand::Imm(ROUNDS), move |fb, _| {
            fb.call_void(t1, vec![]);
            fb.call_void(t2, vec![]);
        });
        fb.halt();
        fb.ret_void();
    });
    (mb.finish(), vec![OperationSpec::plain("t1"), OperationSpec::plain("t2")])
}

fn cycles_of(module: Module, specs: &[OperationSpec]) -> (u64, opec_core::MonitorStats) {
    let board = Board::stm32f4_discovery();
    let out = compile(module, board, specs).expect("compile");
    let policy = out.policy.clone();
    let mut machine = Machine::new(board);
    opec_devices::install_standard_devices(&mut machine, Default::default()).unwrap();
    let mut vm =
        Vm::builder(machine, out.image).supervisor(OpecMonitor::new(policy)).build().expect("vm");
    let cycles = vm.run(opec_bench::FUEL).expect("run").cycles();
    (cycles, vm.supervisor.stats)
}

fn ablate_sync_cost() {
    println!("\nAblation: switch cost vs shared-data size (cycles/switch)");
    println!("shared-bytes  cycles/switch  sync-bytes/switch");
    for words in [1u32, 4, 16, 64, 256] {
        let (module, specs) = sync_module(words, false);
        let (cycles, stats) = cycles_of(module, &specs);
        let (empty_module, empty_specs) = sync_module(1, false);
        let _ = (empty_module, empty_specs);
        let per_switch = cycles / stats.switches.max(1);
        println!(
            "{:>12}  {:>13}  {:>17}",
            words * 4,
            per_switch,
            stats.sync_bytes / stats.switches.max(1)
        );
    }
}

fn ablate_sanitization() {
    println!("\nAblation: sanitization on/off (total cycles)");
    for words in [4u32, 64] {
        let (m_off, s_off) = sync_module(words, false);
        let (c_off, _) = cycles_of(m_off, &s_off);
        let (m_on, s_on) = sync_module(words, true);
        let (c_on, st_on) = cycles_of(m_on, &s_on);
        println!(
            "  {} shared bytes: off={c_off} on={c_on} (+{:.2}%, {} checks)",
            words * 4,
            (c_on as f64 / c_off as f64 - 1.0) * 100.0,
            st_on.sanitize_checks
        );
    }
}

/// One task reading a global `n` times; the global is internal (fixed
/// slot) or external (relocation-table indirection) depending on
/// whether a second task shares it.
fn indirection_module(external: bool) -> (Module, Vec<OperationSpec>) {
    let mut mb = ModuleBuilder::new("ablate-reloc");
    let g = mb.global("g", Ty::I32, "m.c");
    let reader = mb.func("reader", vec![], None, "m.c", move |fb| {
        opec_apps::builder::counted_loop(fb, Operand::Imm(1000), move |fb, _| {
            let _ = fb.load_global(g, 0, 4);
        });
        fb.ret_void();
    });
    let other = mb.func("other", vec![], None, "m.c", move |fb| {
        if external {
            fb.store_global(g, 0, Operand::Imm(1), 4);
        }
        fb.ret_void();
    });
    mb.func("main", vec![], None, "m.c", move |fb| {
        fb.call_void(other, vec![]);
        fb.call_void(reader, vec![]);
        fb.halt();
        fb.ret_void();
    });
    (mb.finish(), vec![OperationSpec::plain("reader"), OperationSpec::plain("other")])
}

fn ablate_reloc_indirection() {
    println!("\nAblation: relocation-table indirection (1000 loads)");
    let (m_int, s_int) = indirection_module(false);
    let (c_int, _) = cycles_of(m_int, &s_int);
    let (m_ext, s_ext) = indirection_module(true);
    let (c_ext, _) = cycles_of(m_ext, &s_ext);
    println!(
        "  internal (fixed slot): {c_int} cycles; external (via table): {c_ext} \
         cycles (+{:.2} cycles/access)",
        (c_ext as f64 - c_int as f64) / 1000.0
    );
}

/// One operation touching `n` scattered peripherals `rounds` times.
fn periph_module(n: usize) -> (Module, Vec<OperationSpec>) {
    let addrs = [
        0x4000_0000u32, // TIM2
        0x4000_4408,    // USART2
        0x4001_1008,    // USART1
        0x4001_2C04,    // SDIO
        0x4001_6804,    // LCD
        0x4002_0000,    // GPIOA
        0x4002_3830,    // RCC
    ];
    let mut mb = ModuleBuilder::new("ablate-periph");
    for p in opec_devices::datasheet() {
        mb.peripheral(p.name, p.base, p.size, p.is_core);
    }
    let picks: Vec<u32> = addrs[..n].to_vec();
    let t = mb.func("touchy", vec![], None, "m.c", move |fb| {
        for a in &picks {
            fb.mmio_write(*a, Operand::Imm(1), 4);
        }
        fb.ret_void();
    });
    mb.func("main", vec![], None, "m.c", move |fb| {
        opec_apps::builder::counted_loop(fb, Operand::Imm(20), move |fb, _| {
            fb.call_void(t, vec![]);
        });
        fb.halt();
        fb.ret_void();
    });
    (mb.finish(), vec![OperationSpec::plain("touchy")])
}

fn ablate_mpu_virtualization() {
    println!("\nAblation: MPU virtualization pressure (4 reserved regions)");
    println!("peripherals  merged-windows  virt-faults  cycles");
    for n in [1usize, 3, 4, 5, 6, 7] {
        let (module, specs) = periph_module(n);
        let board = Board::stm32f4_discovery();
        let out = compile(module, board, &specs).expect("compile");
        let windows = out.policy.op(1).periph_windows.len();
        let policy = out.policy.clone();
        let mut machine = Machine::new(board);
        opec_devices::install_standard_devices(&mut machine, Default::default()).unwrap();
        let mut vm = Vm::builder(machine, out.image)
            .supervisor(OpecMonitor::new(policy))
            .build()
            .expect("vm");
        let cycles = vm.run(opec_bench::FUEL).expect("run").cycles();
        println!(
            "{:>11}  {:>14}  {:>11}  {:>6}",
            n, windows, vm.supervisor.stats.virt_faults, cycles
        );
    }
}

fn bench(c: &mut Criterion) {
    ablate_sync_cost();
    ablate_sanitization();
    ablate_reloc_indirection();
    ablate_mpu_virtualization();

    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("switch-with-256-shared-bytes", |b| {
        b.iter(|| {
            let (module, specs) = sync_module(64, false);
            std::hint::black_box(cycles_of(module, &specs))
        });
    });
    g.bench_function("virtualization-7-peripherals", |b| {
        b.iter(|| {
            let (module, specs) = periph_module(7);
            let board = Board::stm32f4_discovery();
            let out = compile(module, board, &specs).expect("compile");
            std::hint::black_box(out.image.flash_used)
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
