//! Regenerates **Table 2** (OPEC vs the three ACES strategies) and
//! measures full ACES workload executions on the comparison apps.

use criterion::{criterion_group, criterion_main, Criterion};
use opec_aces::{build_aces_image, AcesRuntime, AcesStrategy};
use opec_armv7m::Machine;
use opec_vm::Vm;

fn run_aces_once(app: &opec_apps::App, strategy: AcesStrategy) -> u64 {
    let (module, _) = (app.build)();
    let out = build_aces_image(module, app.board, strategy).expect("aces build");
    let main_comp = out.comps.of(out.image.entry);
    let rt = AcesRuntime::new(
        &out.image.module,
        out.comps,
        out.regions,
        app.board,
        out.stack,
        main_comp,
    );
    let mut machine = Machine::new(app.board);
    (app.setup)(&mut machine);
    let mut vm = Vm::builder(machine, out.image).supervisor(rt).build().expect("vm");
    vm.run(opec_bench::FUEL).expect("aces run").cycles()
}

fn bench(c: &mut Criterion) {
    let evals = opec_eval::report::run_comparison_apps();
    println!("\n{}", opec_eval::report::table2(&evals));

    let mut g = c.benchmark_group("table2/aces-run");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    for app in opec_apps::programs::aces_comparison_apps() {
        for strategy in
            [AcesStrategy::Filename, AcesStrategy::FilenameNoOpt, AcesStrategy::Peripheral]
        {
            g.bench_function(format!("{}/{}", app.name, strategy.label()), |b| {
                b.iter(|| std::hint::black_box(run_aces_once(&app, strategy)));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
