//! Regenerates **Figure 11** (ET per task for OPEC and ACES) and
//! measures the traced-execution + metric-computation path.

use criterion::{criterion_group, criterion_main, Criterion};
use opec_eval::runs::evaluate_app;

fn bench(c: &mut Criterion) {
    let evals = opec_eval::report::run_comparison_apps();
    println!("\n{}", opec_eval::report::figure11(&evals));

    let mut g = c.benchmark_group("figure11/et-metric");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    // Computing ET from an existing evaluation (trace segmentation +
    // per-task set algebra) is the interesting cost; measure it on the
    // app with the most tasks.
    let app = opec_apps::programs::lcd_usd::app();
    let eval = evaluate_app(&app, true);
    g.bench_function("LCD-uSD/et_by_task", |b| {
        b.iter(|| std::hint::black_box(opec_eval::et_by_task(&eval)));
    });
    g.bench_function("LCD-uSD/traced-run", |b| {
        b.iter(|| std::hint::black_box(evaluate_app(&app, false).opec.trace.len()));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
