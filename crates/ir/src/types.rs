//! The IR type system.
//!
//! Types matter to OPEC for three reasons: sizes and alignments decide
//! data-section layout and MPU region sizing; pointer fields of globals
//! must be enumerable so OPEC-Monitor can redirect them during operation
//! switches (paper Section 4.2 / 5.3); and function signatures drive the
//! type-based fallback resolution of indirect calls (Section 4.1).

/// Index of a struct definition in the module's [`TypeTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructId(pub u32);

/// An IR type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer (the native word).
    I32,
    /// Data pointer to `T` (4 bytes).
    Ptr(Box<Ty>),
    /// Function pointer carrying its signature id (4 bytes).
    FnPtr(SigKey),
    /// Fixed-length array.
    Array(Box<Ty>, u32),
    /// Named struct, defined in the [`TypeTable`].
    Struct(StructId),
}

/// The shape of a function type used for type-based icall resolution.
///
/// Two function types are considered identical when the number of
/// arguments, the kinds of pointer/struct arguments, and the return kind
/// all match — the paper's Section 4.1 rule.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SigKey {
    /// Abstract kinds of each parameter.
    pub params: Vec<ParamKind>,
    /// Whether the function returns a value, and its kind.
    pub ret: Option<ParamKind>,
}

/// Abstracted parameter kind for signature matching.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ParamKind {
    /// Any integer.
    Int,
    /// Pointer to a non-struct type.
    Ptr,
    /// Pointer to the named struct — struct identity participates in
    /// matching, per the paper.
    StructPtr(String),
    /// A function pointer.
    FnPtr,
}

/// A named struct definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Struct name (e.g. `UART_HandleTypeDef`).
    pub name: String,
    /// Ordered field types.
    pub fields: Vec<Ty>,
}

/// The module's struct table.
#[derive(Debug, Clone, Default)]
pub struct TypeTable {
    defs: Vec<StructDef>,
}

impl TypeTable {
    /// Creates an empty table.
    pub fn new() -> TypeTable {
        TypeTable::default()
    }

    /// Adds a struct definition and returns its id.
    pub fn add_struct(&mut self, def: StructDef) -> StructId {
        let id = StructId(self.defs.len() as u32);
        self.defs.push(def);
        id
    }

    /// Looks up a struct definition.
    pub fn get(&self, id: StructId) -> &StructDef {
        &self.defs[id.0 as usize]
    }

    /// Finds a struct by name.
    pub fn by_name(&self, name: &str) -> Option<StructId> {
        self.defs.iter().position(|d| d.name == name).map(|i| StructId(i as u32))
    }

    /// Number of struct definitions.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Returns `true` when no structs are defined.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Size of `ty` in bytes, including struct field alignment padding.
    pub fn size_of(&self, ty: &Ty) -> u32 {
        match ty {
            Ty::I8 => 1,
            Ty::I16 => 2,
            Ty::I32 | Ty::Ptr(_) | Ty::FnPtr(_) => 4,
            Ty::Array(elem, n) => self.size_of(elem) * n,
            Ty::Struct(id) => {
                let def = self.get(*id);
                let mut off = 0u32;
                let mut max_align = 1u32;
                for f in &def.fields {
                    let a = self.align_of(f);
                    max_align = max_align.max(a);
                    off = round_up(off, a) + self.size_of(f);
                }
                round_up(off, max_align)
            }
        }
    }

    /// Natural alignment of `ty` in bytes.
    pub fn align_of(&self, ty: &Ty) -> u32 {
        match ty {
            Ty::I8 => 1,
            Ty::I16 => 2,
            Ty::I32 | Ty::Ptr(_) | Ty::FnPtr(_) => 4,
            Ty::Array(elem, _) => self.align_of(elem),
            Ty::Struct(id) => {
                self.get(*id).fields.iter().map(|f| self.align_of(f)).max().unwrap_or(1)
            }
        }
    }

    /// Byte offsets, within a value of type `ty`, of every field that is
    /// a data or function pointer. OPEC-Compiler records these for each
    /// global so OPEC-Monitor can redirect pointers into shadow sections
    /// during an operation switch.
    pub fn pointer_field_offsets(&self, ty: &Ty) -> Vec<u32> {
        let mut out = Vec::new();
        self.collect_ptr_offsets(ty, 0, &mut out);
        out
    }

    fn collect_ptr_offsets(&self, ty: &Ty, base: u32, out: &mut Vec<u32>) {
        match ty {
            Ty::Ptr(_) | Ty::FnPtr(_) => out.push(base),
            Ty::Array(elem, n) => {
                let sz = self.size_of(elem);
                for i in 0..*n {
                    self.collect_ptr_offsets(elem, base + i * sz, out);
                }
            }
            Ty::Struct(id) => {
                let def = self.get(*id).clone();
                let mut off = 0u32;
                for f in &def.fields {
                    off = round_up(off, self.align_of(f));
                    self.collect_ptr_offsets(f, base + off, out);
                    off += self.size_of(f);
                }
            }
            Ty::I8 | Ty::I16 | Ty::I32 => {}
        }
    }

    /// Abstracts a type to its [`ParamKind`] for signature matching.
    pub fn param_kind(&self, ty: &Ty) -> ParamKind {
        match ty {
            Ty::Ptr(inner) => match inner.as_ref() {
                Ty::Struct(id) => ParamKind::StructPtr(self.get(*id).name.clone()),
                _ => ParamKind::Ptr,
            },
            Ty::FnPtr(_) => ParamKind::FnPtr,
            _ => ParamKind::Int,
        }
    }
}

fn round_up(v: u32, align: u32) -> u32 {
    debug_assert!(align.is_power_of_two());
    (v + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with_handle() -> (TypeTable, StructId) {
        let mut t = TypeTable::new();
        // struct UartHandle { u32 instance_ptr*; u8 state; u8* buf; u16 len; }
        let id = t.add_struct(StructDef {
            name: "UartHandle".into(),
            fields: vec![Ty::Ptr(Box::new(Ty::I32)), Ty::I8, Ty::Ptr(Box::new(Ty::I8)), Ty::I16],
        });
        (t, id)
    }

    #[test]
    fn scalar_sizes() {
        let t = TypeTable::new();
        assert_eq!(t.size_of(&Ty::I8), 1);
        assert_eq!(t.size_of(&Ty::I16), 2);
        assert_eq!(t.size_of(&Ty::I32), 4);
        assert_eq!(t.size_of(&Ty::Ptr(Box::new(Ty::I8))), 4);
        assert_eq!(t.size_of(&Ty::Array(Box::new(Ty::I16), 7)), 14);
    }

    #[test]
    fn struct_layout_with_padding() {
        let (t, id) = table_with_handle();
        // ptr(0..4) u8(4) pad(5..8) ptr(8..12) u16(12..14) pad to 16.
        assert_eq!(t.size_of(&Ty::Struct(id)), 16);
        assert_eq!(t.align_of(&Ty::Struct(id)), 4);
    }

    #[test]
    fn pointer_fields_enumerated() {
        let (t, id) = table_with_handle();
        assert_eq!(t.pointer_field_offsets(&Ty::Struct(id)), vec![0, 8]);
        let arr = Ty::Array(Box::new(Ty::Struct(id)), 2);
        assert_eq!(t.pointer_field_offsets(&arr), vec![0, 8, 16, 24]);
        assert!(t.pointer_field_offsets(&Ty::I32).is_empty());
    }

    #[test]
    fn param_kind_abstraction() {
        let (t, id) = table_with_handle();
        assert_eq!(t.param_kind(&Ty::I32), ParamKind::Int);
        assert_eq!(t.param_kind(&Ty::Ptr(Box::new(Ty::I8))), ParamKind::Ptr);
        assert_eq!(
            t.param_kind(&Ty::Ptr(Box::new(Ty::Struct(id)))),
            ParamKind::StructPtr("UartHandle".into())
        );
    }

    #[test]
    fn by_name_lookup() {
        let (t, id) = table_with_handle();
        assert_eq!(t.by_name("UartHandle"), Some(id));
        assert_eq!(t.by_name("Nope"), None);
    }
}
