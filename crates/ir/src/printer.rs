//! Human-readable IR dump, for debugging partitions and analyses.

use core::fmt::Write as _;

use crate::module::{Function, Inst, Module, Operand, Terminator};

fn op(o: &Operand) -> String {
    match o {
        Operand::Reg(r) => format!("r{}", r.0),
        Operand::Imm(v) => format!("{v:#x}"),
    }
}

/// Renders one instruction.
pub fn inst_to_string(m: &Module, f: &Function, i: &Inst) -> String {
    match i {
        Inst::Mov { dst, src } => format!("r{} = {}", dst.0, op(src)),
        Inst::Un { dst, op: o, src } => format!("r{} = {o:?} {}", dst.0, op(src)),
        Inst::Bin { dst, op: o, lhs, rhs } => {
            format!("r{} = {o:?} {}, {}", dst.0, op(lhs), op(rhs))
        }
        Inst::AddrOfGlobal { dst, global, offset } => {
            format!("r{} = &{} + {offset}", dst.0, m.global(*global).name)
        }
        Inst::AddrOfLocal { dst, local, offset } => {
            format!("r{} = &{} + {offset}", dst.0, f.locals[local.0 as usize].name)
        }
        Inst::AddrOfFunc { dst, func } => format!("r{} = &{}", dst.0, m.func(*func).name),
        Inst::LoadGlobal { dst, global, offset, size } => {
            format!("r{} = load.{size} {}[{offset}]", dst.0, m.global(*global).name)
        }
        Inst::StoreGlobal { global, offset, value, size } => {
            format!("store.{size} {}[{offset}], {}", m.global(*global).name, op(value))
        }
        Inst::Load { dst, addr, size } => format!("r{} = load.{size} [{}]", dst.0, op(addr)),
        Inst::Store { addr, value, size } => format!("store.{size} [{}], {}", op(addr), op(value)),
        Inst::Call { dst, callee, args } => {
            let args: Vec<_> = args.iter().map(op).collect();
            match dst {
                Some(d) => format!("r{} = call {}({})", d.0, m.func(*callee).name, args.join(", ")),
                None => format!("call {}({})", m.func(*callee).name, args.join(", ")),
            }
        }
        Inst::CallIndirect { dst, fptr, sig, args } => {
            let args: Vec<_> = args.iter().map(op).collect();
            match dst {
                Some(d) => {
                    format!("r{} = icall.s{} {}({})", d.0, sig.0, op(fptr), args.join(", "))
                }
                None => format!("icall.s{} {}({})", sig.0, op(fptr), args.join(", ")),
            }
        }
        Inst::Memcpy { dst, src, len } => {
            format!("memcpy({}, {}, {})", op(dst), op(src), op(len))
        }
        Inst::Memset { dst, val, len } => {
            format!("memset({}, {}, {})", op(dst), op(val), op(len))
        }
        Inst::Svc { imm } => format!("svc #{imm}"),
        Inst::Halt => "halt".into(),
        Inst::Nop => "nop".into(),
    }
}

/// Renders a whole function.
pub fn function_to_string(m: &Module, f: &Function) -> String {
    let mut s = String::new();
    let params: Vec<_> = f.params.iter().map(|p| p.name.clone()).collect();
    let _ = writeln!(s, "fn {}({}) // {}", f.name, params.join(", "), f.source_file);
    for (bi, b) in f.blocks.iter().enumerate() {
        let _ = writeln!(s, "b{bi}:");
        for i in &b.insts {
            let _ = writeln!(s, "  {}", inst_to_string(m, f, i));
        }
        let term = match &b.term {
            Terminator::Br(t) => format!("br b{}", t.0),
            Terminator::CondBr { cond, then_to, else_to } => {
                format!("br {} ? b{} : b{}", op(cond), then_to.0, else_to.0)
            }
            Terminator::Ret(Some(v)) => format!("ret {}", op(v)),
            Terminator::Ret(None) => "ret".into(),
            Terminator::Unreachable => "unreachable".into(),
        };
        let _ = writeln!(s, "  {term}");
    }
    s
}

/// Renders a whole module.
pub fn module_to_string(m: &Module) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "module {}", m.name);
    for g in &m.globals {
        let _ = writeln!(
            s,
            "global {} : {} bytes{}{}",
            g.name,
            m.types.size_of(&g.ty),
            if g.is_const { " const" } else { "" },
            g.valid_range.map(|(lo, hi)| format!(" range [{lo}, {hi}]")).unwrap_or_default(),
        );
    }
    for f in &m.funcs {
        s.push_str(&function_to_string(m, f));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ModuleBuilder;
    use crate::module::BinOp;
    use crate::types::Ty;

    #[test]
    fn printer_renders_all_constructs() {
        let mut mb = ModuleBuilder::new("demo");
        let g = mb.global("state", Ty::I32, "a.c");
        let helper = mb.func("helper", vec![("x", Ty::I32)], Some(Ty::I32), "a.c", |fb| {
            let r = fb.bin(BinOp::Add, Operand::Reg(fb.param(0)), Operand::Imm(1));
            fb.ret(Operand::Reg(r));
        });
        mb.func("entry", vec![], None, "a.c", |fb| {
            let v = fb.load_global(g, 0, 4);
            let fp = fb.addr_of_func(helper);
            let sig = fb.sig(crate::types::SigKey {
                params: vec![crate::types::ParamKind::Int],
                ret: Some(crate::types::ParamKind::Int),
            });
            let r = fb.icall(Operand::Reg(fp), sig, vec![Operand::Reg(v)]);
            fb.store_global(g, 0, Operand::Reg(r), 4);
            fb.svc(1);
            fb.ret_void();
        });
        let m = mb.finish();
        let text = module_to_string(&m);
        assert!(text.contains("fn entry"));
        assert!(text.contains("icall.s"));
        assert!(text.contains("svc #1"));
        assert!(text.contains("global state"));
    }

    use crate::module::Operand;

    #[test]
    fn printer_renders_branches_and_memory_ops() {
        let mut mb = ModuleBuilder::new("demo2");
        let g = mb.global("buf", Ty::Array(Box::new(Ty::I8), 8), "a.c");
        mb.func("f", vec![("n", Ty::I32)], None, "a.c", |fb| {
            let local = fb.local("tmp", Ty::I32);
            let t = fb.block();
            let e = fb.block();
            fb.cond_br(Operand::Reg(fb.param(0)), t, e);
            fb.switch_to(t);
            let p = fb.addr_of_local(local, 0);
            fb.store(Operand::Reg(p), Operand::Imm(1), 4);
            let q = fb.addr_of_global(g, 2);
            fb.memcpy(Operand::Reg(q), Operand::Reg(p), Operand::Imm(4));
            fb.ret_void();
            fb.switch_to(e);
            fb.halt();
            fb.ret_void();
        });
        let m = mb.finish();
        let text = module_to_string(&m);
        assert!(text.contains("br r0 ? b1 : b2"));
        assert!(text.contains("&tmp + 0"));
        assert!(text.contains("&buf + 2"));
        assert!(text.contains("memcpy("));
        assert!(text.contains("halt"));
    }
}
