//! Ergonomic builders for IR modules and functions.
//!
//! The seven evaluation workloads comprise hundreds of functions, so the
//! builder favours terseness: emitters return fresh registers, blocks are
//! created and targeted explicitly, and functions may be declared first
//! and defined later (needed for mutual recursion and for call sites that
//! reference functions defined further down).

use crate::module::{
    BinOp, Block, BlockId, FuncId, Function, Global, GlobalId, Inst, Local, LocalId, Module,
    Operand, Param, PeripheralDef, RegId, SigId, Terminator, UnOp,
};
use crate::types::{SigKey, StructDef, StructId, Ty};

/// Builds a [`Module`].
pub struct ModuleBuilder {
    module: Module,
    defined: Vec<bool>,
}

impl ModuleBuilder {
    /// Creates a builder for a module called `name`.
    pub fn new(name: impl Into<String>) -> ModuleBuilder {
        ModuleBuilder { module: Module::new(name), defined: Vec::new() }
    }

    /// Adds a struct definition.
    pub fn add_struct(&mut self, name: impl Into<String>, fields: Vec<Ty>) -> StructId {
        self.module.types.add_struct(StructDef { name: name.into(), fields })
    }

    /// Adds a zero-initialised mutable global.
    pub fn global(&mut self, name: impl Into<String>, ty: Ty, source_file: &str) -> GlobalId {
        self.add_global(name, ty, Vec::new(), false, source_file, None)
    }

    /// Adds a mutable global with explicit initial bytes.
    pub fn global_init(
        &mut self,
        name: impl Into<String>,
        ty: Ty,
        init: Vec<u8>,
        source_file: &str,
    ) -> GlobalId {
        self.add_global(name, ty, init, false, source_file, None)
    }

    /// Adds a constant (Flash-resident) global.
    pub fn const_global(
        &mut self,
        name: impl Into<String>,
        ty: Ty,
        init: Vec<u8>,
        source_file: &str,
    ) -> GlobalId {
        self.add_global(name, ty, init, true, source_file, None)
    }

    /// Adds a mutable global with a developer-provided sanitization range.
    pub fn sanitized_global(
        &mut self,
        name: impl Into<String>,
        ty: Ty,
        source_file: &str,
        range: (u32, u32),
    ) -> GlobalId {
        self.add_global(name, ty, Vec::new(), false, source_file, Some(range))
    }

    fn add_global(
        &mut self,
        name: impl Into<String>,
        ty: Ty,
        init: Vec<u8>,
        is_const: bool,
        source_file: &str,
        valid_range: Option<(u32, u32)>,
    ) -> GlobalId {
        let id = GlobalId(self.module.globals.len() as u32);
        self.module.globals.push(Global {
            name: name.into(),
            ty,
            init,
            is_const,
            source_file: source_file.into(),
            valid_range,
        });
        id
    }

    /// Registers a datasheet peripheral window.
    pub fn peripheral(
        &mut self,
        name: impl Into<String>,
        base: u32,
        size: u32,
        is_core: bool,
    ) -> &mut ModuleBuilder {
        self.module.peripherals.push(PeripheralDef { name: name.into(), base, size, is_core });
        self
    }

    /// Declares a function signature without a body; define it later with
    /// [`ModuleBuilder::define`].
    pub fn declare(
        &mut self,
        name: impl Into<String>,
        params: Vec<(&str, Ty)>,
        ret: Option<Ty>,
        source_file: &str,
    ) -> FuncId {
        let id = FuncId(self.module.funcs.len() as u32);
        self.module.funcs.push(Function {
            name: name.into(),
            params: params.into_iter().map(|(n, ty)| Param { name: n.to_string(), ty }).collect(),
            ret,
            locals: Vec::new(),
            num_regs: 0,
            blocks: Vec::new(),
            source_file: source_file.into(),
            is_irq_handler: false,
        });
        self.defined.push(false);
        id
    }

    /// Marks a declared function as an interrupt handler.
    pub fn mark_irq_handler(&mut self, id: FuncId) {
        self.module.funcs[id.0 as usize].is_irq_handler = true;
    }

    /// Defines the body of a previously declared function.
    ///
    /// # Panics
    ///
    /// Panics if the function is already defined.
    pub fn define(&mut self, id: FuncId, build: impl FnOnce(&mut FunctionBuilder<'_>)) {
        assert!(
            !self.defined[id.0 as usize],
            "function {} defined twice",
            self.module.funcs[id.0 as usize].name
        );
        let mut func = self.module.funcs[id.0 as usize].clone();
        func.num_regs = func.params.len() as u32;
        func.blocks.push(Block { insts: Vec::new(), term: Terminator::Unreachable });
        let mut fb = FunctionBuilder { module: &mut self.module, func, cur: BlockId(0) };
        build(&mut fb);
        let func = fb.func;
        self.module.funcs[id.0 as usize] = func;
        self.defined[id.0 as usize] = true;
    }

    /// Declares and defines a function in one step.
    pub fn func(
        &mut self,
        name: impl Into<String>,
        params: Vec<(&str, Ty)>,
        ret: Option<Ty>,
        source_file: &str,
        build: impl FnOnce(&mut FunctionBuilder<'_>),
    ) -> FuncId {
        let id = self.declare(name, params, ret, source_file);
        self.define(id, build);
        id
    }

    /// Interns a signature key on the module.
    pub fn sig(&mut self, key: SigKey) -> SigId {
        self.module.intern_sig(key)
    }

    /// Interns the signature of a declared function.
    pub fn sig_of(&mut self, func: FuncId) -> SigId {
        let key = self.module.funcs[func.0 as usize].sig_key(&self.module.types);
        self.module.intern_sig(key)
    }

    /// Read access to the module under construction.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Finishes the module.
    ///
    /// # Panics
    ///
    /// Panics if any declared function lacks a definition.
    pub fn finish(self) -> Module {
        for (i, defined) in self.defined.iter().enumerate() {
            assert!(*defined, "function {} declared but never defined", self.module.funcs[i].name);
        }
        self.module
    }
}

/// Builds one function's body.
pub struct FunctionBuilder<'m> {
    module: &'m mut Module,
    func: Function,
    cur: BlockId,
}

impl<'m> FunctionBuilder<'m> {
    /// Allocates a fresh virtual register.
    pub fn reg(&mut self) -> RegId {
        let r = RegId(self.func.num_regs);
        self.func.num_regs += 1;
        r
    }

    /// The register holding parameter `i` at entry.
    pub fn param(&self, i: usize) -> RegId {
        assert!(i < self.func.params.len(), "parameter index {i} out of range");
        RegId(i as u32)
    }

    /// Declares a stack local of type `ty`.
    pub fn local(&mut self, name: impl Into<String>, ty: Ty) -> LocalId {
        let id = LocalId(self.func.locals.len() as u32);
        self.func.locals.push(Local { name: name.into(), ty });
        id
    }

    /// Creates a new (empty, unterminated) block.
    pub fn block(&mut self) -> BlockId {
        let id = BlockId(self.func.blocks.len() as u32);
        self.func.blocks.push(Block { insts: Vec::new(), term: Terminator::Unreachable });
        id
    }

    /// Redirects emission to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.cur = block;
    }

    /// The block currently being emitted into.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    fn emit(&mut self, inst: Inst) {
        self.func.blocks[self.cur.0 as usize].insts.push(inst);
    }

    fn set_term(&mut self, term: Terminator) {
        self.func.blocks[self.cur.0 as usize].term = term;
    }

    /// `dst = src`.
    pub fn mov(&mut self, dst: RegId, src: Operand) {
        self.emit(Inst::Mov { dst, src });
    }

    /// Fresh register holding the immediate `v`.
    pub fn imm(&mut self, v: u32) -> RegId {
        let r = self.reg();
        self.emit(Inst::Mov { dst: r, src: Operand::Imm(v) });
        r
    }

    /// `fresh = lhs op rhs`.
    pub fn bin(&mut self, op: BinOp, lhs: Operand, rhs: Operand) -> RegId {
        let dst = self.reg();
        self.emit(Inst::Bin { dst, op, lhs, rhs });
        dst
    }

    /// `fresh = op src`.
    pub fn un(&mut self, op: UnOp, src: Operand) -> RegId {
        let dst = self.reg();
        self.emit(Inst::Un { dst, op, src });
        dst
    }

    /// `fresh = &global + offset`.
    pub fn addr_of_global(&mut self, global: GlobalId, offset: u32) -> RegId {
        let dst = self.reg();
        self.emit(Inst::AddrOfGlobal { dst, global, offset });
        dst
    }

    /// `fresh = &local + offset`.
    pub fn addr_of_local(&mut self, local: LocalId, offset: u32) -> RegId {
        let dst = self.reg();
        self.emit(Inst::AddrOfLocal { dst, local, offset });
        dst
    }

    /// `fresh = &func`.
    pub fn addr_of_func(&mut self, func: FuncId) -> RegId {
        let dst = self.reg();
        self.emit(Inst::AddrOfFunc { dst, func });
        dst
    }

    /// Direct global load into a fresh register.
    pub fn load_global(&mut self, global: GlobalId, offset: u32, size: u8) -> RegId {
        let dst = self.reg();
        self.emit(Inst::LoadGlobal { dst, global, offset, size });
        dst
    }

    /// Direct global store.
    pub fn store_global(&mut self, global: GlobalId, offset: u32, value: Operand, size: u8) {
        self.emit(Inst::StoreGlobal { global, offset, value, size });
    }

    /// Indirect load through a pointer into a fresh register.
    pub fn load(&mut self, addr: Operand, size: u8) -> RegId {
        let dst = self.reg();
        self.emit(Inst::Load { dst, addr, size });
        dst
    }

    /// Indirect store through a pointer.
    pub fn store(&mut self, addr: Operand, value: Operand, size: u8) {
        self.emit(Inst::Store { addr, value, size });
    }

    /// Peripheral register read: materialises the constant address (so
    /// backward slicing can find it) and loads through it.
    pub fn mmio_read(&mut self, addr: u32, size: u8) -> RegId {
        let a = self.imm(addr);
        self.load(Operand::Reg(a), size)
    }

    /// Peripheral register write through a materialised constant address.
    pub fn mmio_write(&mut self, addr: u32, value: Operand, size: u8) {
        let a = self.imm(addr);
        self.store(Operand::Reg(a), value, size);
    }

    /// Direct call with a result.
    pub fn call(&mut self, callee: FuncId, args: Vec<Operand>) -> RegId {
        let dst = self.reg();
        self.emit(Inst::Call { dst: Some(dst), callee, args });
        dst
    }

    /// Direct call without a result.
    pub fn call_void(&mut self, callee: FuncId, args: Vec<Operand>) {
        self.emit(Inst::Call { dst: None, callee, args });
    }

    /// Indirect call with a result.
    pub fn icall(&mut self, fptr: Operand, sig: SigId, args: Vec<Operand>) -> RegId {
        let dst = self.reg();
        self.emit(Inst::CallIndirect { dst: Some(dst), fptr, sig, args });
        dst
    }

    /// Indirect call without a result.
    pub fn icall_void(&mut self, fptr: Operand, sig: SigId, args: Vec<Operand>) {
        self.emit(Inst::CallIndirect { dst: None, fptr, sig, args });
    }

    /// `memcpy(dst, src, len)`.
    pub fn memcpy(&mut self, dst: Operand, src: Operand, len: Operand) {
        self.emit(Inst::Memcpy { dst, src, len });
    }

    /// `memset(dst, val, len)`.
    pub fn memset(&mut self, dst: Operand, val: Operand, len: Operand) {
        self.emit(Inst::Memset { dst, val, len });
    }

    /// Raw supervisor call.
    pub fn svc(&mut self, imm: u8) {
        self.emit(Inst::Svc { imm });
    }

    /// Stops the simulation (profiling stop point).
    pub fn halt(&mut self) {
        self.emit(Inst::Halt);
    }

    /// No-op (padding; also handy in generated code).
    pub fn nop(&mut self) {
        self.emit(Inst::Nop);
    }

    /// Terminates the current block with an unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.set_term(Terminator::Br(target));
    }

    /// Terminates the current block with a conditional branch.
    pub fn cond_br(&mut self, cond: Operand, then_to: BlockId, else_to: BlockId) {
        self.set_term(Terminator::CondBr { cond, then_to, else_to });
    }

    /// Terminates the current block with `ret value`.
    pub fn ret(&mut self, value: Operand) {
        self.set_term(Terminator::Ret(Some(value)));
    }

    /// Terminates the current block with a void return.
    pub fn ret_void(&mut self) {
        self.set_term(Terminator::Ret(None));
    }

    /// Interns a signature key via the module.
    pub fn sig(&mut self, key: SigKey) -> SigId {
        self.module.intern_sig(key)
    }

    /// Read access to the enclosing module (globals/functions declared so
    /// far).
    pub fn module(&self) -> &Module {
        self.module
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn build_simple_add_function() {
        let mut mb = ModuleBuilder::new("t");
        let f =
            mb.func("add", vec![("a", Ty::I32), ("b", Ty::I32)], Some(Ty::I32), "math.c", |fb| {
                let s = fb.bin(BinOp::Add, Operand::Reg(fb.param(0)), Operand::Reg(fb.param(1)));
                fb.ret(Operand::Reg(s));
            });
        let m = mb.finish();
        assert_eq!(m.func(f).name, "add");
        assert_eq!(m.func(f).num_regs, 3);
        validate(&m).unwrap();
    }

    #[test]
    fn declare_then_define_supports_forward_calls() {
        let mut mb = ModuleBuilder::new("t");
        let callee = mb.declare("callee", vec![], None, "a.c");
        let caller = mb.func("caller", vec![], None, "a.c", |fb| {
            fb.call_void(callee, vec![]);
            fb.ret_void();
        });
        mb.define(callee, |fb| fb.ret_void());
        let m = mb.finish();
        validate(&m).unwrap();
        assert!(matches!(
            m.func(caller).blocks[0].insts[0],
            Inst::Call { callee: c, .. } if c == callee
        ));
    }

    #[test]
    #[should_panic(expected = "declared but never defined")]
    fn finish_panics_on_missing_definition() {
        let mut mb = ModuleBuilder::new("t");
        mb.declare("ghost", vec![], None, "a.c");
        mb.finish();
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn double_definition_panics() {
        let mut mb = ModuleBuilder::new("t");
        let f = mb.declare("f", vec![], None, "a.c");
        mb.define(f, |fb| fb.ret_void());
        mb.define(f, |fb| fb.ret_void());
    }

    #[test]
    fn blocks_and_branches() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("loops", vec![("n", Ty::I32)], Some(Ty::I32), "a.c", |fb| {
            let acc = fb.reg();
            let i = fb.reg();
            fb.mov(acc, Operand::Imm(0));
            fb.mov(i, Operand::Imm(0));
            let head = fb.block();
            let body = fb.block();
            let exit = fb.block();
            fb.br(head);
            fb.switch_to(head);
            let c = fb.bin(BinOp::CmpLtU, Operand::Reg(i), Operand::Reg(fb.param(0)));
            fb.cond_br(Operand::Reg(c), body, exit);
            fb.switch_to(body);
            let a2 = fb.bin(BinOp::Add, Operand::Reg(acc), Operand::Reg(i));
            fb.mov(acc, Operand::Reg(a2));
            let i2 = fb.bin(BinOp::Add, Operand::Reg(i), Operand::Imm(1));
            fb.mov(i, Operand::Reg(i2));
            fb.br(head);
            fb.switch_to(exit);
            fb.ret(Operand::Reg(acc));
        });
        validate(&mb.finish()).unwrap();
    }

    #[test]
    fn mmio_helpers_materialise_constants() {
        let mut mb = ModuleBuilder::new("t");
        let f = mb.func("touch", vec![], None, "drv.c", |fb| {
            let v = fb.mmio_read(0x4000_4400, 4);
            fb.mmio_write(0x4000_4404, Operand::Reg(v), 4);
            fb.ret_void();
        });
        let m = mb.finish();
        let insts = &m.func(f).blocks[0].insts;
        assert!(matches!(insts[0], Inst::Mov { src: Operand::Imm(0x4000_4400), .. }));
        assert!(matches!(insts[1], Inst::Load { .. }));
        assert!(matches!(insts[2], Inst::Mov { src: Operand::Imm(0x4000_4404), .. }));
        assert!(matches!(insts[3], Inst::Store { .. }));
    }
}
