//! The intermediate representation consumed by OPEC-Compiler.
//!
//! The paper's compiler operates on LLVM IR of C firmware. This crate is
//! the behavioural stand-in: a typed register-machine IR with exactly the
//! features the paper's analyses need —
//!
//! * functions with basic blocks, virtual registers, and stack locals;
//! * global variables with types (so pointer fields can be enumerated),
//!   initialisers, source-file provenance (for the ACES filename
//!   partitioning baseline), and developer-provided sanitization ranges;
//! * **direct** global accesses ([`Inst::LoadGlobal`] /
//!   [`Inst::StoreGlobal`]) identifiable by def-use, and **indirect**
//!   accesses through pointers ([`Inst::Load`] / [`Inst::Store`]) that
//!   require points-to analysis;
//! * direct calls and indirect calls through function pointers with
//!   recorded type signatures (for the type-based fallback resolution);
//! * address-constant dataflow so that backward slicing can discover
//!   memory-mapped peripheral accesses;
//! * a deterministic per-instruction code-size model so Flash accounting
//!   is meaningful.
//!
//! Modules are assembled with [`build::ModuleBuilder`] and checked with
//! [`validate::validate`].

#![warn(missing_docs)]

pub mod build;
pub mod module;
pub mod printer;
pub mod types;
pub mod validate;

pub use build::{FunctionBuilder, ModuleBuilder};
pub use module::{
    BinOp, Block, BlockId, FuncId, Function, Global, GlobalId, Inst, LocalId, Module, Operand,
    PeripheralDef, RegId, SigId, Terminator, UnOp,
};
pub use types::{StructDef, StructId, Ty, TypeTable};
pub use validate::{validate, ValidateError};
