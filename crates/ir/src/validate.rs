//! Structural validation of IR modules.
//!
//! Catches malformed programs before they reach the analyses or the VM:
//! dangling ids, out-of-range registers, accesses past the end of a
//! global, size/alignment mistakes, and argument-count mismatches on
//! direct calls.

use crate::module::{FuncId, Function, Inst, Module, Operand, RegId, Terminator};

/// A validation failure, with enough context to locate it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// Function in which the error was found, if any.
    pub func: Option<String>,
    /// Description of the problem.
    pub message: String,
}

impl core::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match &self.func {
            Some(name) => write!(f, "in function {name}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Validates the whole module.
pub fn validate(module: &Module) -> Result<(), ValidateError> {
    let mut names = std::collections::HashSet::new();
    for f in &module.funcs {
        if !names.insert(f.name.as_str()) {
            return Err(ValidateError {
                func: None,
                message: format!("duplicate function name {}", f.name),
            });
        }
    }
    let mut gnames = std::collections::HashSet::new();
    for g in &module.globals {
        if !gnames.insert(g.name.as_str()) {
            return Err(ValidateError {
                func: None,
                message: format!("duplicate global name {}", g.name),
            });
        }
        let size = module.types.size_of(&g.ty);
        if g.init.len() as u32 > size {
            return Err(ValidateError {
                func: None,
                message: format!(
                    "global {} initialiser ({} bytes) exceeds type size ({size} bytes)",
                    g.name,
                    g.init.len()
                ),
            });
        }
    }
    for (i, f) in module.funcs.iter().enumerate() {
        validate_func(module, FuncId(i as u32), f)
            .map_err(|message| ValidateError { func: Some(f.name.clone()), message })?;
    }
    Ok(())
}

fn validate_func(module: &Module, _id: FuncId, f: &Function) -> Result<(), String> {
    if f.blocks.is_empty() {
        return Err("function has no blocks".into());
    }
    if (f.params.len() as u32) > f.num_regs {
        return Err("num_regs smaller than parameter count".into());
    }
    let check_reg = |r: RegId| -> Result<(), String> {
        if r.0 >= f.num_regs {
            Err(format!("register r{} out of range (num_regs = {})", r.0, f.num_regs))
        } else {
            Ok(())
        }
    };
    let check_op = |op: &Operand| -> Result<(), String> {
        match op {
            Operand::Reg(r) => check_reg(*r),
            Operand::Imm(_) => Ok(()),
        }
    };
    let check_size = |s: u8| -> Result<(), String> {
        if matches!(s, 1 | 2 | 4) {
            Ok(())
        } else {
            Err(format!("bad access size {s}"))
        }
    };
    let check_block = |b: crate::module::BlockId| -> Result<(), String> {
        if (b.0 as usize) < f.blocks.len() {
            Ok(())
        } else {
            Err(format!("branch to nonexistent block b{}", b.0))
        }
    };
    for block in &f.blocks {
        for inst in &block.insts {
            match inst {
                Inst::Mov { dst, src } => {
                    check_reg(*dst)?;
                    check_op(src)?;
                }
                Inst::Un { dst, src, .. } => {
                    check_reg(*dst)?;
                    check_op(src)?;
                }
                Inst::Bin { dst, lhs, rhs, .. } => {
                    check_reg(*dst)?;
                    check_op(lhs)?;
                    check_op(rhs)?;
                }
                Inst::AddrOfGlobal { dst, global, offset } => {
                    check_reg(*dst)?;
                    let g = module
                        .globals
                        .get(global.0 as usize)
                        .ok_or_else(|| format!("dangling global g{}", global.0))?;
                    if *offset > module.types.size_of(&g.ty) {
                        return Err(format!("&{} + {offset} exceeds global size", g.name));
                    }
                }
                Inst::AddrOfLocal { dst, local, offset } => {
                    check_reg(*dst)?;
                    let l = f
                        .locals
                        .get(local.0 as usize)
                        .ok_or_else(|| format!("dangling local l{}", local.0))?;
                    if *offset > module.types.size_of(&l.ty) {
                        return Err(format!("&{} + {offset} exceeds local size", l.name));
                    }
                }
                Inst::AddrOfFunc { dst, func } => {
                    check_reg(*dst)?;
                    if module.funcs.get(func.0 as usize).is_none() {
                        return Err(format!("dangling function f{}", func.0));
                    }
                }
                Inst::LoadGlobal { dst, global, offset, size } => {
                    check_reg(*dst)?;
                    check_size(*size)?;
                    check_global_access(module, *global, *offset, *size)?;
                }
                Inst::StoreGlobal { global, offset, value, size } => {
                    check_op(value)?;
                    check_size(*size)?;
                    check_global_access(module, *global, *offset, *size)?;
                    let g = module.global(*global);
                    if g.is_const {
                        return Err(format!("store to constant global {}", g.name));
                    }
                }
                Inst::Load { dst, addr, size } => {
                    check_reg(*dst)?;
                    check_op(addr)?;
                    check_size(*size)?;
                }
                Inst::Store { addr, value, size } => {
                    check_op(addr)?;
                    check_op(value)?;
                    check_size(*size)?;
                }
                Inst::Call { dst, callee, args } => {
                    if let Some(d) = dst {
                        check_reg(*d)?;
                    }
                    let target = module
                        .funcs
                        .get(callee.0 as usize)
                        .ok_or_else(|| format!("dangling callee f{}", callee.0))?;
                    if target.params.len() != args.len() {
                        return Err(format!(
                            "call to {} passes {} args, expects {}",
                            target.name,
                            args.len(),
                            target.params.len()
                        ));
                    }
                    for a in args {
                        check_op(a)?;
                    }
                }
                Inst::CallIndirect { dst, fptr, sig, args } => {
                    if let Some(d) = dst {
                        check_reg(*d)?;
                    }
                    check_op(fptr)?;
                    if module.sigs.get(sig.0 as usize).is_none() {
                        return Err(format!("dangling signature s{}", sig.0));
                    }
                    for a in args {
                        check_op(a)?;
                    }
                }
                Inst::Memcpy { dst, src, len } => {
                    check_op(dst)?;
                    check_op(src)?;
                    check_op(len)?;
                }
                Inst::Memset { dst, val, len } => {
                    check_op(dst)?;
                    check_op(val)?;
                    check_op(len)?;
                }
                Inst::Svc { .. } | Inst::Halt | Inst::Nop => {}
            }
        }
        match &block.term {
            Terminator::Br(b) => check_block(*b)?,
            Terminator::CondBr { cond, then_to, else_to } => {
                check_op(cond)?;
                check_block(*then_to)?;
                check_block(*else_to)?;
            }
            Terminator::Ret(Some(v)) => {
                check_op(v)?;
                if f.ret.is_none() {
                    return Err("value returned from void function".into());
                }
            }
            Terminator::Ret(None) => {
                if f.ret.is_some() {
                    return Err("void return from value-returning function".into());
                }
            }
            Terminator::Unreachable => {}
        }
    }
    Ok(())
}

fn check_global_access(
    module: &Module,
    global: crate::module::GlobalId,
    offset: u32,
    size: u8,
) -> Result<(), String> {
    let g = module
        .globals
        .get(global.0 as usize)
        .ok_or_else(|| format!("dangling global g{}", global.0))?;
    let total = module.types.size_of(&g.ty);
    if offset + u32::from(size) > total {
        return Err(format!("access to {} at offset {offset}+{size} exceeds size {total}", g.name));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ModuleBuilder;
    use crate::module::{BinOp, BlockId};
    use crate::types::Ty;

    #[test]
    fn accepts_well_formed_module() {
        let mut mb = ModuleBuilder::new("ok");
        let g = mb.global("counter", Ty::I32, "a.c");
        mb.func("bump", vec![], None, "a.c", |fb| {
            let v = fb.load_global(g, 0, 4);
            let v2 = fb.bin(BinOp::Add, Operand::Reg(v), Operand::Imm(1));
            fb.store_global(g, 0, Operand::Reg(v2), 4);
            fb.ret_void();
        });
        assert!(validate(&mb.finish()).is_ok());
    }

    #[test]
    fn rejects_out_of_bounds_global_access() {
        let mut mb = ModuleBuilder::new("bad");
        let g = mb.global("small", Ty::I16, "a.c");
        mb.func("f", vec![], None, "a.c", |fb| {
            fb.store_global(g, 0, Operand::Imm(0), 4);
            fb.ret_void();
        });
        let err = validate(&mb.finish()).unwrap_err();
        assert!(err.message.contains("exceeds size"));
    }

    #[test]
    fn rejects_store_to_const_global() {
        let mut mb = ModuleBuilder::new("bad");
        let g = mb.const_global("key", Ty::I32, vec![1, 2, 3, 4], "a.c");
        mb.func("f", vec![], None, "a.c", |fb| {
            fb.store_global(g, 0, Operand::Imm(0), 4);
            fb.ret_void();
        });
        let err = validate(&mb.finish()).unwrap_err();
        assert!(err.message.contains("constant global"));
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let mut mb = ModuleBuilder::new("bad");
        let callee = mb.func("callee", vec![("x", Ty::I32)], None, "a.c", |fb| fb.ret_void());
        mb.func("caller", vec![], None, "a.c", |fb| {
            fb.call_void(callee, vec![]);
            fb.ret_void();
        });
        let err = validate(&mb.finish()).unwrap_err();
        assert!(err.message.contains("passes 0 args"));
    }

    #[test]
    fn rejects_branch_to_missing_block() {
        let mut mb = ModuleBuilder::new("bad");
        mb.func("f", vec![], None, "a.c", |fb| {
            fb.br(BlockId(99));
        });
        let err = validate(&mb.finish()).unwrap_err();
        assert!(err.message.contains("nonexistent block"));
    }

    #[test]
    fn rejects_wrong_return_kind() {
        let mut mb = ModuleBuilder::new("bad");
        mb.func("f", vec![], Some(Ty::I32), "a.c", |fb| {
            fb.ret_void();
        });
        let err = validate(&mb.finish()).unwrap_err();
        assert!(err.message.contains("void return"));
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut mb = ModuleBuilder::new("bad");
        mb.func("same", vec![], None, "a.c", |fb| fb.ret_void());
        mb.func("same", vec![], None, "b.c", |fb| fb.ret_void());
        let err = validate(&mb.finish()).unwrap_err();
        assert!(err.message.contains("duplicate function name"));
    }
}
