//! IR data structures: modules, globals, functions, blocks, instructions.

use std::collections::BTreeMap;

use crate::types::{SigKey, Ty, TypeTable};

/// Index of a function in its module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Index of a global variable in its module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

/// Index of a basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// A virtual register within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegId(pub u32);

/// A stack-allocated local (address-taken) within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocalId(pub u32);

/// Index into the module's interned signature table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SigId(pub u32);

/// An instruction operand: a virtual register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Virtual register value.
    Reg(RegId),
    /// Immediate constant (address constants included).
    Imm(u32),
}

/// Binary ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (divide-by-zero yields 0, like a trapped CM4
    /// with DIV_0_TRP clear).
    UDiv,
    /// Unsigned remainder.
    URem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (modulo 32).
    Shl,
    /// Logical shift right (modulo 32).
    Shr,
    /// Equality comparison, producing 0 or 1.
    CmpEq,
    /// Inequality comparison.
    CmpNe,
    /// Unsigned less-than.
    CmpLtU,
    /// Signed less-than.
    CmpLtS,
}

/// Unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Two's-complement negation.
    Neg,
    /// Bitwise not.
    Not,
}

/// An IR instruction.
///
/// Memory access comes in three flavours that the compiler analyses
/// distinguish exactly as the paper does: direct global access
/// (`LoadGlobal`/`StoreGlobal`, found by def-use), indirect access
/// through a pointer (`Load`/`Store`, needs points-to), and accesses
/// whose pointer operand is an address constant (found by backward
/// slicing and matched against the peripheral map).
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // Field names are the documentation: dst/src/addr/value/size.
pub enum Inst {
    /// `dst = src`.
    Mov { dst: RegId, src: Operand },
    /// `dst = op src`.
    Un { dst: RegId, op: UnOp, src: Operand },
    /// `dst = lhs op rhs`.
    Bin { dst: RegId, op: BinOp, lhs: Operand, rhs: Operand },
    /// `dst = &global + offset` — takes the address of a global (the
    /// escape point that feeds points-to analysis).
    AddrOfGlobal { dst: RegId, global: GlobalId, offset: u32 },
    /// `dst = &local + offset` — takes the address of a stack local.
    AddrOfLocal { dst: RegId, local: LocalId, offset: u32 },
    /// `dst = &func` — takes a function's address (icall target seed).
    AddrOfFunc { dst: RegId, func: FuncId },
    /// Direct load of `size` bytes from a global at a constant offset.
    LoadGlobal { dst: RegId, global: GlobalId, offset: u32, size: u8 },
    /// Direct store of `size` bytes to a global at a constant offset.
    StoreGlobal { global: GlobalId, offset: u32, value: Operand, size: u8 },
    /// Indirect load of `size` bytes through a pointer.
    Load { dst: RegId, addr: Operand, size: u8 },
    /// Indirect store of `size` bytes through a pointer.
    Store { addr: Operand, value: Operand, size: u8 },
    /// Direct call.
    Call { dst: Option<RegId>, callee: FuncId, args: Vec<Operand> },
    /// Indirect call through a function pointer with a recorded
    /// signature.
    CallIndirect { dst: Option<RegId>, fptr: Operand, sig: SigId, args: Vec<Operand> },
    /// `memcpy(dst, src, len)` intrinsic.
    Memcpy { dst: Operand, src: Operand, len: Operand },
    /// `memset(dst, val, len)` intrinsic.
    Memset { dst: Operand, val: Operand, len: Operand },
    /// Supervisor call — inserted by OPEC instrumentation around
    /// operation-entry call sites, or written by hand in monitorless
    /// firmware.
    Svc { imm: u8 },
    /// Ends the simulation run (models the profiling stop points).
    Halt,
    /// No operation.
    Nop,
}

/// A block terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // Field names are the documentation: cond/then_to/else_to.
pub enum Terminator {
    /// Unconditional branch.
    Br(BlockId),
    /// Conditional branch: to `then_to` if `cond != 0`, else `else_to`.
    CondBr { cond: Operand, then_to: BlockId, else_to: BlockId },
    /// Function return.
    Ret(Option<Operand>),
    /// Unreachable (validation failure if executed).
    Unreachable,
}

/// A basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Straight-line instructions.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Terminator,
}

/// A stack local definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Local {
    /// Diagnostic name.
    pub name: String,
    /// Type (decides stack slot size and pointer fields).
    pub ty: Ty,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Diagnostic name.
    pub name: String,
    /// Parameter type.
    pub ty: Ty,
}

/// An IR function.
#[derive(Debug, Clone)]
pub struct Function {
    /// Function name (unique within the module).
    pub name: String,
    /// Parameters; the first four are passed in registers, the rest on
    /// the caller's stack, mirroring AAPCS.
    pub params: Vec<Param>,
    /// Return type, if any.
    pub ret: Option<Ty>,
    /// Address-taken stack locals.
    pub locals: Vec<Local>,
    /// Number of virtual registers used.
    pub num_regs: u32,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Source file the function came from (drives the ACES filename
    /// partition strategy).
    pub source_file: String,
    /// Interrupt handlers cannot be operation entries and always run
    /// privileged.
    pub is_irq_handler: bool,
}

impl Function {
    /// The interned signature key of this function, used when matching
    /// icall sites by type.
    pub fn sig_key(&self, types: &TypeTable) -> SigKey {
        SigKey {
            params: self.params.iter().map(|p| types.param_kind(&p.ty)).collect(),
            ret: self.ret.as_ref().map(|t| types.param_kind(t)),
        }
    }

    /// Total instruction count (straight-line instructions only).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Deterministic code-size model in bytes: Thumb-2-flavoured
    /// per-instruction sizes plus an 8-byte prologue/epilogue.
    pub fn code_size(&self) -> u32 {
        let body: u32 =
            self.blocks.iter().flat_map(|b| b.insts.iter()).map(Inst::encoded_size).sum::<u32>()
                + self.blocks.iter().map(|b| b.term.encoded_size()).sum::<u32>();
        body + 8
    }
}

impl Inst {
    /// Modelled encoded size of the instruction in bytes.
    pub fn encoded_size(&self) -> u32 {
        match self {
            Inst::Mov { .. } | Inst::Un { .. } => 2,
            Inst::Bin { .. } => 4,
            Inst::AddrOfGlobal { .. } | Inst::AddrOfLocal { .. } | Inst::AddrOfFunc { .. } => 4,
            Inst::LoadGlobal { .. } | Inst::StoreGlobal { .. } => 4,
            Inst::Load { .. } | Inst::Store { .. } => 4,
            Inst::Call { args, .. } => 4 + 2 * args.len().saturating_sub(4) as u32,
            Inst::CallIndirect { args, .. } => 6 + 2 * args.len().saturating_sub(4) as u32,
            Inst::Memcpy { .. } | Inst::Memset { .. } => 4,
            Inst::Svc { .. } => 2,
            Inst::Halt => 2,
            Inst::Nop => 2,
        }
    }
}

impl Terminator {
    /// Modelled encoded size of the terminator in bytes.
    pub fn encoded_size(&self) -> u32 {
        match self {
            Terminator::Br(_) => 2,
            Terminator::CondBr { .. } => 4,
            Terminator::Ret(_) => 2,
            Terminator::Unreachable => 2,
        }
    }
}

/// A peripheral as listed in the SoC datasheet: a named address window.
///
/// OPEC-Compiler matches constant addresses discovered by backward
/// slicing against this list (paper Section 4.2), and OPEC's layout
/// merges adjacent windows to save MPU regions (Section 4.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeripheralDef {
    /// Peripheral name (e.g. `USART2`).
    pub name: String,
    /// Base address of the register window.
    pub base: u32,
    /// Window size in bytes.
    pub size: u32,
    /// Core peripherals live on the PPB and require privileged access.
    pub is_core: bool,
}

impl PeripheralDef {
    /// Returns `true` if `addr` falls inside the window.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && addr - self.base < self.size
    }
}

/// A global variable.
#[derive(Debug, Clone)]
pub struct Global {
    /// Name (unique within the module).
    pub name: String,
    /// Type.
    pub ty: Ty,
    /// Initial value bytes; shorter than the type size means
    /// zero-extended (bss-style).
    pub init: Vec<u8>,
    /// Constant globals live in Flash and are never shadowed.
    pub is_const: bool,
    /// Source file provenance.
    pub source_file: String,
    /// Developer-provided sanitization range `[lo, hi]` applied to the
    /// first word of the variable during synchronization (paper
    /// Section 5.2, "Global Variables").
    pub valid_range: Option<(u32, u32)>,
}

/// A whole program.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// Program name.
    pub name: String,
    /// Struct definitions.
    pub types: TypeTable,
    /// Global variables.
    pub globals: Vec<Global>,
    /// Functions; `FuncId` indexes into this.
    pub funcs: Vec<Function>,
    /// Interned signature keys; `SigId` indexes into this.
    pub sigs: Vec<SigKey>,
    /// The datasheet peripheral list.
    pub peripherals: Vec<PeripheralDef>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module { name: name.into(), ..Module::default() }
    }

    /// Looks up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs.iter().position(|f| f.name == name).map(|i| FuncId(i as u32))
    }

    /// Looks up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals.iter().position(|g| g.name == name).map(|i| GlobalId(i as u32))
    }

    /// Returns the function for `id`.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Returns the global for `id`.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.0 as usize]
    }

    /// Interns a signature key, returning a stable id.
    pub fn intern_sig(&mut self, key: SigKey) -> SigId {
        if let Some(i) = self.sigs.iter().position(|s| *s == key) {
            return SigId(i as u32);
        }
        let id = SigId(self.sigs.len() as u32);
        self.sigs.push(key);
        id
    }

    /// Finds the peripheral containing `addr`, if any.
    pub fn peripheral_at(&self, addr: u32) -> Option<&PeripheralDef> {
        self.peripherals.iter().find(|p| p.contains(addr))
    }

    /// Size in bytes of global `id` per the type table.
    pub fn global_size(&self, id: GlobalId) -> u32 {
        self.types.size_of(&self.global(id).ty)
    }

    /// Total modelled code size of all functions, in bytes.
    pub fn total_code_size(&self) -> u32 {
        self.funcs.iter().map(Function::code_size).sum()
    }

    /// Groups function ids by source file (used by the ACES baseline).
    pub fn funcs_by_file(&self) -> BTreeMap<&str, Vec<FuncId>> {
        let mut map: BTreeMap<&str, Vec<FuncId>> = BTreeMap::new();
        for (i, f) in self.funcs.iter().enumerate() {
            map.entry(f.source_file.as_str()).or_default().push(FuncId(i as u32));
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_sig_dedups() {
        let mut m = Module::new("t");
        let a = m.intern_sig(SigKey { params: vec![], ret: None });
        let b = m.intern_sig(SigKey { params: vec![], ret: None });
        assert_eq!(a, b);
        assert_eq!(m.sigs.len(), 1);
    }

    #[test]
    fn peripheral_lookup() {
        let mut m = Module::new("t");
        m.peripherals.push(PeripheralDef {
            name: "USART2".into(),
            base: 0x4000_4400,
            size: 0x400,
            is_core: false,
        });
        assert_eq!(m.peripheral_at(0x4000_4404).map(|p| p.name.as_str()), Some("USART2"));
        assert!(m.peripheral_at(0x4000_4800).is_none());
    }

    #[test]
    fn code_size_model_is_positive_and_additive() {
        let f = Function {
            name: "f".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            num_regs: 2,
            blocks: vec![Block {
                insts: vec![
                    Inst::Mov { dst: RegId(0), src: Operand::Imm(1) },
                    Inst::Bin {
                        dst: RegId(1),
                        op: BinOp::Add,
                        lhs: Operand::Reg(RegId(0)),
                        rhs: Operand::Imm(2),
                    },
                ],
                term: Terminator::Ret(None),
            }],
            source_file: "f.c".into(),
            is_irq_handler: false,
        };
        // 2 (mov) + 4 (bin) + 2 (ret) + 8 (prologue) = 16.
        assert_eq!(f.code_size(), 16);
        assert_eq!(f.inst_count(), 2);
    }

    #[test]
    fn funcs_by_file_groups() {
        let mut m = Module::new("t");
        for (name, file) in [("a", "x.c"), ("b", "y.c"), ("c", "x.c")] {
            m.funcs.push(Function {
                name: name.into(),
                params: vec![],
                ret: None,
                locals: vec![],
                num_regs: 0,
                blocks: vec![Block { insts: vec![], term: Terminator::Ret(None) }],
                source_file: file.into(),
                is_irq_handler: false,
            });
        }
        let groups = m.funcs_by_file();
        assert_eq!(groups["x.c"], vec![FuncId(0), FuncId(2)]);
        assert_eq!(groups["y.c"], vec![FuncId(1)]);
    }
}
