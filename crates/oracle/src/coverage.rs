//! Deterministic coverage extraction from the obs event stream.
//!
//! The fuzzer's feedback signal is a *set* of `u64` features folded out
//! of [`Event`]s — never a count. Sets make the merge a plain union,
//! which is associative, commutative and idempotent, so aggregate
//! coverage is independent of worker interleaving, journal resume
//! order, and how many times an input is replayed. That is the same
//! discipline the campaign journal uses for crash-safe resume.
//!
//! Feature classes (the tag byte, bits 56..64):
//!
//! * `SWITCH_EDGE` — an accepted operation switch `from → to × dir`.
//! * `VIRT_HIT` — window `w` of op loaded into reserved slot `s`.
//! * `VIRT_EVICT` — slot `s` round-robin displacement `old → new`.
//! * `VIRT_MISS` — policy-denied peripheral fault (read/write).
//! * `TRAP` — a supervisor trap verdict class against an op.
//! * `PROBE` — an oracle probe cell exercised `(op, cell, allowed)`.
//! * `DIVERGENCE` — an oracle divergence class `(op, kind, layer)`.
//!   The encoded feature doubles as the corpus *coverage key* for a
//!   divergence: two inputs tripping the same class on the same op
//!   collide here, which is what lets `check --shrink` find a smaller
//!   corpus entry for "the same bug".
//! * `EMULATED` — a core-peripheral access emulated for an op.
//! * `QUARANTINE` — an op was killed and unwound.
//!
//! Addresses are deliberately excluded from every feature: they vary
//! with layout noise (peripheral base gaps, stack depth) and would blow
//! the feature space up without adding schedulable signal.

use std::collections::BTreeSet;

use opec_obs::{Dir, Event, Sink, Stamped, TrapKind};

const TAG_SWITCH_EDGE: u64 = 1;
const TAG_VIRT_HIT: u64 = 2;
const TAG_VIRT_EVICT: u64 = 3;
const TAG_VIRT_MISS: u64 = 4;
const TAG_TRAP: u64 = 5;
const TAG_PROBE: u64 = 6;
const TAG_DIVERGENCE: u64 = 7;
const TAG_EMULATED: u64 = 8;
const TAG_QUARANTINE: u64 = 9;

fn tagged(tag: u64, payload: u64) -> u64 {
    debug_assert!(payload < (1u64 << 56));
    (tag << 56) | payload
}

fn trap_class(kind: TrapKind) -> u64 {
    match kind {
        TrapKind::PolicyDeniedMem => 0,
        TrapKind::PolicyDeniedCore => 1,
        TrapKind::Sanitization => 2,
        TrapKind::BadSwitch => 3,
        TrapKind::MemFault => 4,
        TrapKind::BusFault => 5,
        TrapKind::Unrecoverable => 6,
    }
}

/// The stable coverage key of an oracle divergence: `(op, kind,
/// layer)`, address-free. Shared by the fuzzer's corpus and the
/// `check --shrink` corpus lookup so they agree on "the same bug".
pub fn divergence_key(op: u8, kind: opec_obs::OracleKind, layer: opec_obs::OracleLayer) -> u64 {
    let k = match kind {
        opec_obs::OracleKind::Escape => 0u64,
        opec_obs::OracleKind::SpuriousDenial => 1,
        opec_obs::OracleKind::ExecOutsideOperation => 2,
    };
    let l = match layer {
        opec_obs::OracleLayer::Mpu => 0u64,
        opec_obs::OracleLayer::Monitor => 1,
        opec_obs::OracleLayer::Analysis => 2,
    };
    tagged(TAG_DIVERGENCE, (u64::from(op) << 16) | (k << 8) | l)
}

/// A deterministic coverage feature set.
///
/// Fold events in with [`CoverageMap::observe`] (or attach it as a
/// [`Sink`]), combine maps with [`CoverageMap::merge`], persist with
/// [`CoverageMap::features`] / [`CoverageMap::from_features`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageMap {
    feats: BTreeSet<u64>,
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> CoverageMap {
        CoverageMap::default()
    }

    /// A map holding exactly `feats` (corpus deserialization).
    pub fn from_features(feats: impl IntoIterator<Item = u64>) -> CoverageMap {
        CoverageMap { feats: feats.into_iter().collect() }
    }

    /// Folds one event into the map. Events that carry no schedulable
    /// signal (function enters, MPU register writes, campaign
    /// milestones, …) are ignored.
    pub fn observe(&mut self, ev: &Event) {
        let feat = match *ev {
            Event::SwitchEnd { dir, from, to, ok: true, .. } => {
                let d = match dir {
                    Dir::Enter => 0u64,
                    Dir::Exit => 1,
                };
                tagged(TAG_SWITCH_EDGE, (u64::from(from) << 16) | (u64::from(to) << 8) | d)
            }
            Event::VirtHit { op, window, slot, .. } => tagged(
                TAG_VIRT_HIT,
                (u64::from(op) << 16) | (u64::from(window) << 8) | u64::from(slot),
            ),
            Event::VirtEvict { op, slot, old_window, new_window } => tagged(
                TAG_VIRT_EVICT,
                (u64::from(op) << 24)
                    | (u64::from(slot) << 16)
                    | (u64::from(old_window) << 8)
                    | u64::from(new_window),
            ),
            Event::VirtMiss { op, write, .. } => {
                tagged(TAG_VIRT_MISS, (u64::from(op) << 8) | u64::from(write))
            }
            Event::Trap { op, kind, .. } => {
                tagged(TAG_TRAP, (u64::from(op) << 8) | trap_class(kind))
            }
            Event::OracleProbe { op, cell, allowed } => tagged(
                TAG_PROBE,
                (u64::from(op) << 24) | (u64::from(cell) << 8) | u64::from(allowed),
            ),
            Event::OracleDivergence { op, kind, layer, .. } => divergence_key(op, kind, layer),
            Event::Emulated { op, access, .. } => {
                let a = match access {
                    opec_obs::Access::Load => 0u64,
                    opec_obs::Access::Store => 1,
                };
                tagged(TAG_EMULATED, (u64::from(op) << 8) | a)
            }
            Event::Quarantine { op } => tagged(TAG_QUARANTINE, u64::from(op)),
            _ => return,
        };
        self.feats.insert(feat);
    }

    /// Union-folds `other` into `self`.
    pub fn merge(&mut self, other: &CoverageMap) {
        self.feats.extend(other.feats.iter().copied());
    }

    /// Features in `self` that `agg` lacks — the unique contribution an
    /// input would make to an aggregate.
    pub fn minus(&self, agg: &CoverageMap) -> CoverageMap {
        CoverageMap { feats: self.feats.difference(&agg.feats).copied().collect() }
    }

    /// Whether every feature of `self` is already in `agg`.
    pub fn subset_of(&self, agg: &CoverageMap) -> bool {
        self.feats.is_subset(&agg.feats)
    }

    /// Whether the map holds `feat`.
    pub fn contains(&self, feat: u64) -> bool {
        self.feats.contains(&feat)
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.feats.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.feats.is_empty()
    }

    /// The features, ascending (the canonical serialization order).
    pub fn features(&self) -> impl Iterator<Item = u64> + '_ {
        self.feats.iter().copied()
    }

    /// FNV-1a over the canonical feature order — the stable identity of
    /// a coverage set, used as the corpus entry key and the replay
    /// determinism check.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for f in &self.feats {
            for b in f.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

impl Sink for CoverageMap {
    fn record(&mut self, ev: Stamped) {
        self.observe(&ev.ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opec_obs::{OracleKind, OracleLayer};

    #[test]
    fn switch_edges_are_direction_sensitive_and_failures_ignored() {
        let mut m = CoverageMap::new();
        m.observe(&Event::SwitchEnd { dir: Dir::Enter, from: 0, to: 1, entry: 7, ok: true });
        m.observe(&Event::SwitchEnd { dir: Dir::Exit, from: 0, to: 1, entry: 7, ok: true });
        m.observe(&Event::SwitchEnd { dir: Dir::Enter, from: 0, to: 1, entry: 7, ok: false });
        assert_eq!(m.len(), 2);
        // Replay is idempotent.
        m.observe(&Event::SwitchEnd { dir: Dir::Enter, from: 0, to: 1, entry: 7, ok: true });
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn addresses_do_not_split_features() {
        let mut a = CoverageMap::new();
        let mut b = CoverageMap::new();
        a.observe(&Event::VirtMiss { op: 2, address: 0x4000_0000, write: true });
        b.observe(&Event::VirtMiss { op: 2, address: 0x4000_0800, write: true });
        assert_eq!(a, b);
    }

    #[test]
    fn divergence_key_matches_observe() {
        let mut m = CoverageMap::new();
        m.observe(&Event::OracleDivergence {
            op: 3,
            kind: OracleKind::Escape,
            layer: OracleLayer::Mpu,
            address: 0x800_0000,
        });
        assert!(m.contains(divergence_key(3, OracleKind::Escape, OracleLayer::Mpu)));
        assert!(!m.contains(divergence_key(3, OracleKind::Escape, OracleLayer::Monitor)));
    }

    #[test]
    fn digest_is_order_insensitive_and_content_sensitive() {
        let a = CoverageMap::from_features([3u64, 1, 2]);
        let b = CoverageMap::from_features([1u64, 2, 3]);
        let c = CoverageMap::from_features([1u64, 2, 4]);
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn minus_and_subset() {
        let a = CoverageMap::from_features([1u64, 2, 3]);
        let b = CoverageMap::from_features([2u64, 3]);
        assert!(b.subset_of(&a));
        assert!(!a.subset_of(&b));
        let d = a.minus(&b);
        assert_eq!(d.features().collect::<Vec<_>>(), vec![1]);
    }
}
