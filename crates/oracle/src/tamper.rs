//! Deliberate enforcement-stack tampers for self-tests and benchmarks.
//!
//! Each tamper edits the *enforced* [`SystemPolicy`] after the
//! ground-truth matrix has been derived, planting a bug the shadow
//! oracle must catch. They are shared between the oracle's own
//! self-tests, `opec-eval check --self-test`, and the fuzzing
//! time-to-find benchmark, so all three agree on what "the broken MPU
//! plan" means.

use opec_armv7m::mpu::region_size_for;
use opec_armv7m::MemRegion;
use opec_core::SystemPolicy;

/// The classic broken MPU plan: a bogus writable flash-base cover is
/// inserted into every non-root operation's peripheral-cover list.
/// Detected as a probe-sweep Escape at `flash.base` on the first
/// accepted switch into any tampered operation.
pub fn break_mpu(policy: &mut SystemPolicy) {
    let flash = policy.board.flash;
    let bogus = MemRegion::new(flash.base, region_size_for(0x1000));
    for op in policy.ops.iter_mut().skip(1) {
        op.periph_covers.insert(0, bogus);
    }
}

/// The *latent* variant the fuzzer hunts: [`break_mpu`], but applied
/// only when some non-root operation's policy carries at least
/// `min_windows` peripheral windows. With `min_windows` beyond the
/// random generator's envelope (it never assigns more than 3
/// peripherals total), a fresh seed can never exhibit the bug — only
/// mutation chains that repeatedly grow *one* operation's window set
/// reach it. That reachability gap is exactly what the time-to-find
/// benchmark measures.
pub fn break_mpu_latent(policy: &mut SystemPolicy, min_windows: usize) {
    let triggered = policy.ops.iter().skip(1).any(|op| op.periph_windows.len() >= min_windows);
    if triggered {
        break_mpu(policy);
    }
}

/// The window threshold the benchmark's latent tamper uses: two past
/// the generator's 3-peripheral cap, so a single short mutation chain
/// essentially never lands it and the corpus has to accumulate window
/// growth over several admitted generations.
pub const LATENT_MIN_WINDOWS: usize = 5;
