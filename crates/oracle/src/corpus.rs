//! The persistent, minimized fuzzing corpus.
//!
//! One JSON file per entry, named by the entry's *key*: the FNV digest
//! of the coverage features the entry uniquely contributed to the
//! aggregate at admission time. Each file carries the full
//! [`FirmwareSpec`] plan (so a corpus is self-contained and
//! re-runnable on any backend) plus the entry's whole coverage set (so
//! loading a corpus never needs to re-execute anything to know what it
//! covers).
//!
//! Minimization is a greedy set cover, re-run on every load: entries
//! are visited smallest-plan-first (key as the tie-break, so the
//! result is deterministic) and kept only if they still contribute a
//! feature the kept set lacks. Stale files — entries another, smaller
//! entry has since subsumed — are deleted on [`Corpus::save`], which
//! is what keeps a long-lived CI corpus from growing monotonically.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use opec_campaign::json::{self, Value};

use crate::coverage::CoverageMap;
use crate::gen::{FirmwareSpec, FuncSpec, GlobalSpec, Stmt};
use crate::mutate::well_formed;

/// One corpus entry: a plan and the coverage it achieved.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusEntry {
    /// 16-hex-digit digest of the features the entry contributed when
    /// admitted (the on-disk file stem).
    pub key: String,
    /// The firmware plan.
    pub spec: FirmwareSpec,
    /// The full coverage the plan achieved on its admitting run.
    pub coverage: CoverageMap,
}

impl CorpusEntry {
    /// Plan size (the minimizer's primary sort key).
    pub fn size(&self) -> usize {
        self.spec.size()
    }
}

/// An in-memory corpus, optionally bound to an on-disk directory.
#[derive(Debug, Default)]
pub struct Corpus {
    dir: Option<PathBuf>,
    /// Kept entries, smallest plan first (key-ordered tie-break).
    pub entries: Vec<CorpusEntry>,
    /// Union of every kept entry's coverage.
    pub aggregate: CoverageMap,
}

impl Corpus {
    /// An empty, memory-only corpus (benchmarks, tests).
    pub fn in_memory() -> Corpus {
        Corpus::default()
    }

    /// Loads and re-minimizes the corpus at `dir`, creating the
    /// directory if absent. Unparseable or ill-formed entries are
    /// reported as errors, never silently skipped — a poisoned corpus
    /// would quietly misdirect every subsequent campaign.
    pub fn load(dir: &Path) -> Result<Corpus, String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("corpus dir {}: {e}", dir.display()))?;
        let mut raw = Vec::new();
        let mut names = std::fs::read_dir(dir)
            .map_err(|e| format!("corpus dir {}: {e}", dir.display()))?
            .filter_map(|ent| ent.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect::<Vec<_>>();
        names.sort();
        for path in names {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("corpus entry {}: {e}", path.display()))?;
            let entry = entry_from_json(&text)
                .map_err(|e| format!("corpus entry {}: {e}", path.display()))?;
            well_formed(&entry.spec)
                .map_err(|e| format!("corpus entry {}: ill-formed plan: {e}", path.display()))?;
            raw.push(entry);
        }
        let mut c = Corpus { dir: Some(dir.to_path_buf()), ..Corpus::default() };
        c.entries = minimize(raw);
        for e in &c.entries {
            c.aggregate.merge(&e.coverage);
        }
        Ok(c)
    }

    /// Offers `(spec, coverage)` to the corpus. Admitted — and
    /// returned — only when the coverage contributes at least one
    /// feature the aggregate lacks; the entry is keyed by that unique
    /// contribution.
    pub fn admit(&mut self, spec: FirmwareSpec, coverage: CoverageMap) -> Option<&CorpusEntry> {
        let fresh = coverage.minus(&self.aggregate);
        if fresh.is_empty() {
            return None;
        }
        let key = format!("{:016x}", fresh.digest());
        self.aggregate.merge(&coverage);
        let entry = CorpusEntry { key, spec, coverage };
        // Insert at the minimizer's canonical position so iteration
        // order never depends on admission order vs. load order.
        let at = self
            .entries
            .partition_point(|e| (e.size(), e.key.as_str()) < (entry.size(), entry.key.as_str()));
        self.entries.insert(at, entry);
        Some(&self.entries[at])
    }

    /// The smallest entry whose coverage contains `feat` (the
    /// `check --shrink` corpus lookup: `feat` is a divergence key).
    pub fn smallest_with(&self, feat: u64) -> Option<&CorpusEntry> {
        self.entries.iter().find(|e| e.coverage.contains(feat))
    }

    /// Writes every kept entry to the bound directory and deletes
    /// stale `.json` files the minimizer dropped. No-op when
    /// memory-only.
    pub fn save(&self) -> Result<(), String> {
        let Some(dir) = &self.dir else { return Ok(()) };
        let keep: BTreeSet<String> =
            self.entries.iter().map(|e| format!("{}.json", e.key)).collect();
        for e in &self.entries {
            let path = dir.join(format!("{}.json", e.key));
            std::fs::write(&path, entry_json(e))
                .map_err(|err| format!("corpus write {}: {err}", path.display()))?;
        }
        for ent in std::fs::read_dir(dir).map_err(|e| format!("corpus dir: {e}"))? {
            let Ok(ent) = ent else { continue };
            let name = ent.file_name().to_string_lossy().into_owned();
            if name.ends_with(".json") && !keep.contains(&name) {
                let _ = std::fs::remove_file(ent.path());
            }
        }
        Ok(())
    }
}

/// Greedy set-cover minimization: smallest plan first (key tie-break),
/// keep an entry only if it covers something the kept set misses.
fn minimize(mut raw: Vec<CorpusEntry>) -> Vec<CorpusEntry> {
    raw.sort_by(|a, b| (a.size(), a.key.as_str()).cmp(&(b.size(), b.key.as_str())));
    let mut kept = Vec::new();
    let mut agg = CoverageMap::new();
    for e in raw {
        if !e.coverage.subset_of(&agg) {
            agg.merge(&e.coverage);
            kept.push(e);
        }
    }
    kept
}

// ---- JSON (hand-rolled; the workspace carries no serde) ----

fn stmt_json(s: &Stmt) -> String {
    match *s {
        Stmt::LoadG { g, off } => format!("{{\"k\":\"loadg\",\"g\":{g},\"off\":{off}}}"),
        Stmt::StoreG { g, off, val } => {
            format!("{{\"k\":\"storeg\",\"g\":{g},\"off\":{off},\"val\":{val}}}")
        }
        Stmt::Mmio { p, reg, write } => {
            format!("{{\"k\":\"mmio\",\"p\":{p},\"reg\":{reg},\"write\":{write}}}")
        }
        Stmt::Call { f } => format!("{{\"k\":\"call\",\"f\":{f}}}"),
        Stmt::ICall { f } => format!("{{\"k\":\"icall\",\"f\":{f}}}"),
        Stmt::Work => "{\"k\":\"work\"}".to_string(),
    }
}

/// Renders a plan as canonical JSON (stable field order, no floats).
pub fn spec_json(spec: &FirmwareSpec) -> String {
    let periphs = spec.periph_bases.iter().map(|b| b.to_string()).collect::<Vec<_>>().join(",");
    let globals = spec
        .globals
        .iter()
        .map(|g| {
            let cs = g.clusters.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(",");
            format!("{{\"words\":{},\"clusters\":[{cs}]}}", g.words)
        })
        .collect::<Vec<_>>()
        .join(",");
    let funcs = spec
        .funcs
        .iter()
        .map(|f| {
            let body = f.body.iter().map(stmt_json).collect::<Vec<_>>().join(",");
            let entry = match f.entry_of {
                Some(i) => i.to_string(),
                None => "null".to_string(),
            };
            format!("{{\"cluster\":{},\"entry_of\":{entry},\"body\":[{body}]}}", f.cluster)
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"seed\":{},\"periph_bases\":[{periphs}],\"globals\":[{globals}],\"funcs\":[{funcs}]}}",
        spec.seed
    )
}

fn need_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Value::as_u64).ok_or_else(|| format!("missing/invalid {key:?}"))
}

fn stmt_from(v: &Value) -> Result<Stmt, String> {
    let k = v.get("k").and_then(Value::as_str).ok_or("stmt missing \"k\"")?;
    Ok(match k {
        "loadg" => Stmt::LoadG { g: need_u64(v, "g")? as usize, off: need_u64(v, "off")? as u32 },
        "storeg" => Stmt::StoreG {
            g: need_u64(v, "g")? as usize,
            off: need_u64(v, "off")? as u32,
            val: need_u64(v, "val")? as u32,
        },
        "mmio" => Stmt::Mmio {
            p: need_u64(v, "p")? as usize,
            reg: need_u64(v, "reg")? as u32,
            write: v.get("write").and_then(Value::as_bool).ok_or("mmio missing \"write\"")?,
        },
        "call" => Stmt::Call { f: need_u64(v, "f")? as usize },
        "icall" => Stmt::ICall { f: need_u64(v, "f")? as usize },
        "work" => Stmt::Work,
        other => return Err(format!("unknown stmt kind {other:?}")),
    })
}

/// Parses a plan from its canonical JSON.
pub fn spec_from(v: &Value) -> Result<FirmwareSpec, String> {
    let seed = need_u64(v, "seed")?;
    let periph_bases = v
        .get("periph_bases")
        .and_then(Value::as_arr)
        .ok_or("missing periph_bases")?
        .iter()
        .map(|b| b.as_u64().map(|x| x as u32).ok_or_else(|| "bad base".to_string()))
        .collect::<Result<Vec<_>, _>>()?;
    let globals = v
        .get("globals")
        .and_then(Value::as_arr)
        .ok_or("missing globals")?
        .iter()
        .map(|g| {
            let words = need_u64(g, "words")? as u32;
            let clusters = g
                .get("clusters")
                .and_then(Value::as_arr)
                .ok_or("global missing clusters")?
                .iter()
                .map(|c| c.as_u64().map(|x| x as usize).ok_or_else(|| "bad cluster".to_string()))
                .collect::<Result<Vec<_>, _>>()?;
            Ok::<_, String>(GlobalSpec { words, clusters })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let funcs = v
        .get("funcs")
        .and_then(Value::as_arr)
        .ok_or("missing funcs")?
        .iter()
        .map(|f| {
            let cluster = need_u64(f, "cluster")? as usize;
            let entry_of = match f.get("entry_of") {
                Some(Value::Null) | None => None,
                Some(x) => Some(x.as_u64().ok_or("bad entry_of")? as usize),
            };
            let body = f
                .get("body")
                .and_then(Value::as_arr)
                .ok_or("func missing body")?
                .iter()
                .map(stmt_from)
                .collect::<Result<Vec<_>, _>>()?;
            Ok::<_, String>(FuncSpec { cluster, entry_of, body })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(FirmwareSpec { seed, periph_bases, globals, funcs })
}

/// Renders a corpus entry (plan + coverage + key) as canonical JSON.
pub fn entry_json(e: &CorpusEntry) -> String {
    let feats = e.coverage.features().map(|f| f.to_string()).collect::<Vec<_>>().join(",");
    format!(
        "{{\"key\":\"{}\",\"spec\":{},\"coverage\":[{feats}]}}",
        json::escape(&e.key),
        spec_json(&e.spec)
    )
}

/// Parses a corpus entry from its canonical JSON.
pub fn entry_from_json(text: &str) -> Result<CorpusEntry, String> {
    let v = json::parse(text)?;
    let key = v.get("key").and_then(Value::as_str).ok_or("missing key")?.to_string();
    let spec = spec_from(v.get("spec").ok_or("missing spec")?)?;
    let feats = v
        .get("coverage")
        .and_then(Value::as_arr)
        .ok_or("missing coverage")?
        .iter()
        .map(|f| f.as_u64().ok_or_else(|| "bad feature".to_string()))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CorpusEntry { key, spec, coverage: CoverageMap::from_features(feats) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    fn cov(feats: &[u64]) -> CoverageMap {
        CoverageMap::from_features(feats.iter().copied())
    }

    #[test]
    fn spec_json_round_trips() {
        for seed in [0u64, 3, 17, 99] {
            let spec = generate(seed);
            let text = spec_json(&spec);
            let back = spec_from(&json::parse(&text).expect("parse")).expect("decode");
            assert_eq!(spec, back);
            // Canonical: render(decode(render)) is byte-identical.
            assert_eq!(text, spec_json(&back));
        }
    }

    #[test]
    fn admit_keys_by_unique_contribution() {
        let mut c = Corpus::in_memory();
        let a = c.admit(generate(1), cov(&[1, 2])).expect("first entry admits").key.clone();
        // Fully subsumed coverage is rejected.
        assert!(c.admit(generate(2), cov(&[2])).is_none());
        // Only the fresh feature keys the new entry.
        let b = c.admit(generate(3), cov(&[2, 5])).expect("fresh feature").key.clone();
        assert_ne!(a, b);
        assert_eq!(b, format!("{:016x}", cov(&[5]).digest()));
        assert_eq!(c.aggregate, cov(&[1, 2, 5]));
    }

    #[test]
    fn load_minimizes_and_save_drops_stale_files() {
        let dir = std::env::temp_dir().join(format!("opec-corpus-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut c = Corpus::load(&dir).expect("fresh dir");
            // A big plan covering {1,2} and a small one covering {1,2}
            // plus {3}: after re-minimization the small one subsumes
            // the big one only if it covers a superset.
            let mut big = generate(4);
            while big.size() <= generate(8).size() {
                big.funcs[0].body.push(crate::gen::Stmt::Work);
            }
            c.admit(big, cov(&[1, 2])).expect("admitted");
            c.admit(generate(8), cov(&[1, 2, 3])).expect("admitted");
            c.save().expect("save");
        }
        let c = Corpus::load(&dir).expect("reload");
        // The small superset entry wins; the big one is dropped.
        assert_eq!(c.entries.len(), 1);
        assert_eq!(c.aggregate, cov(&[1, 2, 3]));
        c.save().expect("save prunes");
        let files: Vec<_> = std::fs::read_dir(&dir)
            .expect("dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
            .collect();
        assert_eq!(files.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn smallest_with_prefers_the_smallest_plan() {
        let mut c = Corpus::in_memory();
        let mut big = generate(11);
        for _ in 0..8 {
            big.funcs[0].body.push(crate::gen::Stmt::Work);
        }
        let small = crate::shrink::shrink(&generate(11), |_| true, usize::MAX);
        // `shrink` with an always-true predicate reduces to a tiny plan.
        c.admit(big, cov(&[7, 8])).expect("big admits");
        c.admit(small.clone(), cov(&[7, 9])).expect("small admits");
        assert_eq!(c.smallest_with(7).expect("feature present").spec, small);
    }
}
