//! Typed divergence reports.
//!
//! A divergence is a disagreement between the runtime stack (MPU model,
//! OPEC-Monitor or ACES runtime) and the ground-truth access matrix
//! derived directly from the partition and resource-dependency results.
//! Each report names the operation, the issuing instruction, the
//! address, and the enforcement layer the oracle blames — enough to
//! reproduce and bisect without rerunning the firmware.

use opec_obs::{OpId, OracleKind, OracleLayer};

/// How the divergent access was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observed {
    /// A load the firmware actually executed.
    Load,
    /// A store the firmware actually executed.
    Store,
    /// A non-destructive MPU probe at a sentinel address (the firmware
    /// never issued it; the oracle asked the MPU model directly).
    Probe,
    /// A function entry (execution-membership divergences).
    Exec,
}

impl core::fmt::Display for Observed {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Observed::Load => "load",
            Observed::Store => "store",
            Observed::Probe => "probe",
            Observed::Exec => "exec",
        };
        write!(f, "{s}")
    }
}

/// One disagreement between the runtime and the ground-truth matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The operation (OPEC) or compartment (ACES) the divergence
    /// occurred in.
    pub op: OpId,
    /// Escape, spurious denial, or exec outside the operation.
    pub kind: OracleKind,
    /// The layer the oracle blames.
    pub layer: OracleLayer,
    /// How the access was observed.
    pub observed: Observed,
    /// The address involved (0 for exec divergences).
    pub addr: u32,
    /// Access width in bytes (0 when not applicable).
    pub size: u8,
    /// PC of the issuing instruction (0 for probes).
    pub pc: u32,
    /// Human-readable context: what the matrix expected and why.
    pub detail: String,
}

impl core::fmt::Display for Divergence {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "op {}: {:?} ({:?} layer) {} at {:#010x} size {} pc {:#010x} — {}",
            self.op,
            self.kind,
            self.layer,
            self.observed,
            self.addr,
            self.size,
            self.pc,
            self.detail
        )
    }
}
