//! Seeded random firmware generation.
//!
//! A [`FirmwareSpec`] is a *plan* — clusters of functions (one cluster
//! per operation plus one for `main`), shared and private globals,
//! MMIO peripherals, direct and indirect calls — that deterministically
//! lowers to an IR [`Module`] plus operation specs, then rides the
//! full production pipeline: partition → resource analysis → layout →
//! image → VM. Plans, not modules, are what the shrinker mutates: a
//! plan stays well-formed under statement deletion, a module does not.
//!
//! Generated programs are *policy-clean by construction*: every global
//! access stays inside the issuing cluster's assigned set and every
//! MMIO access targets a peripheral owned by the cluster, so a correct
//! enforcement stack runs them without a single trap. Anything the
//! oracle flags is therefore a real divergence, not generator noise.
//! Call graphs are recursion-free (calls go strictly up the function
//! index order) so stacks stay bounded and nested operation switches
//! keep a valid sub-region index.

use opec_armv7m::{Board, Machine};
use opec_core::OperationSpec;
use opec_devices::RegFile;
use opec_inject::SplitMix64;
use opec_ir::types::SigKey;
use opec_ir::{BinOp, Module, ModuleBuilder, Operand, Ty};

/// One word-array global and the clusters allowed to touch it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalSpec {
    /// Array length in 32-bit words.
    pub words: u32,
    /// Cluster ids (0 = `main`) that may access it; two or more make
    /// it an external (shadowed) variable under OPEC.
    pub clusters: Vec<usize>,
}

/// One straight-line statement in a generated body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stmt {
    /// Load a word from global `g` at word offset `off`.
    LoadG {
        /// Global index.
        g: usize,
        /// Word offset.
        off: u32,
    },
    /// Store `val` to global `g` at word offset `off`.
    StoreG {
        /// Global index.
        g: usize,
        /// Word offset.
        off: u32,
        /// Value stored.
        val: u32,
    },
    /// MMIO access to register `reg` of peripheral `p`.
    Mmio {
        /// Peripheral index.
        p: usize,
        /// Word-register index inside the 1 KiB window.
        reg: u32,
        /// Write (`true`) or read.
        write: bool,
    },
    /// Direct call to function `f` (an entry function = an operation
    /// switch).
    Call {
        /// Callee index.
        f: usize,
    },
    /// Indirect call to function `f` through a function pointer
    /// (exercises points-to and call-graph resolution).
    ICall {
        /// Callee index.
        f: usize,
    },
    /// Pure ALU work.
    Work,
}

/// One generated function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncSpec {
    /// Cluster id (0 = `main`'s cluster).
    pub cluster: usize,
    /// `Some(i)` marks this function as the entry of operation `i`.
    pub entry_of: Option<usize>,
    /// Straight-line body.
    pub body: Vec<Stmt>,
}

/// A deterministic firmware plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirmwareSpec {
    /// The seed that produced it (diagnostics / reproduction).
    pub seed: u64,
    /// Peripheral window base addresses (1 KiB each, MMIO-backed).
    pub periph_bases: Vec<u32>,
    /// Globals.
    pub globals: Vec<GlobalSpec>,
    /// Functions; index 0 is `main`, indices `1..=n_ops` are the
    /// operation entries.
    pub funcs: Vec<FuncSpec>,
}

impl FirmwareSpec {
    /// Number of operations (excluding the default `main` operation).
    pub fn n_ops(&self) -> usize {
        self.funcs.iter().filter(|f| f.entry_of.is_some()).count()
    }

    /// Total statement count — the shrinker's size metric.
    pub fn size(&self) -> usize {
        self.funcs.iter().map(|f| f.body.len()).sum()
    }

    /// The board every generated firmware targets.
    pub fn board(&self) -> Board {
        Board::stm32f4_discovery()
    }

    /// One `OperationSpec` per entry, in operation order.
    pub fn op_specs(&self) -> Vec<OperationSpec> {
        (1..=self.n_ops()).map(|i| OperationSpec::plain(format!("op{i}"))).collect()
    }

    /// Installs plain-storage MMIO devices backing every generated
    /// peripheral window; without them the bus, not the MPU, would
    /// fault the access and the run would never reach enforcement.
    pub fn install_devices(&self, machine: &mut Machine) {
        for (k, &base) in self.periph_bases.iter().enumerate() {
            machine
                .add_device(Box::new(RegFile::new(format!("P{k}"), base)))
                .expect("generated peripheral windows never collide");
        }
    }

    /// Lowers the plan to an IR module.
    pub fn build_module(&self) -> Module {
        let mut mb = ModuleBuilder::new("gen");
        for (k, &base) in self.periph_bases.iter().enumerate() {
            mb.peripheral(format!("P{k}"), base, 0x400, false);
        }
        let gids: Vec<_> = self
            .globals
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let file = format!("gen{}.c", g.clusters.first().copied().unwrap_or(0));
                mb.global(format!("g{i}"), Ty::Array(Box::new(Ty::I32), g.words.max(1)), &file)
            })
            .collect();
        let fids: Vec<_> = self
            .funcs
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let name = match f.entry_of {
                    Some(op) => format!("op{op}"),
                    None if i == 0 => "main".to_string(),
                    None => format!("helper{i}"),
                };
                let file = format!("gen{}.c", f.cluster);
                mb.declare(name, Vec::new(), None, &file)
            })
            .collect();
        let void_sig = mb.sig(SigKey { params: Vec::new(), ret: None });
        for (i, f) in self.funcs.iter().enumerate() {
            let body = f.body.clone();
            let is_main = i == 0;
            let fids = fids.clone();
            let gids = gids.clone();
            let bases = self.periph_bases.clone();
            mb.define(fids[i], |b| {
                for stmt in &body {
                    match *stmt {
                        Stmt::LoadG { g, off } => {
                            b.load_global(gids[g], off * 4, 4);
                        }
                        Stmt::StoreG { g, off, val } => {
                            b.store_global(gids[g], off * 4, Operand::Imm(val), 4);
                        }
                        Stmt::Mmio { p, reg, write } => {
                            let addr = bases[p] + (reg % 256) * 4;
                            if write {
                                b.mmio_write(addr, Operand::Imm(reg), 4);
                            } else {
                                b.mmio_read(addr, 4);
                            }
                        }
                        Stmt::Call { f } => b.call_void(fids[f], Vec::new()),
                        Stmt::ICall { f } => {
                            let fp = b.addr_of_func(fids[f]);
                            b.icall_void(Operand::Reg(fp), void_sig, Vec::new());
                        }
                        Stmt::Work => {
                            b.bin(BinOp::Add, Operand::Imm(7), Operand::Imm(35));
                        }
                    }
                }
                if is_main {
                    b.halt();
                } else {
                    b.ret_void();
                }
            });
        }
        mb.finish()
    }
}

/// Generates a policy-clean firmware plan from `seed`.
pub fn generate(seed: u64) -> FirmwareSpec {
    let mut rng = SplitMix64::new(seed ^ 0x9e37_79b9_7f4a_7c15);
    let n_ops = rng.gen_range(1, 4) as usize; // 1..=3 operations
    let n_helpers = rng.gen_range(0, 5) as usize;
    let n_globals = rng.gen_range(1, 6) as usize;
    let n_periphs = rng.gen_range(1, 4) as usize;

    // Peripheral windows: 1 KiB each, spread with random gaps so the
    // merged MPU covers sometimes over-cover (exercising Tolerate) and
    // sometimes sit adjacent (exercising merging).
    let mut periph_bases = Vec::new();
    let mut base = 0x4000_0000u32;
    for _ in 0..n_periphs {
        periph_bases.push(base);
        base += 0x400 * rng.gen_range(1, 5) as u32;
    }
    // Each peripheral belongs to one cluster; MMIO stays inside it.
    let periph_owner: Vec<usize> =
        (0..n_periphs).map(|_| rng.gen_range(0, n_ops as u64 + 1) as usize).collect();

    let globals: Vec<GlobalSpec> = (0..n_globals)
        .map(|_| {
            let words = rng.gen_range(1, 9);
            let first = rng.gen_range(0, n_ops as u64 + 1) as usize;
            let mut clusters = vec![first];
            if rng.gen_range(0, 3) == 0 {
                let second = rng.gen_range(0, n_ops as u64 + 1) as usize;
                if second != first {
                    clusters.push(second); // external → shadowed under OPEC
                }
            }
            GlobalSpec { words: words as u32, clusters }
        })
        .collect();

    // Function table: main, then entries, then helpers in random
    // clusters. Call edges go strictly upward in index.
    let mut funcs = vec![FuncSpec { cluster: 0, entry_of: None, body: Vec::new() }];
    for i in 1..=n_ops {
        funcs.push(FuncSpec { cluster: i, entry_of: Some(i), body: Vec::new() });
    }
    for _ in 0..n_helpers {
        let cluster = rng.gen_range(0, n_ops as u64 + 1) as usize;
        funcs.push(FuncSpec { cluster, entry_of: None, body: Vec::new() });
    }

    let n_funcs = funcs.len();
    for i in 0..n_funcs {
        let cluster = funcs[i].cluster;
        let n_stmts = rng.gen_range(2, 7);
        let mut body = Vec::new();
        for _ in 0..n_stmts {
            let accessible: Vec<usize> =
                (0..n_globals).filter(|&g| globals[g].clusters.contains(&cluster)).collect();
            let owned: Vec<usize> =
                (0..n_periphs).filter(|&p| periph_owner[p] == cluster).collect();
            // Callees: strictly higher index, same cluster (helper) or
            // an entry (operation switch from anywhere).
            let callees: Vec<usize> = (i + 1..n_funcs)
                .filter(|&f| funcs[f].cluster == cluster || funcs[f].entry_of.is_some())
                .collect();
            let stmt = match rng.gen_range(0, 10) {
                0..=2 if !accessible.is_empty() => {
                    let g = accessible[rng.gen_range(0, accessible.len() as u64) as usize];
                    let off = rng.gen_range(0, u64::from(globals[g].words)) as u32;
                    Stmt::StoreG { g, off, val: rng.gen_range(0, 1 << 16) as u32 }
                }
                3..=4 if !accessible.is_empty() => {
                    let g = accessible[rng.gen_range(0, accessible.len() as u64) as usize];
                    let off = rng.gen_range(0, u64::from(globals[g].words)) as u32;
                    Stmt::LoadG { g, off }
                }
                5..=6 if !owned.is_empty() => {
                    let p = owned[rng.gen_range(0, owned.len() as u64) as usize];
                    Stmt::Mmio {
                        p,
                        reg: rng.gen_range(0, 16) as u32,
                        write: rng.gen_range(0, 2) == 0,
                    }
                }
                7..=8 if !callees.is_empty() => {
                    let f = callees[rng.gen_range(0, callees.len() as u64) as usize];
                    if rng.gen_range(0, 3) == 0 {
                        Stmt::ICall { f }
                    } else {
                        Stmt::Call { f }
                    }
                }
                _ => Stmt::Work,
            };
            body.push(stmt);
        }
        funcs[i].body = body;
    }
    // main must exercise every operation at least once.
    for i in 1..=n_ops {
        if !funcs[0]
            .body
            .iter()
            .any(|s| matches!(s, Stmt::Call { f } | Stmt::ICall { f } if *f == i))
        {
            funcs[0].body.push(Stmt::Call { f: i });
        }
    }

    FirmwareSpec { seed, periph_bases, globals, funcs }
}
