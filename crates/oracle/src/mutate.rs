//! Structure-aware mutators over [`FirmwareSpec`] plans.
//!
//! Mutation operates on the *plan*, never the lowered module, for the
//! same reason the shrinker does: a plan stays well-formed under edits.
//! Every mutator preserves the generator's invariants, so mutants are
//! still policy-clean by construction and compile through the full
//! production pipeline:
//!
//! * global accesses stay inside the issuing cluster's assigned set;
//! * every peripheral is touched by at most one cluster (single
//!   ownership), derived from the existing `Mmio` statements;
//! * calls go strictly up the function index, to a same-cluster helper
//!   or to any operation entry (recursion-free, bounded stacks);
//! * store offsets stay inside the global's word count;
//! * peripheral windows are 1 KiB and never overlap.
//!
//! What mutation *can* do that fresh generation cannot: grow a plan
//! beyond the generator's envelope. [`Mutator::GrowMmio`] may mint a
//! brand-new peripheral window (non-adjacent, so merged MPU covers
//! keep counting it separately) — corpus entries therefore accumulate
//! structurally richer policies round over round, which is exactly the
//! feedback loop the time-to-find benchmark measures.

use opec_inject::SplitMix64;

use crate::gen::{FirmwareSpec, Stmt};

/// Hard cap on peripherals a mutated plan may declare. Well past the
/// generator's 3 and past every backend's preload-slot count, so
/// window virtualization gets exercised, with enough headroom that a
/// single cluster can still accumulate windows after minting has
/// spread peripherals across every cluster — but bounded so plans stay
/// small and fast.
pub const MAX_PERIPHS: usize = 12;

/// Hard cap on statements per function body.
const MAX_BODY: usize = 24;

/// The mutator catalog (see DESIGN.md §4i).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutator {
    /// Insert a `Call`/`ICall` to a legal callee at a random position.
    SpliceCall,
    /// Flip a global between private and shared by adding a cluster to
    /// its assigned set, or removing one no statement relies on.
    FlipGlobal,
    /// Re-point an existing call to another legal callee, or toggle it
    /// between direct and indirect.
    RetargetCall,
    /// Add an MMIO touch: a new register of an owned peripheral, a
    /// claim of an untouched one, or a brand-new window past the
    /// current address ceiling.
    GrowMmio,
    /// Delete one MMIO touch.
    ShrinkMmio,
    /// Append plain work or an in-set global access to a body.
    GrowBody,
}

/// Every mutator, in catalog order (the dispatch table for
/// [`mutate_once`]).
pub const ALL_MUTATORS: [Mutator; 6] = [
    Mutator::SpliceCall,
    Mutator::FlipGlobal,
    Mutator::RetargetCall,
    Mutator::GrowMmio,
    Mutator::ShrinkMmio,
    Mutator::GrowBody,
];

/// Owner cluster of each peripheral, derived from the plan's `Mmio`
/// statements: `Some(c)` when cluster `c` touches it, `None` when no
/// statement does (a free peripheral any cluster may claim). The
/// generator guarantees — and every mutator preserves — that no two
/// clusters touch the same peripheral.
pub fn periph_owners(spec: &FirmwareSpec) -> Vec<Option<usize>> {
    let mut owners = vec![None; spec.periph_bases.len()];
    for f in &spec.funcs {
        for s in &f.body {
            if let Stmt::Mmio { p, .. } = s {
                owners[*p] = Some(f.cluster);
            }
        }
    }
    owners
}

/// Callees function `i` may legally reach: strictly higher index, same
/// cluster (helper call) or any operation entry (a switch).
fn callees_of(spec: &FirmwareSpec, i: usize) -> Vec<usize> {
    (i + 1..spec.funcs.len())
        .filter(|&f| {
            spec.funcs[f].cluster == spec.funcs[i].cluster || spec.funcs[f].entry_of.is_some()
        })
        .collect()
}

fn pick<T: Copy>(rng: &mut SplitMix64, xs: &[T]) -> Option<T> {
    if xs.is_empty() {
        None
    } else {
        Some(xs[rng.gen_range(0, xs.len() as u64) as usize])
    }
}

impl Mutator {
    /// Applies the mutator to `spec` in place. Returns `false` (spec
    /// untouched) when the plan offers no legal application site.
    pub fn apply(self, spec: &mut FirmwareSpec, rng: &mut SplitMix64) -> bool {
        match self {
            Mutator::SpliceCall => splice_call(spec, rng),
            Mutator::FlipGlobal => flip_global(spec, rng),
            Mutator::RetargetCall => retarget_call(spec, rng),
            Mutator::GrowMmio => grow_mmio(spec, rng),
            Mutator::ShrinkMmio => shrink_mmio(spec, rng),
            Mutator::GrowBody => grow_body(spec, rng),
        }
    }
}

fn splice_call(spec: &mut FirmwareSpec, rng: &mut SplitMix64) -> bool {
    let sites: Vec<usize> = (0..spec.funcs.len())
        .filter(|&i| spec.funcs[i].body.len() < MAX_BODY && !callees_of(spec, i).is_empty())
        .collect();
    let Some(i) = pick(rng, &sites) else { return false };
    let f = pick(rng, &callees_of(spec, i)).expect("site filtered on non-empty callees");
    let stmt = if rng.gen_range(0, 3) == 0 { Stmt::ICall { f } } else { Stmt::Call { f } };
    let at = rng.gen_range(0, spec.funcs[i].body.len() as u64 + 1) as usize;
    spec.funcs[i].body.insert(at, stmt);
    true
}

fn flip_global(spec: &mut FirmwareSpec, rng: &mut SplitMix64) -> bool {
    if spec.globals.is_empty() {
        return false;
    }
    let n_clusters = spec.funcs.iter().map(|f| f.cluster).max().unwrap_or(0) + 1;
    let g = rng.gen_range(0, spec.globals.len() as u64) as usize;
    // Clusters whose statements actually touch g — these may never be
    // removed from the assigned set.
    let used: Vec<usize> = (0..n_clusters)
        .filter(|&c| {
            spec.funcs.iter().any(|f| {
                f.cluster == c
                    && f.body.iter().any(
                        |s| matches!(s, Stmt::LoadG { g: gg, .. } | Stmt::StoreG { g: gg, .. } if *gg == g),
                    )
            })
        })
        .collect();
    let gl = &mut spec.globals[g];
    let removable: Vec<usize> = gl.clusters.iter().copied().filter(|c| !used.contains(c)).collect();
    let addable: Vec<usize> = (0..n_clusters).filter(|c| !gl.clusters.contains(c)).collect();
    // Prefer the direction that exists; flip a coin when both do.
    let remove = !removable.is_empty() && (addable.is_empty() || rng.gen_range(0, 2) == 0);
    if remove && gl.clusters.len() > 1 {
        let c = pick(rng, &removable).expect("non-empty");
        // Keep the first cluster stable when possible: it selects the
        // global's defining file, and churning it would reshuffle the
        // whole ACES filename clustering for an unrelated edit.
        if let Some(pos) = gl.clusters.iter().rposition(|&x| x == c) {
            if pos > 0 || gl.clusters.len() > 1 {
                gl.clusters.remove(pos);
                return true;
            }
        }
        false
    } else if !addable.is_empty() {
        let c = pick(rng, &addable).expect("non-empty");
        gl.clusters.push(c);
        true
    } else {
        false
    }
}

fn retarget_call(spec: &mut FirmwareSpec, rng: &mut SplitMix64) -> bool {
    let mut sites: Vec<(usize, usize)> = Vec::new();
    for (i, f) in spec.funcs.iter().enumerate() {
        for (j, s) in f.body.iter().enumerate() {
            if true_call(s) {
                sites.push((i, j));
            }
        }
    }
    let Some((i, j)) = pick(rng, &sites) else { return false };
    let callees = callees_of(spec, i);
    let (old, indirect) = match spec.funcs[i].body[j] {
        Stmt::Call { f } => (f, false),
        Stmt::ICall { f } => (f, true),
        _ => unreachable!("sites hold calls only"),
    };
    let others: Vec<usize> = callees.iter().copied().filter(|&f| f != old).collect();
    // Retarget when another callee exists, else toggle call kind.
    let new = if !others.is_empty() && rng.gen_range(0, 2) == 0 {
        pick(rng, &others).expect("non-empty")
    } else {
        old
    };
    let flip = new == old;
    spec.funcs[i].body[j] = match (flip, indirect) {
        (true, true) => Stmt::Call { f: new },
        (true, false) => Stmt::ICall { f: new },
        (false, true) => Stmt::ICall { f: new },
        (false, false) => Stmt::Call { f: new },
    };
    true
}

fn true_call(s: &Stmt) -> bool {
    matches!(s, Stmt::Call { .. } | Stmt::ICall { .. })
}

fn grow_mmio(spec: &mut FirmwareSpec, rng: &mut SplitMix64) -> bool {
    let owners = periph_owners(spec);
    let n_clusters = spec.funcs.iter().map(|f| f.cluster).max().unwrap_or(0) + 1;
    let c = rng.gen_range(0, n_clusters as u64) as usize;
    let hosts: Vec<usize> = (0..spec.funcs.len())
        .filter(|&i| spec.funcs[i].cluster == c && spec.funcs[i].body.len() < MAX_BODY)
        .collect();
    let Some(host) = pick(rng, &hosts) else { return false };
    // Peripherals this cluster may touch without breaking single
    // ownership: its own, plus untouched ones.
    let reachable: Vec<usize> =
        (0..spec.periph_bases.len()).filter(|&p| owners[p].is_none_or(|o| o == c)).collect();
    let mint =
        spec.periph_bases.len() < MAX_PERIPHS && (reachable.is_empty() || rng.gen_range(0, 3) == 0);
    let p = if mint {
        // A fresh window past the ceiling, with a ≥ 1 KiB gap so the
        // layout's adjacent-window merging keeps it a *separate* MPU
        // cover — this is the edit that grows an operation's window
        // count beyond the generator's envelope.
        let ceiling = spec.periph_bases.iter().copied().max().unwrap_or(0x4000_0000);
        spec.periph_bases.push(ceiling + 0x400 * rng.gen_range(2, 5) as u32);
        spec.periph_bases.len() - 1
    } else {
        match pick(rng, &reachable) {
            Some(p) => p,
            None => return false,
        }
    };
    let stmt = Stmt::Mmio { p, reg: rng.gen_range(0, 16) as u32, write: rng.gen_range(0, 2) == 0 };
    let at = rng.gen_range(0, spec.funcs[host].body.len() as u64 + 1) as usize;
    spec.funcs[host].body.insert(at, stmt);
    true
}

fn shrink_mmio(spec: &mut FirmwareSpec, rng: &mut SplitMix64) -> bool {
    let mut sites: Vec<(usize, usize)> = Vec::new();
    for (i, f) in spec.funcs.iter().enumerate() {
        for (j, s) in f.body.iter().enumerate() {
            if matches!(s, Stmt::Mmio { .. }) {
                sites.push((i, j));
            }
        }
    }
    let Some((i, j)) = pick(rng, &sites) else { return false };
    spec.funcs[i].body.remove(j);
    true
}

fn grow_body(spec: &mut FirmwareSpec, rng: &mut SplitMix64) -> bool {
    let sites: Vec<usize> =
        (0..spec.funcs.len()).filter(|&i| spec.funcs[i].body.len() < MAX_BODY).collect();
    let Some(i) = pick(rng, &sites) else { return false };
    let c = spec.funcs[i].cluster;
    let accessible: Vec<usize> =
        (0..spec.globals.len()).filter(|&g| spec.globals[g].clusters.contains(&c)).collect();
    let stmt = match rng.gen_range(0, 3) {
        0 => Stmt::Work,
        n => match pick(rng, &accessible) {
            Some(g) => {
                let off = rng.gen_range(0, u64::from(spec.globals[g].words.max(1))) as u32;
                if n == 1 {
                    Stmt::LoadG { g, off }
                } else {
                    Stmt::StoreG { g, off, val: rng.gen_range(0, 1 << 16) as u32 }
                }
            }
            None => Stmt::Work,
        },
    };
    let at = rng.gen_range(0, spec.funcs[i].body.len() as u64 + 1) as usize;
    spec.funcs[i].body.insert(at, stmt);
    true
}

/// Applies one random mutator to a copy of `spec`, deterministically in
/// `seed`. Tries mutators until one finds an application site (every
/// plan admits `GrowBody`, so this terminates).
pub fn mutate(spec: &FirmwareSpec, seed: u64) -> FirmwareSpec {
    let mut rng = SplitMix64::new(seed ^ 0xd1b5_4a32_d192_ed03);
    let mut out = spec.clone();
    for _ in 0..16 {
        let m = ALL_MUTATORS[rng.gen_range(0, ALL_MUTATORS.len() as u64) as usize];
        if m.apply(&mut out, &mut rng) {
            return out;
        }
    }
    // Every body at MAX_BODY and nothing else applicable: fall back to
    // deleting an MMIO touch or returning the spec unchanged.
    Mutator::ShrinkMmio.apply(&mut out, &mut rng);
    out
}

/// Applies `steps` successive [`mutate`] passes, each seeded from the
/// same deterministic stream — the fuzzer's stacked-mutation operator.
/// Stacking is what lets a single scheduling decision compound edits
/// (e.g. minting a window *and* touching it from another function)
/// that one mutation alone cannot express.
pub fn mutate_stacked(spec: &FirmwareSpec, seed: u64, steps: u32) -> FirmwareSpec {
    let mut rng = SplitMix64::new(seed ^ 0x94d0_49bb_1331_11eb);
    let mut out = spec.clone();
    for _ in 0..steps.max(1) {
        out = mutate(&out, rng.next_u64());
    }
    out
}

/// Checks the generator invariants a plan must satisfy to be
/// policy-clean; returns the first violation. Used by the mutation
/// proptests and by corpus load (a hand-edited corpus entry that
/// breaks the invariants would poison every mutant derived from it).
pub fn well_formed(spec: &FirmwareSpec) -> Result<(), String> {
    if spec.funcs.is_empty() || spec.funcs[0].entry_of.is_some() {
        return Err("func 0 must be main (no entry_of)".into());
    }
    if spec.periph_bases.len() > MAX_PERIPHS {
        return Err(format!("{} peripherals exceeds cap {MAX_PERIPHS}", spec.periph_bases.len()));
    }
    let mut bases = spec.periph_bases.clone();
    bases.sort_unstable();
    for w in bases.windows(2) {
        if w[1] - w[0] < 0x400 {
            return Err(format!("peripheral windows {:#x} and {:#x} overlap", w[0], w[1]));
        }
    }
    let mut owners: Vec<Option<usize>> = vec![None; spec.periph_bases.len()];
    for (i, f) in spec.funcs.iter().enumerate() {
        for s in &f.body {
            match *s {
                Stmt::LoadG { g, off } | Stmt::StoreG { g, off, .. } => {
                    let Some(gl) = spec.globals.get(g) else {
                        return Err(format!("func {i} touches unknown global {g}"));
                    };
                    if !gl.clusters.contains(&f.cluster) {
                        return Err(format!(
                            "func {i} (cluster {}) touches global {g} outside its set",
                            f.cluster
                        ));
                    }
                    if off >= gl.words.max(1) {
                        return Err(format!("func {i} global {g} offset {off} out of bounds"));
                    }
                }
                Stmt::Mmio { p, .. } => {
                    if p >= spec.periph_bases.len() {
                        return Err(format!("func {i} touches unknown peripheral {p}"));
                    }
                    match owners[p] {
                        None => owners[p] = Some(f.cluster),
                        Some(o) if o == f.cluster => {}
                        Some(o) => {
                            return Err(format!(
                                "peripheral {p} touched by clusters {o} and {}",
                                f.cluster
                            ))
                        }
                    }
                }
                Stmt::Call { f: callee } | Stmt::ICall { f: callee } => {
                    if callee <= i || callee >= spec.funcs.len() {
                        return Err(format!("func {i} calls {callee}: not strictly upward"));
                    }
                    let target = &spec.funcs[callee];
                    if target.cluster != f.cluster && target.entry_of.is_none() {
                        return Err(format!(
                            "func {i} calls foreign non-entry {callee} (cluster {})",
                            target.cluster
                        ));
                    }
                }
                Stmt::Work => {}
            }
        }
    }
    for (g, gl) in spec.globals.iter().enumerate() {
        if gl.clusters.is_empty() {
            return Err(format!("global {g} assigned to no cluster"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn mutate_is_deterministic_in_seed() {
        let spec = generate(42);
        assert_eq!(mutate(&spec, 7), mutate(&spec, 7));
        // And the input is untouched.
        assert_eq!(spec, generate(42));
    }

    #[test]
    fn generated_specs_are_well_formed() {
        for seed in 0..32 {
            well_formed(&generate(seed)).expect("generator output must satisfy its invariants");
        }
    }

    #[test]
    fn mutants_stay_well_formed_under_long_chains() {
        let mut spec = generate(5);
        for round in 0..64u64 {
            spec = mutate(&spec, round);
            well_formed(&spec).unwrap_or_else(|e| panic!("round {round}: {e}"));
        }
    }

    #[test]
    fn grow_mmio_can_exceed_the_generator_envelope() {
        // Repeated growth must eventually mint windows past the
        // generator's 3-peripheral cap (the latent-bug reachability
        // argument in the time-to-find benchmark rests on this).
        let mut spec = generate(1);
        let mut rng = SplitMix64::new(99);
        for _ in 0..256 {
            Mutator::GrowMmio.apply(&mut spec, &mut rng);
        }
        assert!(spec.periph_bases.len() > 3, "minting never happened");
        assert!(spec.periph_bases.len() <= MAX_PERIPHS);
        well_formed(&spec).expect("grown spec");
    }
}
