//! Greedy counterexample shrinking.
//!
//! Given a firmware plan that makes the oracle diverge, repeatedly try
//! smaller plans — whole bodies emptied first, then single statements
//! deleted — keeping a candidate whenever the divergence persists, and
//! iterating to a fixpoint. Plans stay well-formed under every
//! reduction (statements are self-contained and function indices never
//! shift), so each candidate reruns the full compile → image → VM
//! pipeline unchanged.

use crate::gen::FirmwareSpec;

/// Shrinks `spec` while `diverges` keeps returning `true`, spending at
/// most `budget` pipeline reruns. Returns the smallest divergent plan
/// found (possibly the input).
pub fn shrink(
    spec: &FirmwareSpec,
    mut diverges: impl FnMut(&FirmwareSpec) -> bool,
    mut budget: usize,
) -> FirmwareSpec {
    let mut best = spec.clone();
    loop {
        let mut reduced = false;
        // Pass 1: empty whole bodies, most recently added functions
        // first (helpers before entries before main).
        for f in (0..best.funcs.len()).rev() {
            if best.funcs[f].body.is_empty() || budget == 0 {
                continue;
            }
            let mut cand = best.clone();
            cand.funcs[f].body.clear();
            budget -= 1;
            if diverges(&cand) {
                best = cand;
                reduced = true;
            }
        }
        // Pass 2: delete single statements, last first so earlier
        // indices stay valid across the sweep.
        for f in 0..best.funcs.len() {
            let mut s = best.funcs[f].body.len();
            while s > 0 {
                s -= 1;
                if budget == 0 {
                    break;
                }
                let mut cand = best.clone();
                cand.funcs[f].body.remove(s);
                budget -= 1;
                if diverges(&cand) {
                    best = cand;
                    reduced = true;
                }
            }
        }
        if !reduced || budget == 0 {
            return best;
        }
    }
}

/// Renders a plan as a compact reproducible description: seed, sizes,
/// and the surviving statements per function.
pub fn describe(spec: &FirmwareSpec) -> String {
    use core::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "seed {:#x}: {} ops, {} periphs, {} globals, {} stmts",
        spec.seed,
        spec.n_ops(),
        spec.periph_bases.len(),
        spec.globals.len(),
        spec.size()
    );
    for (i, f) in spec.funcs.iter().enumerate() {
        if f.body.is_empty() {
            continue;
        }
        let name = match f.entry_of {
            Some(op) => format!("op{op}"),
            None if i == 0 => "main".to_string(),
            None => format!("helper{i}"),
        };
        let _ = writeln!(out, "  {name} (cluster {}): {:?}", f.cluster, f.body);
    }
    out
}
