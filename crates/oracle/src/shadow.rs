//! The lockstep shadow monitor.
//!
//! A [`Watcher`] implementation that rides the VM step loop and checks
//! every resolved unprivileged access, every function entry and every
//! accepted operation switch against the ground-truth
//! [`AccessMatrix`]. Divergences are typed ([`Divergence`]) and also
//! emitted as [`Event::OracleDivergence`] observability events so they
//! land in the same timeline as the switches and faults they implicate.
//!
//! Two observation channels:
//!
//! * **Lockstep** — the outcome of accesses the firmware actually
//!   issued. Catches both escapes (allowed but matrix-denied) and
//!   spurious denials (aborted but matrix-allowed) on the exercised
//!   path.
//! * **Probes** — at every accepted switch the oracle asks the MPU
//!   model directly about sentinel addresses (other operations'
//!   sections, the public section, the relocation table, flash,
//!   foreign peripherals, the stack sub-region boundary). This catches
//!   over-privileged region files even when the firmware never touches
//!   the address. Peripheral windows are *not* Allow-probed: the
//!   virtualized ones legally read as denied until faulted in.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use opec_armv7m::mpu::MpuDecision;
use opec_armv7m::{Machine, Mode};
use opec_ir::FuncId;
use opec_obs::{Event, Obs, OpId, OracleKind, OracleLayer};
use opec_vm::supervisor::SwitchKind;
use opec_vm::{AccessKind, WatchedAccess, WatchedSwitch, Watcher};

use crate::divergence::{Divergence, Observed};
use crate::matrix::{AccessMatrix, Expect};

/// How many divergences are kept verbatim; the count keeps running.
const KEEP: usize = 64;

/// Everything the oracle accumulated over one run.
#[derive(Debug, Default)]
pub struct OracleState {
    /// Divergences, first [`KEEP`] kept verbatim.
    pub divergences: Vec<Divergence>,
    /// Total divergences observed (may exceed `divergences.len()`).
    pub total_divergences: u64,
    /// Lockstep access checks performed.
    pub checks: u64,
    /// MPU probes performed.
    pub probes: u64,
    /// Accepted switches observed.
    pub switches: u64,
    /// Every function entered, per operation, any privilege level —
    /// mirrors the trace's attribution for ET cross-checks.
    pub exec: BTreeMap<OpId, BTreeSet<FuncId>>,
    /// Stack of (operation, write-deny boundary) for nested switches.
    boundaries: Vec<(OpId, u32)>,
    /// The oracle's own subject stack, mirrored from accepted switches.
    /// The VM's per-access op attribution falls back to id 0 at top
    /// level, which is wrong for ACES (the entry compartment need not
    /// be 0), so the oracle never relies on it.
    subjects: Vec<OpId>,
}

impl OracleState {
    fn record(&mut self, obs: &Obs, d: Divergence) {
        self.total_divergences += 1;
        obs.emit(|| Event::OracleDivergence {
            op: d.op,
            kind: d.kind,
            layer: d.layer,
            address: d.addr,
        });
        if self.divergences.len() < KEEP {
            self.divergences.push(d);
        }
    }
}

/// Shared handle to the oracle's state, usable after the VM (which owns
/// the watcher box) has been dropped.
#[derive(Clone)]
pub struct OracleHandle(Rc<RefCell<OracleState>>);

impl OracleHandle {
    /// Takes the accumulated state, leaving an empty one behind.
    pub fn take(&self) -> OracleState {
        self.0.replace(OracleState::default())
    }

    /// Divergences observed so far.
    pub fn total_divergences(&self) -> u64 {
        self.0.borrow().total_divergences
    }
}

/// The watcher. Construct with [`shadow`].
pub struct ShadowOracle {
    matrix: AccessMatrix,
    state: Rc<RefCell<OracleState>>,
    obs: Obs,
}

/// Builds a shadow oracle over `matrix`, returning the boxed watcher
/// (for [`opec_vm::VmBuilder::watcher`]) and a handle to read the
/// verdicts afterwards. Matrix build-time anomalies are surfaced
/// immediately as analysis-layer divergences.
pub fn shadow(matrix: AccessMatrix, obs: Obs) -> (Box<ShadowOracle>, OracleHandle) {
    let mut st = OracleState::default();
    for a in &matrix.anomalies {
        st.record(
            &obs,
            Divergence {
                op: 0,
                kind: OracleKind::SpuriousDenial,
                layer: OracleLayer::Analysis,
                observed: Observed::Exec,
                addr: 0,
                size: 0,
                pc: 0,
                detail: a.clone(),
            },
        );
    }
    let state = Rc::new(RefCell::new(st));
    let handle = OracleHandle(state.clone());
    (Box::new(ShadowOracle { matrix, state, obs }), handle)
}

impl ShadowOracle {
    /// The innermost stack write-deny boundary, if any operation with
    /// caller frames above it is active.
    fn boundary(&self, st: &OracleState) -> Option<u32> {
        st.boundaries.last().map(|&(_, b)| b)
    }

    /// The subject currently switched in, per the oracle's own stack.
    fn subject(&self, st: &OracleState) -> OpId {
        st.subjects.last().copied().unwrap_or(self.matrix.root)
    }

    fn expect_for(&self, st: &OracleState, op: OpId, addr: u32, write: bool) -> Expect {
        let stack = self.matrix.stack;
        if stack.contains(addr) {
            if !self.matrix.track_stack_boundary || !write {
                return Expect::Allow;
            }
            return match self.boundary(st) {
                Some(b) if addr >= b => Expect::Deny,
                _ => Expect::Allow,
            };
        }
        self.matrix.expect_data(op, addr, write)
    }

    fn probe_sweep(&self, machine: &Machine, st: &mut OracleState, op: OpId) {
        let Some(e) = self.matrix.ops.get(usize::from(op)) else { return };
        let stack = self.matrix.stack;
        let mut extra: Vec<(u32, bool, Expect, &'static str)> = Vec::new();
        if self.matrix.track_stack_boundary {
            if let Some(b) = st.boundaries.last().map(|&(_, b)| b) {
                if b > stack.base && b < stack.end() {
                    extra.push((
                        b,
                        true,
                        Expect::Deny,
                        "caller stack above the sub-region boundary",
                    ));
                    extra.push((
                        b - 4,
                        true,
                        Expect::Allow,
                        "own stack below the sub-region boundary",
                    ));
                }
            }
        }
        let probes = e
            .probes
            .iter()
            .map(|p| (p.addr, p.write, p.expect, p.what))
            .chain(extra)
            .collect::<Vec<_>>();
        for (cell, (addr, write, expect, what)) in probes.into_iter().enumerate() {
            st.probes += 1;
            let allowed = matches!(
                machine.protection().check_data(addr, 1, write, Mode::Unprivileged),
                MpuDecision::Allowed
            );
            // Coverage channel: every cell exercised, hit or miss. The
            // cell index is stable (matrix row order, stack-boundary
            // extras appended), so the same policy shape maps to the
            // same coverage features across runs.
            self.obs.emit(|| Event::OracleProbe {
                op,
                cell: cell.min(u16::MAX as usize) as u16,
                allowed,
            });
            let kind = match (allowed, expect) {
                (true, Expect::Deny) => OracleKind::Escape,
                (false, Expect::Allow) => OracleKind::SpuriousDenial,
                _ => continue,
            };
            st.record(
                &self.obs,
                Divergence {
                    op,
                    kind,
                    layer: OracleLayer::Mpu,
                    observed: Observed::Probe,
                    addr,
                    size: 1,
                    pc: 0,
                    detail: format!("{what}: MPU region file disagrees with the matrix"),
                },
            );
        }
    }
}

impl Watcher for ShadowOracle {
    fn on_access(&mut self, _machine: &Machine, acc: &WatchedAccess) {
        if acc.mode == Mode::Privileged {
            return;
        }
        let state = self.state.clone();
        let mut st = state.borrow_mut();
        st.checks += 1;
        let op = self.subject(&st);
        let write = acc.kind == AccessKind::Store;
        let expect = self.expect_for(&st, op, acc.addr, write);
        let kind = match (acc.allowed, expect) {
            (true, Expect::Deny) => OracleKind::Escape,
            (false, Expect::Allow) => OracleKind::SpuriousDenial,
            _ => return,
        };
        // Peripheral-space and PPB decisions involve the monitor
        // (window virtualization, load/store emulation); plain
        // memory decisions are the static region file's alone.
        let layer = match opec_armv7m::AddressClass::of(acc.addr) {
            opec_armv7m::AddressClass::Peripheral | opec_armv7m::AddressClass::Ppb => {
                OracleLayer::Monitor
            }
            _ => OracleLayer::Mpu,
        };
        st.record(
            &self.obs,
            Divergence {
                op,
                kind,
                layer,
                observed: if write { Observed::Store } else { Observed::Load },
                addr: acc.addr,
                size: acc.size,
                pc: acc.pc,
                detail: format!(
                    "runtime {} a {} the matrix says {:?}",
                    if acc.allowed { "allowed" } else { "denied" },
                    if write { "store" } else { "load" },
                    expect
                ),
            },
        );
    }

    fn on_func_enter(&mut self, _machine: &Machine, op: OpId, func: FuncId, mode: Mode) {
        let state = self.state.clone();
        let mut st = state.borrow_mut();
        st.exec.entry(op).or_default().insert(func);
        if mode == Mode::Privileged {
            return; // IRQ handlers and lifted compartments
        }
        let subject = self.subject(&st);
        let member =
            self.matrix.ops.get(usize::from(subject)).is_some_and(|e| e.funcs.contains(&func));
        if !member {
            st.record(
                &self.obs,
                Divergence {
                    op: subject,
                    kind: OracleKind::ExecOutsideOperation,
                    layer: OracleLayer::Analysis,
                    observed: Observed::Exec,
                    addr: 0,
                    size: 0,
                    pc: 0,
                    detail: format!(
                        "function {} executed unprivileged outside the member set",
                        func.0
                    ),
                },
            );
        }
    }

    fn on_switch(&mut self, machine: &Machine, sw: &WatchedSwitch) {
        if !sw.ok {
            return;
        }
        let state = self.state.clone();
        let mut st = state.borrow_mut();
        st.switches += 1;
        match sw.kind {
            SwitchKind::Enter => {
                st.subjects.push(sw.to);
                if self.matrix.track_stack_boundary {
                    let stack = self.matrix.stack;
                    let g = self.matrix.boundary_granularity.max(1);
                    let boundary = if stack.contains(sw.sp_before) || sw.sp_before == stack.end() {
                        let idx = ((sw.sp_before - stack.base) / g).min(stack.size / g);
                        stack.base + idx * g
                    } else {
                        stack.end()
                    };
                    st.boundaries.push((sw.to, boundary));
                }
                self.probe_sweep(machine, &mut st, sw.to);
            }
            SwitchKind::Exit => {
                if st.subjects.last() == Some(&sw.from) {
                    st.subjects.pop();
                }
                if st.boundaries.last().is_some_and(|&(o, _)| o == sw.from) {
                    st.boundaries.pop();
                }
                let back = self.subject(&st);
                self.probe_sweep(machine, &mut st, back);
            }
        }
    }

    fn on_quarantine(&mut self, _machine: &Machine, op: OpId) {
        let state = self.state.clone();
        let mut st = state.borrow_mut();
        while let Some(&o) = st.subjects.last() {
            st.subjects.pop();
            if o == op {
                break;
            }
        }
        while let Some(&(o, _)) = st.boundaries.last() {
            st.boundaries.pop();
            if o == op {
                break;
            }
        }
    }
}
