//! Differential security oracle for the OPEC pipeline.
//!
//! The enforcement stack — partition, resource analysis, layout,
//! shadowing, MPU-plan generation, switch-time sub-region arithmetic,
//! peripheral-window virtualization, BusFault emulation — is many
//! layers deep, and a bug in any of them can silently over- or
//! under-privilege an operation while every unit test stays green.
//! This crate checks the *composition* end to end:
//!
//! 1. [`matrix::AccessMatrix`] — the ground-truth answer to "may
//!    operation *i* access address *a*?", computed straight from the
//!    partition and resource-dependency results plus the placement
//!    map, deliberately independent of the MPU-config and shadowing
//!    codegen it audits.
//! 2. [`shadow`] — a lockstep [`opec_vm::Watcher`] that compares every
//!    resolved access, function entry and operation switch against the
//!    matrix, probing the MPU model at sentinel addresses on every
//!    switch, and reports typed [`divergence::Divergence`]s: *escapes*
//!    (runtime allowed, matrix denies) and *spurious denials* (runtime
//!    trapped, matrix allows).
//! 3. [`gen`] / [`shrink`] — seeded random firmware plans pushed
//!    through the production pipeline, with greedy shrinking to a
//!    minimal divergent program when the oracle fires.
//!
//! `opec-eval check` drives all of it over the paper's applications
//! and a batch of generated firmwares; `crates/oracle/tests` prove the
//! oracle actually catches deliberately broken MPU configurations.

#![warn(missing_docs)]

pub mod corpus;
pub mod coverage;
pub mod divergence;
pub mod gen;
pub mod matrix;
pub mod mutate;
pub mod run;
pub mod shadow;
pub mod shrink;
pub mod tamper;

pub use corpus::{Corpus, CorpusEntry};
pub use coverage::{divergence_key, CoverageMap};
pub use divergence::{Divergence, Observed};
pub use gen::{generate, FirmwareSpec};
pub use matrix::{AccessMatrix, Expect};
pub use mutate::{mutate, mutate_stacked, periph_owners, well_formed, Mutator, ALL_MUTATORS};
pub use run::{
    run_aces, run_aces_with, run_opec, run_opec_cov, run_opec_on, run_opec_with, RunBudget,
    RunHalt, Verdict, GEN_FUEL,
};
pub use shadow::{shadow, OracleHandle, OracleState, ShadowOracle};
pub use shrink::{describe, shrink};
pub use tamper::{break_mpu, break_mpu_latent, LATENT_MIN_WINDOWS};
