//! One-call pipelines: plan → compile → image → VM with the shadow
//! oracle attached, for both enforcement stacks.

use std::collections::{BTreeMap, BTreeSet};

use opec_aces::{build_aces_image, AcesRuntime, AcesStrategy};
use opec_armv7m::Machine;
use opec_core::{compile, OpecMonitor, SystemPolicy};
use opec_ir::FuncId;
use opec_obs::{Obs, OpId};
use opec_vm::Vm;

use crate::divergence::Divergence;
use crate::gen::FirmwareSpec;
use crate::matrix::AccessMatrix;
use crate::shadow::shadow;

/// Fuel for generated firmwares — they are tiny; this is generous.
pub const GEN_FUEL: u64 = 5_000_000;

/// The oracle's verdict over one run.
#[derive(Debug, Default)]
pub struct Verdict {
    /// Divergences (capped), in observation order.
    pub divergences: Vec<Divergence>,
    /// Total divergences (uncapped count).
    pub total_divergences: u64,
    /// Lockstep access checks performed.
    pub checks: u64,
    /// MPU probes performed.
    pub probes: u64,
    /// Accepted switches observed.
    pub switches: u64,
    /// Functions entered per operation (trace-mirroring attribution).
    pub exec: BTreeMap<OpId, BTreeSet<FuncId>>,
    /// The VM's terminal error, if the run did not end cleanly.
    pub run_error: Option<String>,
}

impl Verdict {
    /// True when the run produced no divergence.
    pub fn clean(&self) -> bool {
        self.total_divergences == 0
    }
}

/// Runs a generated firmware under the full OPEC stack with the shadow
/// oracle attached. `mutate` tampers with the *enforced* policy after
/// the ground-truth matrix is derived — the hook the broken-MPU
/// self-tests use to prove the oracle catches enforcement bugs.
pub fn run_opec(
    spec: &FirmwareSpec,
    mutate: Option<&dyn Fn(&mut SystemPolicy)>,
) -> Result<Verdict, String> {
    let board = spec.board();
    let module = spec.build_module();
    let specs = spec.op_specs();
    let out = compile(module, board, &specs).map_err(|e| format!("compile: {e:?}"))?;
    let matrix = AccessMatrix::opec(&out.image.module, &out.partition, &out.policy);
    let mut policy = out.policy.clone();
    if let Some(m) = mutate {
        m(&mut policy);
    }
    let mut machine = Machine::new(board);
    spec.install_devices(&mut machine);
    let (watcher, handle) = shadow(matrix, Obs::disabled());
    let mut vm = Vm::builder(machine, out.image.clone())
        .supervisor(OpecMonitor::new(policy))
        .watcher(watcher)
        .build()
        .map_err(|e| format!("image: {e:?}"))?;
    let run_error = vm.run(GEN_FUEL).err().map(|e| format!("{e:?}"));
    let st = handle.take();
    Ok(Verdict {
        divergences: st.divergences,
        total_divergences: st.total_divergences,
        checks: st.checks,
        probes: st.probes,
        switches: st.switches,
        exec: st.exec,
        run_error,
    })
}

/// Runs a generated firmware under the ACES stack (Filename strategy)
/// with the shadow oracle attached.
pub fn run_aces(spec: &FirmwareSpec) -> Result<Verdict, String> {
    let board = spec.board();
    let module = spec.build_module();
    let out = build_aces_image(module, board, AcesStrategy::Filename)
        .map_err(|e| format!("aces image: {e:?}"))?;
    let main_comp = out.comps.of(out.image.entry);
    let matrix = AccessMatrix::aces(
        &out.image.module,
        &out.comps,
        &out.regions,
        out.stack,
        board.flash.base,
        main_comp,
    );
    let runtime = AcesRuntime::new(
        &out.image.module,
        out.comps.clone(),
        out.regions.clone(),
        board,
        out.stack,
        main_comp,
    );
    let mut machine = Machine::new(board);
    spec.install_devices(&mut machine);
    let (watcher, handle) = shadow(matrix, Obs::disabled());
    let mut vm = Vm::builder(machine, out.image.clone())
        .supervisor(runtime)
        .watcher(watcher)
        .build()
        .map_err(|e| format!("image: {e:?}"))?;
    let run_error = vm.run(GEN_FUEL).err().map(|e| format!("{e:?}"));
    let st = handle.take();
    Ok(Verdict {
        divergences: st.divergences,
        total_divergences: st.total_divergences,
        checks: st.checks,
        probes: st.probes,
        switches: st.switches,
        exec: st.exec,
        run_error,
    })
}
