//! One-call pipelines: plan → compile → image → VM with the shadow
//! oracle attached, for both enforcement stacks.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

use opec_aces::{build_aces_image, AcesRuntime, AcesStrategy};
use opec_armv7m::Machine;
use opec_core::backend::{Armv7mBackend, DynBackend};
use opec_core::{compile, OpecMonitor, SystemPolicy};
use opec_ir::FuncId;
use opec_obs::{Obs, OpId};
use opec_vm::{Vm, VmError};

use crate::coverage::CoverageMap;
use crate::divergence::Divergence;
use crate::gen::FirmwareSpec;
use crate::matrix::AccessMatrix;
use crate::shadow::shadow;

/// Fuel for generated firmwares — they are tiny; this is generous.
pub const GEN_FUEL: u64 = 5_000_000;

/// Resource bounds for one oracle run: the deterministic guest fuel
/// budget plus an optional host wall-clock deadline. The default is
/// [`GEN_FUEL`] with no deadline — the historical behaviour.
#[derive(Debug, Clone, Copy)]
pub struct RunBudget {
    /// Guest instruction budget.
    pub fuel: u64,
    /// Host wall-clock deadline, armed via `Vm::set_deadline`.
    pub deadline: Option<Instant>,
}

impl Default for RunBudget {
    fn default() -> RunBudget {
        RunBudget { fuel: GEN_FUEL, deadline: None }
    }
}

/// Why a bounded run stopped early. Distinct from
/// [`Verdict::run_error`]: hitting a budget is expected supervision,
/// not a guest failure, and the divergence counts collected up to the
/// stop are still meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunHalt {
    /// The guest exhausted [`RunBudget::fuel`].
    FuelExhausted,
    /// The wall-clock deadline passed.
    TimedOut,
}

/// The oracle's verdict over one run.
#[derive(Debug, Default)]
pub struct Verdict {
    /// Divergences (capped), in observation order.
    pub divergences: Vec<Divergence>,
    /// Total divergences (uncapped count).
    pub total_divergences: u64,
    /// Lockstep access checks performed.
    pub checks: u64,
    /// MPU probes performed.
    pub probes: u64,
    /// Accepted switches observed.
    pub switches: u64,
    /// Functions entered per operation (trace-mirroring attribution).
    pub exec: BTreeMap<OpId, BTreeSet<FuncId>>,
    /// The VM's terminal error, if the run did not end cleanly.
    pub run_error: Option<String>,
    /// Set when the run was stopped by its budget rather than by the
    /// guest; `run_error` stays `None` in that case.
    pub halt: Option<RunHalt>,
}

impl Verdict {
    /// True when the run produced no divergence.
    pub fn clean(&self) -> bool {
        self.total_divergences == 0
    }
}

/// Splits a run's terminal error into (budget halt, guest error).
fn classify(err: Option<VmError>) -> (Option<RunHalt>, Option<String>) {
    match err {
        None => (None, None),
        Some(VmError::OutOfFuel) => (Some(RunHalt::FuelExhausted), None),
        Some(VmError::TimedOut) => (Some(RunHalt::TimedOut), None),
        Some(e) => (None, Some(format!("{e:?}"))),
    }
}

/// Runs a generated firmware under the full OPEC stack with the shadow
/// oracle attached, under the default [`RunBudget`]. `mutate` tampers
/// with the *enforced* policy after the ground-truth matrix is derived
/// — the hook the broken-MPU self-tests use to prove the oracle
/// catches enforcement bugs.
pub fn run_opec(
    spec: &FirmwareSpec,
    mutate: Option<&dyn Fn(&mut SystemPolicy)>,
) -> Result<Verdict, String> {
    run_opec_with(spec, mutate, &RunBudget::default())
}

/// [`run_opec`] under an explicit budget, on the paper's ARMv7-M MPU
/// backend.
pub fn run_opec_with(
    spec: &FirmwareSpec,
    mutate: Option<&dyn Fn(&mut SystemPolicy)>,
    budget: &RunBudget,
) -> Result<Verdict, String> {
    run_opec_on(spec, mutate, budget, Arc::new(Armv7mBackend))
}

/// [`run_opec`] on an explicit protection backend: the machine, its
/// protection unit, the monitor's region plan and the oracle's
/// boundary prediction all come from `backend`, while the access
/// matrix itself stays backend-independent — which is what makes a
/// cross-backend lockstep comparison meaningful.
pub fn run_opec_on(
    spec: &FirmwareSpec,
    mutate: Option<&dyn Fn(&mut SystemPolicy)>,
    budget: &RunBudget,
    backend: Arc<dyn DynBackend>,
) -> Result<Verdict, String> {
    run_opec_cov(spec, mutate, budget, backend).map(|(v, _)| v)
}

/// [`run_opec_on`] with coverage extraction: a [`CoverageMap`] sink
/// rides both the VM's event stream (switch edges, virtualization
/// hits/evictions/misses, traps) and the shadow oracle's (probe cells,
/// divergence classes), and the folded map is returned alongside the
/// verdict. The map is a pure feature set, so it is deterministic for
/// a given `(spec, mutate, backend)` regardless of budgets generous
/// enough to finish the run.
pub fn run_opec_cov(
    spec: &FirmwareSpec,
    mutate: Option<&dyn Fn(&mut SystemPolicy)>,
    budget: &RunBudget,
    backend: Arc<dyn DynBackend>,
) -> Result<(Verdict, CoverageMap), String> {
    let board = spec.board();
    let module = spec.build_module();
    let specs = spec.op_specs();
    let out = compile(module, board, &specs).map_err(|e| format!("compile: {e:?}"))?;
    let matrix = AccessMatrix::opec(&out.image.module, &out.partition, &out.policy)
        .with_boundary_granularity(backend.boundary_granularity(out.policy.stack));
    let mut policy = out.policy.clone();
    if let Some(m) = mutate {
        m(&mut policy);
    }
    let mut machine = backend.make_machine(board);
    spec.install_devices(&mut machine);
    let cov = Rc::new(RefCell::new(CoverageMap::new()));
    let obs = Obs::single(cov.clone());
    let (watcher, handle) = shadow(matrix, obs.clone());
    let mut vm = Vm::builder(machine, out.image.clone())
        .supervisor(OpecMonitor::with_backend(policy, backend))
        .watcher(watcher)
        .obs(obs)
        .build()
        .map_err(|e| format!("image: {e:?}"))?;
    vm.set_deadline(budget.deadline);
    let (halt, run_error) = classify(vm.run(budget.fuel).err());
    let st = handle.take();
    let verdict = Verdict {
        divergences: st.divergences,
        total_divergences: st.total_divergences,
        checks: st.checks,
        probes: st.probes,
        switches: st.switches,
        exec: st.exec,
        run_error,
        halt,
    };
    let coverage = cov.borrow().clone();
    Ok((verdict, coverage))
}

/// Runs a generated firmware under the ACES stack (Filename strategy)
/// with the shadow oracle attached, under the default [`RunBudget`].
pub fn run_aces(spec: &FirmwareSpec) -> Result<Verdict, String> {
    run_aces_with(spec, &RunBudget::default())
}

/// [`run_aces`] under an explicit budget.
pub fn run_aces_with(spec: &FirmwareSpec, budget: &RunBudget) -> Result<Verdict, String> {
    let board = spec.board();
    let module = spec.build_module();
    let out = build_aces_image(module, board, AcesStrategy::Filename)
        .map_err(|e| format!("aces image: {e:?}"))?;
    let main_comp = out.comps.of(out.image.entry);
    let matrix = AccessMatrix::aces(
        &out.image.module,
        &out.comps,
        &out.regions,
        out.stack,
        board.flash.base,
        main_comp,
    );
    let runtime = AcesRuntime::new(
        &out.image.module,
        out.comps.clone(),
        out.regions.clone(),
        board,
        out.stack,
        main_comp,
    );
    let mut machine = Machine::new(board);
    spec.install_devices(&mut machine);
    let (watcher, handle) = shadow(matrix, Obs::disabled());
    let mut vm = Vm::builder(machine, out.image.clone())
        .supervisor(runtime)
        .watcher(watcher)
        .build()
        .map_err(|e| format!("image: {e:?}"))?;
    vm.set_deadline(budget.deadline);
    let (halt, run_error) = classify(vm.run(budget.fuel).err());
    let st = handle.take();
    Ok(Verdict {
        divergences: st.divergences,
        total_divergences: st.total_divergences,
        checks: st.checks,
        probes: st.probes,
        switches: st.switches,
        exec: st.exec,
        run_error,
        halt,
    })
}
