//! The ground-truth access matrix.
//!
//! For every operation (OPEC) or compartment (ACES) the matrix answers:
//! *may this subject access this address, and how confident are we?*
//! It is computed **directly** from the partition / compartmentalization
//! results and the resource-dependency analysis plus the data-placement
//! map — deliberately *not* from the generated MPU region lists or the
//! shadowing code, so that a bug in MPU-plan generation, sub-region
//! encoding, window virtualization or shadow synchronisation shows up
//! as a disagreement instead of being faithfully replicated on both
//! sides of the comparison. The only shared inputs are addresses (where
//! a global or section was placed), because an access check is
//! meaningless without them.
//!
//! Three-valued answers:
//!
//! * [`Expect::Allow`] — the design grants the access. A runtime denial
//!   is a *spurious denial* (under-privilege bug).
//! * [`Expect::Deny`] — the design forbids it. A runtime grant is an
//!   *escape* (enforcement bug).
//! * [`Expect::Tolerate`] — inside known hardware over-cover: MPU
//!   regions are power-of-two sized, so section fragments and merged
//!   peripheral covers legally over-grant. Never flagged either way.

use std::collections::BTreeSet;

use opec_aces::{Compartments, DataRegions};
use opec_armv7m::mem::AddressClass;
use opec_armv7m::mpu::region_size_for;
use opec_armv7m::MemRegion;
use opec_core::layout::HEAP_GLOBAL;
use opec_core::{Partition, SystemPolicy};
use opec_ir::{FuncId, GlobalId, Module};
use opec_obs::OpId;

/// The matrix's verdict for one (subject, address, direction) query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expect {
    /// The design grants the access.
    Allow,
    /// Hardware-rounding over-cover: granted in practice, not needed by
    /// the design; never flagged.
    Tolerate,
    /// The design forbids the access.
    Deny,
}

/// A sentinel address the oracle asks the MPU model about at every
/// accepted switch, without the firmware having to issue the access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probe {
    /// Address probed (1-byte access).
    pub addr: u32,
    /// Probe as a write (`true`) or a read.
    pub write: bool,
    /// [`Expect::Allow`] or [`Expect::Deny`]; `Tolerate` is never
    /// probed.
    pub expect: Expect,
    /// What the sentinel is (diagnostics).
    pub what: &'static str,
}

/// Per-subject expectations.
#[derive(Debug, Clone)]
pub struct OpExpect {
    /// Diagnostic name.
    pub name: String,
    /// Exact writable data placements (shadow copies, internal
    /// variables, ACES granted group regions).
    pub allow_w: Vec<MemRegion>,
    /// Write-tolerated over-cover (OPEC: the rest of the own data
    /// section; ACES: power-of-two rounding of group regions).
    pub tolerate_w: Vec<MemRegion>,
    /// Exact read+write windows (peripheral datasheet windows, heap).
    pub allow_rw: Vec<MemRegion>,
    /// Read+write-tolerated over-cover (merged/aligned peripheral MPU
    /// covers minus the exact windows).
    pub tolerate_rw: Vec<MemRegion>,
    /// Core (PPB) windows served by load/store emulation (OPEC only).
    pub core: Vec<MemRegion>,
    /// Member functions — the execution-membership ground truth.
    pub funcs: BTreeSet<FuncId>,
    /// Needed data bytes (the resource dependency), for PT
    /// cross-checks.
    pub needed_bytes: u64,
    /// Exactly granted data bytes, for PT cross-checks.
    pub granted_bytes: u64,
    /// MPU probes to run when this subject is switched in.
    pub probes: Vec<Probe>,
}

/// The full ground-truth matrix for one compiled firmware.
#[derive(Debug, Clone)]
pub struct AccessMatrix {
    /// Per-operation / per-compartment expectations; index = id.
    pub ops: Vec<OpExpect>,
    /// The top-level subject: the one executing when no switch frame is
    /// open (OPEC: operation 0 = `main`; ACES: the compartment holding
    /// the entry function, which need not be id 0).
    pub root: OpId,
    /// The application stack.
    pub stack: MemRegion,
    /// Whether the design confines an operation to the stack below its
    /// entry frame (OPEC sub-region protection; ACES grants the whole
    /// stack).
    pub track_stack_boundary: bool,
    /// The granularity the enforcing backend rounds the stack boundary
    /// to (ARM MPU: an eighth of the stack region; RISC-V PMP: a
    /// word). The oracle predicts the boundary independently from the
    /// observed entry SP, so it must round the same way.
    pub boundary_granularity: u32,
    /// Placement gaps found while building the matrix (an operation
    /// needs a variable no layout slot maps): each is itself a
    /// divergence between analysis and layout.
    pub anomalies: Vec<String>,
}

fn within(regions: &[MemRegion], addr: u32) -> bool {
    regions.iter().any(|r| r.contains(addr))
}

/// Merges sorted windows that overlap or touch, then covers each merged
/// window with the smallest aligned power-of-two region — the same
/// hardware constraint the layout honours, reimplemented here so the
/// two derivations stay independent.
fn aligned_covers(windows: &[MemRegion]) -> Vec<MemRegion> {
    let mut sorted: Vec<MemRegion> = windows.iter().copied().filter(|w| w.size > 0).collect();
    sorted.sort_by_key(|w| w.base);
    let mut merged: Vec<MemRegion> = Vec::new();
    for w in sorted {
        match merged.last_mut() {
            Some(last) if w.base <= last.end() => {
                let end = last.end().max(w.end());
                last.size = end - last.base;
            }
            _ => merged.push(w),
        }
    }
    merged
        .iter()
        .map(|w| {
            let mut size = region_size_for(w.size);
            loop {
                let base = w.base & !(size - 1);
                if w.end() <= base.saturating_add(size) {
                    return MemRegion::new(base, size);
                }
                size = size.checked_mul(2).expect("cover fits the address space");
            }
        })
        .collect()
}

fn global_bytes(module: &Module, globals: &BTreeSet<GlobalId>) -> u64 {
    globals.iter().map(|&g| u64::from(module.global_size(g).max(1))).sum()
}

impl AccessMatrix {
    /// Ground truth for an OPEC compilation: one subject per operation,
    /// write grants at the exact placements of the operation's resource
    /// dependency, peripheral grants at the exact datasheet windows,
    /// PPB grants at the exact core windows, stack confinement on.
    pub fn opec(module: &Module, partition: &Partition, policy: &SystemPolicy) -> AccessMatrix {
        let heap_gid = module.global_by_name(HEAP_GLOBAL);
        let mut anomalies = Vec::new();
        let mut ops: Vec<OpExpect> = partition
            .ops
            .iter()
            .map(|op| {
                let pol = policy.op(op.id);
                let mut allow_w = Vec::new();
                let mut granted = 0u64;
                for &g in &op.resources.globals() {
                    if Some(g) == heap_gid || module.global(g).is_const {
                        continue;
                    }
                    let size = module.global_size(g).max(1);
                    match policy.shadow_addr(op.id, g) {
                        Some(addr) => {
                            allow_w.push(MemRegion::new(addr, size));
                            granted += u64::from(size);
                        }
                        None => anomalies.push(format!(
                            "op {} ({}) depends on global {} ({}) but the layout placed no \
                             copy it can reach",
                            op.id,
                            op.name,
                            g.0,
                            module.global(g).name
                        )),
                    }
                }
                let mut allow_rw = Vec::new();
                for &p in &op.resources.peripherals {
                    let def = &module.peripherals[p];
                    allow_rw.push(MemRegion::new(def.base, def.size));
                }
                if let (Some(h), Some(hg)) = (policy.heap, heap_gid) {
                    if op.resources.globals().contains(&hg) {
                        allow_rw.push(h);
                    }
                }
                let mut core = Vec::new();
                for &p in &op.resources.core_peripherals {
                    let def = &module.peripherals[p];
                    core.push(MemRegion::new(def.base, def.size));
                }
                let tolerate_w = if pol.section.size > 0 { vec![pol.section] } else { Vec::new() };
                OpExpect {
                    name: op.name.clone(),
                    tolerate_rw: aligned_covers(&allow_rw),
                    allow_w,
                    tolerate_w,
                    allow_rw,
                    core,
                    funcs: op.funcs.clone(),
                    needed_bytes: global_bytes(module, &op.resources.globals()),
                    granted_bytes: granted,
                    probes: Vec::new(),
                }
            })
            .collect();
        let sections: Vec<(OpId, MemRegion, u32)> =
            policy.ops.iter().map(|p| (p.id, p.section, p.section_used)).collect();
        for i in 0..ops.len() {
            let mut probes = Vec::new();
            for &(j, section, used) in &sections {
                if usize::from(j) == i || used == 0 {
                    continue;
                }
                probes.push(Probe {
                    addr: section.base,
                    write: true,
                    expect: Expect::Deny,
                    what: "another operation's data section",
                });
            }
            if policy.public_section.size > 0 {
                probes.push(Probe {
                    addr: policy.public_section.base,
                    write: true,
                    expect: Expect::Deny,
                    what: "public data section (master copies)",
                });
            }
            if policy.reloc_table.size > 0 {
                probes.push(Probe {
                    addr: policy.reloc_table.base,
                    write: true,
                    expect: Expect::Deny,
                    what: "variables relocation table",
                });
            }
            probes.push(Probe {
                addr: policy.board.flash.base,
                write: true,
                expect: Expect::Deny,
                what: "flash",
            });
            for (p, def) in module.peripherals.iter().enumerate() {
                if def.is_core {
                    continue;
                }
                let w = MemRegion::new(def.base, def.size);
                let op = &ops[i];
                if within(&op.allow_rw, w.base) || within(&op.tolerate_rw, w.base) {
                    continue;
                }
                if partition.ops[i].resources.peripherals.contains(&p) {
                    continue;
                }
                probes.push(Probe {
                    addr: w.base,
                    write: true,
                    expect: Expect::Deny,
                    what: "peripheral outside the operation's dependency",
                });
            }
            let (_, section, used) = sections[i];
            if used > 0 {
                probes.push(Probe {
                    addr: section.base,
                    write: true,
                    expect: Expect::Allow,
                    what: "own data section",
                });
            }
            probes.truncate(24);
            ops[i].probes = probes;
        }
        AccessMatrix {
            ops,
            root: 0,
            stack: policy.stack,
            track_stack_boundary: true,
            boundary_granularity: (policy.stack.size / 8).max(1),
            anomalies,
        }
    }

    /// Overrides the stack-boundary rounding granularity (the ARM
    /// eighth-of-stack default) with the enforcing backend's — the
    /// backend-parameterized runners feed
    /// `DynBackend::boundary_granularity` through here.
    pub fn with_boundary_granularity(mut self, granularity: u32) -> AccessMatrix {
        self.boundary_granularity = granularity.max(1);
        self
    }

    /// Ground truth for an ACES compilation: one subject per
    /// compartment, write grants at the granted group regions, the
    /// whole stack granted, peripheral grants at the exact windows with
    /// the per-compartment covering region tolerated. Privileged
    /// (lifted) compartments never reach the oracle — their accesses
    /// bypass the MPU by design, which is exactly the PAC cost the
    /// paper charges ACES for.
    pub fn aces(
        module: &Module,
        comps: &Compartments,
        regions: &DataRegions,
        stack: MemRegion,
        flash_base: u32,
        main_comp: OpId,
    ) -> AccessMatrix {
        let mut ops: Vec<OpExpect> = comps
            .comps
            .iter()
            .map(|c| {
                let granted_idx = regions.granted.get(&c.id).cloned().unwrap_or_default();
                let allow_w: Vec<MemRegion> =
                    granted_idx.iter().map(|&gi| regions.group_regions[gi]).collect();
                let tolerate_w: Vec<MemRegion> = aligned_covers(&allow_w);
                let mut allow_rw = Vec::new();
                for &p in &c.resources.peripherals {
                    let def = &module.peripherals[p];
                    allow_rw.push(MemRegion::new(def.base, def.size));
                }
                // One covering region spans all the compartment's
                // windows — everything inside it that is not an exact
                // window is ACES over-privilege the oracle tolerates
                // (and the PT/probe layers measure elsewhere).
                let tolerate_rw = if allow_rw.is_empty() {
                    Vec::new()
                } else {
                    let lo = allow_rw.iter().map(|w| w.base).min().unwrap();
                    let hi = allow_rw.iter().map(|w| w.end()).max().unwrap();
                    aligned_covers(&[MemRegion::new(lo, hi - lo)])
                };
                OpExpect {
                    name: c.name.clone(),
                    granted_bytes: u64::from(regions.granted_bytes(module, c.id)),
                    needed_bytes: global_bytes(module, &c.resources.globals()),
                    allow_w,
                    tolerate_w,
                    allow_rw,
                    tolerate_rw,
                    core: Vec::new(),
                    funcs: c.funcs.clone(),
                    probes: Vec::new(),
                }
            })
            .collect();
        let all_regions: Vec<MemRegion> = regions.group_regions.clone();
        for (i, op) in ops.iter_mut().enumerate() {
            if comps.comps[i].privileged {
                continue; // never switched in unprivileged; probes would lie
            }
            let mut probes = Vec::new();
            for r in &all_regions {
                if r.size == 0 {
                    continue;
                }
                if within(&op.allow_w, r.base) || within(&op.tolerate_w, r.base) {
                    continue;
                }
                probes.push(Probe {
                    addr: r.base,
                    write: true,
                    expect: Expect::Deny,
                    what: "group region not granted to this compartment",
                });
            }
            probes.push(Probe {
                addr: flash_base,
                write: true,
                expect: Expect::Deny,
                what: "flash",
            });
            for def in module.peripherals.iter().filter(|d| !d.is_core) {
                if within(&op.allow_rw, def.base) || within(&op.tolerate_rw, def.base) {
                    continue;
                }
                probes.push(Probe {
                    addr: def.base,
                    write: true,
                    expect: Expect::Deny,
                    what: "peripheral outside the compartment's dependency",
                });
            }
            if let Some(r) = op.allow_w.first().filter(|r| r.size > 0) {
                probes.push(Probe {
                    addr: r.base,
                    write: true,
                    expect: Expect::Allow,
                    what: "own granted group region",
                });
            }
            probes.truncate(24);
            op.probes = probes;
        }
        AccessMatrix {
            ops,
            root: main_comp,
            stack,
            track_stack_boundary: false,
            boundary_granularity: (stack.size / 8).max(1),
            anomalies: Vec::new(),
        }
    }

    /// The matrix's verdict for a data access. Stack addresses are the
    /// caller's business (the boundary is runtime state); everything
    /// else is decided statically.
    pub fn expect_data(&self, op: OpId, addr: u32, write: bool) -> Expect {
        let Some(e) = self.ops.get(usize::from(op)) else {
            return Expect::Deny;
        };
        if within(&e.allow_rw, addr) {
            return Expect::Allow;
        }
        if within(&e.core, addr) {
            return Expect::Allow;
        }
        if write {
            if within(&e.allow_w, addr) {
                return Expect::Allow;
            }
            if within(&e.tolerate_w, addr) || within(&e.tolerate_rw, addr) {
                return Expect::Tolerate;
            }
            Expect::Deny
        } else {
            if within(&e.tolerate_rw, addr) {
                return Expect::Tolerate;
            }
            // The read-only background (code + SRAM) is granted to
            // everything by both designs.
            match AddressClass::of(addr) {
                AddressClass::Code | AddressClass::Sram => Expect::Allow,
                _ => Expect::Deny,
            }
        }
    }
}
