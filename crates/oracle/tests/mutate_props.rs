//! Mutator soundness properties.
//!
//! The fuzzer's whole design rests on plan-level mutation keeping every
//! mutant inside the production pipeline's envelope: a mutant that
//! fails to compile (or diverges on a stock pipeline) would poison the
//! corpus with inputs that measure the mutator, not the enforcement
//! stack. So the properties drive every catalog mutator over generated
//! plans and demand (a) the generator invariants survive, (b) the full
//! compile → image → VM → shadow-oracle path still runs clean, and
//! (c) mutation is a pure function of its PRNG seed.

use proptest::prelude::*;

use opec_inject::SplitMix64;
use opec_oracle::{
    generate, mutate, mutate_stacked, run_opec, well_formed, FirmwareSpec, ALL_MUTATORS,
};

/// Applies one specific catalog mutator (by index) with a seeded PRNG.
/// Returns the mutant and whether the mutator found an application
/// site.
fn apply_one(spec: &FirmwareSpec, which: usize, seed: u64) -> (FirmwareSpec, bool) {
    let mut rng = SplitMix64::new(seed);
    let mut out = spec.clone();
    let applied = ALL_MUTATORS[which % ALL_MUTATORS.len()].apply(&mut out, &mut rng);
    (out, applied)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every catalog mutator, applied to a generated plan, yields a
    /// plan that still satisfies the generator invariants and still
    /// compiles and runs divergence-free through the full production
    /// pipeline.
    #[test]
    fn every_mutator_output_compiles_and_runs_clean(
        gen_seed in 0u64..512,
        which in 0usize..ALL_MUTATORS.len(),
        mut_seed in any::<u64>(),
    ) {
        let spec = generate(gen_seed);
        let (mutant, applied) = apply_one(&spec, which, mut_seed);
        if !applied {
            prop_assert_eq!(&mutant, &spec, "a declined mutator must not touch the plan");
            return Ok(());
        }
        well_formed(&mutant)
            .map_err(|e| TestCaseError::fail(format!("{:?} broke invariants: {e}",
                ALL_MUTATORS[which])))?;
        let v = run_opec(&mutant, None)
            .map_err(|e| TestCaseError::fail(format!("{:?} mutant failed the pipeline: {e}",
                ALL_MUTATORS[which])))?;
        prop_assert!(v.clean(),
            "{:?} mutant diverged on a stock pipeline: {:?}", ALL_MUTATORS[which], v.divergences);
        prop_assert!(v.run_error.is_none(), "{:?}", v.run_error);
    }

    /// Stacked chains (the fuzzer's actual operator) stay inside the
    /// envelope too: invariants hold and the pipeline stays clean after
    /// several compounded edits.
    #[test]
    fn stacked_mutants_compile_and_run_clean(
        gen_seed in 0u64..512,
        mut_seed in any::<u64>(),
        steps in 1u32..6,
    ) {
        let mutant = mutate_stacked(&generate(gen_seed), mut_seed, steps);
        well_formed(&mutant).map_err(TestCaseError::fail)?;
        let v = run_opec(&mutant, None).map_err(TestCaseError::fail)?;
        prop_assert!(v.clean(), "{:?}", v.divergences);
    }

    /// Mutation is deterministic in its seed — the property journal
    /// resume and corpus replay lean on: re-planning a round must
    /// rebuild byte-identical inputs.
    #[test]
    fn mutation_is_a_pure_function_of_its_seed(
        gen_seed in 0u64..512,
        mut_seed in any::<u64>(),
        steps in 1u32..6,
    ) {
        let spec = generate(gen_seed);
        prop_assert_eq!(mutate(&spec, mut_seed), mutate(&spec, mut_seed));
        prop_assert_eq!(
            mutate_stacked(&spec, mut_seed, steps),
            mutate_stacked(&spec, mut_seed, steps)
        );
        // And the base plan is never mutated in place.
        prop_assert_eq!(&spec, &generate(gen_seed));
    }
}
