//! End-to-end oracle checks: generated firmwares run divergence-free
//! under the real enforcement stacks, and a deliberately broken MPU
//! configuration is caught and shrunk to a minimal counterexample.

use opec_obs::{OracleKind, OracleLayer};
use opec_oracle::divergence::Observed;
use opec_oracle::{break_mpu, generate, run_aces, run_opec, shrink, FirmwareSpec};

#[test]
fn generated_firmwares_are_divergence_free_under_opec() {
    for seed in 0..12 {
        let spec = generate(seed);
        let v = run_opec(&spec, None).expect("pipeline");
        assert!(
            v.divergences.is_empty(),
            "seed {seed}: {} divergences, first: {}",
            v.total_divergences,
            v.divergences[0]
        );
        assert!(v.switches > 0, "seed {seed}: no operation switch was exercised");
        assert!(v.checks > 0, "seed {seed}: no access was checked");
    }
}

#[test]
fn generated_firmwares_are_divergence_free_under_aces() {
    let mut ran = 0;
    for seed in 0..12 {
        let spec = generate(seed);
        let v = match run_aces(&spec) {
            Ok(v) => v,
            // Some plans exceed ACES group limits; that is an ACES
            // scalability property, not an oracle divergence.
            Err(e) => {
                eprintln!("seed {seed}: aces build skipped: {e}");
                continue;
            }
        };
        ran += 1;
        assert!(
            v.divergences.is_empty(),
            "seed {seed}: {} divergences, first: {}",
            v.total_divergences,
            v.divergences[0]
        );
    }
    assert!(ran >= 6, "too few seeds built under ACES ({ran}/12)");
}

// The tampering the oracle must catch — `opec_oracle::tamper::break_mpu`,
// shared with `opec-eval check --self-test` and the fuzzing benchmark:
// a bogus read-write cover over flash prepended to every non-root
// operation's peripheral-cover plan, as a mis-generated protection
// config would do (every backend turns covers into writable
// regions/entries).

#[test]
fn broken_mpu_config_is_caught_and_shrinks_to_minimal_program() {
    let seed = 3;
    let spec = generate(seed);
    let flash_base = spec.board().flash.base;
    let diverges = |s: &FirmwareSpec| {
        run_opec(s, Some(&break_mpu)).is_ok_and(|v| {
            v.divergences.iter().any(|d| {
                d.kind == OracleKind::Escape
                    && d.layer == OracleLayer::Mpu
                    && d.observed == Observed::Probe
                    && d.addr == flash_base
            })
        })
    };
    assert!(diverges(&spec), "the oracle missed a writable-flash MPU region");
    // Sanity: the untampered policy is clean.
    let clean = run_opec(&spec, None).expect("pipeline");
    assert!(clean.divergences.is_empty(), "clean run diverged: {}", clean.divergences[0]);

    let small = shrink(&spec, diverges, 300);
    assert!(diverges(&small), "shrinking lost the divergence");
    // Pinned minimal shape: one switch is necessary and sufficient —
    // a single call from main into an operation entry, everything else
    // stripped.
    assert_eq!(
        small.size(),
        1,
        "expected a 1-statement counterexample:\n{}",
        opec_oracle::describe(&small)
    );
    assert!(
        small.funcs[0].body.iter().all(|s| matches!(
            s,
            opec_oracle::gen::Stmt::Call { .. } | opec_oracle::gen::Stmt::ICall { .. }
        )),
        "the surviving statement must be the operation switch:\n{}",
        opec_oracle::describe(&small)
    );
}
