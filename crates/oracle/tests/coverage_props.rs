//! Coverage-map algebra and corpus round-trip properties.
//!
//! The fuzzer's aggregation is only deterministic because coverage is
//! a feature *set*: merge must be a plain union — associative,
//! commutative, idempotent — so the aggregate is independent of worker
//! interleaving, journal resume order, and replay count. And a corpus
//! written to disk must replay to the byte-identical aggregate the
//! admitting run computed, or the nightly job's restored corpus would
//! silently drift from the artifact it uploaded.

use proptest::prelude::*;

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use opec_core::backend::Armv7mBackend;
use opec_oracle::{generate, mutate, run_opec_cov, Corpus, CoverageMap, RunBudget};

static CASE: AtomicU32 = AtomicU32::new(0);

fn tmp_corpus_dir() -> std::path::PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("opec-corpus-props-{}-{n}", std::process::id()))
}

/// Feature payloads stay under the 56-bit tag boundary, like every
/// real feature [`CoverageMap::observe`] emits.
fn feats() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..(1 << 56), 0..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merge is a set union: associative, commutative, idempotent,
    /// with the empty map as identity.
    #[test]
    fn merge_is_associative_commutative_idempotent(
        a in feats(), b in feats(), c in feats(),
    ) {
        let (a, b, c) = (
            CoverageMap::from_features(a),
            CoverageMap::from_features(b),
            CoverageMap::from_features(c),
        );
        let merged = |x: &CoverageMap, y: &CoverageMap| {
            let mut m = x.clone();
            m.merge(y);
            m
        };
        // (a ∪ b) ∪ c == a ∪ (b ∪ c)
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
        // a ∪ b == b ∪ a
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
        // a ∪ a == a, and a ∪ ∅ == a
        prop_assert_eq!(merged(&a, &a), a.clone());
        prop_assert_eq!(merged(&a, &CoverageMap::new()), a.clone());
        // Digest is a function of the set, so the laws transfer to it.
        prop_assert_eq!(merged(&a, &b).digest(), merged(&b, &a).digest());
    }

    /// Serialization round-trips: `features()` → `from_features` is
    /// the identity, in canonical order.
    #[test]
    fn feature_serialization_roundtrips(a in feats()) {
        let m = CoverageMap::from_features(a);
        let back = CoverageMap::from_features(m.features().collect::<Vec<_>>());
        prop_assert_eq!(&m, &back);
        let fs = m.features().collect::<Vec<_>>();
        let mut sorted = fs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(fs, sorted, "features() must iterate sorted and deduped");
    }

    /// A corpus saved to disk and re-loaded replays — through the full
    /// pipeline — to the byte-identical aggregate coverage map the
    /// admitting run computed.
    #[test]
    fn corpus_replay_from_disk_reproduces_the_aggregate(
        gen_seed in 0u64..256,
        mut_seed in any::<u64>(),
    ) {
        let budget = RunBudget::default();
        let mut corpus = Corpus::in_memory();
        for (i, spec) in [generate(gen_seed), generate(gen_seed + 1)]
            .into_iter()
            .flat_map(|s| [mutate(&s, mut_seed), s])
            .enumerate()
        {
            let (v, cov) = run_opec_cov(&spec, None, &budget, Arc::new(Armv7mBackend))
                .map_err(TestCaseError::fail)?;
            prop_assert!(v.clean(), "input {i}: {:?}", v.divergences);
            corpus.admit(spec, cov);
        }
        prop_assert!(!corpus.entries.is_empty());

        // Save → load → replay every entry; the union must equal the
        // loaded aggregate, which must equal the admitted aggregate.
        let dir = tmp_corpus_dir();
        let mut bound = Corpus::load(&dir).map_err(TestCaseError::fail)?;
        for e in &corpus.entries {
            bound.admit(e.spec.clone(), e.coverage.clone());
        }
        bound.save().map_err(TestCaseError::fail)?;
        let loaded = Corpus::load(&dir).map_err(TestCaseError::fail)?;
        prop_assert_eq!(&loaded.aggregate, &corpus.aggregate);

        let mut replayed = CoverageMap::new();
        for e in &loaded.entries {
            let (_, cov) = run_opec_cov(&e.spec, None, &budget, Arc::new(Armv7mBackend))
                .map_err(TestCaseError::fail)?;
            replayed.merge(&cov);
        }
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(replayed.digest(), corpus.aggregate.digest(),
            "replay must reproduce the admitted aggregate byte-for-byte");
        prop_assert_eq!(replayed, corpus.aggregate);
    }
}
