//! A minimal JSON reader for journal records.
//!
//! The engine journals each job's payload as the raw JSON string the
//! campaign produced, and campaigns parse it back when aggregating a
//! resumed run. The workspace carries no serde, so this module is the
//! shared parser: a small recursive-descent reader producing a
//! [`Value`] tree. Object keys keep insertion order and numbers keep
//! their source text, so nothing is lost between journal and
//! re-render.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source text so exact integer values
    /// survive the round-trip (journal payloads contain no floats).
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; pairs keep source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as a `u64`, if this is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The number as an `i64`, if this is one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document. Trailing whitespace is allowed;
/// trailing garbage is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected , or ] at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected : at byte {pos}"));
                }
                *pos += 1;
                pairs.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(format!("expected , or }} at byte {pos}")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            Ok(Value::Num(text.to_string()))
        }
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos}")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Journal writers only escape control characters
                        // this way; surrogate pairs never appear.
                        let ch =
                            char::from_u32(code).ok_or_else(|| format!("bad \\u{hex} escape"))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

/// Escapes `s` as the contents of a JSON string literal (quotes not
/// included), matching the writers in `opec-eval`.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_structures() {
        let v = parse(r#"{"a": [1, -2, "x\n\"y\""], "b": {"c": true, "d": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_i64(), Some(-2));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_str(), Some("x\n\"y\""));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
    }

    #[test]
    fn escape_then_parse_is_identity() {
        let s = "line1\nline2\t\"quoted\" back\\slash \u{1} end";
        let doc = format!("\"{}\"", escape(s));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(s));
    }

    #[test]
    fn object_keys_keep_insertion_order() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        match v {
            Value::Obj(pairs) => {
                assert_eq!(pairs[0].0, "z");
                assert_eq!(pairs[1].0, "a");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{\"a\": 1} x").is_err());
        assert!(parse("{\"a\": ").is_err());
        assert!(parse("[1, 2").is_err());
    }
}
