//! Cooperative fuel-quantum scheduling: thousands of logical tasks
//! over a handful of worker threads.
//!
//! Where [`crate::engine`] supervises run-to-completion jobs, this
//! module schedules *resident* tasks — fleet device VMs — that execute
//! a bounded fuel quantum, park, and re-queue. Each worker owns a
//! static shard of the task set (round-robin by task id, chosen by the
//! caller's factory), so a task's quantum sequence is independent of
//! how many workers run beside it: a fixed-round fleet produces
//! byte-identical merged aggregates at 1 worker and at N.
//!
//! Supervision carries over from the campaign engine: every quantum
//! runs under `catch_unwind`, a panicking task is retired from the run
//! queue with its message recorded (never torn down with the worker),
//! and a wall-clock deadline bounds the whole schedule.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// What a task did with its quantum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Poll {
    /// Used its quantum; re-queue it for the next round.
    Yielded,
    /// Finished for good; retire it from the run queue.
    Done,
}

/// Context handed to each quantum.
#[derive(Debug, Clone, Copy)]
pub struct QuantumCtx {
    /// Instruction budget for this quantum.
    pub fuel: u64,
    /// Scheduler round the quantum runs in (0-based).
    pub round: u64,
    /// Worker executing it.
    pub worker: usize,
}

/// A cooperatively scheduled task.
///
/// Tasks need not be `Send`: each is built, run, and finished on one
/// worker thread. Only [`Quantum::Output`] crosses back to the caller.
pub trait Quantum {
    /// Plain-data summary extracted when the schedule ends.
    type Output: Send;

    /// Runs one fuel quantum.
    fn quantum(&mut self, ctx: &QuantumCtx) -> Poll;

    /// Consumes the task into its summary (called on the worker thread
    /// after the schedule ends, including for panicked tasks).
    fn finish(self) -> Self::Output;
}

/// Schedule shape for [`run_quanta`].
#[derive(Debug, Clone)]
pub struct QuantumOpts {
    /// Worker threads; 0 means one per core.
    pub workers: usize,
    /// Instruction budget per quantum.
    pub fuel_quantum: u64,
    /// Stop after this many full rounds (every live task gets exactly
    /// this many quanta — the deterministic mode). `None` runs until
    /// all tasks are done or the deadline passes.
    pub max_rounds: Option<u64>,
    /// Wall-clock stop, checked between quanta.
    pub deadline: Option<Instant>,
}

/// One worker's outcome: per-task outputs in shard order plus the
/// supervision counters.
pub struct ShardReport<O> {
    /// Worker index the shard ran on.
    pub worker: usize,
    /// Task outputs, in the order the factory built them.
    pub outputs: Vec<O>,
    /// Quanta executed (including the final quantum of a finished task).
    pub quanta: u64,
    /// Full rounds completed.
    pub rounds: u64,
    /// Tasks that returned [`Poll::Done`].
    pub completed: usize,
    /// `(shard index, panic message)` for tasks retired by a panic.
    pub panicked: Vec<(usize, String)>,
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `factory(worker, workers)`-built task shards to completion in
/// fuel-sliced rounds and returns one [`ShardReport`] per worker, in
/// worker order.
///
/// The factory runs on each worker thread, so tasks (and anything they
/// hold — `Rc`-based obs handles, VM deltas) never cross threads; it
/// must hand out a *partition*: every task the fleet wants run appears
/// in exactly one worker's shard regardless of the worker count.
pub fn run_quanta<T, F>(opts: &QuantumOpts, factory: F) -> Vec<ShardReport<T::Output>>
where
    T: Quantum,
    F: Fn(usize, usize) -> Vec<T> + Sync,
{
    let workers = match opts.workers {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    };
    let factory = &factory;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                scope.spawn(move || {
                    let mut tasks = factory(worker, workers);
                    let mut alive = vec![true; tasks.len()];
                    let mut report = ShardReport {
                        worker,
                        outputs: Vec::new(),
                        quanta: 0,
                        rounds: 0,
                        completed: 0,
                        panicked: Vec::new(),
                    };
                    let mut live = tasks.len();
                    'schedule: while live > 0 {
                        if opts.max_rounds.is_some_and(|max| report.rounds >= max) {
                            break;
                        }
                        for (i, task) in tasks.iter_mut().enumerate() {
                            if !alive[i] {
                                continue;
                            }
                            if opts.deadline.is_some_and(|d| Instant::now() >= d) {
                                break 'schedule;
                            }
                            let ctx = QuantumCtx {
                                fuel: opts.fuel_quantum,
                                round: report.rounds,
                                worker,
                            };
                            match catch_unwind(AssertUnwindSafe(|| task.quantum(&ctx))) {
                                Ok(Poll::Yielded) => report.quanta += 1,
                                Ok(Poll::Done) => {
                                    report.quanta += 1;
                                    report.completed += 1;
                                    alive[i] = false;
                                    live -= 1;
                                }
                                Err(p) => {
                                    report.panicked.push((i, panic_message(p)));
                                    alive[i] = false;
                                    live -= 1;
                                }
                            }
                        }
                        report.rounds += 1;
                    }
                    report.outputs = tasks.into_iter().map(Quantum::finish).collect();
                    report
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("quantum worker panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts quanta until a target, recording the rounds it saw.
    struct Countdown {
        left: u64,
        seen_rounds: Vec<u64>,
        panic_at: Option<u64>,
    }

    impl Quantum for Countdown {
        type Output = (u64, Vec<u64>);

        fn quantum(&mut self, ctx: &QuantumCtx) -> Poll {
            if self.panic_at == Some(self.left) {
                panic!("scripted task panic");
            }
            self.seen_rounds.push(ctx.round);
            self.left -= 1;
            if self.left == 0 {
                Poll::Done
            } else {
                Poll::Yielded
            }
        }

        fn finish(self) -> (u64, Vec<u64>) {
            (self.left, self.seen_rounds)
        }
    }

    fn opts(workers: usize, max_rounds: Option<u64>) -> QuantumOpts {
        QuantumOpts { workers, fuel_quantum: 100, max_rounds, deadline: None }
    }

    #[test]
    fn runs_every_task_to_done() {
        let reports = run_quanta::<Countdown, _>(&opts(3, None), |w, n| {
            (0..10usize)
                .filter(|i| i % n == w)
                .map(|i| Countdown {
                    left: (i as u64) + 1,
                    seen_rounds: Vec::new(),
                    panic_at: None,
                })
                .collect()
        });
        assert_eq!(reports.len(), 3);
        let completed: usize = reports.iter().map(|r| r.completed).sum();
        assert_eq!(completed, 10);
        for r in &reports {
            for (left, _) in &r.outputs {
                assert_eq!(*left, 0);
            }
        }
    }

    #[test]
    fn max_rounds_gives_every_live_task_the_same_quanta() {
        let reports = run_quanta::<Countdown, _>(&opts(2, Some(4)), |w, n| {
            (0..6usize)
                .filter(|i| i % n == w)
                .map(|_| Countdown { left: 100, seen_rounds: Vec::new(), panic_at: None })
                .collect()
        });
        for r in &reports {
            assert_eq!(r.rounds, 4);
            for (_, rounds) in &r.outputs {
                assert_eq!(rounds, &[0, 1, 2, 3]);
            }
        }
    }

    #[test]
    fn panicking_task_is_retired_not_fatal() {
        let reports = run_quanta::<Countdown, _>(&opts(1, None), |_, _| {
            vec![
                Countdown { left: 3, seen_rounds: Vec::new(), panic_at: Some(2) },
                Countdown { left: 2, seen_rounds: Vec::new(), panic_at: None },
            ]
        });
        let r = &reports[0];
        assert_eq!(r.completed, 1);
        assert_eq!(r.panicked.len(), 1);
        assert_eq!(r.panicked[0].0, 0);
        assert!(r.panicked[0].1.contains("scripted task panic"));
        // Outputs still cover every task, panicked ones included.
        assert_eq!(r.outputs.len(), 2);
    }
}
