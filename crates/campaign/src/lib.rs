//! Resilient campaign engine for the OPEC evaluation.
//!
//! The paper's evaluation (§7) is a pile of campaigns — attack
//! matrices, differential-oracle sweeps, lockstep equivalence runs —
//! and every one of them used to assume each job terminates and never
//! panics: one runaway generated firmware or one host-side bug lost
//! the whole `--seeds N` run. This crate is the shared harness that
//! drops that assumption, treating every firmware as hostile to the
//! harness itself:
//!
//! * [`engine`] — the supervised work queue: fuel budgets, wall-clock
//!   watchdogs, `catch_unwind` containment, one-shot retry with
//!   transient/deterministic classification, and repro artifacts for
//!   deterministic failures.
//! * [`quantum`] — cooperative fuel-quantum scheduling for *resident*
//!   tasks: fleet device VMs that run a bounded quantum, park, and
//!   re-queue, thousands of them pinned across a few worker shards.
//! * [`journal`] — the crash-safe JSONL checkpoint: fsync-batched
//!   appends keyed by deterministic job id, torn-tail recovery, and
//!   resume-by-skipping so a killed campaign finishes with aggregates
//!   byte-identical to an uninterrupted run.
//! * [`json`] — the minimal JSON reader campaigns use to rebuild
//!   typed results from journaled payloads.
//!
//! Supervision milestones surface as [`opec_obs::Event::Job`] events
//! and in [`engine::CampaignReport::summary`]; nothing is shed
//! silently.

#![warn(missing_docs)]

pub mod engine;
pub mod journal;
pub mod json;
pub mod quantum;

pub use engine::{
    run_campaign, CampaignOpts, CampaignReport, Job, JobCtx, JobOutcome, JobRecord, JobResult,
    DEFAULT_TIMEOUT_SECS,
};
pub use journal::{Journal, Record, SYNC_BATCH};
pub use json::Value;
pub use quantum::{run_quanta, Poll, Quantum, QuantumCtx, QuantumOpts, ShardReport};
