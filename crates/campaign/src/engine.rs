//! The supervised job queue.
//!
//! [`run_campaign`] takes a list of [`Job`]s — deterministic id plus a
//! closure that builds, runs and tears down its own VM — and executes
//! them across a worker pool with three layers of containment:
//!
//! 1. **Fuel**: [`JobCtx::fuel`] is the deterministic guest
//!    instruction budget the closure must pass to `Vm::run`/`resume`.
//! 2. **Watchdog**: [`JobCtx::deadline`] is the host wall-clock bound
//!    the closure must arm via `Vm::set_deadline`.
//! 3. **Panic containment**: the closure runs under `catch_unwind`, so
//!    a host-side bug in one job becomes a [`JobOutcome::Panicked`]
//!    record instead of tearing down the campaign.
//!
//! Finished jobs append to the crash-safe [`Journal`]; a rerun with the
//! same journal path skips journaled jobs and aggregates from their
//! stored payloads, so a killed campaign resumes to byte-identical
//! output. Failed jobs (panic / watchdog) get exactly one retry with a
//! fresh context — success on retry marks the failure transient; the
//! same failure twice is deterministic and emits a repro artifact.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use opec_obs::{Event, JobEventKind};

use crate::journal::{valid_id, Journal, Record};

/// Default per-job wall-clock budget. Generous: the watchdog exists
/// for pathological host-cost-per-instruction runs, not as a pacing
/// mechanism — fuel is the primary (and deterministic) bound.
pub const DEFAULT_TIMEOUT_SECS: u64 = 120;

/// Campaign-wide configuration.
#[derive(Debug, Clone)]
pub struct CampaignOpts {
    /// Campaign name; written into the journal header and repro
    /// artifacts.
    pub name: String,
    /// Guest instruction budget per job.
    pub fuel: u64,
    /// Host wall-clock budget per job attempt; `None` disarms the
    /// watchdog (lockstep campaigns do this — wall-clock differs
    /// between exec modes, so a deadline there would manufacture
    /// divergence).
    pub timeout_secs: Option<u64>,
    /// Worker threads; 0 means one per available core.
    pub workers: usize,
    /// Journal path; `None` runs without checkpointing.
    pub journal: Option<String>,
    /// Directory for repro artifacts of deterministic failures.
    pub repro_dir: String,
    /// Crash-injection hook: abort the process after this many
    /// journaled records (see [`Journal::open`]).
    pub kill_after: Option<usize>,
    /// Fault-injection hook: any job whose id contains this substring
    /// panics inside the containment boundary, on every attempt.
    pub panic_inject: Option<String>,
}

impl CampaignOpts {
    /// Options with defaults: no journal, watchdog at
    /// [`DEFAULT_TIMEOUT_SECS`], one worker per core, and the test
    /// hooks read from `OPEC_CAMPAIGN_KILL_AFTER` /
    /// `OPEC_CAMPAIGN_PANIC_JOB` (tests set the fields directly
    /// instead, avoiding env races under the parallel test harness).
    pub fn new(name: &str, fuel: u64) -> CampaignOpts {
        CampaignOpts {
            name: name.to_string(),
            fuel,
            timeout_secs: Some(DEFAULT_TIMEOUT_SECS),
            workers: 0,
            journal: None,
            repro_dir: "repros".to_string(),
            kill_after: std::env::var("OPEC_CAMPAIGN_KILL_AFTER").ok().and_then(|v| v.parse().ok()),
            panic_inject: std::env::var("OPEC_CAMPAIGN_PANIC_JOB").ok(),
        }
    }
}

/// Per-attempt execution context handed to the job closure.
#[derive(Debug, Clone, Copy)]
pub struct JobCtx {
    /// Guest instruction budget to pass to `Vm::run`/`resume`.
    pub fuel: u64,
    /// Wall-clock deadline to arm via `Vm::set_deadline`. Fresh per
    /// attempt, so a retry gets a full budget.
    pub deadline: Option<Instant>,
    /// 1 on the first try, 2 on the retry.
    pub attempt: u8,
}

/// What a job closure reports back. Every variant carries the job's
/// single-line JSON payload: even a fuel-exhausted or timed-out job
/// must describe itself, because aggregates are rendered exclusively
/// from payloads (fresh or journaled — same bytes either way).
#[derive(Debug, Clone)]
pub enum JobResult {
    /// The job's VM work ran to completion.
    Done(String),
    /// The guest exhausted [`JobCtx::fuel`]. Deterministic — never
    /// retried.
    FuelExhausted(String),
    /// The watchdog deadline passed. Possibly transient host load —
    /// retried once.
    TimedOut(String),
}

/// Final classification of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// Ran to completion.
    Completed,
    /// Guest fuel budget exhausted.
    FuelExhausted,
    /// Wall-clock watchdog fired (on every attempt).
    TimedOut,
    /// The closure panicked (on every attempt, or the retry failed
    /// differently).
    Panicked,
}

impl JobOutcome {
    /// The journal tag.
    pub fn tag(self) -> &'static str {
        match self {
            JobOutcome::Completed => "completed",
            JobOutcome::FuelExhausted => "fuel_exhausted",
            JobOutcome::TimedOut => "timed_out",
            JobOutcome::Panicked => "panicked",
        }
    }

    fn from_tag(tag: &str) -> Option<JobOutcome> {
        Some(match tag {
            "completed" => JobOutcome::Completed,
            "fuel_exhausted" => JobOutcome::FuelExhausted,
            "timed_out" => JobOutcome::TimedOut,
            "panicked" => JobOutcome::Panicked,
            _ => return None,
        })
    }

    fn event_kind(self) -> JobEventKind {
        match self {
            JobOutcome::Completed => JobEventKind::Completed,
            JobOutcome::FuelExhausted => JobEventKind::FuelExhausted,
            JobOutcome::TimedOut => JobEventKind::TimedOut,
            JobOutcome::Panicked => JobEventKind::Panicked,
        }
    }
}

/// One unit of campaign work.
pub struct Job<'a> {
    id: String,
    repro: String,
    run: Box<dyn Fn(&JobCtx) -> JobResult + Send + Sync + 'a>,
}

impl<'a> Job<'a> {
    /// A job. `id` must be unique within the campaign, deterministic
    /// across runs (it keys the journal), and drawn from the journal
    /// id charset (`[A-Za-z0-9._:/-]`). `repro` is a self-contained
    /// JSON fragment describing how to reproduce the job (seed,
    /// config, app, snapshot lineage); it is embedded verbatim in the
    /// repro artifact of a deterministic failure.
    pub fn new(
        id: impl Into<String>,
        repro: String,
        run: impl Fn(&JobCtx) -> JobResult + Send + Sync + 'a,
    ) -> Job<'a> {
        Job { id: id.into(), repro, run: Box::new(run) }
    }

    /// The job's id.
    pub fn id(&self) -> &str {
        &self.id
    }
}

/// The record of one job in the final report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRecord {
    /// The job id.
    pub id: String,
    /// Final classification.
    pub outcome: JobOutcome,
    /// Attempts taken (1, or 2 after a retry).
    pub attempts: u32,
    /// Whether this record was read back from the journal rather than
    /// run in this process.
    pub resumed: bool,
    /// Repro artifact path, for deterministic failures.
    pub repro: Option<String>,
    /// The job's payload: its own JSON or, for panics, a
    /// `{"panic":"..."}` object carrying the payload message.
    pub payload: String,
}

/// The end-of-run report.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// One record per job, in job-definition order — independent of
    /// worker count, scheduling, and kill point.
    pub records: Vec<JobRecord>,
    /// Jobs skipped because the journal already recorded them.
    pub resumed: usize,
    /// Retry attempts issued.
    pub retried: usize,
    /// Retries that then completed (transient failures).
    pub recovered: usize,
    /// Torn journal lines truncated on open.
    pub torn_lines: usize,
}

impl CampaignReport {
    /// The payload of job `id`, if it ran.
    pub fn payload(&self, id: &str) -> Option<&str> {
        self.records.iter().find(|r| r.id == id).map(|r| r.payload.as_str())
    }

    /// Jobs that did not complete — the "unknown outcome" count that
    /// drives the distinct process exit code.
    pub fn unknown(&self) -> usize {
        self.records.iter().filter(|r| r.outcome != JobOutcome::Completed).count()
    }

    /// The supervision milestones as obs events, in job-definition
    /// order (deterministic; emit them into a sink after the run).
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for rec in &self.records {
            if rec.resumed {
                out.push(Event::Job { kind: JobEventKind::Resumed, attempt: rec.attempts as u8 });
                continue;
            }
            if rec.attempts > 1 {
                out.push(Event::Job { kind: JobEventKind::Retried, attempt: 2 });
            }
            out.push(Event::Job { kind: rec.outcome.event_kind(), attempt: rec.attempts as u8 });
        }
        out
    }

    /// One-line human summary for the end of the run. Every
    /// non-completed outcome and every retry is named here — nothing
    /// is shed silently.
    pub fn summary(&self) -> String {
        let count = |o: JobOutcome| self.records.iter().filter(|r| r.outcome == o).count();
        let mut s = format!(
            "campaign {}: {} jobs ({} resumed), {} completed",
            self.name,
            self.records.len(),
            self.resumed,
            count(JobOutcome::Completed),
        );
        for (outcome, label) in [
            (JobOutcome::FuelExhausted, "fuel-exhausted"),
            (JobOutcome::TimedOut, "timed-out"),
            (JobOutcome::Panicked, "panicked"),
        ] {
            let n = count(outcome);
            if n > 0 {
                s.push_str(&format!(", {n} {label}"));
            }
        }
        if self.retried > 0 {
            s.push_str(&format!("; {} retried ({} recovered)", self.retried, self.recovered));
        }
        if self.torn_lines > 0 {
            s.push_str(&format!("; {} torn journal line(s) truncated", self.torn_lines));
        }
        s
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

struct AttemptOutcome {
    outcome: JobOutcome,
    payload: String,
    detail: String,
}

fn run_attempt(job: &Job<'_>, ctx: &JobCtx, panic_inject: Option<&str>) -> AttemptOutcome {
    // Soundness of `AssertUnwindSafe`: the closure borrows only the
    // campaign's immutable job inputs (app lists, seeds, configs) and
    // builds every piece of mutable state — VM, machine, snapshots,
    // sinks — fresh inside this call, dropping them on unwind. No
    // mutable state survives the boundary to be observed torn, and a
    // retry gets a brand-new context, so a panic cannot poison later
    // attempts or other jobs.
    let caught = catch_unwind(AssertUnwindSafe(|| {
        if let Some(needle) = panic_inject {
            if job.id.contains(needle) {
                panic!("injected campaign fault in {}", job.id);
            }
        }
        (job.run)(ctx)
    }));
    match caught {
        Ok(JobResult::Done(payload)) => {
            AttemptOutcome { outcome: JobOutcome::Completed, payload, detail: String::new() }
        }
        Ok(JobResult::FuelExhausted(payload)) => AttemptOutcome {
            outcome: JobOutcome::FuelExhausted,
            payload,
            detail: "guest instruction budget exhausted".to_string(),
        },
        Ok(JobResult::TimedOut(payload)) => AttemptOutcome {
            outcome: JobOutcome::TimedOut,
            payload,
            detail: "wall-clock deadline exceeded".to_string(),
        },
        Err(panic) => {
            let msg = panic_message(panic.as_ref());
            AttemptOutcome {
                outcome: JobOutcome::Panicked,
                payload: format!("{{\"panic\":\"{}\"}}", crate::json::escape(&msg)),
                detail: msg,
            }
        }
    }
}

/// Writes the self-contained repro artifact for a deterministic
/// failure; returns its path. Best-effort: an unwritable repro dir
/// downgrades to no artifact rather than failing the job record.
fn write_repro(
    opts_name: &str,
    dir: &str,
    job: &Job<'_>,
    fuel: u64,
    out: &AttemptOutcome,
) -> Option<String> {
    std::fs::create_dir_all(dir).ok()?;
    let path = format!("{}/{}.json", dir, job.id.replace(['/', ':'], "-"));
    let body = format!(
        "{{\"campaign\":\"{}\",\"job\":\"{}\",\"fuel\":{},\"outcome\":\"{}\",\"detail\":\"{}\",\"repro\":{}}}\n",
        crate::json::escape(opts_name),
        job.id,
        fuel,
        out.outcome.tag(),
        crate::json::escape(&out.detail),
        if job.repro.is_empty() { "null" } else { &job.repro },
    );
    std::fs::write(&path, body).ok()?;
    Some(path)
}

/// Runs `jobs` under supervision. Returns a report whose `records` are
/// in job-definition order regardless of scheduling; aggregate output
/// built from those records is therefore byte-identical across worker
/// counts, kill points, and resumes.
pub fn run_campaign(opts: &CampaignOpts, jobs: &[Job<'_>]) -> Result<CampaignReport, String> {
    for (i, job) in jobs.iter().enumerate() {
        if !valid_id(&job.id) {
            return Err(format!("job {i} has invalid id {:?}", job.id));
        }
        if jobs[..i].iter().any(|other| other.id == job.id) {
            return Err(format!("duplicate job id {:?}", job.id));
        }
    }

    let mut journal = None;
    let mut loaded_records: Vec<Record> = Vec::new();
    let mut torn_lines = 0;
    if let Some(path) = &opts.journal {
        let (j, loaded) = Journal::open(path, &opts.name, opts.fuel, opts.kill_after)?;
        journal = Some(j);
        loaded_records = loaded.records;
        torn_lines = loaded.torn_lines;
    }

    let mut slots: Vec<Mutex<Option<JobRecord>>> = Vec::with_capacity(jobs.len());
    for _ in jobs {
        slots.push(Mutex::new(None));
    }
    let mut resumed = 0;
    for rec in loaded_records {
        let Some(idx) = jobs.iter().position(|j| j.id == rec.id) else {
            // A journaled job the current invocation does not define
            // (e.g. resumed with fewer seeds): ignore the record; the
            // aggregate is defined by this run's job list.
            continue;
        };
        let Some(outcome) = JobOutcome::from_tag(&rec.outcome) else {
            return Err(format!("journal records unknown outcome {:?}", rec.outcome));
        };
        let slot = slots[idx].get_mut().unwrap();
        if slot.is_some() {
            return Err(format!("journal records job {:?} twice", rec.id));
        }
        *slot = Some(JobRecord {
            id: rec.id,
            outcome,
            attempts: rec.attempts,
            resumed: true,
            repro: rec.repro,
            payload: rec.payload,
        });
        resumed += 1;
    }

    let pending: Vec<usize> =
        (0..jobs.len()).filter(|&i| slots[i].get_mut().unwrap().is_none()).collect();
    let workers = match opts.workers {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    }
    .min(pending.len().max(1));

    // Scalars only cross into the worker threads; anything obs-flavoured
    // stays on the caller thread (Obs is not Sync) and is emitted after
    // the pool joins, via CampaignReport::events().
    let fuel = opts.fuel;
    let timeout = opts.timeout_secs;
    let panic_inject = opts.panic_inject.as_deref();
    let repro_dir = opts.repro_dir.as_str();
    let name = opts.name.as_str();
    let journal = journal.as_ref();

    let retried = AtomicUsize::new(0);
    let recovered = AtomicUsize::new(0);
    let cursor = AtomicUsize::new(0);
    let failure: Mutex<Option<String>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let at = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&idx) = pending.get(at) else { break };
                let job = &jobs[idx];

                let mut attempts = 1u32;
                let mut out = run_attempt(
                    job,
                    &JobCtx {
                        fuel,
                        deadline: timeout.map(|s| Instant::now() + Duration::from_secs(s)),
                        attempt: 1,
                    },
                    panic_inject,
                );
                // One-shot retry for host-side failures. Fuel
                // exhaustion is a property of the guest alone —
                // deterministic by construction — so retrying it
                // would only double the cost of the same answer.
                if matches!(out.outcome, JobOutcome::Panicked | JobOutcome::TimedOut) {
                    retried.fetch_add(1, Ordering::Relaxed);
                    attempts = 2;
                    out = run_attempt(
                        job,
                        &JobCtx {
                            fuel,
                            deadline: timeout.map(|s| Instant::now() + Duration::from_secs(s)),
                            attempt: 2,
                        },
                        panic_inject,
                    );
                    if out.outcome == JobOutcome::Completed {
                        recovered.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let repro = if matches!(out.outcome, JobOutcome::Panicked | JobOutcome::TimedOut) {
                    write_repro(name, repro_dir, job, fuel, &out)
                } else {
                    None
                };

                let record = JobRecord {
                    id: job.id.clone(),
                    outcome: out.outcome,
                    attempts,
                    resumed: false,
                    repro,
                    payload: out.payload,
                };
                if let Some(journal) = journal {
                    if let Err(e) = journal.append(&Record {
                        id: record.id.clone(),
                        outcome: record.outcome.tag().to_string(),
                        attempts: record.attempts,
                        repro: record.repro.clone(),
                        payload: record.payload.clone(),
                    }) {
                        *failure.lock().unwrap() = Some(e);
                        break;
                    }
                }
                *slots[idx].lock().unwrap() = Some(record);
            });
        }
    });

    if let Some(e) = failure.into_inner().unwrap() {
        return Err(e);
    }
    if let Some(journal) = journal {
        journal.finish()?;
    }

    let mut records = Vec::with_capacity(jobs.len());
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.into_inner().unwrap() {
            Some(rec) => records.push(rec),
            // Unreachable by construction (every pending index is
            // visited); guarded so a future scheduling bug surfaces as
            // an error, never as a silently shed job.
            None => return Err(format!("job {:?} was shed", jobs[i].id)),
        }
    }

    Ok(CampaignReport {
        name: opts.name.clone(),
        records,
        resumed,
        retried: retried.into_inner(),
        recovered: recovered.into_inner(),
        torn_lines,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn opts(name: &str) -> CampaignOpts {
        CampaignOpts {
            name: name.to_string(),
            fuel: 1000,
            timeout_secs: None,
            workers: 2,
            journal: None,
            repro_dir: std::env::temp_dir()
                .join("opec-campaign-tests/repros")
                .to_string_lossy()
                .into_owned(),
            kill_after: None,
            panic_inject: None,
        }
    }

    #[test]
    fn records_come_back_in_definition_order() {
        let jobs: Vec<Job<'_>> = (0..17)
            .map(|i| {
                Job::new(format!("job/{i}"), String::new(), move |_ctx| {
                    JobResult::Done(format!("{i}"))
                })
            })
            .collect();
        let report = run_campaign(&opts("order"), &jobs).unwrap();
        let ids: Vec<&str> = report.records.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, (0..17).map(|i| format!("job/{i}")).collect::<Vec<_>>());
        assert_eq!(report.unknown(), 0);
    }

    #[test]
    fn deterministic_panic_is_contained_retried_once_and_reported() {
        let mut o = opts("panic");
        o.panic_inject = Some("job/3".to_string());
        let jobs: Vec<Job<'_>> = (0..6)
            .map(|i| {
                Job::new(format!("job/{i}"), "{\"seed\":3}".to_string(), move |_| {
                    JobResult::Done(format!("{i}"))
                })
            })
            .collect();
        let report = run_campaign(&o, &jobs).unwrap();
        // The campaign survived and every other job completed.
        assert_eq!(report.records.len(), 6);
        let bad = &report.records[3];
        assert_eq!(bad.outcome, JobOutcome::Panicked);
        assert_eq!(bad.attempts, 2, "one retry, then classified deterministic");
        assert!(bad.payload.contains("injected campaign fault"));
        let repro = bad.repro.as_ref().expect("deterministic panic emits a repro artifact");
        let body = std::fs::read_to_string(repro).unwrap();
        assert!(body.contains("\"seed\":3"));
        assert_eq!(report.retried, 1);
        assert_eq!(report.recovered, 0);
        assert_eq!(report.unknown(), 1);
        assert!(report.summary().contains("1 panicked"));
    }

    #[test]
    fn transient_failure_recovers_on_retry() {
        let first = AtomicU32::new(0);
        let jobs = vec![Job::new("flaky", String::new(), |_| {
            if first.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("transient");
            }
            JobResult::Done("42".to_string())
        })];
        let report = run_campaign(&opts("flaky"), &jobs).unwrap();
        assert_eq!(report.records[0].outcome, JobOutcome::Completed);
        assert_eq!(report.records[0].attempts, 2);
        assert_eq!(report.recovered, 1);
        assert_eq!(report.unknown(), 0);
    }

    #[test]
    fn fuel_exhaustion_is_never_retried() {
        let calls = AtomicU32::new(0);
        let jobs = vec![Job::new("hot", String::new(), |_| {
            calls.fetch_add(1, Ordering::Relaxed);
            JobResult::FuelExhausted("{}".to_string())
        })];
        let report = run_campaign(&opts("fuel"), &jobs).unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(report.records[0].outcome, JobOutcome::FuelExhausted);
        assert_eq!(report.retried, 0);
    }

    #[test]
    fn resume_skips_journaled_jobs_and_keeps_payload_bytes() {
        let path = std::env::temp_dir()
            .join("opec-campaign-tests/resume.jsonl")
            .to_string_lossy()
            .into_owned();
        let _ = std::fs::remove_file(&path);
        let mut o = opts("resume");
        o.journal = Some(path.clone());

        let ran = AtomicU32::new(0);
        let make = |upto: u32| -> Vec<Job<'_>> {
            (0..4)
                .map(|i| {
                    let ran = &ran;
                    Job::new(format!("j/{i}"), String::new(), move |_| {
                        ran.fetch_add(1, Ordering::Relaxed);
                        assert!(i < upto, "job {i} should have been resumed, not re-run");
                        JobResult::Done(format!("{{\"value\": {i}}}"))
                    })
                })
                .collect()
        };

        // First run completes everything.
        let full = run_campaign(&o, &make(4)).unwrap();
        assert_eq!(ran.load(Ordering::Relaxed), 4);

        // Second run with the same journal must not re-run anything.
        let resumed = run_campaign(&o, &make(0)).unwrap();
        assert_eq!(ran.load(Ordering::Relaxed), 4);
        assert_eq!(resumed.resumed, 4);
        for (a, b) in full.records.iter().zip(&resumed.records) {
            assert_eq!(a.payload, b.payload);
            assert_eq!(a.outcome, b.outcome);
        }
    }

    #[test]
    fn duplicate_and_invalid_ids_are_rejected() {
        let dup = vec![
            Job::new("same", String::new(), |_| JobResult::Done("1".into())),
            Job::new("same", String::new(), |_| JobResult::Done("2".into())),
        ];
        assert!(run_campaign(&opts("dup"), &dup).is_err());
        let bad = vec![Job::new("spa ce", String::new(), |_| JobResult::Done("1".into()))];
        assert!(run_campaign(&opts("bad"), &bad).is_err());
    }

    #[test]
    fn events_follow_definition_order_with_retry_milestones() {
        let mut o = opts("events");
        o.panic_inject = Some("b".to_string());
        let jobs = vec![
            Job::new("a", String::new(), |_| JobResult::Done("1".into())),
            Job::new("b", String::new(), |_| JobResult::Done("2".into())),
        ];
        let report = run_campaign(&o, &jobs).unwrap();
        let events = report.events();
        use opec_obs::JobEventKind as K;
        assert_eq!(
            events,
            vec![
                Event::Job { kind: K::Completed, attempt: 1 },
                Event::Job { kind: K::Retried, attempt: 2 },
                Event::Job { kind: K::Panicked, attempt: 2 },
            ]
        );
    }
}
