//! The crash-safe campaign journal.
//!
//! One JSONL file per campaign: a header line identifying the campaign
//! (name + fuel budget, so a resume with different settings is refused
//! rather than silently mixed), then one record per finished job. The
//! writer fsyncs every [`SYNC_BATCH`] records and once more at the end,
//! so at most one batch of finished jobs is lost to a `SIGKILL` — and a
//! torn final line (the classic crash artifact) is detected and
//! truncated away on reopen, never treated as data.
//!
//! Record layout (one line, itself valid JSON):
//!
//! ```text
//! {"v":1,"id":"<job id>","outcome":"<tag>","attempts":N[,"repro":"<path>"],"payload":<raw JSON>}
//! ```
//!
//! The payload field is written **last** and stored as the raw string
//! the campaign produced: on resume the engine slices it back out
//! byte-for-byte (no parse/re-render wobble), which is what makes
//! resumed aggregates byte-identical to an uninterrupted run.

use std::io::{Seek as _, Write as _};
use std::sync::Mutex;

use crate::json;

/// Records per fsync batch. Small enough that a kill loses little;
/// large enough that the fsync cost disappears under the VM runs.
pub const SYNC_BATCH: usize = 32;

/// One journaled job outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The deterministic job id.
    pub id: String,
    /// The outcome tag (`completed` / `fuel_exhausted` / `timed_out` /
    /// `panicked`).
    pub outcome: String,
    /// How many attempts the job took (1 = first try, 2 = retried).
    pub attempts: u32,
    /// Path of the repro artifact, for final failures.
    pub repro: Option<String>,
    /// The raw single-line JSON payload the campaign journaled.
    pub payload: String,
}

/// What [`Journal::open`] found in an existing file.
#[derive(Debug)]
pub struct Loaded {
    /// Records recovered from a previous run, in file order.
    pub records: Vec<Record>,
    /// 1 if a torn final line was truncated away, else 0.
    pub torn_lines: usize,
}

struct Inner {
    file: std::fs::File,
    pending: usize,
    appended: usize,
    kill_after: Option<usize>,
}

/// An append-only, fsync-batched journal handle. Shared across worker
/// threads behind its internal mutex.
pub struct Journal {
    inner: Mutex<Inner>,
}

fn header_line(campaign: &str, fuel: u64) -> String {
    format!("{{\"v\":1,\"campaign\":\"{}\",\"fuel\":{}}}", json::escape(campaign), fuel)
}

/// Validates a job id: journal ids embed into JSON and file paths
/// without escaping, so the charset is locked down here once.
pub fn valid_id(id: &str) -> bool {
    !id.is_empty()
        && id.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '/' | '.' | ':'))
}

impl Journal {
    /// Opens (or creates) the journal at `path`.
    ///
    /// A fresh or empty file gets the header written and synced. An
    /// existing file must carry a matching header — same campaign name
    /// and fuel budget — or the open fails (resuming under different
    /// settings would corrupt the aggregates). A torn final line is
    /// truncated away and counted in [`Loaded::torn_lines`]; a torn
    /// *header* means the previous run died before its first sync, so
    /// the file is reset. `kill_after` arms the crash-injection hook:
    /// the process aborts (as if `SIGKILL`ed) right after the nth
    /// record reaches the disk — test-only, driven by
    /// `OPEC_CAMPAIGN_KILL_AFTER` in the nightly CI kill-and-resume
    /// job. While armed, every append syncs so the abort point is
    /// exact.
    pub fn open(
        path: &str,
        campaign: &str,
        fuel: u64,
        kill_after: Option<usize>,
    ) -> Result<(Journal, Loaded), String> {
        let header = header_line(campaign, fuel);
        let existing = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(format!("cannot read journal {path}: {e}")),
        };

        let mut records = Vec::new();
        let mut torn_lines = 0usize;
        // Byte length of the valid prefix we keep; everything after is
        // torn tail and gets truncated before appends resume.
        let mut keep = 0usize;
        let mut fresh = true;

        if !existing.is_empty() {
            let mut lines: Vec<&str> = existing.split_inclusive('\n').collect();
            // A final chunk without its newline never finished writing.
            let torn_tail = lines.last().map(|l| !l.ends_with('\n')).unwrap_or(false);
            let tail = if torn_tail { lines.pop() } else { None };

            match lines.first() {
                None => {
                    // Only a torn header fragment: reset the file.
                    torn_lines += usize::from(tail.is_some());
                }
                Some(first) => {
                    if first.trim_end() != header {
                        return Err(format!(
                            "journal {path} belongs to a different campaign \
                             (header {:?}, expected {:?}); delete it or pass \
                             a different --journal path",
                            first.trim_end(),
                            header
                        ));
                    }
                    fresh = false;
                    keep = first.len();
                    for line in &lines[1..] {
                        match parse_record(line.trim_end()) {
                            Ok(rec) => {
                                keep += line.len();
                                records.push(rec);
                            }
                            Err(e) => {
                                return Err(format!("journal {path} is corrupt mid-file: {e}"))
                            }
                        }
                    }
                    if let Some(tail) = tail {
                        // A syntactically complete record that merely
                        // lost its newline to the crash still counts.
                        match parse_record(tail) {
                            Ok(rec) => {
                                keep += tail.len();
                                records.push(rec);
                            }
                            Err(_) => torn_lines += 1,
                        }
                    }
                }
            }
        }

        // Keep existing bytes (`set_len(keep)` below prunes only the
        // torn tail), so explicitly not `truncate(true)`.
        let mut file = std::fs::File::options()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| format!("cannot open journal {path}: {e}"))?;
        file.set_len(keep as u64).map_err(|e| format!("cannot truncate journal {path}: {e}"))?;
        file.seek(std::io::SeekFrom::End(0))
            .map_err(|e| format!("cannot seek journal {path}: {e}"))?;
        if fresh {
            file.write_all(header.as_bytes())
                .and_then(|()| file.write_all(b"\n"))
                .and_then(|()| file.sync_data())
                .map_err(|e| format!("cannot write journal header to {path}: {e}"))?;
        }

        let journal =
            Journal { inner: Mutex::new(Inner { file, pending: 0, appended: 0, kill_after }) };
        Ok((journal, Loaded { records, torn_lines }))
    }

    /// Appends one record. The payload must be single-line JSON; ids
    /// must satisfy [`valid_id`]. Syncs every [`SYNC_BATCH`] records
    /// (every record while the kill hook is armed).
    pub fn append(&self, rec: &Record) -> Result<(), String> {
        if !valid_id(&rec.id) {
            return Err(format!("invalid job id {:?}", rec.id));
        }
        if rec.payload.contains('\n') {
            return Err(format!("job {} payload is not single-line JSON", rec.id));
        }
        let mut line = format!(
            "{{\"v\":1,\"id\":\"{}\",\"outcome\":\"{}\",\"attempts\":{}",
            rec.id,
            json::escape(&rec.outcome),
            rec.attempts
        );
        if let Some(repro) = &rec.repro {
            line.push_str(&format!(",\"repro\":\"{}\"", json::escape(repro)));
        }
        line.push_str(",\"payload\":");
        line.push_str(&rec.payload);
        line.push_str("}\n");

        let mut inner = self.inner.lock().unwrap();
        inner.file.write_all(line.as_bytes()).map_err(|e| format!("journal write: {e}"))?;
        inner.pending += 1;
        if inner.pending >= SYNC_BATCH || inner.kill_after.is_some() {
            inner.file.sync_data().map_err(|e| format!("journal sync: {e}"))?;
            inner.appended += inner.pending;
            inner.pending = 0;
            if let Some(n) = inner.kill_after {
                if inner.appended >= n {
                    // Simulate SIGKILL mid-campaign: no unwinding, no
                    // flush of anything else, straight down.
                    std::process::abort();
                }
            }
        }
        Ok(())
    }

    /// Final flush + fsync; call once after the worker pool joins.
    pub fn finish(&self) -> Result<(), String> {
        let mut inner = self.inner.lock().unwrap();
        if inner.pending > 0 {
            inner.file.sync_data().map_err(|e| format!("journal sync: {e}"))?;
            inner.appended += inner.pending;
            inner.pending = 0;
        }
        Ok(())
    }
}

/// Parses one record line, extracting the payload as the raw source
/// substring. The payload field is last and ids cannot contain quotes,
/// so the first `,"payload":` marker is unambiguous.
fn parse_record(line: &str) -> Result<Record, String> {
    const MARKER: &str = ",\"payload\":";
    let at = line.find(MARKER).ok_or("no payload field")?;
    let payload = line
        .get(at + MARKER.len()..line.len() - 1)
        .filter(|_| line.ends_with('}'))
        .ok_or("unterminated record")?;
    // Validate both halves: the prefix fields re-closed as an object,
    // and the payload as standalone JSON (a torn payload fails here).
    let head = json::parse(&format!("{}}}", &line[..at]))?;
    json::parse(payload)?;
    let id = head.get("id").and_then(|v| v.as_str()).ok_or("record has no id")?;
    if !valid_id(id) {
        return Err(format!("invalid job id {id:?}"));
    }
    let outcome = head.get("outcome").and_then(|v| v.as_str()).ok_or("record has no outcome")?;
    let attempts = head.get("attempts").and_then(|v| v.as_u64()).ok_or("record has no attempts")?;
    let repro = head.get("repro").and_then(|v| v.as_str()).map(str::to_string);
    Ok(Record {
        id: id.to_string(),
        outcome: outcome.to_string(),
        attempts: attempts as u32,
        repro,
        payload: payload.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("opec-campaign-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn rec(id: &str, payload: &str) -> Record {
        Record {
            id: id.to_string(),
            outcome: "completed".to_string(),
            attempts: 1,
            repro: None,
            payload: payload.to_string(),
        }
    }

    #[test]
    fn roundtrips_records_and_preserves_payload_bytes() {
        let path = tmp("roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);
        let payload = r#"{"cells": [1, 2, 3], "note": "a\nb"}"#;
        {
            let (j, loaded) = Journal::open(&path, "check", 100, None).unwrap();
            assert!(loaded.records.is_empty());
            j.append(&rec("check/app/pinlock/opec", payload)).unwrap();
            j.append(&Record { repro: Some("repros/x.json".into()), ..rec("a/b", "null") })
                .unwrap();
            j.finish().unwrap();
        }
        let (_, loaded) = Journal::open(&path, "check", 100, None).unwrap();
        assert_eq!(loaded.torn_lines, 0);
        assert_eq!(loaded.records.len(), 2);
        assert_eq!(loaded.records[0].payload, payload);
        assert_eq!(loaded.records[1].repro.as_deref(), Some("repros/x.json"));
    }

    #[test]
    fn torn_tail_is_truncated_and_counted() {
        let path = tmp("torn.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let (j, _) = Journal::open(&path, "check", 100, None).unwrap();
            j.append(&rec("one", "1")).unwrap();
            j.append(&rec("two", "2")).unwrap();
            j.finish().unwrap();
        }
        // Chop the file mid-record, as a kill during a write would.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 7]).unwrap();
        let (j, loaded) = Journal::open(&path, "check", 100, None).unwrap();
        assert_eq!(loaded.torn_lines, 1);
        assert_eq!(loaded.records.len(), 1);
        assert_eq!(loaded.records[0].id, "one");
        // The journal stays appendable after truncation.
        j.append(&rec("two", "2")).unwrap();
        j.finish().unwrap();
        let (_, loaded) = Journal::open(&path, "check", 100, None).unwrap();
        assert_eq!(loaded.records.len(), 2);
        assert_eq!(loaded.torn_lines, 0);
    }

    #[test]
    fn mismatched_header_is_refused() {
        let path = tmp("mismatch.jsonl");
        let _ = std::fs::remove_file(&path);
        let (j, _) = Journal::open(&path, "check", 100, None).unwrap();
        j.finish().unwrap();
        assert!(Journal::open(&path, "check", 200, None).is_err());
        assert!(Journal::open(&path, "attack", 100, None).is_err());
        assert!(Journal::open(&path, "check", 100, None).is_ok());
    }

    #[test]
    fn rejects_multiline_payloads_and_bad_ids() {
        let path = tmp("reject.jsonl");
        let _ = std::fs::remove_file(&path);
        let (j, _) = Journal::open(&path, "check", 100, None).unwrap();
        assert!(j.append(&rec("ok", "{\"a\":\n1}")).is_err());
        assert!(j.append(&rec("bad\"id", "1")).is_err());
        assert!(j.append(&rec("", "1")).is_err());
    }
}
