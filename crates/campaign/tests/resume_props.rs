//! Crash-resume equivalence property.
//!
//! The engine's headline guarantee is that a campaign killed at *any*
//! journal point resumes to aggregates byte-identical to an
//! uninterrupted run. A real `SIGKILL` leaves the journal truncated at
//! an arbitrary byte — possibly mid-record, possibly mid-header — so
//! the property is driven exactly that way: run a campaign to
//! completion, chop its journal at a random byte offset (the on-disk
//! state a kill at that moment would have left, given fsync ordering),
//! resume, and demand the same records in the same order with the
//! same payload bytes.

use proptest::prelude::*;

use opec_campaign::{run_campaign, CampaignOpts, Job, JobResult};

use std::sync::atomic::{AtomicU32, Ordering};

static CASE: AtomicU32 = AtomicU32::new(0);

fn tmp_journal() -> String {
    let dir = std::env::temp_dir().join("opec-campaign-props");
    std::fs::create_dir_all(&dir).unwrap();
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    dir.join(format!("resume-{}-{n}.jsonl", std::process::id())).to_string_lossy().into_owned()
}

fn opts(journal: Option<String>) -> CampaignOpts {
    CampaignOpts {
        name: "prop".to_string(),
        fuel: 1000,
        timeout_secs: None,
        workers: 3,
        journal,
        repro_dir: std::env::temp_dir()
            .join("opec-campaign-props/repros")
            .to_string_lossy()
            .into_owned(),
        kill_after: None,
        panic_inject: None,
    }
}

/// A deterministic mixed-outcome workload: mostly completions, every
/// fifth job fuel-exhausted, every seventh panicked (deterministically,
/// so the retry also fails and the outcome journals as `panicked`).
fn jobs(n: usize) -> Vec<Job<'static>> {
    (0..n)
        .map(|i| {
            Job::new(format!("j/{i}"), format!("{{\"seed\":{i}}}"), move |_ctx| {
                if i % 7 == 6 {
                    panic!("deterministic host fault in job {i}");
                }
                if i % 5 == 4 {
                    JobResult::FuelExhausted(format!("{{\"partial\":{i}}}"))
                } else {
                    JobResult::Done(format!("{{\"value\":{}}}", i * i))
                }
            })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kill-at-random-journal-point + resume == uninterrupted run.
    #[test]
    fn truncated_journal_resumes_to_identical_aggregates(
        n in 1usize..18,
        frac in 0u64..10_001,
    ) {
        // The reference: same workload, no journal, one process.
        let reference = run_campaign(&opts(None), &jobs(n)).unwrap();

        // The victim: journaled run, then a simulated SIGKILL —
        // truncate the journal at a byte offset spanning everything
        // from "died before the header synced" to "died after the
        // last record".
        let path = tmp_journal();
        run_campaign(&opts(Some(path.clone())), &jobs(n)).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let cut = (frac as usize * bytes.len()) / 10_000;
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let resumed = run_campaign(&opts(Some(path.clone())), &jobs(n)).unwrap();
        std::fs::remove_file(&path).ok();

        prop_assert_eq!(reference.records.len(), resumed.records.len());
        for (a, b) in reference.records.iter().zip(&resumed.records) {
            prop_assert_eq!(&a.id, &b.id);
            prop_assert_eq!(a.outcome, b.outcome);
            prop_assert_eq!(&a.payload, &b.payload,
                "payload of {} differs after kill+resume", a.id);
        }
        // Nothing shed: every defined job has exactly one record.
        prop_assert_eq!(resumed.records.len(), n);
    }
}
