//! Property tests for the metrics histogram.
//!
//! The merge law is what lets per-thread or per-run histograms be
//! combined into the report's totals: merging must equal building one
//! histogram from the concatenated samples, for any split.

use proptest::prelude::*;

use opec_obs::Histogram;

fn from_samples(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_equals_concatenation(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..64),
        b in proptest::collection::vec(0u64..1_000_000_000, 0..64),
    ) {
        let mut merged = from_samples(&a);
        merged.merge(&from_samples(&b));
        let mut concat = a.clone();
        concat.extend_from_slice(&b);
        prop_assert_eq!(merged, from_samples(&concat));
    }

    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(0u64..1_000_000, 0..32),
        b in proptest::collection::vec(0u64..1_000_000, 0..32),
    ) {
        let mut ab = from_samples(&a);
        ab.merge(&from_samples(&b));
        let mut ba = from_samples(&b);
        ba.merge(&from_samples(&a));
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn summary_stats_are_exact(
        samples in proptest::collection::vec(0u64..1_000_000_000, 1..64),
    ) {
        let h = from_samples(&samples);
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum(), samples.iter().sum::<u64>());
        prop_assert_eq!(h.min(), *samples.iter().min().unwrap());
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
        // The approximate quantile never reports below the minimum or
        // above the maximum.
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile(q);
            prop_assert!(v <= h.max());
        }
    }
}
