//! Golden-file test for the Prometheus text exporter.
//!
//! The `/metrics` output is a wire format scraped by external tooling:
//! family names, HELP/TYPE lines, label sets, and the histogram bucket
//! vocabulary are all part of the interface. This test folds a fixed
//! synthetic event stream into [`Metrics`] and compares
//! [`opec_obs::prom::render`] byte-for-byte against a committed golden
//! file, so any drift in the exported text is a deliberate, reviewed
//! change.
//!
//! To bless a new golden after an intentional format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p opec-obs --test prom_golden
//! ```

use opec_obs::event::{Access, Dir, Event, JobEventKind, Stamped, TrapKind};
use opec_obs::{prom, Metrics};

/// A fixed event stream touching every counter family the exporter
/// renders: two operations with distinct switch-latency buckets, MPU
/// and PMP reprogramming, virtualization traffic, emulated accesses, a
/// trap + quarantine, and campaign job milestones.
fn fixture() -> Metrics {
    let mut m = Metrics::new();
    let mut t = 0u64;
    let mut push = |m: &mut Metrics, dt: u64, ev: Event| {
        t += dt;
        m.observe(Stamped { t, ev });
    };

    for (op, latency) in [(1u8, 7u64), (2u8, 40u64)] {
        // Enter op, run, exit back to op 0; the chosen latencies land
        // in different `2^i - 1` histogram buckets.
        push(
            &mut m,
            10,
            Event::SwitchBegin { dir: Dir::Enter, from: 0, to: op, entry: 0x100, insts: 50 },
        );
        push(
            &mut m,
            latency,
            Event::SwitchEnd { dir: Dir::Enter, from: 0, to: op, entry: 0x100, ok: true },
        );
        push(&mut m, 5, Event::MpuLoad { regions: 4 });
        push(&mut m, 1, Event::MpuRegionWrite { slot: 3, base: 0x4000_0000, size: 0x400, srd: 0 });
        push(&mut m, 1, Event::PmpLoad { entries: 4 });
        push(&mut m, 1, Event::PmpEntryWrite { entry: 2, addr: 0x1000_0000, cfg: 0x1b });
        push(&mut m, 3, Event::FuncEnter { func: 9 });
        push(&mut m, 3, Event::FuncExit { func: 9 });
        push(&mut m, 2, Event::VirtHit { op, address: 0x4000_1000, window: 0, slot: 7 });
        push(&mut m, 2, Event::VirtEvict { op, slot: 7, old_window: 0, new_window: 1 });
        push(&mut m, 2, Event::VirtMiss { op, address: 0x4000_2000, write: true });
        push(
            &mut m,
            2,
            Event::Emulated {
                op,
                address: 0xe000_e018,
                access: Access::Load,
                size: 4,
                rt: 0,
                rn: 1,
            },
        );
        push(
            &mut m,
            2,
            Event::Emulated {
                op,
                address: 0xe000_e010,
                access: Access::Store,
                size: 4,
                rt: 2,
                rn: 1,
            },
        );
        push(
            &mut m,
            10,
            Event::SwitchBegin { dir: Dir::Exit, from: op, to: 0, entry: 0x100, insts: 200 },
        );
        push(
            &mut m,
            latency / 2,
            Event::SwitchEnd { dir: Dir::Exit, from: op, to: 0, entry: 0x100, ok: true },
        );
    }

    // Op 2 misbehaves on a later entry and is quarantined.
    push(
        &mut m,
        10,
        Event::SwitchBegin { dir: Dir::Enter, from: 0, to: 2, entry: 0x100, insts: 300 },
    );
    push(&mut m, 33, Event::SwitchEnd { dir: Dir::Enter, from: 0, to: 2, entry: 0x100, ok: true });
    push(&mut m, 4, Event::Trap { op: 2, kind: TrapKind::PolicyDeniedMem, address: 0x2000_0040 });
    push(&mut m, 1, Event::Quarantine { op: 2 });

    push(&mut m, 20, Event::RunEnd { insts: 1234 });
    push(&mut m, 0, Event::Job { kind: JobEventKind::Completed, attempt: 1 });
    push(&mut m, 0, Event::Job { kind: JobEventKind::FuelExhausted, attempt: 1 });
    push(&mut m, 0, Event::Job { kind: JobEventKind::Retried, attempt: 2 });
    m
}

#[test]
fn prometheus_text_matches_golden() {
    let text = prom::render(&fixture(), 3);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics.prom");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &text).expect("write golden");
        eprintln!("blessed {path}");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        text, golden,
        "Prometheus text drifted from the golden file; if intentional, re-bless with \
         UPDATE_GOLDEN=1 cargo test -p opec-obs --test prom_golden"
    );
}

#[test]
fn golden_text_is_valid_prometheus_exposition() {
    // Structural lint over the same fixture, independent of the golden
    // bytes: every sample belongs to a declared family, HELP precedes
    // TYPE, histograms end with a +Inf bucket, and values parse.
    let text = prom::render(&fixture(), 3);
    let mut declared: Vec<String> = Vec::new();
    let mut last_help: Option<String> = None;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().expect("HELP names a family");
            last_help = Some(name.to_string());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut words = rest.split_whitespace();
            let name = words.next().expect("TYPE names a family");
            let kind = words.next().expect("TYPE states a kind");
            assert_eq!(last_help.as_deref(), Some(name), "HELP must precede TYPE for {name}");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unexpected family kind {kind}"
            );
            declared.push(name.to_string());
        } else {
            let metric = line.split([' ', '{']).next().expect("sample names a metric");
            let base = metric
                .strip_suffix("_bucket")
                .or_else(|| metric.strip_suffix("_sum"))
                .or_else(|| metric.strip_suffix("_count"))
                .unwrap_or(metric);
            assert!(
                declared.iter().any(|d| d == base || d == metric),
                "sample {metric} has no declared family"
            );
            let value = line.rsplit(' ').next().expect("sample carries a value");
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf",
                "unparseable sample value {value:?} in {line:?}"
            );
        }
    }
    assert!(text.contains("le=\"+Inf\""), "histograms must close with a +Inf bucket");
    assert!(
        text.contains("opec_ring_shed_events_total 3"),
        "shed count must surface in the export"
    );
}
