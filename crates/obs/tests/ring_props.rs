//! Property tests for the bounded event ring.
//!
//! The drop-accounting contract the CI gate relies on: nothing is ever
//! silently lost (`len + dropped == total`) and what survives is
//! exactly the newest suffix of the push sequence, in push order.

use proptest::prelude::*;

use opec_obs::{Event, RingBuffer, Stamped};

fn ev(t: u64) -> Stamped {
    Stamped { t, ev: Event::RunEnd { insts: t } }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn accounting_balances_and_survivors_are_newest_suffix(
        capacity in 0usize..64,
        stamps in proptest::collection::vec(0u64..1_000_000, 0..256),
    ) {
        let mut ring = RingBuffer::new(capacity);
        for &t in &stamps {
            ring.push(ev(t));
        }
        // Nothing vanishes unaccounted: held + shed == pushed.
        prop_assert_eq!(ring.len() as u64 + ring.dropped(), ring.total());
        prop_assert_eq!(ring.total(), stamps.len() as u64);
        // The ring never exceeds its (min-1-clamped) capacity.
        prop_assert!(ring.len() <= ring.capacity());
        // The survivors are the newest suffix, in push order.
        let kept: Vec<u64> = ring.events().map(|e| e.t).collect();
        let suffix_start = stamps.len() - ring.len();
        prop_assert_eq!(&kept[..], &stamps[suffix_start..]);
    }

    #[test]
    fn under_capacity_nothing_drops(
        stamps in proptest::collection::vec(0u64..1_000_000, 0..64),
    ) {
        let mut ring = RingBuffer::new(64);
        for &t in &stamps {
            ring.push(ev(t));
        }
        prop_assert_eq!(ring.dropped(), 0);
        prop_assert_eq!(ring.len(), stamps.len());
        prop_assert_eq!(ring.to_vec().iter().map(|e| e.t).collect::<Vec<_>>(), stamps);
    }
}
