//! Observability for the OPEC runtime: structured events, online
//! per-operation metrics, and exporters.
//!
//! The paper's runtime-overhead breakdown (§7) needs to know what
//! happens *inside* an operation switch — SVC entry/exit, MPU region
//! reloads, peripheral-window virtualization, BusFault emulation. This
//! crate provides the plumbing to measure that from the inside:
//!
//! * [`event::Event`] — the typed taxonomy: switch begin/end with
//!   old/new operation ids, virtualization hit/miss/evict, emulated
//!   core-peripheral accesses with the decoded Thumb-2 operands,
//!   injector actions, trap verdicts, quarantines.
//! * [`sink::Obs`] — the cloneable handle the VM, the OPEC-Monitor,
//!   the MPU model and the ACES runtime emit through. Disabled (the
//!   default) it is a `None` check per potential event and the
//!   event-constructing closure never runs.
//! * [`ring::RingBuffer`] — a bounded raw stream with drop counting;
//!   nonzero drops mean the exported timeline is incomplete and CI
//!   fails the report.
//! * [`metrics::Metrics`] — online per-op aggregates: switch counts,
//!   switch-latency cycle histograms, virtualization faults, emulated
//!   accesses, instructions retired per op.
//! * [`export`] — Chrome `trace_event` JSON for timeline viewing and a
//!   metrics JSON consumed by `opec-eval report`.
//!
//! Both the OPEC and ACES runtimes emit into the same taxonomy, so
//! their switch costs are compared from one event stream rather than
//! from two ad-hoc counters.

#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod metrics;
pub mod prom;
pub mod ring;
pub mod sink;

pub use event::{
    Access, Dir, Event, InjectKind, InjectVerdict, JobEventKind, OpId, OracleKind, OracleLayer,
    Stamped, TrapKind,
};
pub use export::{chrome_trace, event_log, histogram_json, metrics_json};
pub use metrics::{Histogram, Metrics, OpMetrics, Recorder};
pub use prom::PromWriter;
pub use ring::{RingBuffer, DEFAULT_RING_CAPACITY};
pub use sink::{Obs, Sink, SinkHandle};
