//! The event taxonomy.
//!
//! Every observable action of the VM, the OPEC-Monitor, the MPU model
//! and the ACES runtime maps to one [`Event`] variant. Events are small
//! `Copy` records — numeric ids only, no strings — so constructing one
//! on the hot path costs a handful of moves and recording one into a
//! ring buffer is a bounded memcpy.

/// Operation identifier, as in the image's entry table (0 = `main`).
pub type OpId = u8;

/// Direction of an operation switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// The compiler-inserted SVC before an operation entry call.
    Enter,
    /// The SVC after the operation returns to its caller.
    Exit,
}

/// Direction of an emulated core-peripheral access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// A load (the emulator wrote the result into `rt`).
    Load,
    /// A store (the emulator read the value from `rt`).
    Store,
}

/// The kind of an injected fault action (mirrors `vm::InjectAction`
/// without its payload, so the event stays `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectKind {
    /// Physical bit flip, bypassing the MPU.
    FlipBit,
    /// Hostile load through the checked pipeline.
    HostileLoad,
    /// Hostile store through the checked pipeline.
    HostileStore,
    /// Store aimed at the caller's live stack data.
    SmashCallerStack,
    /// Tampered SVC number on the next switch.
    CorruptSwitchOp,
    /// Tampered argument on the next switch.
    CorruptSwitchArg,
}

/// What became of an injected action (mirrors `vm::InjectOutcome`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectVerdict {
    /// The action took effect.
    Applied,
    /// The action had no target and was dropped.
    Skipped,
    /// A hostile access went through unchecked — an escape.
    AccessOk,
    /// A hostile access was trapped by the isolation machinery.
    Trapped,
    /// A switch corruption is armed for the next switch.
    Armed,
}

/// The cause class of a trap verdict (mirrors `vm::TrapCause` without
/// its payloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapKind {
    /// Data access outside the operation's ACL.
    PolicyDeniedMem,
    /// Core-peripheral access outside the operation's allow list.
    PolicyDeniedCore,
    /// A shared variable failed its exit-time sanitization bounds.
    Sanitization,
    /// A malformed or forged switch request.
    BadSwitch,
    /// An unhandled MemManage fault.
    MemFault,
    /// An unhandled BusFault.
    BusFault,
    /// Anything the supervisor could not classify.
    Unrecoverable,
}

/// The class of a differential-oracle divergence (mirrors the oracle
/// crate's typed report without its payloads, so the event stays
/// `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// The runtime allowed an access the ground-truth matrix denies —
    /// an over-privilege / enforcement bug.
    Escape,
    /// The runtime trapped an access the matrix allows — an
    /// under-privilege bug.
    SpuriousDenial,
    /// Unprivileged code executed a function outside the active
    /// operation's member set.
    ExecOutsideOperation,
}

/// Which enforcement layer the oracle blames for a divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleLayer {
    /// The programmed MPU region file disagrees with the matrix.
    Mpu,
    /// The monitor's switch/emulation decision disagrees.
    Monitor,
    /// The partition/resource analysis disagrees (e.g. a missed
    /// indirect-call target executed inside an operation).
    Analysis,
}

/// One structured observability event.
///
/// Timestamps are *not* part of the event: sinks receive a [`Stamped`]
/// wrapper carrying the simulated DWT cycle count, so the same event
/// value is byte-identical whether it is aggregated, ring-buffered or
/// exported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// An operation switch SVC was raised; the supervisor is about to
    /// run. `insts` snapshots the VM's retired-instruction counter so
    /// aggregators can attribute instructions to the outgoing operation.
    SwitchBegin {
        /// Enter or exit.
        dir: Dir,
        /// The operation the CPU is leaving.
        from: OpId,
        /// The operation the CPU is entering (on exit: returning to).
        to: OpId,
        /// Entry function of the switched operation.
        entry: u32,
        /// Instructions retired so far.
        insts: u64,
    },
    /// The switch SVC returned to the application. The span between the
    /// matching [`Event::SwitchBegin`] and this event is the switch
    /// latency, exception entry/return included.
    SwitchEnd {
        /// Enter or exit.
        dir: Dir,
        /// The operation the CPU left.
        from: OpId,
        /// The operation the CPU entered (on exit: returned to).
        to: OpId,
        /// Entry function of the switched operation.
        entry: u32,
        /// Whether the supervisor accepted the switch.
        ok: bool,
    },
    /// A function body was entered.
    FuncEnter {
        /// The function id.
        func: u32,
    },
    /// A function returned.
    FuncExit {
        /// The function id.
        func: u32,
    },
    /// A MemManage fault resolved by loading the faulting peripheral
    /// window into a reserved MPU region (a virtualization *hit*).
    VirtHit {
        /// The active operation.
        op: OpId,
        /// The faulting address.
        address: u32,
        /// Index of the window in the operation's policy.
        window: u8,
        /// The reserved MPU region slot it was loaded into.
        slot: u8,
    },
    /// A virtualization hit displaced a previously loaded window from
    /// its round-robin slot.
    VirtEvict {
        /// The active operation.
        op: OpId,
        /// The reserved MPU region slot.
        slot: u8,
        /// The window index that was evicted.
        old_window: u8,
        /// The window index that replaced it.
        new_window: u8,
    },
    /// A MemManage fault with no matching peripheral window — the
    /// access is denied by policy.
    VirtMiss {
        /// The active operation.
        op: OpId,
        /// The faulting address.
        address: u32,
        /// Whether the access was a write.
        write: bool,
    },
    /// A BusFault on a core peripheral resolved by decoding the Thumb-2
    /// load/store and emulating it at the privileged level.
    Emulated {
        /// The active operation.
        op: OpId,
        /// The faulting address.
        address: u32,
        /// Load or store.
        access: Access,
        /// Access width in bytes.
        size: u8,
        /// Decoded transfer register.
        rt: u8,
        /// Decoded base register.
        rn: u8,
    },
    /// A single MPU region register was written.
    MpuRegionWrite {
        /// Region number.
        slot: u8,
        /// Region base address.
        base: u32,
        /// Region size in bytes.
        size: u32,
        /// Sub-region disable mask.
        srd: u8,
    },
    /// A full MPU reprogramming (the per-switch region reload).
    MpuLoad {
        /// Number of regions written.
        regions: u8,
    },
    /// A single RISC-V PMP entry (cfg + addr pair) was written.
    PmpEntryWrite {
        /// Entry number.
        entry: u8,
        /// The `pmpaddr` register value (address >> 2, NAPOT size in
        /// trailing ones).
        addr: u32,
        /// The configuration byte (R/W/X + mode bits, `pmpcfg` layout).
        cfg: u8,
    },
    /// A full PMP reprogramming (the per-switch entry-file reload).
    PmpLoad {
        /// Number of entries written.
        entries: u8,
    },
    /// The ACES runtime switched compartments (OPEC has no analogue:
    /// this is the privilege-lifting design the paper compares against).
    CompartmentMode {
        /// The compartment id.
        comp: OpId,
        /// Whether the compartment runs privileged (a PAC lift).
        privileged: bool,
    },
    /// The injector applied, armed or was denied an action.
    Inject {
        /// What was injected.
        kind: InjectKind,
        /// What became of it.
        verdict: InjectVerdict,
    },
    /// The supervisor issued a trap verdict against an operation.
    Trap {
        /// The offending operation.
        op: OpId,
        /// The cause class.
        kind: TrapKind,
        /// The faulting address, when the cause carries one (else 0).
        address: u32,
    },
    /// An operation was killed and unwound under quarantine containment.
    Quarantine {
        /// The quarantined operation.
        op: OpId,
    },
    /// The differential oracle observed runtime behaviour that
    /// contradicts its ground-truth access matrix.
    OracleDivergence {
        /// The operation the divergence occurred in.
        op: OpId,
        /// Escape, spurious denial, or exec outside the operation.
        kind: OracleKind,
        /// The layer the oracle blames.
        layer: OracleLayer,
        /// The address involved (0 when not an access divergence).
        address: u32,
    },
    /// The differential oracle exercised one probe cell during a
    /// switch-time sweep. Emitted whether or not the probe diverged:
    /// the pair `(cell, allowed)` is the coverage signal the fuzzer
    /// feeds on, so an accepted probe is as interesting as a denial.
    OracleProbe {
        /// The operation whose policy was probed.
        op: OpId,
        /// Stable index of the probe cell within the sweep (the
        /// matrix row order, stack boundaries appended last).
        cell: u16,
        /// What the ground-truth matrix expects for the cell.
        allowed: bool,
    },
    /// The run ended (halt, return of `main`, or a fatal error).
    /// Aggregators flush pending attribution; exporters close open
    /// spans.
    RunEnd {
        /// Final retired-instruction count.
        insts: u64,
    },
    /// A campaign job reached a supervision milestone (final outcome,
    /// retry, or resume-skip). Emitted by the campaign engine after the
    /// worker pool joins, in job-definition order, so the event stream
    /// is deterministic regardless of worker interleaving.
    Job {
        /// What happened to the job.
        kind: JobEventKind,
        /// Which attempt the milestone belongs to (1-based).
        attempt: u8,
    },
}

/// The supervision milestone of a campaign job (mirrors the campaign
/// engine's `JobOutcome` without its payloads, so the event stays
/// `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobEventKind {
    /// The job's VM work ran to completion and its payload was
    /// journaled.
    Completed,
    /// The guest exhausted its deterministic instruction budget.
    FuelExhausted,
    /// The host wall-clock watchdog fired before the guest finished.
    TimedOut,
    /// The job's closure panicked and was contained by `catch_unwind`.
    Panicked,
    /// A failed attempt was retried with fresh state.
    Retried,
    /// The job was skipped because a journal from a previous run
    /// already records its outcome.
    Resumed,
}

/// An event with its simulated-cycle timestamp (the DWT view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamped {
    /// Cycle count when the event was emitted.
    pub t: u64,
    /// The event.
    pub ev: Event,
}

impl core::fmt::Display for Stamped {
    /// One canonical line per event — the golden-file format.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:>12} {:?}", self.t, self.ev)
    }
}
