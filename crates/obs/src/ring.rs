//! A bounded event ring with drop accounting.
//!
//! The recorder must never let a long run exhaust host memory, so the
//! raw stream lives in a fixed-capacity ring: when full, the *oldest*
//! event is discarded and a drop counter advances. Exporters and the
//! CI gate read [`RingBuffer::dropped`] — a nonzero value means the
//! exported timeline is incomplete and the buffer must be resized.

use std::collections::VecDeque;

use crate::event::Stamped;

/// Default ring capacity, sized so every app in the eval suite fits
/// with headroom (the busiest stream, TCP-Echo under ACES, stays under
/// a quarter of this).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 20;

/// A bounded FIFO of stamped events that counts what it sheds.
#[derive(Debug, Clone)]
pub struct RingBuffer {
    buf: VecDeque<Stamped>,
    cap: usize,
    total: u64,
    dropped: u64,
}

impl RingBuffer {
    /// An empty ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> RingBuffer {
        let cap = capacity.max(1);
        RingBuffer { buf: VecDeque::with_capacity(cap.min(4096)), cap, total: 0, dropped: 0 }
    }

    /// Appends an event, shedding the oldest when full.
    pub fn push(&mut self, ev: Stamped) {
        self.total += 1;
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Stamped> {
        self.buf.iter()
    }

    /// Copies the held events out, oldest first.
    pub fn to_vec(&self) -> Vec<Stamped> {
        self.buf.iter().copied().collect()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events ever pushed, including shed ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events shed because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Default for RingBuffer {
    fn default() -> RingBuffer {
        RingBuffer::new(DEFAULT_RING_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn ev(t: u64) -> Stamped {
        Stamped { t, ev: Event::RunEnd { insts: t } }
    }

    #[test]
    fn keeps_latest_and_counts_drops() {
        let mut r = RingBuffer::new(3);
        for t in 0..5 {
            r.push(ev(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total(), 5);
        assert_eq!(r.dropped(), 2);
        let ts: Vec<u64> = r.events().map(|e| e.t).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn no_drops_under_capacity() {
        let mut r = RingBuffer::new(8);
        for t in 0..8 {
            r.push(ev(t));
        }
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.len(), 8);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = RingBuffer::new(0);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.events().next().unwrap().t, 2);
    }
}
