//! Prometheus text exposition (format version 0.0.4) for the obs
//! aggregates.
//!
//! The fleet daemon scrapes continuously, so unlike the one-shot JSON
//! exporters this renderer is built for stability: metric names and
//! label sets are part of the interface (golden-file tested), label
//! values are escaped per the exposition spec, and the power-of-two
//! [`Histogram`] buckets map onto cumulative `le` buckets with
//! `2^i - 1` upper bounds.
//!
//! Cardinality is deliberately bounded: per-op series carry only the
//! cheap counters (switches, instructions); latency histograms are
//! exported merged across operations, one series set per direction.

use crate::metrics::{Histogram, Metrics};

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline.
pub fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Incremental writer for one exposition payload.
///
/// Callers outside this crate (the fleet daemon) append their own
/// gauge/counter families after [`render`] so the whole scrape is one
/// consistently escaped document.
#[derive(Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty payload.
    pub fn new() -> PromWriter {
        PromWriter::default()
    }

    /// Emits the `# HELP` / `# TYPE` header for a family.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(&escape_help(help));
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    /// Emits one sample line. `labels` render in the given order.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.sample_str(name, labels, &value.to_string());
    }

    /// Emits one sample line with a pre-rendered value (for floats).
    pub fn sample_str(&mut self, name: &str, labels: &[(&str, &str)], value: &str) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                self.out.push_str(&escape_label(v));
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(value);
        self.out.push('\n');
    }

    /// Emits the sample set of one histogram series (`_bucket` lines
    /// cumulative up to the highest non-empty bucket, then `+Inf`,
    /// `_sum` and `_count`). The family header is the caller's job —
    /// several label sets may share one family.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], h: &Histogram) {
        let mut cum = 0u64;
        for (lo, count) in h.buckets() {
            cum += count;
            // Bucket [2^(i-1), 2^i) has inclusive upper bound 2^i - 1;
            // the 0 bucket holds only 0.
            let le = if lo == 0 { 0 } else { lo.saturating_mul(2) - 1 };
            let le = le.to_string();
            let mut ls: Vec<(&str, &str)> = labels.to_vec();
            ls.push(("le", &le));
            self.sample(&format!("{name}_bucket"), &ls, cum);
        }
        let mut ls: Vec<(&str, &str)> = labels.to_vec();
        ls.push(("le", "+Inf"));
        self.sample(&format!("{name}_bucket"), &ls, h.count());
        self.sample(&format!("{name}_sum"), labels, h.sum());
        self.sample(&format!("{name}_count"), labels, h.count());
    }

    /// The payload rendered so far.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Renders the standard OPEC metric families from settled aggregates.
///
/// `shed_events` is the total number of events shed by bounded ring
/// buffers feeding these aggregates — nonzero means the exported
/// timeline (not the aggregates, which fold online) is incomplete, and
/// scrapers alert on it.
pub fn render(m: &Metrics, shed_events: u64) -> String {
    let mut w = PromWriter::new();

    w.family("opec_events_seen_total", "counter", "Events folded into the aggregates.");
    w.sample("opec_events_seen_total", &[], m.events_seen);
    w.family(
        "opec_ring_shed_events_total",
        "counter",
        "Events shed by bounded ring buffers; nonzero means the raw timeline is incomplete.",
    );
    w.sample("opec_ring_shed_events_total", &[], shed_events);

    w.family("opec_switches_total", "counter", "Successful operation switches by direction.");
    let (mut enters, mut exits) = (0u64, 0u64);
    let (mut traps, mut quarantines) = (0u64, 0u64);
    let (mut virt_hits, mut virt_evictions, mut virt_misses) = (0u64, 0u64, 0u64);
    let (mut emu_loads, mut emu_stores) = (0u64, 0u64);
    let mut enter_hist = Histogram::new();
    let mut exit_hist = Histogram::new();
    for (_, op) in m.ops() {
        enters += op.enters;
        exits += op.exits;
        traps += op.traps;
        quarantines += op.quarantines;
        virt_hits += op.virt_hits;
        virt_evictions += op.virt_evictions;
        virt_misses += op.virt_misses;
        emu_loads += op.emulated_loads;
        emu_stores += op.emulated_stores;
        enter_hist.merge(&op.enter_cycles);
        exit_hist.merge(&op.exit_cycles);
    }
    w.sample("opec_switches_total", &[("dir", "enter")], enters);
    w.sample("opec_switches_total", &[("dir", "exit")], exits);

    w.family(
        "opec_switch_latency_cycles",
        "histogram",
        "Operation-switch latency in guest cycles, merged across operations.",
    );
    w.histogram("opec_switch_latency_cycles", &[("dir", "enter")], &enter_hist);
    w.histogram("opec_switch_latency_cycles", &[("dir", "exit")], &exit_hist);

    w.family("opec_op_switches_total", "counter", "Successful enter switches per operation.");
    for (id, op) in m.ops() {
        let id = id.to_string();
        w.sample("opec_op_switches_total", &[("op", &id)], op.enters);
    }
    w.family(
        "opec_op_insts_retired_total",
        "counter",
        "Instructions retired while the operation was innermost.",
    );
    for (id, op) in m.ops() {
        let id = id.to_string();
        w.sample("opec_op_insts_retired_total", &[("op", &id)], op.insts_retired);
    }

    w.family("opec_insts_retired_total", "counter", "Total instructions retired.");
    w.sample("opec_insts_retired_total", &[], m.total_insts);
    w.family("opec_traps_total", "counter", "Trap verdicts issued.");
    w.sample("opec_traps_total", &[], traps);
    w.family("opec_quarantines_total", "counter", "Operations quarantined.");
    w.sample("opec_quarantines_total", &[], quarantines);

    w.family(
        "opec_virt_faults_total",
        "counter",
        "Peripheral-window virtualization faults by outcome.",
    );
    w.sample("opec_virt_faults_total", &[("outcome", "hit")], virt_hits);
    w.sample("opec_virt_faults_total", &[("outcome", "evict")], virt_evictions);
    w.sample("opec_virt_faults_total", &[("outcome", "miss")], virt_misses);

    w.family("opec_emulated_accesses_total", "counter", "Emulated core-peripheral accesses.");
    w.sample("opec_emulated_accesses_total", &[("access", "load")], emu_loads);
    w.sample("opec_emulated_accesses_total", &[("access", "store")], emu_stores);

    w.family("opec_prot_loads_total", "counter", "Full protection-unit reprogrammings.");
    w.sample("opec_prot_loads_total", &[("unit", "mpu")], m.mpu_loads);
    w.sample("opec_prot_loads_total", &[("unit", "pmp")], m.pmp_loads);
    w.family("opec_prot_register_writes_total", "counter", "Protection registers written.");
    w.sample("opec_prot_register_writes_total", &[("unit", "mpu")], m.mpu_region_writes);
    w.sample("opec_prot_register_writes_total", &[("unit", "pmp")], m.pmp_entry_writes);

    w.family("opec_injections_total", "counter", "Fault-injector actions observed.");
    w.sample("opec_injections_total", &[], m.injections);
    w.family("opec_oracle_divergences_total", "counter", "Differential-oracle divergences.");
    w.sample("opec_oracle_divergences_total", &[], m.oracle_divergences);

    w.family("opec_jobs_total", "counter", "Campaign jobs by supervision outcome.");
    w.sample("opec_jobs_total", &[("outcome", "completed")], m.jobs_completed);
    w.sample("opec_jobs_total", &[("outcome", "fuel_exhausted")], m.jobs_fuel_exhausted);
    w.sample("opec_jobs_total", &[("outcome", "timed_out")], m.jobs_timed_out);
    w.sample("opec_jobs_total", &[("outcome", "panicked")], m.jobs_panicked);
    w.sample("opec_jobs_total", &[("outcome", "retried")], m.jobs_retried);
    w.sample("opec_jobs_total", &[("outcome", "resumed")], m.jobs_resumed);

    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_pow2_bounds() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 9] {
            h.record(v);
        }
        let mut w = PromWriter::new();
        w.histogram("x", &[], &h);
        let text = w.finish();
        // 0 → le="0"; 1 → le="1"; 2,3 → le="3"; 9 → le="15".
        assert!(text.contains("x_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("x_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("x_bucket{le=\"3\"} 4\n"));
        assert!(text.contains("x_bucket{le=\"15\"} 5\n"));
        assert!(text.contains("x_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("x_sum 15\n"));
        assert!(text.contains("x_count 5\n"));
    }

    #[test]
    fn render_is_nonempty_for_empty_metrics() {
        let text = render(&Metrics::new(), 0);
        assert!(text.contains("# TYPE opec_events_seen_total counter"));
        assert!(text.contains("opec_ring_shed_events_total 0"));
    }
}
