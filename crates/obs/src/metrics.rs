//! Online per-operation metric aggregation.
//!
//! The aggregator is itself a [`Sink`]: it folds the event stream into
//! per-op counters and latency histograms as events arrive, so metrics
//! exist even when the raw ring has shed its oldest events.

use std::collections::BTreeMap;

use crate::event::{Access, Dir, Event, JobEventKind, OpId, Stamped};
use crate::ring::RingBuffer;
use crate::sink::Sink;

const HIST_BUCKETS: usize = 65;

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket 0 holds the value 0; bucket *i* (1..=64) holds values whose
/// highest set bit is *i − 1*, i.e. the range `[2^(i-1), 2^i)`. Exact
/// count/sum/min/max ride along, so means are exact and only quantiles
/// are bucket-resolution approximations.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram { counts: [0; HIST_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Lowest value landing in bucket `i`.
fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self`. Merging histograms built from two
    /// sample sets equals building one from their concatenation.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in 0..=1): the upper bound of the
    /// first bucket whose cumulative count reaches `q * count`,
    /// clamped to the exact max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let hi = if i >= 64 { u64::MAX } else { bucket_lo(i + 1) - 1 };
                return hi.min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(bucket_lower_bound, count)`, ascending.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lo(i), c))
            .collect()
    }
}

impl core::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Histogram {{ count: {}, sum: {}, min: {}, max: {} }}",
            self.count,
            self.sum,
            self.min(),
            self.max
        )
    }
}

/// Aggregates for one operation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpMetrics {
    /// Successful enter switches into this operation.
    pub enters: u64,
    /// Successful exit switches out of this operation.
    pub exits: u64,
    /// Enter-switch latency in cycles (SVC entry to return, supervisor
    /// work included), one sample per attempted switch.
    pub enter_cycles: Histogram,
    /// Exit-switch latency in cycles.
    pub exit_cycles: Histogram,
    /// Peripheral-window faults resolved by MPU virtualization.
    pub virt_hits: u64,
    /// Window loads that displaced another window from its slot.
    pub virt_evictions: u64,
    /// Peripheral faults denied by policy.
    pub virt_misses: u64,
    /// Emulated core-peripheral loads.
    pub emulated_loads: u64,
    /// Emulated core-peripheral stores.
    pub emulated_stores: u64,
    /// Instructions retired while this operation was innermost.
    pub insts_retired: u64,
    /// Function bodies entered while this operation was innermost.
    pub func_enters: u64,
    /// Trap verdicts issued against this operation.
    pub traps: u64,
    /// Times this operation was quarantined.
    pub quarantines: u64,
    /// ACES only: switches that lifted this compartment to the
    /// privileged level.
    pub priv_lifts: u64,
}

impl OpMetrics {
    /// Total cycles spent in switch SVCs for this operation.
    pub fn switch_cycles(&self) -> u64 {
        self.enter_cycles.sum() + self.exit_cycles.sum()
    }

    /// Folds `other` into `self`: counters add, histograms merge.
    pub fn merge(&mut self, other: &OpMetrics) {
        self.enters += other.enters;
        self.exits += other.exits;
        self.enter_cycles.merge(&other.enter_cycles);
        self.exit_cycles.merge(&other.exit_cycles);
        self.virt_hits += other.virt_hits;
        self.virt_evictions += other.virt_evictions;
        self.virt_misses += other.virt_misses;
        self.emulated_loads += other.emulated_loads;
        self.emulated_stores += other.emulated_stores;
        self.insts_retired += other.insts_retired;
        self.func_enters += other.func_enters;
        self.traps += other.traps;
        self.quarantines += other.quarantines;
        self.priv_lifts += other.priv_lifts;
    }
}

/// Online per-operation aggregator.
///
/// Feed it the event stream (it implements [`Sink`]) and read the
/// aggregates after [`Event::RunEnd`]. Instruction attribution follows
/// the operation stack: retired-instruction deltas carried on
/// [`Event::SwitchBegin`]/[`Event::RunEnd`] are credited to the
/// operation that was innermost since the previous snapshot.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    per_op: BTreeMap<OpId, OpMetrics>,
    /// Every event observed (including ones the ring may have shed).
    pub events_seen: u64,
    /// Full MPU reprogrammings (per-switch region reloads).
    pub mpu_loads: u64,
    /// Individual MPU region register writes.
    pub mpu_region_writes: u64,
    /// Full PMP reprogrammings (per-switch entry-file reloads).
    pub pmp_loads: u64,
    /// Individual PMP entry (cfg + addr pair) writes.
    pub pmp_entry_writes: u64,
    /// Injector actions observed.
    pub injections: u64,
    /// Differential-oracle divergences observed (any kind).
    pub oracle_divergences: u64,
    /// Final retired-instruction count (set by [`Event::RunEnd`]).
    pub total_insts: u64,
    /// Timestamp of [`Event::RunEnd`] (the run's cycle count).
    pub run_cycles: u64,
    /// Campaign jobs that ran to completion.
    pub jobs_completed: u64,
    /// Campaign jobs that exhausted their instruction budget.
    pub jobs_fuel_exhausted: u64,
    /// Campaign jobs stopped by the wall-clock watchdog.
    pub jobs_timed_out: u64,
    /// Campaign jobs whose closure panicked (contained, not fatal).
    pub jobs_panicked: u64,
    /// Retry attempts issued for failed campaign jobs.
    pub jobs_retried: u64,
    /// Campaign jobs skipped on resume (outcome already journaled).
    pub jobs_resumed: u64,
    // Attribution state.
    op_stack: Vec<OpId>,
    open_switch: Vec<u64>,
    last_insts: u64,
}

impl Metrics {
    /// An empty aggregator.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// The aggregate for `op`, if any event touched it.
    pub fn op(&self, op: OpId) -> Option<&OpMetrics> {
        self.per_op.get(&op)
    }

    /// All per-op aggregates, ascending by op id.
    pub fn ops(&self) -> impl Iterator<Item = (OpId, &OpMetrics)> {
        self.per_op.iter().map(|(k, v)| (*k, v))
    }

    /// Total successful switches (enters) across all operations.
    pub fn total_switches(&self) -> u64 {
        self.per_op.values().map(|m| m.enters).sum()
    }

    /// Total cycles spent in switch SVCs across all operations.
    pub fn total_switch_cycles(&self) -> u64 {
        self.per_op.values().map(|m| m.switch_cycles()).sum()
    }

    fn current_op(&self) -> OpId {
        self.op_stack.last().copied().unwrap_or(0)
    }

    fn entry(&mut self, op: OpId) -> &mut OpMetrics {
        self.per_op.entry(op).or_default()
    }

    /// Folds the settled aggregates of `other` into `self`: per-op
    /// entries and global counters add, histograms merge,
    /// `total_insts` accumulates (fleet devices each contribute their
    /// own run), and `run_cycles` takes the max.
    ///
    /// Merge is for shard aggregation — counters-only, order
    /// independent. The attribution state (op stack, open switches) of
    /// `self` is left alone and `other`'s is ignored; merge shards
    /// whose event streams are settled (after `RunEnd` or between
    /// quanta), not mid-switch.
    pub fn merge(&mut self, other: &Metrics) {
        for (op, m) in &other.per_op {
            self.per_op.entry(*op).or_default().merge(m);
        }
        self.events_seen += other.events_seen;
        self.mpu_loads += other.mpu_loads;
        self.mpu_region_writes += other.mpu_region_writes;
        self.pmp_loads += other.pmp_loads;
        self.pmp_entry_writes += other.pmp_entry_writes;
        self.injections += other.injections;
        self.oracle_divergences += other.oracle_divergences;
        self.total_insts += other.total_insts;
        self.run_cycles = self.run_cycles.max(other.run_cycles);
        self.jobs_completed += other.jobs_completed;
        self.jobs_fuel_exhausted += other.jobs_fuel_exhausted;
        self.jobs_timed_out += other.jobs_timed_out;
        self.jobs_panicked += other.jobs_panicked;
        self.jobs_retried += other.jobs_retried;
        self.jobs_resumed += other.jobs_resumed;
    }

    fn credit_insts(&mut self, insts: u64) {
        let delta = insts.saturating_sub(self.last_insts);
        self.last_insts = insts;
        let op = self.current_op();
        self.entry(op).insts_retired += delta;
    }

    /// Folds one event into the aggregates.
    pub fn observe(&mut self, ev: Stamped) {
        self.events_seen += 1;
        match ev.ev {
            Event::SwitchBegin { insts, .. } => {
                self.credit_insts(insts);
                self.open_switch.push(ev.t);
            }
            Event::SwitchEnd { dir, from, to, ok, .. } => {
                let began = self.open_switch.pop();
                let subject = match dir {
                    Dir::Enter => to,
                    Dir::Exit => from,
                };
                if let Some(t0) = began {
                    let hist = match dir {
                        Dir::Enter => &mut self.entry(subject).enter_cycles,
                        Dir::Exit => &mut self.entry(subject).exit_cycles,
                    };
                    hist.record(ev.t.saturating_sub(t0));
                }
                if ok {
                    match dir {
                        Dir::Enter => {
                            self.entry(to).enters += 1;
                            self.op_stack.push(to);
                        }
                        Dir::Exit => {
                            self.entry(from).exits += 1;
                            if self.op_stack.last() == Some(&from) {
                                self.op_stack.pop();
                            }
                        }
                    }
                }
            }
            Event::FuncEnter { .. } => {
                let op = self.current_op();
                self.entry(op).func_enters += 1;
            }
            Event::FuncExit { .. } => {}
            Event::VirtHit { op, .. } => self.entry(op).virt_hits += 1,
            Event::VirtEvict { op, .. } => self.entry(op).virt_evictions += 1,
            Event::VirtMiss { op, .. } => self.entry(op).virt_misses += 1,
            Event::Emulated { op, access, .. } => match access {
                Access::Load => self.entry(op).emulated_loads += 1,
                Access::Store => self.entry(op).emulated_stores += 1,
            },
            Event::MpuRegionWrite { .. } => self.mpu_region_writes += 1,
            Event::MpuLoad { .. } => self.mpu_loads += 1,
            Event::PmpEntryWrite { .. } => self.pmp_entry_writes += 1,
            Event::PmpLoad { .. } => self.pmp_loads += 1,
            Event::CompartmentMode { comp, privileged } => {
                if privileged {
                    self.entry(comp).priv_lifts += 1;
                }
            }
            Event::Inject { .. } => self.injections += 1,
            Event::OracleDivergence { .. } => self.oracle_divergences += 1,
            // Probe-cell coverage is a fuzzer signal, not a metric:
            // the sweep runs the same cells every switch, so counting
            // them would only restate `switches * matrix_size`.
            Event::OracleProbe { .. } => {}
            Event::Trap { op, .. } => self.entry(op).traps += 1,
            Event::Quarantine { op } => {
                self.entry(op).quarantines += 1;
                if self.op_stack.last() == Some(&op) {
                    self.op_stack.pop();
                }
            }
            Event::RunEnd { insts } => {
                self.credit_insts(insts);
                self.total_insts = insts;
                self.run_cycles = ev.t;
            }
            Event::Job { kind, .. } => match kind {
                JobEventKind::Completed => self.jobs_completed += 1,
                JobEventKind::FuelExhausted => self.jobs_fuel_exhausted += 1,
                JobEventKind::TimedOut => self.jobs_timed_out += 1,
                JobEventKind::Panicked => self.jobs_panicked += 1,
                JobEventKind::Retried => self.jobs_retried += 1,
                JobEventKind::Resumed => self.jobs_resumed += 1,
            },
        }
    }
}

impl Sink for Metrics {
    fn record(&mut self, ev: Stamped) {
        self.observe(ev);
    }
}

/// The standard sink: raw ring + online aggregates in one.
///
/// Function enter/exit events dominate the stream by an order of
/// magnitude but only matter to timeline exports, so they are kept out
/// of the ring unless [`Recorder::with_funcs`] opts in; the aggregator
/// still counts them.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    /// The bounded raw stream.
    pub ring: RingBuffer,
    /// The online aggregates.
    pub metrics: Metrics,
    /// Whether `FuncEnter`/`FuncExit` events enter the ring.
    pub record_funcs: bool,
}

impl Recorder {
    /// A recorder with the default ring capacity, functions excluded.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// A recorder with an explicit ring capacity.
    pub fn with_capacity(capacity: usize) -> Recorder {
        Recorder { ring: RingBuffer::new(capacity), ..Recorder::default() }
    }

    /// Opts function enter/exit events into the ring.
    pub fn with_funcs(mut self) -> Recorder {
        self.record_funcs = true;
        self
    }
}

impl Sink for Recorder {
    fn record(&mut self, ev: Stamped) {
        self.metrics.observe(ev);
        if !self.record_funcs && matches!(ev.ev, Event::FuncEnter { .. } | Event::FuncExit { .. }) {
            return;
        }
        self.ring.push(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Dir, Event};

    fn st(t: u64, ev: Event) -> Stamped {
        Stamped { t, ev }
    }

    /// A hand-written two-operation stream:
    ///
    /// ```text
    /// t=0    main runs (op 0), 10 insts
    /// t=100  enter op1 begins (insts=10) .. t=130 ok   (30 cycles)
    /// t=140  func 7 enters
    /// t=200  virt hit, emulated load (op 1)
    /// t=300  exit op1 begins (insts=50) .. t=320 ok    (20 cycles)
    /// t=400  enter op2 begins (insts=60) .. t=460 ok   (60 cycles)
    /// t=500  exit op2 begins (insts=90) .. t=540 ok    (40 cycles)
    /// t=600  run ends at insts=100
    /// ```
    fn two_op_stream() -> Vec<Stamped> {
        vec![
            st(100, Event::SwitchBegin { dir: Dir::Enter, from: 0, to: 1, entry: 7, insts: 10 }),
            st(130, Event::SwitchEnd { dir: Dir::Enter, from: 0, to: 1, entry: 7, ok: true }),
            st(140, Event::FuncEnter { func: 7 }),
            st(200, Event::VirtHit { op: 1, address: 0x4000_0000, window: 0, slot: 4 }),
            st(
                200,
                Event::Emulated {
                    op: 1,
                    address: 0xE000_1004,
                    access: Access::Load,
                    size: 4,
                    rt: 0,
                    rn: 6,
                },
            ),
            st(290, Event::FuncExit { func: 7 }),
            st(300, Event::SwitchBegin { dir: Dir::Exit, from: 1, to: 0, entry: 7, insts: 50 }),
            st(320, Event::SwitchEnd { dir: Dir::Exit, from: 1, to: 0, entry: 7, ok: true }),
            st(400, Event::SwitchBegin { dir: Dir::Enter, from: 0, to: 2, entry: 9, insts: 60 }),
            st(460, Event::SwitchEnd { dir: Dir::Enter, from: 0, to: 2, entry: 9, ok: true }),
            st(500, Event::SwitchBegin { dir: Dir::Exit, from: 2, to: 0, entry: 9, insts: 90 }),
            st(540, Event::SwitchEnd { dir: Dir::Exit, from: 2, to: 0, entry: 9, ok: true }),
            st(600, Event::RunEnd { insts: 100 }),
        ]
    }

    #[test]
    fn aggregates_match_hand_counts() {
        let mut m = Metrics::new();
        for ev in two_op_stream() {
            m.observe(ev);
        }
        // Op 1: one enter (30 cycles), one exit (20 cycles), one virt
        // hit, one emulated load, 40 insts (10..50), one func enter.
        let op1 = m.op(1).unwrap();
        assert_eq!(op1.enters, 1);
        assert_eq!(op1.exits, 1);
        assert_eq!(op1.enter_cycles.sum(), 30);
        assert_eq!(op1.exit_cycles.sum(), 20);
        assert_eq!(op1.virt_hits, 1);
        assert_eq!(op1.emulated_loads, 1);
        assert_eq!(op1.emulated_stores, 0);
        assert_eq!(op1.insts_retired, 40);
        assert_eq!(op1.func_enters, 1);
        assert_eq!(op1.switch_cycles(), 50);
        // Op 2: one enter (60), one exit (40), 30 insts (60..90).
        let op2 = m.op(2).unwrap();
        assert_eq!(op2.enters, 1);
        assert_eq!(op2.enter_cycles.sum(), 60);
        assert_eq!(op2.exit_cycles.sum(), 40);
        assert_eq!(op2.insts_retired, 30);
        // Op 0 (main): everything else — 10 before op1, 10 between,
        // 10 after op2 = 30 insts.
        let op0 = m.op(0).unwrap();
        assert_eq!(op0.insts_retired, 30);
        assert_eq!(m.total_insts, 100);
        assert_eq!(m.run_cycles, 600);
        assert_eq!(m.total_switches(), 2);
        assert_eq!(m.total_switch_cycles(), 150);
    }

    #[test]
    fn failed_switch_counts_latency_but_not_entry() {
        let mut m = Metrics::new();
        m.observe(st(
            10,
            Event::SwitchBegin { dir: Dir::Enter, from: 0, to: 5, entry: 1, insts: 4 },
        ));
        m.observe(st(
            25,
            Event::SwitchEnd { dir: Dir::Enter, from: 0, to: 5, entry: 1, ok: false },
        ));
        m.observe(st(30, Event::RunEnd { insts: 4 }));
        let op5 = m.op(5).unwrap();
        assert_eq!(op5.enters, 0);
        assert_eq!(op5.enter_cycles.count(), 1);
        assert_eq!(op5.enter_cycles.sum(), 15);
        // Nothing was pushed on the op stack.
        assert_eq!(m.op(0).unwrap().insts_retired, 4);
    }

    #[test]
    fn quarantine_pops_the_op_stack() {
        let mut m = Metrics::new();
        m.observe(st(
            10,
            Event::SwitchBegin { dir: Dir::Enter, from: 0, to: 3, entry: 1, insts: 0 },
        ));
        m.observe(st(20, Event::SwitchEnd { dir: Dir::Enter, from: 0, to: 3, entry: 1, ok: true }));
        m.observe(st(
            50,
            Event::Trap {
                op: 3,
                kind: crate::event::TrapKind::PolicyDeniedMem,
                address: 0x4000_0000,
            },
        ));
        m.observe(st(60, Event::Quarantine { op: 3 }));
        m.observe(st(90, Event::RunEnd { insts: 40 }));
        let op3 = m.op(3).unwrap();
        assert_eq!(op3.traps, 1);
        assert_eq!(op3.quarantines, 1);
        // Post-quarantine instructions belong to main again.
        assert_eq!(op3.insts_retired, 0);
        assert_eq!(m.op(0).unwrap().insts_retired, 40);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1111);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.quantile(1.0), 1000);
        assert!(h.quantile(0.5) <= 4);
        let buckets = h.buckets();
        assert_eq!(buckets[0], (0, 1)); // the single 0
        assert_eq!(buckets[1], (1, 2)); // two 1s
    }

    #[test]
    fn histogram_merge_equals_concat() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in [5u64, 9, 17] {
            a.record(v);
            whole.record(v);
        }
        for v in [0u64, 1_000_000] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    proptest::proptest! {
        /// Merging two histograms is indistinguishable from recording
        /// both value streams into one — counts, sums, extrema, bucket
        /// shapes, and therefore every derived quantile.
        #[test]
        fn histogram_merge_is_concat(
            xs in proptest::collection::vec(0u64..5_000_000, 0..64),
            ys in proptest::collection::vec(0u64..5_000_000, 0..64),
        ) {
            let mut a = Histogram::new();
            let mut b = Histogram::new();
            let mut whole = Histogram::new();
            for &v in &xs {
                a.record(v);
                whole.record(v);
            }
            for &v in &ys {
                b.record(v);
                whole.record(v);
            }
            a.merge(&b);
            proptest::prop_assert_eq!(&a, &whole);
            proptest::prop_assert_eq!(a.quantile(0.5), whole.quantile(0.5));
            proptest::prop_assert_eq!(a.quantile(0.99), whole.quantile(0.99));
        }
    }

    #[test]
    fn recorder_excludes_funcs_from_ring_by_default() {
        let mut r = Recorder::with_capacity(16);
        r.record(st(1, Event::FuncEnter { func: 1 }));
        r.record(st(2, Event::FuncExit { func: 1 }));
        r.record(st(3, Event::RunEnd { insts: 2 }));
        assert_eq!(r.ring.len(), 1);
        assert_eq!(r.metrics.op(0).unwrap().func_enters, 1);
        let mut rf = Recorder::with_capacity(16).with_funcs();
        rf.record(st(1, Event::FuncEnter { func: 1 }));
        assert_eq!(rf.ring.len(), 1);
    }
}
