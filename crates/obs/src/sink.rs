//! The sink trait and the cloneable [`Obs`] handle.
//!
//! `Obs` is the only type the instrumented components (VM, monitor,
//! MPU, ACES runtime) know about. A disabled handle is a `None` — every
//! emission starts with one branch on that option and the
//! event-constructing closure is never called, which is what makes the
//! subsystem zero-cost when observability is off.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::event::{Event, Stamped};

/// A consumer of stamped events.
///
/// Implementations decide what to keep: the ring-buffer recorder keeps
/// the raw stream, the metrics aggregator folds events into per-op
/// counters online, the VM's `Trace` keeps only what the ET metric
/// needs.
pub trait Sink {
    /// Receives one event. Called synchronously from the emit site.
    fn record(&mut self, ev: Stamped);
}

/// A shared, type-erased sink handle.
pub type SinkHandle = Rc<RefCell<dyn Sink>>;

struct Shared {
    /// Last timestamp passed to [`Obs::emit_at`]/[`Obs::set_now`];
    /// components without clock access (the MPU model) emit at this
    /// time.
    now: Cell<u64>,
    sinks: Vec<SinkHandle>,
}

/// A cloneable observability handle; all clones fan out to the same
/// sinks.
///
/// The handle is deliberately `!Send`: event emission is synchronous
/// and single-threaded, like the VM it instruments. Extract plain data
/// out of the sinks (clone the recorder) before crossing threads.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Rc<Shared>>,
}

impl Obs {
    /// A disabled handle: every emission is a single `None` check.
    pub fn disabled() -> Obs {
        Obs::default()
    }

    /// A handle fanning out to `sinks`.
    pub fn new(sinks: Vec<SinkHandle>) -> Obs {
        Obs { inner: Some(Rc::new(Shared { now: Cell::new(0), sinks })) }
    }

    /// A handle with a single sink (keep your own `Rc` to read the sink
    /// back after the run).
    pub fn single<S: Sink + 'static>(sink: Rc<RefCell<S>>) -> Obs {
        let handle: SinkHandle = sink;
        Obs::new(vec![handle])
    }

    /// Whether events are being consumed.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The timestamp of the most recent emission.
    pub fn now(&self) -> u64 {
        self.inner.as_ref().map(|s| s.now.get()).unwrap_or(0)
    }

    /// Advances the emission clock without emitting (for components
    /// that emit via [`Obs::emit`] later, at a time they cannot see).
    pub fn set_now(&self, t: u64) {
        if let Some(s) = &self.inner {
            s.now.set(t);
        }
    }

    /// Emits at an explicit timestamp. The closure runs only when a
    /// sink is attached.
    pub fn emit_at(&self, t: u64, ev: impl FnOnce() -> Event) {
        if let Some(s) = &self.inner {
            s.now.set(t);
            let stamped = Stamped { t, ev: ev() };
            for sink in &s.sinks {
                sink.borrow_mut().record(stamped);
            }
        }
    }

    /// Emits at the current emission clock (see [`Obs::set_now`]).
    pub fn emit(&self, ev: impl FnOnce() -> Event) {
        if let Some(s) = &self.inner {
            let stamped = Stamped { t: s.now.get(), ev: ev() };
            for sink in &s.sinks {
                sink.borrow_mut().record(stamped);
            }
        }
    }
}

impl core::fmt::Debug for Obs {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match &self.inner {
            None => f.write_str("Obs(disabled)"),
            Some(s) => write!(f, "Obs({} sinks)", s.sinks.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Count(Vec<Stamped>);
    impl Sink for Count {
        fn record(&mut self, ev: Stamped) {
            self.0.push(ev);
        }
    }

    #[test]
    fn disabled_never_calls_closure() {
        let obs = Obs::disabled();
        obs.emit_at(7, || panic!("closure must not run when disabled"));
        obs.emit(|| panic!("closure must not run when disabled"));
        assert!(!obs.enabled());
    }

    #[test]
    fn clones_share_sinks_and_clock() {
        let sink = Rc::new(RefCell::new(Count::default()));
        let obs = Obs::single(sink.clone());
        let clone = obs.clone();
        obs.emit_at(10, || Event::RunEnd { insts: 1 });
        // The clone emits at the clock the original set.
        clone.emit(|| Event::RunEnd { insts: 2 });
        let seen = &sink.borrow().0;
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].t, 10);
        assert_eq!(seen[1].t, 10);
    }

    #[test]
    fn fan_out_reaches_every_sink() {
        let a = Rc::new(RefCell::new(Count::default()));
        let b = Rc::new(RefCell::new(Count::default()));
        let obs = Obs::new(vec![a.clone() as SinkHandle, b.clone() as SinkHandle]);
        obs.emit_at(1, || Event::Quarantine { op: 3 });
        assert_eq!(a.borrow().0.len(), 1);
        assert_eq!(b.borrow().0.len(), 1);
    }
}
