//! Exporters: Chrome `trace_event` JSON and metrics JSON.
//!
//! Both are hand-written JSON (the workspace carries no serde). The
//! chrome format targets `chrome://tracing` / Perfetto: operation
//! activations and switch SVCs become duration (`B`/`E`) pairs on one
//! track, everything else becomes instant (`i`) events. Timestamps are
//! the simulated DWT cycle counts, exported as integer `ts` values —
//! the viewer's time unit reads "µs" but means "cycles" here.

use crate::event::{Access, Dir, Event, Stamped};
use crate::metrics::{Histogram, Metrics};

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_trace_record(
    out: &mut String,
    first: &mut bool,
    ph: char,
    name: &str,
    cat: &str,
    ts: u64,
    args: &str,
) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str(&format!(
        "\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":1",
        esc(name),
        cat,
        ph,
        ts
    ));
    if ph == 'i' {
        out.push_str(",\"s\":\"t\"");
    }
    if !args.is_empty() {
        out.push_str(",\"args\":{");
        out.push_str(args);
        out.push('}');
    }
    out.push('}');
}

/// Renders a stamped event stream as Chrome `trace_event` JSON.
///
/// `label` names the process in the viewer (e.g. `"PinLock/opec"`).
/// Spans open and close strictly stacked; a [`Event::Quarantine`] or
/// [`Event::RunEnd`] closes whatever the unwind skipped, so the output
/// always balances and loads cleanly in Perfetto even for aborted runs.
pub fn chrome_trace(events: &[Stamped], label: &str) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    push_trace_record(
        &mut out,
        &mut first,
        'M',
        "process_name",
        "__metadata",
        0,
        &format!("\"name\":\"{}\"", esc(label)),
    );
    // Stack of open duration-span names, innermost last.
    let mut open: Vec<String> = Vec::new();
    let begin = |out: &mut String,
                 first: &mut bool,
                 open: &mut Vec<String>,
                 name: String,
                 cat,
                 ts,
                 args: &str| {
        push_trace_record(out, first, 'B', &name, cat, ts, args);
        open.push(name);
    };
    // Closes spans down to and including `name`; no-op if not open.
    let close_to =
        |out: &mut String, first: &mut bool, open: &mut Vec<String>, name: &str, ts: u64| {
            if !open.iter().any(|n| n == name) {
                return;
            }
            while let Some(top) = open.pop() {
                push_trace_record(out, first, 'E', &top, "", ts, "");
                if top == name {
                    break;
                }
            }
        };
    for ev in events {
        let ts = ev.t;
        match ev.ev {
            Event::SwitchBegin { dir, from, to, entry, .. } => {
                let name = match dir {
                    Dir::Enter => format!("switch enter op{to}"),
                    Dir::Exit => format!("switch exit op{from}"),
                };
                // The exit SVC runs as the operation's last act: close
                // the op span after the SVC span, so close nothing yet.
                let args = format!("\"from\":{from},\"to\":{to},\"entry\":{entry}");
                begin(&mut out, &mut first, &mut open, name, "switch", ts, &args);
            }
            Event::SwitchEnd { dir, from, to, ok, .. } => {
                let name = match dir {
                    Dir::Enter => format!("switch enter op{to}"),
                    Dir::Exit => format!("switch exit op{from}"),
                };
                close_to(&mut out, &mut first, &mut open, &name, ts);
                match dir {
                    Dir::Enter if ok => {
                        begin(&mut out, &mut first, &mut open, format!("op{to}"), "op", ts, "");
                    }
                    Dir::Exit if ok => {
                        close_to(&mut out, &mut first, &mut open, &format!("op{from}"), ts);
                    }
                    _ => {}
                }
            }
            Event::FuncEnter { func } => {
                begin(&mut out, &mut first, &mut open, format!("f{func}"), "func", ts, "");
            }
            Event::FuncExit { func } => {
                close_to(&mut out, &mut first, &mut open, &format!("f{func}"), ts);
            }
            Event::VirtHit { op, address, window, slot } => {
                let args = format!(
                    "\"op\":{op},\"address\":\"{address:#010x}\",\"window\":{window},\"slot\":{slot}"
                );
                push_trace_record(&mut out, &mut first, 'i', "virt hit", "virt", ts, &args);
            }
            Event::VirtEvict { op, slot, old_window, new_window } => {
                let args = format!(
                    "\"op\":{op},\"slot\":{slot},\"old\":{old_window},\"new\":{new_window}"
                );
                push_trace_record(&mut out, &mut first, 'i', "virt evict", "virt", ts, &args);
            }
            Event::VirtMiss { op, address, write } => {
                let args = format!("\"op\":{op},\"address\":\"{address:#010x}\",\"write\":{write}");
                push_trace_record(&mut out, &mut first, 'i', "virt miss", "virt", ts, &args);
            }
            Event::Emulated { op, address, access, size, rt, rn } => {
                let dir = match access {
                    Access::Load => "load",
                    Access::Store => "store",
                };
                let args = format!(
                    "\"op\":{op},\"address\":\"{address:#010x}\",\"dir\":\"{dir}\",\"size\":{size},\"rt\":{rt},\"rn\":{rn}"
                );
                push_trace_record(&mut out, &mut first, 'i', "emulated", "emul", ts, &args);
            }
            Event::MpuRegionWrite { slot, base, size, srd } => {
                let args = format!(
                    "\"slot\":{slot},\"base\":\"{base:#010x}\",\"size\":{size},\"srd\":{srd}"
                );
                push_trace_record(&mut out, &mut first, 'i', "mpu region", "mpu", ts, &args);
            }
            Event::MpuLoad { regions } => {
                let args = format!("\"regions\":{regions}");
                push_trace_record(&mut out, &mut first, 'i', "mpu load", "mpu", ts, &args);
            }
            Event::PmpEntryWrite { entry, addr, cfg } => {
                let args = format!("\"entry\":{entry},\"addr\":\"{addr:#010x}\",\"cfg\":{cfg}");
                push_trace_record(&mut out, &mut first, 'i', "pmp entry", "pmp", ts, &args);
            }
            Event::PmpLoad { entries } => {
                let args = format!("\"entries\":{entries}");
                push_trace_record(&mut out, &mut first, 'i', "pmp load", "pmp", ts, &args);
            }
            Event::CompartmentMode { comp, privileged } => {
                let args = format!("\"comp\":{comp},\"privileged\":{privileged}");
                push_trace_record(&mut out, &mut first, 'i', "compartment", "aces", ts, &args);
            }
            Event::Inject { kind, verdict } => {
                let args = format!("\"kind\":\"{kind:?}\",\"verdict\":\"{verdict:?}\"");
                push_trace_record(&mut out, &mut first, 'i', "inject", "inject", ts, &args);
            }
            Event::Trap { op, kind, address } => {
                let args =
                    format!("\"op\":{op},\"kind\":\"{kind:?}\",\"address\":\"{address:#010x}\"");
                push_trace_record(&mut out, &mut first, 'i', "trap", "trap", ts, &args);
            }
            Event::Quarantine { op } => {
                // The unwind killed every frame of the operation: close
                // any funcs still open inside it, then the op itself.
                close_to(&mut out, &mut first, &mut open, &format!("op{op}"), ts);
                let args = format!("\"op\":{op}");
                push_trace_record(&mut out, &mut first, 'i', "quarantine", "trap", ts, &args);
            }
            Event::OracleDivergence { op, kind, layer, address } => {
                let args = format!(
                    "\"op\":{op},\"kind\":\"{kind:?}\",\"layer\":\"{layer:?}\",\"address\":\"{address:#010x}\""
                );
                push_trace_record(
                    &mut out,
                    &mut first,
                    'i',
                    "oracle divergence",
                    "oracle",
                    ts,
                    &args,
                );
            }
            Event::OracleProbe { op, cell, allowed } => {
                let args = format!("\"op\":{op},\"cell\":{cell},\"allowed\":{allowed}");
                push_trace_record(&mut out, &mut first, 'i', "oracle probe", "oracle", ts, &args);
            }
            Event::RunEnd { insts } => {
                while let Some(top) = open.pop() {
                    push_trace_record(&mut out, &mut first, 'E', &top, "", ts, "");
                }
                let args = format!("\"insts\":{insts}");
                push_trace_record(&mut out, &mut first, 'i', "run end", "run", ts, &args);
            }
            Event::Job { kind, attempt } => {
                let args = format!("\"kind\":\"{kind:?}\",\"attempt\":{attempt}");
                push_trace_record(&mut out, &mut first, 'i', "job", "campaign", ts, &args);
            }
        }
    }
    // Streams cut short by a full ring may still have open spans.
    let last_ts = events.last().map(|e| e.t).unwrap_or(0);
    while let Some(top) = open.pop() {
        push_trace_record(&mut out, &mut first, 'E', &top, "", last_ts, "");
    }
    out.push_str("\n]}\n");
    out
}

/// Renders a histogram as a JSON object.
pub fn histogram_json(h: &Histogram) -> String {
    let buckets: Vec<String> = h.buckets().iter().map(|(lo, c)| format!("[{lo},{c}]")).collect();
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.2},\"p50\":{},\"p99\":{},\"buckets\":[{}]}}",
        h.count(),
        h.sum(),
        h.min(),
        h.max(),
        h.mean(),
        h.quantile(0.5),
        h.quantile(0.99),
        buckets.join(",")
    )
}

/// Renders a [`Metrics`] aggregate as a JSON object (one run's worth;
/// `opec-eval report` wraps one of these per app/system pair).
pub fn metrics_json(m: &Metrics) -> String {
    let mut ops = Vec::new();
    for (op, om) in m.ops() {
        ops.push(format!(
            "{{\"op\":{},\"enters\":{},\"exits\":{},\"switch_cycles\":{},\"enter_cycles\":{},\"exit_cycles\":{},\"virt_hits\":{},\"virt_evictions\":{},\"virt_misses\":{},\"emulated_loads\":{},\"emulated_stores\":{},\"insts_retired\":{},\"func_enters\":{},\"traps\":{},\"quarantines\":{},\"priv_lifts\":{}}}",
            op,
            om.enters,
            om.exits,
            om.switch_cycles(),
            histogram_json(&om.enter_cycles),
            histogram_json(&om.exit_cycles),
            om.virt_hits,
            om.virt_evictions,
            om.virt_misses,
            om.emulated_loads,
            om.emulated_stores,
            om.insts_retired,
            om.func_enters,
            om.traps,
            om.quarantines,
            om.priv_lifts,
        ));
    }
    format!(
        "{{\"ops\":[{}],\"totals\":{{\"switches\":{},\"switch_cycles\":{},\"insts\":{},\"cycles\":{},\"events\":{},\"mpu_loads\":{},\"mpu_region_writes\":{},\"pmp_loads\":{},\"pmp_entry_writes\":{},\"injections\":{},\"jobs_completed\":{},\"jobs_fuel_exhausted\":{},\"jobs_timed_out\":{},\"jobs_panicked\":{},\"jobs_retried\":{},\"jobs_resumed\":{}}}}}",
        ops.join(","),
        m.total_switches(),
        m.total_switch_cycles(),
        m.total_insts,
        m.run_cycles,
        m.events_seen,
        m.mpu_loads,
        m.mpu_region_writes,
        m.pmp_loads,
        m.pmp_entry_writes,
        m.injections,
        m.jobs_completed,
        m.jobs_fuel_exhausted,
        m.jobs_timed_out,
        m.jobs_panicked,
        m.jobs_retried,
        m.jobs_resumed,
    )
}

/// Renders a stream as canonical text, one event per line — the
/// golden-file format.
pub fn event_log(events: &[Stamped]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Dir, Event};

    fn st(t: u64, ev: Event) -> Stamped {
        Stamped { t, ev }
    }

    fn sample() -> Vec<Stamped> {
        vec![
            st(10, Event::SwitchBegin { dir: Dir::Enter, from: 0, to: 1, entry: 7, insts: 3 }),
            st(40, Event::SwitchEnd { dir: Dir::Enter, from: 0, to: 1, entry: 7, ok: true }),
            st(50, Event::FuncEnter { func: 7 }),
            st(60, Event::VirtHit { op: 1, address: 0x4000_0000, window: 0, slot: 4 }),
            st(80, Event::FuncExit { func: 7 }),
            st(90, Event::SwitchBegin { dir: Dir::Exit, from: 1, to: 0, entry: 7, insts: 9 }),
            st(95, Event::SwitchEnd { dir: Dir::Exit, from: 1, to: 0, entry: 7, ok: true }),
            st(100, Event::RunEnd { insts: 12 }),
        ]
    }

    /// A minimal structural check that the output is one JSON object
    /// with balanced brackets outside strings.
    fn assert_balanced_json(s: &str) {
        let mut depth_obj = 0i64;
        let mut depth_arr = 0i64;
        let mut in_str = false;
        let mut esc = false;
        for c in s.chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' => depth_obj += 1,
                '}' => depth_obj -= 1,
                '[' => depth_arr += 1,
                ']' => depth_arr -= 1,
                _ => {}
            }
            assert!(depth_obj >= 0 && depth_arr >= 0);
        }
        assert_eq!(depth_obj, 0);
        assert_eq!(depth_arr, 0);
        assert!(!in_str);
    }

    #[test]
    fn chrome_trace_is_balanced_and_paired() {
        let json = chrome_trace(&sample(), "Sample/opec");
        assert_balanced_json(&json);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("Sample/opec"));
        // Every B has a matching E.
        let b = json.matches("\"ph\":\"B\"").count();
        let e = json.matches("\"ph\":\"E\"").count();
        assert_eq!(b, e);
    }

    #[test]
    fn chrome_trace_closes_spans_at_run_end() {
        // Func span left open by a quarantine-style cut.
        let events = vec![
            st(10, Event::SwitchBegin { dir: Dir::Enter, from: 0, to: 1, entry: 7, insts: 0 }),
            st(20, Event::SwitchEnd { dir: Dir::Enter, from: 0, to: 1, entry: 7, ok: true }),
            st(30, Event::FuncEnter { func: 7 }),
            st(50, Event::Quarantine { op: 1 }),
            st(60, Event::RunEnd { insts: 5 }),
        ];
        let json = chrome_trace(&events, "x");
        assert_balanced_json(&json);
        let b = json.matches("\"ph\":\"B\"").count();
        let e = json.matches("\"ph\":\"E\"").count();
        assert_eq!(b, e);
    }

    #[test]
    fn metrics_json_is_balanced() {
        let mut m = Metrics::new();
        for ev in sample() {
            m.observe(ev);
        }
        let json = metrics_json(&m);
        assert_balanced_json(&json);
        assert!(json.contains("\"virt_hits\":1"));
        assert!(json.contains("\"insts\":12"));
    }

    #[test]
    fn event_log_is_line_per_event() {
        let log = event_log(&sample());
        assert_eq!(log.lines().count(), 8);
        assert!(log.ends_with('\n'));
    }
}
