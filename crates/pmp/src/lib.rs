//! RISC-V Physical Memory Protection (PMP) and the OPEC policy encoder.
//!
//! The paper's §7 names three requirements for porting OPEC to another
//! platform, the first being "a memory protection unit, which has
//! enough regions enforcing the physical memory permissions similar to
//! the ARM MPU, e.g., RISC-V PMP". This crate substantiates that claim:
//!
//! * [`Pmp`] models the RV32 PMP as specified in the privileged ISA —
//!   sixteen entries with `R`/`W`/`X` permissions, `OFF`/`TOR`/`NA4`/
//!   `NAPOT` address matching, **lowest-numbered-entry-wins** priority
//!   (the opposite of the ARM MPU), and the M-mode default-allow /
//!   S/U-mode default-deny rule;
//! * [`encode`] translates one operation's OPEC policy (the MPU plan of
//!   `opec-core`) into a PMP entry file: a `TOR` pair for the live part
//!   of the stack (PMP has no sub-regions, but `TOR`'s arbitrary top
//!   bound expresses the same protection *exactly*), `NAPOT` entries
//!   for the operation data section and peripheral windows, and
//!   background entries for Flash (read/execute) and SRAM (read-only);
//! * the tests check the encoder against the ARM MPU decision for the
//!   same policy, address by address.
//!
//! Core peripherals have no PMP analogue — on RISC-V they are CSRs,
//! reachable only from M-mode, which is precisely the situation OPEC's
//! load/store emulation handles on ARM (the monitor would emulate CSR
//! accesses from the trap handler instead).

#![warn(missing_docs)]

use opec_armv7m::mem::MemRegion;

/// Number of PMP entries modelled (RV32: up to 64; 16 is the common
/// implementation size and plenty for OPEC's plan).
pub const PMP_ENTRIES: usize = 16;

/// Address-matching mode of one entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PmpMode {
    /// Entry disabled.
    Off,
    /// Top-of-range: matches `[pmpaddr[i-1], pmpaddr[i])` (or
    /// `[0, pmpaddr[0])` for entry 0).
    Tor,
    /// Naturally aligned four-byte region.
    Na4,
    /// Naturally aligned power-of-two region, ≥ 8 bytes.
    Napot,
}

/// One PMP entry: configuration byte + address register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmpEntry {
    /// Read permission.
    pub r: bool,
    /// Write permission.
    pub w: bool,
    /// Execute permission.
    pub x: bool,
    /// Address-matching mode.
    pub mode: PmpMode,
    /// The `pmpaddr` register value (physical address >> 2, with the
    /// NAPOT size encoded in trailing ones).
    pub addr: u32,
}

impl PmpEntry {
    /// A disabled entry.
    pub const OFF: PmpEntry =
        PmpEntry { r: false, w: false, x: false, mode: PmpMode::Off, addr: 0 };
}

/// Encodes a naturally aligned power-of-two region into a `pmpaddr`
/// value (`size` ≥ 8, a power of two; `base` aligned to `size`).
pub fn napot_addr(base: u32, size: u32) -> u32 {
    debug_assert!(size >= 8 && size.is_power_of_two());
    debug_assert_eq!(base % size, 0);
    (base >> 2) | ((size >> 3) - 1)
}

/// Decodes a NAPOT `pmpaddr` back into `(base, size)`.
pub fn napot_decode(addr: u32) -> (u32, u32) {
    let trailing = addr.trailing_ones();
    let size = 8u32 << trailing;
    let base = (addr & !((1 << trailing) - 1)) << 2;
    (base, size)
}

/// The access being checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PmpAccess {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Exec,
}

/// The privilege mode performing the access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivMode {
    /// Machine mode (the monitor). Unmatched accesses are allowed.
    Machine,
    /// User mode (operations). Unmatched accesses are denied.
    User,
}

/// The modelled PMP unit.
#[derive(Debug, Clone)]
pub struct Pmp {
    entries: [PmpEntry; PMP_ENTRIES],
}

impl Default for Pmp {
    fn default() -> Pmp {
        Pmp::new()
    }
}

impl Pmp {
    /// All entries off.
    pub fn new() -> Pmp {
        Pmp { entries: [PmpEntry::OFF; PMP_ENTRIES] }
    }

    /// Programs entry `i`.
    pub fn set(&mut self, i: usize, e: PmpEntry) {
        self.entries[i] = e;
    }

    /// Loads a full entry file (remaining entries are switched off).
    pub fn load(&mut self, entries: &[(usize, PmpEntry)]) {
        self.entries = [PmpEntry::OFF; PMP_ENTRIES];
        for &(i, e) in entries {
            self.entries[i] = e;
        }
    }

    /// The byte range matched by entry `i`, if enabled.
    fn range(&self, i: usize) -> Option<(u32, u32)> {
        let e = self.entries[i];
        match e.mode {
            PmpMode::Off => None,
            PmpMode::Na4 => {
                let base = e.addr << 2;
                Some((base, base.checked_add(4)?))
            }
            PmpMode::Napot => {
                let (base, size) = napot_decode(e.addr);
                Some((base, base.checked_add(size)?))
            }
            PmpMode::Tor => {
                let lo = if i == 0 { 0 } else { self.entries[i - 1].addr << 2 };
                let hi = e.addr << 2;
                if lo < hi {
                    Some((lo, hi))
                } else {
                    None
                }
            }
        }
    }

    /// Checks an access of `len` bytes at `addr`: every byte must be
    /// permitted. The **lowest-numbered** matching entry decides, per
    /// the privileged ISA.
    pub fn check(&self, addr: u32, len: u32, access: PmpAccess, mode: PrivMode) -> bool {
        for off in 0..len.max(1) {
            let Some(a) = addr.checked_add(off) else { return false };
            if !self.check_byte(a, access, mode) {
                return false;
            }
        }
        true
    }

    fn check_byte(&self, addr: u32, access: PmpAccess, mode: PrivMode) -> bool {
        for i in 0..PMP_ENTRIES {
            if let Some((lo, hi)) = self.range(i) {
                if addr >= lo && addr < hi {
                    let e = self.entries[i];
                    return match access {
                        PmpAccess::Read => e.r,
                        PmpAccess::Write => e.w,
                        PmpAccess::Exec => e.x,
                    };
                }
            }
        }
        // No match: M-mode falls through, U-mode faults.
        mode == PrivMode::Machine
    }
}

/// Translation of one operation's OPEC policy into PMP entries.
pub mod encode {
    use super::*;
    use opec_core::SystemPolicy;
    use opec_vm::OpId;

    /// Builds the PMP entry file for operation `op`, with the live
    /// stack extending from the stack base up to `stack_boundary`
    /// (exclusive) — the same quantity the ARM monitor expresses with
    /// sub-region disables.
    ///
    /// Entry order (lowest wins, so the most specific comes first):
    ///
    /// | # | what | mode | perms |
    /// |---|------|------|-------|
    /// | 0–1 | live stack `[base, boundary)` | TOR pair | RW |
    /// | 2 | operation data section | NAPOT | RW |
    /// | 3.. | peripheral windows (first four) | NAPOT | RW |
    /// | n | Flash | NAPOT | R+X |
    /// | n+1 | SRAM background | NAPOT | R |
    pub fn op_policy_to_pmp(
        policy: &SystemPolicy,
        op: OpId,
        stack_boundary: u32,
    ) -> Vec<(usize, PmpEntry)> {
        let mut out = Vec::new();
        let mut idx = 0;
        // Stack TOR pair.
        out.push((
            idx,
            PmpEntry {
                r: false,
                w: false,
                x: false,
                mode: PmpMode::Off,
                addr: policy.stack.base >> 2,
            },
        ));
        idx += 1;
        out.push((
            idx,
            PmpEntry { r: true, w: true, x: false, mode: PmpMode::Tor, addr: stack_boundary >> 2 },
        ));
        idx += 1;
        // Operation data section.
        let s = policy.op(op).section;
        out.push((
            idx,
            PmpEntry {
                r: true,
                w: true,
                x: false,
                mode: PmpMode::Napot,
                addr: napot_addr(s.base, s.size.max(8)),
            },
        ));
        idx += 1;
        // Peripheral windows (covering regions, like MPU regions 4–7).
        for region in policy.op(op).periph_regions.iter().take(4) {
            out.push((
                idx,
                PmpEntry {
                    r: true,
                    w: true,
                    x: false,
                    mode: PmpMode::Napot,
                    addr: napot_addr(region.base, region.size.max(8)),
                },
            ));
            idx += 1;
        }
        // Flash: read + execute.
        let flash = policy.board.flash;
        out.push((
            idx,
            PmpEntry {
                r: true,
                w: false,
                x: true,
                mode: PmpMode::Napot,
                addr: napot_addr(flash.base, flash.size.next_power_of_two()),
            },
        ));
        idx += 1;
        // SRAM background: read-only (public section, relocation table,
        // other sections are readable but never writable).
        let sram_span = policy.board.sram.size.next_power_of_two();
        out.push((
            idx,
            PmpEntry {
                r: true,
                w: false,
                x: false,
                mode: PmpMode::Napot,
                addr: napot_addr(policy.board.sram.base, sram_span),
            },
        ));
        out
    }

    /// Convenience: the byte range of the live stack given a sub-region
    /// disable mask as the ARM monitor computes it.
    pub fn stack_boundary_from_srd(stack: MemRegion, srd: u8) -> u32 {
        let sub = stack.size / 8;
        let enabled = (0..8).take_while(|i| srd & (1 << i) == 0).count() as u32;
        stack.base + enabled * sub
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn napot_roundtrip() {
        for (base, size) in [(0x2000_0000u32, 32u32), (0x4000_4000, 0x400), (0x0800_0000, 1 << 20)]
        {
            let a = napot_addr(base, size);
            assert_eq!(napot_decode(a), (base, size));
        }
    }

    #[test]
    fn lowest_entry_wins() {
        let mut pmp = Pmp::new();
        // Entry 0: RW window inside...
        pmp.set(
            0,
            PmpEntry {
                r: true,
                w: true,
                x: false,
                mode: PmpMode::Napot,
                addr: napot_addr(0x2000_0100, 0x100),
            },
        );
        // ...entry 1: read-only cover of the whole page.
        pmp.set(
            1,
            PmpEntry {
                r: true,
                w: false,
                x: false,
                mode: PmpMode::Napot,
                addr: napot_addr(0x2000_0000, 0x1000),
            },
        );
        assert!(pmp.check(0x2000_0180, 4, PmpAccess::Write, PrivMode::User));
        assert!(!pmp.check(0x2000_0480, 4, PmpAccess::Write, PrivMode::User));
        assert!(pmp.check(0x2000_0480, 4, PmpAccess::Read, PrivMode::User));
    }

    #[test]
    fn unmatched_access_mode_rule() {
        let pmp = Pmp::new();
        assert!(pmp.check(0x1234, 4, PmpAccess::Read, PrivMode::Machine));
        assert!(!pmp.check(0x1234, 4, PmpAccess::Read, PrivMode::User));
    }

    #[test]
    fn tor_pair_matches_exact_range() {
        let mut pmp = Pmp::new();
        pmp.set(
            0,
            PmpEntry { r: false, w: false, x: false, mode: PmpMode::Off, addr: 0x2000_0000 >> 2 },
        );
        pmp.set(
            1,
            PmpEntry { r: true, w: true, x: false, mode: PmpMode::Tor, addr: 0x2000_0600 >> 2 },
        );
        assert!(pmp.check(0x2000_0000, 4, PmpAccess::Write, PrivMode::User));
        assert!(pmp.check(0x2000_05FC, 4, PmpAccess::Write, PrivMode::User));
        assert!(!pmp.check(0x2000_0600, 4, PmpAccess::Write, PrivMode::User));
        // TOR's arbitrary bound expresses what the ARM MPU needs
        // sub-regions for.
        assert!(!pmp.check(0x2000_05FE, 4, PmpAccess::Write, PrivMode::User));
    }

    #[test]
    fn straddling_access_is_denied() {
        let mut pmp = Pmp::new();
        pmp.set(
            0,
            PmpEntry {
                r: true,
                w: true,
                x: false,
                mode: PmpMode::Napot,
                addr: napot_addr(0x2000_0000, 0x100),
            },
        );
        assert!(!pmp.check(0x2000_00FE, 4, PmpAccess::Write, PrivMode::User));
    }
}
