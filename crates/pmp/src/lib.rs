//! RISC-V Physical Memory Protection (PMP): OPEC's second backend.
//!
//! The paper's §7 names three requirements for porting OPEC to another
//! platform, the first being "a memory protection unit, which has
//! enough regions enforcing the physical memory permissions similar to
//! the ARM MPU, e.g., RISC-V PMP". This crate substantiates that claim
//! as a first-class backend rather than a one-shot encoder:
//!
//! * [`Pmp`] models the RV32 PMP as specified in the privileged ISA —
//!   sixteen entries with `R`/`W`/`X` permissions, `OFF`/`TOR`/`NA4`/
//!   `NAPOT` address matching, **lowest-numbered-entry-wins** priority
//!   (the opposite of the ARM MPU), and the M-mode default-allow /
//!   S/U-mode default-deny rule;
//! * [`PmpUnit`] plugs the model into the machine's
//!   [`ProtectionUnit`] checking surface (operations run in U-mode,
//!   the monitor in M-mode — modelled entries are unlocked, so M-mode
//!   accesses are never constrained, exactly the real-PMP rule for
//!   entries without the `L` bit);
//! * [`Rv32PmpBackend`] implements the `opec-core`
//!   [`Backend`] trait: per-operation entry files with a `TOR` pair
//!   for the live part of the stack (PMP has no sub-regions, but
//!   `TOR`'s arbitrary top bound expresses the boundary *exactly*, to
//!   the word), `NAPOT` entries for the operation data section and
//!   peripheral windows, and background entries for Flash
//!   (read/execute) and SRAM (read-only).
//!
//! Core peripherals have no PMP analogue — on RISC-V they are CSRs,
//! reachable only from M-mode, which is precisely the situation OPEC's
//! load/store emulation handles on ARM (the monitor emulates the
//! access from the trap handler); [`PmpFault::CsrPriv`] is that trap.

#![warn(missing_docs)]

use std::any::Any;

use opec_armv7m::mpu::MpuDecision;
use opec_armv7m::{Board, FaultCause, FaultInfo, Machine, MemRegion, Mode, ProtectionUnit};
use opec_core::backend::{Backend, FaultClass, SwitchCostSummary};
use opec_core::SystemPolicy;
use opec_vm::OpId;

/// Number of PMP entries modelled (RV32: up to 64; 16 is the common
/// implementation size and plenty for OPEC's plan).
pub const PMP_ENTRIES: usize = 16;

/// The minimum NAPOT region size: `pmpaddr` encodes the size in
/// trailing ones below the address bits, so the smallest expressible
/// naturally-aligned power-of-two region is 8 bytes (4-byte regions
/// use `NA4`).
pub const NAPOT_MIN_SIZE: u32 = 8;

/// Cycles one PMP entry write costs (a `pmpcfg` byte plus a `pmpaddr`
/// CSR write — CSR writes are cheaper than the ARM MPU's two MMIO
/// stores, which cost [`opec_armv7m::costs::MPU_REGION_WRITE`]).
pub const PMP_ENTRY_WRITE: u64 = 4;

/// Address-matching mode of one entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PmpMode {
    /// Entry disabled.
    Off,
    /// Top-of-range: matches `[pmpaddr[i-1], pmpaddr[i])` (or
    /// `[0, pmpaddr[0])` for entry 0).
    Tor,
    /// Naturally aligned four-byte region.
    Na4,
    /// Naturally aligned power-of-two region, ≥ 8 bytes.
    Napot,
}

/// One PMP entry: configuration byte + address register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmpEntry {
    /// Read permission.
    pub r: bool,
    /// Write permission.
    pub w: bool,
    /// Execute permission.
    pub x: bool,
    /// Address-matching mode.
    pub mode: PmpMode,
    /// The `pmpaddr` register value (physical address >> 2, with the
    /// NAPOT size encoded in trailing ones).
    pub addr: u32,
}

impl PmpEntry {
    /// A disabled entry.
    pub const OFF: PmpEntry =
        PmpEntry { r: false, w: false, x: false, mode: PmpMode::Off, addr: 0 };

    /// The `pmpcfg` byte for this entry (R bit 0, W bit 1, X bit 2,
    /// A bits 3–4; the `L` bit is never set — OPEC reprograms entries
    /// at every switch).
    pub fn cfg_byte(&self) -> u8 {
        let a = match self.mode {
            PmpMode::Off => 0,
            PmpMode::Tor => 1,
            PmpMode::Na4 => 2,
            PmpMode::Napot => 3,
        };
        u8::from(self.r) | (u8::from(self.w) << 1) | (u8::from(self.x) << 2) | (a << 3)
    }
}

/// Encodes a naturally aligned power-of-two region into a `pmpaddr`
/// value. `size` must be a power of two with `base` aligned to it;
/// sizes below [`NAPOT_MIN_SIZE`] are rounded up to the minimum
/// granule (real PMP cannot express a NAPOT region smaller than
/// 8 bytes — the old encoder underflowed `(size >> 3) - 1` to an
/// all-ones address for them).
pub fn napot_addr(base: u32, size: u32) -> u32 {
    let size = size.max(NAPOT_MIN_SIZE);
    debug_assert!(size.is_power_of_two());
    debug_assert_eq!(base % size, 0);
    (base >> 2) | ((size >> 3) - 1)
}

/// Decodes a NAPOT `pmpaddr` back into `(base, size)`.
///
/// 29 or more trailing ones encode a size of at least 2³² — past the
/// 32-bit address space, so the region is the whole space (the
/// all-ones "NAPOT everything" idiom). [`napot_addr`] and
/// [`napot_cover`] never emit such a region; the model folds it to
/// `(0, u32::MAX)` rather than overflow the shift on hand-written
/// `pmpaddr` bits.
pub fn napot_decode(addr: u32) -> (u32, u32) {
    let trailing = addr.trailing_ones();
    if trailing >= 29 {
        return (0, u32::MAX);
    }
    let size = 8u32 << trailing;
    let base = (addr & !((1 << trailing) - 1)) << 2;
    (base, size)
}

/// The smallest NAPOT region `(base, size)` containing `window`:
/// `size` is a power of two ≥ [`NAPOT_MIN_SIZE`] and `base` is aligned
/// to it. Misaligned windows grow until alignment and coverage meet
/// (the same rounding the ARM plan applies with
/// `region_size_for`, so both backends over-approximate peripheral
/// windows the same way the hardware forces them to).
pub fn napot_cover(window: MemRegion) -> (u32, u32) {
    let mut size = window.size.next_power_of_two().max(NAPOT_MIN_SIZE);
    loop {
        let base = window.base & !(size - 1);
        // A cover whose end overflows reaches the top of the address
        // space, so it contains the window by construction.
        let covered = base.checked_add(size).is_none_or(|end| window.end() <= end);
        if covered {
            return (base, size);
        }
        match size.checked_mul(2) {
            Some(next) => size = next,
            None => return (0, size),
        }
    }
}

/// The access being checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PmpAccess {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Exec,
}

/// The privilege mode performing the access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivMode {
    /// Machine mode (the monitor). Unmatched accesses are allowed.
    Machine,
    /// User mode (operations). Unmatched accesses are denied.
    User,
}

/// The modelled PMP unit.
#[derive(Debug, Clone)]
pub struct Pmp {
    entries: [PmpEntry; PMP_ENTRIES],
}

impl Default for Pmp {
    fn default() -> Pmp {
        Pmp::new()
    }
}

impl Pmp {
    /// All entries off.
    pub fn new() -> Pmp {
        Pmp { entries: [PmpEntry::OFF; PMP_ENTRIES] }
    }

    /// Programs entry `i`.
    pub fn set(&mut self, i: usize, e: PmpEntry) {
        self.entries[i] = e;
    }

    /// Loads a full entry file (remaining entries are switched off).
    pub fn load(&mut self, entries: &[(usize, PmpEntry)]) {
        self.entries = [PmpEntry::OFF; PMP_ENTRIES];
        for &(i, e) in entries {
            self.entries[i] = e;
        }
    }

    /// Returns entry `i`.
    pub fn entry(&self, i: usize) -> PmpEntry {
        self.entries[i]
    }

    /// The byte range matched by entry `i`, if enabled. A `TOR` entry
    /// whose bound does not exceed its predecessor's address (a
    /// zero-length or inverted range) matches nothing — it neither
    /// grants nor denies, per the privileged ISA.
    fn range(&self, i: usize) -> Option<(u32, u32)> {
        let e = self.entries[i];
        match e.mode {
            PmpMode::Off => None,
            PmpMode::Na4 => {
                let base = e.addr << 2;
                Some((base, base.checked_add(4)?))
            }
            PmpMode::Napot => {
                let (base, size) = napot_decode(e.addr);
                Some((base, base.checked_add(size)?))
            }
            PmpMode::Tor => {
                let lo = if i == 0 { 0 } else { self.entries[i - 1].addr << 2 };
                let hi = e.addr << 2;
                if lo < hi {
                    Some((lo, hi))
                } else {
                    None
                }
            }
        }
    }

    /// Checks an access of `len` bytes at `addr`: every byte must be
    /// permitted. The **lowest-numbered** matching entry decides, per
    /// the privileged ISA.
    pub fn check(&self, addr: u32, len: u32, access: PmpAccess, mode: PrivMode) -> bool {
        for off in 0..len.max(1) {
            let Some(a) = addr.checked_add(off) else { return false };
            if !self.check_byte(a, access, mode) {
                return false;
            }
        }
        true
    }

    fn check_byte(&self, addr: u32, access: PmpAccess, mode: PrivMode) -> bool {
        for i in 0..PMP_ENTRIES {
            if let Some((lo, hi)) = self.range(i) {
                if addr >= lo && addr < hi {
                    let e = self.entries[i];
                    return match access {
                        PmpAccess::Read => e.r,
                        PmpAccess::Write => e.w,
                        PmpAccess::Exec => e.x,
                    };
                }
            }
        }
        // No match: M-mode falls through, U-mode faults.
        mode == PrivMode::Machine
    }
}

/// The PMP as a machine-pluggable [`ProtectionUnit`].
///
/// OPEC's privilege split maps directly: operations run in U-mode
/// (unmatched accesses denied), the monitor in M-mode. The modelled
/// entries never set the lock bit, so — like real PMP — they do not
/// constrain M-mode at all.
#[derive(Debug, Clone)]
pub struct PmpUnit {
    /// The entry file.
    pub pmp: Pmp,
    /// Whether an entry file has been armed ([`Rv32PmpBackend::enable`]
    /// sets this at monitor initialisation; before that the machine
    /// boots unconstrained, like reset-state PMP with all entries off).
    pub enabled: bool,
    obs: opec_obs::Obs,
}

impl Default for PmpUnit {
    fn default() -> PmpUnit {
        PmpUnit::new()
    }
}

impl PmpUnit {
    /// A disabled unit with all entries off.
    pub fn new() -> PmpUnit {
        PmpUnit { pmp: Pmp::new(), enabled: false, obs: opec_obs::Obs::disabled() }
    }

    /// Programs entry `i`, emitting [`opec_obs::Event::PmpEntryWrite`].
    pub fn set_entry(&mut self, i: usize, e: PmpEntry) {
        self.pmp.set(i, e);
        self.obs.emit(|| opec_obs::Event::PmpEntryWrite {
            entry: i as u8,
            addr: e.addr,
            cfg: e.cfg_byte(),
        });
    }

    /// Replaces the entire entry file (the per-switch reload),
    /// emitting [`opec_obs::Event::PmpLoad`].
    pub fn load_entries(&mut self, entries: &[(usize, PmpEntry)]) {
        self.pmp.load(entries);
        self.obs.emit(|| opec_obs::Event::PmpLoad { entries: entries.len() as u8 });
    }
}

impl ProtectionUnit for PmpUnit {
    fn name(&self) -> &'static str {
        "rv32-pmp"
    }

    fn check_data(&self, addr: u32, len: u32, write: bool, mode: Mode) -> MpuDecision {
        if !self.enabled || mode.is_privileged() {
            return MpuDecision::Allowed;
        }
        let access = if write { PmpAccess::Write } else { PmpAccess::Read };
        if self.pmp.check(addr, len, access, PrivMode::User) {
            MpuDecision::Allowed
        } else {
            MpuDecision::Denied
        }
    }

    fn check_exec(&self, addr: u32, mode: Mode) -> MpuDecision {
        if !self.enabled || mode.is_privileged() {
            return MpuDecision::Allowed;
        }
        if self.pmp.check(addr, 4, PmpAccess::Exec, PrivMode::User) {
            MpuDecision::Allowed
        } else {
            MpuDecision::Denied
        }
    }

    fn enforcing(&self) -> bool {
        self.enabled
    }

    fn attach_obs(&mut self, obs: opec_obs::Obs) {
        self.obs = obs;
    }

    fn clone_unit(&self) -> Box<dyn ProtectionUnit> {
        Box::new(self.clone())
    }

    fn copy_unit_from(&mut self, src: &dyn ProtectionUnit) -> bool {
        match src.as_any().downcast_ref::<PmpUnit>() {
            Some(s) => {
                self.pmp = s.pmp.clone();
                self.enabled = s.enabled;
                // `obs` is configuration, not state: the live unit and
                // the snapshotted one were attached to the same stream.
                true
            }
            None => false,
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The PMP fault vocabulary ([`Backend::Fault`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PmpFault {
    /// A PMP access fault (load/store/instruction): the U-mode access
    /// matched no granting entry.
    AccessFault,
    /// An illegal-instruction trap from a U-mode CSR access — the
    /// RISC-V shape of OPEC's core-peripheral emulation case.
    CsrPriv,
    /// Anything else (access to an unimplemented physical address).
    Other,
}

impl From<PmpFault> for FaultClass {
    fn from(f: PmpFault) -> FaultClass {
        match f {
            PmpFault::AccessFault => FaultClass::Protection,
            PmpFault::CsrPriv => FaultClass::ControlPriv,
            PmpFault::Other => FaultClass::Other,
        }
    }
}

/// The cost record of one PMP reprogramming.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PmpSwitchCost {
    /// PMP entries (cfg + addr pairs) written.
    pub entries: u32,
}

impl From<PmpSwitchCost> for SwitchCostSummary {
    fn from(c: PmpSwitchCost) -> SwitchCostSummary {
        SwitchCostSummary { writes: c.entries, cycles: u64::from(c.entries) * PMP_ENTRY_WRITE }
    }
}

/// Reserved virtualization slots on PMP (entries 3–8: six, against the
/// ARM MPU's four — sixteen entries leave room even with the stack
/// pair and three background entries).
const PMP_VIRT_SLOTS: usize = 6;
/// First virtualization entry.
const PMP_VIRT_BASE: usize = 3;
/// Flash background entry (R+X).
const PMP_FLASH_ENTRY: usize = PMP_VIRT_BASE + PMP_VIRT_SLOTS;
/// SRAM read-only background entry.
const PMP_SRAM_ENTRY: usize = PMP_FLASH_ENTRY + 1;

/// The PMP entry plan: per-operation entry files precomputed from a
/// [`SystemPolicy`].
///
/// Entry order (lowest wins, so the most specific comes first):
///
/// | # | what | mode | perms |
/// |---|------|------|-------|
/// | 0–1 | live stack `[base, boundary)` | TOR pair | RW |
/// | 2 | operation data section | NAPOT | RW |
/// | 3–8 | peripheral covers (first six) | NAPOT | RW |
/// | 9 | Flash | NAPOT | R+X |
/// | 10 | SRAM background | NAPOT | R |
#[derive(Debug, Clone)]
pub struct PmpPlan {
    stack: MemRegion,
    sections: Vec<PmpEntry>,
    periph: Vec<Vec<PmpEntry>>,
    flash: PmpEntry,
    sram: PmpEntry,
}

impl PmpPlan {
    /// The entry protecting `op`'s data section.
    pub fn section_entry(&self, op: OpId) -> PmpEntry {
        self.sections[usize::from(op)]
    }

    /// The prepared peripheral-cover entries for `op`.
    pub fn periph_entries(&self, op: OpId) -> &[PmpEntry] {
        &self.periph[usize::from(op)]
    }

    /// The Flash (R+X) and SRAM (read-only) background entries.
    pub fn background(&self) -> (PmpEntry, PmpEntry) {
        (self.flash, self.sram)
    }
}

fn napot_rw(window: MemRegion) -> PmpEntry {
    let (base, size) = napot_cover(window);
    PmpEntry { r: true, w: true, x: false, mode: PmpMode::Napot, addr: napot_addr(base, size) }
}

/// The RISC-V PMP backend: the paper's §7 port, first-class.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rv32PmpBackend;

impl opec_vm::MachineBackend for Rv32PmpBackend {
    const NAME: &'static str = "rv32-pmp";

    fn install(&self, machine: &mut Machine) {
        machine.set_protection(Box::new(PmpUnit::new()));
    }
}

impl Backend for Rv32PmpBackend {
    const NAME: &'static str = "rv32-pmp";
    type RegionPlan = PmpPlan;
    type Fault = PmpFault;
    type SwitchCost = PmpSwitchCost;

    fn make_machine(&self, board: Board) -> Machine {
        Machine::with_protection(board, Box::new(PmpUnit::new()))
    }

    fn plan(&self, policy: &SystemPolicy) -> PmpPlan {
        let sections = policy.ops.iter().map(|o| napot_rw(o.section)).collect();
        let periph = policy
            .ops
            .iter()
            .map(|o| o.periph_covers.iter().map(|c| napot_rw(*c)).collect())
            .collect();
        let (fb, fs) = napot_cover(policy.board.flash);
        let flash =
            PmpEntry { r: true, w: false, x: true, mode: PmpMode::Napot, addr: napot_addr(fb, fs) };
        let (sb, ss) = napot_cover(policy.board.sram);
        let sram = PmpEntry {
            r: true,
            w: false,
            x: false,
            mode: PmpMode::Napot,
            addr: napot_addr(sb, ss),
        };
        PmpPlan { stack: policy.stack, sections, periph, flash, sram }
    }

    fn enable(&self, machine: &mut Machine) -> Result<(), String> {
        let unit = machine
            .protection_mut()
            .as_any_mut()
            .downcast_mut::<PmpUnit>()
            .ok_or("rv32-pmp backend: machine protection unit is not the PMP")?;
        unit.enabled = true;
        Ok(())
    }

    fn virt_slots(&self) -> usize {
        PMP_VIRT_SLOTS
    }

    fn virt_slot_label(&self, slot: usize) -> u8 {
        (PMP_VIRT_BASE + slot) as u8
    }

    fn write_cost(&self) -> u64 {
        PMP_ENTRY_WRITE
    }

    fn op_write_count(&self, plan: &PmpPlan, op: OpId) -> u32 {
        let preload = plan.periph[usize::from(op)].len().min(PMP_VIRT_SLOTS);
        // Stack pair (2) + section + Flash + SRAM background.
        (5 + preload) as u32
    }

    fn apply_op(
        &self,
        machine: &mut Machine,
        plan: &PmpPlan,
        op: OpId,
        boundary: u32,
    ) -> Result<PmpSwitchCost, String> {
        let mut entries: Vec<(usize, PmpEntry)> = Vec::with_capacity(11);
        // The live-stack TOR pair: entry 0 (any mode; only its addr
        // matters) anchors the bottom, entry 1 bounds the top exactly
        // at the boundary — no sub-region rounding.
        entries.push((
            0,
            PmpEntry {
                r: false,
                w: false,
                x: false,
                mode: PmpMode::Off,
                addr: plan.stack.base >> 2,
            },
        ));
        entries.push((
            1,
            PmpEntry { r: true, w: true, x: false, mode: PmpMode::Tor, addr: boundary >> 2 },
        ));
        entries.push((2, plan.section_entry(op)));
        for (i, e) in plan.periph[usize::from(op)].iter().take(PMP_VIRT_SLOTS).enumerate() {
            entries.push((PMP_VIRT_BASE + i, *e));
        }
        entries.push((PMP_FLASH_ENTRY, plan.flash));
        entries.push((PMP_SRAM_ENTRY, plan.sram));
        let unit = machine
            .protection_mut()
            .as_any_mut()
            .downcast_mut::<PmpUnit>()
            .ok_or("rv32-pmp backend: machine protection unit is not the PMP")?;
        unit.load_entries(&entries);
        Ok(PmpSwitchCost { entries: entries.len() as u32 })
    }

    fn virtualize(
        &self,
        machine: &mut Machine,
        plan: &PmpPlan,
        op: OpId,
        widx: usize,
        slot: usize,
    ) -> Result<(), String> {
        let entry = plan.periph[usize::from(op)]
            .get(widx)
            .copied()
            .ok_or_else(|| format!("no prepared PMP entry for peripheral window {widx}"))?;
        let unit = machine
            .protection_mut()
            .as_any_mut()
            .downcast_mut::<PmpUnit>()
            .ok_or("rv32-pmp backend: machine protection unit is not the PMP")?;
        unit.set_entry(PMP_VIRT_BASE + slot, entry);
        Ok(())
    }

    fn stack_boundary(&self, stack: MemRegion, sp: u32) -> Option<u32> {
        // PMP's TOR bound is word-granular: round SP down to the word.
        let boundary = sp & !3;
        if boundary <= stack.base {
            return None;
        }
        Some(boundary.min(stack.end()))
    }

    fn boundary_granularity(&self, _stack: MemRegion) -> u32 {
        4
    }

    fn classify_fault(&self, fault: &FaultInfo) -> PmpFault {
        // The shared machine substrate raises its ARM-flavoured causes;
        // the backend translates them into the RISC-V trap vocabulary.
        match fault.cause {
            FaultCause::MpuViolation => PmpFault::AccessFault,
            FaultCause::PpbUnprivileged => PmpFault::CsrPriv,
            FaultCause::Unmapped => PmpFault::Other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn napot_roundtrip() {
        for (base, size) in [(0x2000_0000u32, 32u32), (0x4000_4000, 0x400), (0x0800_0000, 1 << 20)]
        {
            let a = napot_addr(base, size);
            assert_eq!(napot_decode(a), (base, size));
        }
    }

    #[test]
    fn napot_minimum_granularity() {
        // Sizes below the 8-byte granule round up to it instead of
        // underflowing the trailing-ones encoding (the old encoder
        // produced an all-ones pmpaddr — a 32 GiB region — for them).
        assert_eq!(napot_addr(0x2000_0000, 4), napot_addr(0x2000_0000, 8));
        assert_eq!(napot_decode(napot_addr(0x2000_0000, 1)), (0x2000_0000, 8));
        // The all-ones pmpaddr (the "whole address space" idiom) must
        // decode to the whole space, not overflow the trailing-ones
        // shift.
        assert_eq!(napot_decode(u32::MAX), (0, u32::MAX));
        // And the cover helper never yields an undersized region.
        let (base, size) = napot_cover(MemRegion::new(0x2000_0001, 2));
        assert!(size >= NAPOT_MIN_SIZE);
        assert!(base <= 0x2000_0001 && base + size >= 0x2000_0003);
    }

    #[test]
    fn napot_cover_grows_past_misalignment() {
        // A window straddling a power-of-two boundary needs a larger
        // cover than its size alone suggests.
        let (base, size) = napot_cover(MemRegion::new(0x2000_00F8, 0x10));
        assert!(size.is_power_of_two());
        assert_eq!(base % size, 0);
        assert!(base <= 0x2000_00F8);
        assert!(base + size >= 0x2000_0108);
    }

    #[test]
    fn lowest_entry_wins() {
        let mut pmp = Pmp::new();
        // Entry 0: RW window inside...
        pmp.set(
            0,
            PmpEntry {
                r: true,
                w: true,
                x: false,
                mode: PmpMode::Napot,
                addr: napot_addr(0x2000_0100, 0x100),
            },
        );
        // ...entry 1: read-only cover of the whole page.
        pmp.set(
            1,
            PmpEntry {
                r: true,
                w: false,
                x: false,
                mode: PmpMode::Napot,
                addr: napot_addr(0x2000_0000, 0x1000),
            },
        );
        assert!(pmp.check(0x2000_0180, 4, PmpAccess::Write, PrivMode::User));
        assert!(!pmp.check(0x2000_0480, 4, PmpAccess::Write, PrivMode::User));
        assert!(pmp.check(0x2000_0480, 4, PmpAccess::Read, PrivMode::User));
    }

    #[test]
    fn unmatched_access_mode_rule() {
        let pmp = Pmp::new();
        assert!(pmp.check(0x1234, 4, PmpAccess::Read, PrivMode::Machine));
        assert!(!pmp.check(0x1234, 4, PmpAccess::Read, PrivMode::User));
    }

    #[test]
    fn tor_pair_matches_exact_range() {
        let mut pmp = Pmp::new();
        pmp.set(
            0,
            PmpEntry { r: false, w: false, x: false, mode: PmpMode::Off, addr: 0x2000_0000 >> 2 },
        );
        pmp.set(
            1,
            PmpEntry { r: true, w: true, x: false, mode: PmpMode::Tor, addr: 0x2000_0600 >> 2 },
        );
        assert!(pmp.check(0x2000_0000, 4, PmpAccess::Write, PrivMode::User));
        assert!(pmp.check(0x2000_05FC, 4, PmpAccess::Write, PrivMode::User));
        assert!(!pmp.check(0x2000_0600, 4, PmpAccess::Write, PrivMode::User));
        // TOR's arbitrary bound expresses what the ARM MPU needs
        // sub-regions for.
        assert!(!pmp.check(0x2000_05FE, 4, PmpAccess::Write, PrivMode::User));
    }

    #[test]
    fn tor_zero_length_matches_nothing() {
        // A TOR bound equal to (or below) its predecessor's address is
        // a zero-length range: it must neither grant nor deny — lower
        // entries and the default rule still apply.
        let mut pmp = Pmp::new();
        pmp.set(
            0,
            PmpEntry { r: false, w: false, x: false, mode: PmpMode::Off, addr: 0x2000_0000 >> 2 },
        );
        pmp.set(
            1,
            PmpEntry { r: true, w: true, x: false, mode: PmpMode::Tor, addr: 0x2000_0000 >> 2 },
        );
        // The would-be stack bytes fall through to default-deny (U)
        // and default-allow (M).
        assert!(!pmp.check(0x2000_0000, 4, PmpAccess::Write, PrivMode::User));
        assert!(pmp.check(0x2000_0000, 4, PmpAccess::Write, PrivMode::Machine));
        // An inverted pair (bound below the anchor) is equally inert.
        pmp.set(
            1,
            PmpEntry { r: true, w: true, x: false, mode: PmpMode::Tor, addr: 0x1FFF_F000 >> 2 },
        );
        assert!(!pmp.check(0x1FFF_F800, 4, PmpAccess::Read, PrivMode::User));
        // A lower-priority granting entry behind the dead pair still
        // decides.
        pmp.set(
            2,
            PmpEntry {
                r: true,
                w: false,
                x: false,
                mode: PmpMode::Napot,
                addr: napot_addr(0x2000_0000, 0x1000),
            },
        );
        assert!(pmp.check(0x2000_0000, 4, PmpAccess::Read, PrivMode::User));
        assert!(!pmp.check(0x2000_0000, 4, PmpAccess::Write, PrivMode::User));
    }

    #[test]
    fn straddling_access_is_denied() {
        let mut pmp = Pmp::new();
        pmp.set(
            0,
            PmpEntry {
                r: true,
                w: true,
                x: false,
                mode: PmpMode::Napot,
                addr: napot_addr(0x2000_0000, 0x100),
            },
        );
        assert!(!pmp.check(0x2000_00FE, 4, PmpAccess::Write, PrivMode::User));
    }

    #[test]
    fn unit_is_transparent_until_enabled_and_to_machine_mode() {
        let mut unit = PmpUnit::new();
        assert_eq!(unit.check_data(0x2000_0000, 4, true, Mode::Unprivileged), MpuDecision::Allowed);
        unit.enabled = true;
        assert_eq!(unit.check_data(0x2000_0000, 4, true, Mode::Unprivileged), MpuDecision::Denied);
        // Unlocked entries never constrain M-mode.
        assert_eq!(unit.check_data(0x2000_0000, 4, true, Mode::Privileged), MpuDecision::Allowed);
        assert!(unit.enforcing());
    }

    #[test]
    fn cfg_byte_layout() {
        let e = PmpEntry { r: true, w: false, x: true, mode: PmpMode::Napot, addr: 0 };
        assert_eq!(e.cfg_byte(), 0b11_101);
        assert_eq!(PmpEntry::OFF.cfg_byte(), 0);
    }

    #[test]
    fn backend_boundary_is_word_granular() {
        let b = Rv32PmpBackend;
        let s = MemRegion::new(0x2002_F000, 0x1000);
        assert_eq!(Backend::stack_boundary(&b, s, s.base + 0x57), Some(s.base + 0x54));
        assert_eq!(Backend::stack_boundary(&b, s, s.end()), Some(s.end()));
        // SP at (or rounding to) the base leaves no live stack.
        assert_eq!(Backend::stack_boundary(&b, s, s.base + 3), None);
        assert_eq!(Backend::stack_boundary(&b, s, s.base), None);
        assert_eq!(Backend::boundary_granularity(&b, s), 4);
    }

    #[test]
    fn backend_fault_vocabulary() {
        let b = Rv32PmpBackend;
        let fi = |cause| FaultInfo {
            address: 0,
            len: 4,
            kind: opec_armv7m::AccessKind::Read,
            cause,
            pc: 0,
            write_value: None,
        };
        assert_eq!(b.classify_fault(&fi(FaultCause::MpuViolation)), PmpFault::AccessFault);
        assert_eq!(FaultClass::from(PmpFault::AccessFault), FaultClass::Protection);
        assert_eq!(FaultClass::from(PmpFault::CsrPriv), FaultClass::ControlPriv);
        assert_eq!(FaultClass::from(PmpFault::Other), FaultClass::Other);
    }
}
