//! Property tests for the RISC-V PMP model, mirroring
//! `crates/armv7m/tests/mpu_props.rs` on the other backend:
//!
//! * NAPOT `pmpaddr` encoding round-trips — encode then decode is the
//!   identity for every legal `(base, size)`, and the encoded entry's
//!   observable match set is exactly `[base, base + size)`;
//! * `napot_cover` is total and sound — for any window it yields a
//!   naturally aligned power-of-two cover containing the window, never
//!   below the 8-byte granule;
//! * TOR matching is total — any anchor/bound pair either matches
//!   exactly `[lo, hi)` or (zero-length / inverted) matches nothing,
//!   and either way the check never panics and lower entries still
//!   decide;
//! * deny-by-default — against a reference model of the
//!   lowest-entry-wins priority rule, any U-mode access matched by no
//!   entry is denied and the same M-mode access is allowed.
//!
//! As in the MPU suite, property bodies are plain functions so panics
//! shrink well, and the `proptest!` blocks stay small.

#![recursion_limit = "256"]

use opec_armv7m::MemRegion;
use opec_pmp::{
    napot_addr, napot_cover, napot_decode, Pmp, PmpAccess, PmpEntry, PmpMode, PrivMode,
    NAPOT_MIN_SIZE, PMP_ENTRIES,
};
use proptest::prelude::*;

/// A legal NAPOT region: power-of-two size in 8..=1 MiB, base aligned
/// to the size, placed in one of the interesting address spaces.
fn napot_region() -> impl Strategy<Value = (u32, u32)> {
    (3u32..21, 0u32..64, prop_oneof![Just(0x0800_0000u32), Just(0x2000_0000), Just(0x4000_0000)])
        .prop_map(|(exp, slot, space)| {
            let size = 1u32 << exp;
            (space + slot * size, size)
        })
}

/// Encode→decode is the identity, and the encoded entry matches
/// exactly `[base, base + size)` under a single-entry PMP.
fn check_napot_round_trip(base: u32, size: u32) {
    let addr = napot_addr(base, size);
    assert_eq!(napot_decode(addr), (base, size), "pmpaddr {addr:#010x}");

    let mut pmp = Pmp::new();
    pmp.set(0, PmpEntry { r: true, w: true, x: false, mode: PmpMode::Napot, addr });
    for probe in [base, base + size / 2, base + size - 1] {
        assert!(
            pmp.check(probe, 1, PmpAccess::Read, PrivMode::User),
            "byte {probe:#010x} inside [{base:#010x}, +{size:#x}) must match"
        );
    }
    assert!(!pmp.check(base.wrapping_sub(1), 1, PmpAccess::Read, PrivMode::User));
    if let Some(end) = base.checked_add(size) {
        assert!(!pmp.check(end, 1, PmpAccess::Read, PrivMode::User));
    }
}

/// `napot_cover` yields an aligned power-of-two cover of the window,
/// at or above the hardware's 8-byte granule.
fn check_napot_cover(window: MemRegion) {
    let (base, size) = napot_cover(window);
    assert!(size.is_power_of_two(), "{size:#x}");
    assert!(size >= NAPOT_MIN_SIZE);
    assert_eq!(base % size, 0, "cover base {base:#010x} not aligned to {size:#x}");
    assert!(base <= window.base);
    let covered = base.checked_add(size).is_none_or(|end| window.end() <= end);
    assert!(covered, "cover [{base:#010x}, +{size:#x}) misses window {window:?}");
    // And the cover is encodable: the round trip holds for it.
    assert_eq!(napot_decode(napot_addr(base, size)), (base, size));
}

/// TOR totality: whatever the anchor/bound pair, the check agrees with
/// the interval predicate `lo < hi && lo <= addr < hi` — zero-length
/// and inverted pairs match nothing, and an entry behind the pair
/// still decides.
fn check_tor_totality(anchor: u32, bound: u32, probe: u32) {
    let anchor = anchor & !3;
    let bound = bound & !3;
    let mut pmp = Pmp::new();
    pmp.set(0, PmpEntry { r: false, w: false, x: false, mode: PmpMode::Off, addr: anchor >> 2 });
    pmp.set(1, PmpEntry { r: true, w: true, x: false, mode: PmpMode::Tor, addr: bound >> 2 });
    let in_range = anchor < bound && probe >= anchor && probe < bound;
    assert_eq!(
        pmp.check(probe, 1, PmpAccess::Write, PrivMode::User),
        in_range,
        "probe {probe:#010x} vs TOR [{anchor:#010x}, {bound:#010x})"
    );
    // M-mode is never constrained by the pair.
    assert!(pmp.check(probe, 1, PmpAccess::Write, PrivMode::Machine));
    // Entries behind a dead pair still decide: a fresh TOR pair from 0
    // to near the top of the address space grants the read the dead
    // pair could not. (The anchor must be its own `Off` entry — a TOR
    // lower bound comes from the *previous* entry's addr, which here is
    // the dead pair's `bound`.)
    if anchor >= bound {
        pmp.set(2, PmpEntry { r: false, w: false, x: false, mode: PmpMode::Off, addr: 0 });
        pmp.set(
            3,
            PmpEntry { r: true, w: false, x: false, mode: PmpMode::Tor, addr: u32::MAX >> 2 },
        );
        if probe < (u32::MAX >> 2) << 2 {
            assert!(pmp.check(probe, 1, PmpAccess::Read, PrivMode::User));
        }
    }
}

/// One random PMP entry (arbitrary mode, permissions, and placement).
fn arb_entry() -> impl Strategy<Value = PmpEntry> {
    (any::<bool>(), any::<bool>(), any::<bool>(), 0u8..4, any::<u32>()).prop_map(
        |(r, w, x, mode, addr)| {
            let mode = match mode {
                0 => PmpMode::Off,
                1 => PmpMode::Tor,
                2 => PmpMode::Na4,
                _ => PmpMode::Napot,
            };
            PmpEntry { r, w, x, mode, addr }
        },
    )
}

/// Reference model of one byte-check: walk entries lowest-first, the
/// first whose range contains the byte decides; no match falls back to
/// the privilege default. Mirrors the privileged-ISA wording
/// independently of the implementation's range caching.
fn model_check(entries: &[PmpEntry], addr: u32, access: PmpAccess, mode: PrivMode) -> bool {
    for (i, e) in entries.iter().enumerate() {
        let range = match e.mode {
            PmpMode::Off => None,
            PmpMode::Na4 => {
                let base = e.addr << 2;
                base.checked_add(4).map(|end| (base, end))
            }
            PmpMode::Napot => {
                let (base, size) = napot_decode(e.addr);
                base.checked_add(size).map(|end| (base, end))
            }
            PmpMode::Tor => {
                let lo = if i == 0 { 0 } else { entries[i - 1].addr << 2 };
                let hi = e.addr << 2;
                (lo < hi).then_some((lo, hi))
            }
        };
        if let Some((lo, hi)) = range {
            if addr >= lo && addr < hi {
                return match access {
                    PmpAccess::Read => e.r,
                    PmpAccess::Write => e.w,
                    PmpAccess::Exec => e.x,
                };
            }
        }
    }
    mode == PrivMode::Machine
}

/// Deny-by-default against the model: for any random entry file and
/// probe, the implementation and the model agree in both privilege
/// modes — in particular, a byte no entry matches is denied to U-mode
/// and allowed to M-mode.
fn check_against_model(entries: &[PmpEntry], addr: u32, access_sel: u8) {
    let mut pmp = Pmp::new();
    for (i, e) in entries.iter().enumerate() {
        pmp.set(i, *e);
    }
    let access = match access_sel % 3 {
        0 => PmpAccess::Read,
        1 => PmpAccess::Write,
        _ => PmpAccess::Exec,
    };
    for mode in [PrivMode::User, PrivMode::Machine] {
        assert_eq!(
            pmp.check(addr, 1, access, mode),
            model_check(entries, addr, access, mode),
            "{access:?} {mode:?} at {addr:#010x} over {entries:?}"
        );
    }
}

proptest! {
    #[test]
    fn napot_addr_round_trips_and_matches_exactly(region in napot_region()) {
        let (base, size) = region;
        check_napot_round_trip(base, size);
    }

    #[test]
    fn napot_cover_is_aligned_sound_and_encodable(
        base in any::<u32>(),
        size in 1u32..0x2_0000,
    ) {
        // Keep the window inside the address space so `end()` is sane.
        let base = base.min(u32::MAX - size);
        check_napot_cover(MemRegion::new(base, size));
    }

    #[test]
    fn tor_pairs_are_total_over_anchor_bound_and_probe(
        anchor in any::<u32>(),
        bound in any::<u32>(),
        probe in any::<u32>(),
    ) {
        check_tor_totality(anchor, bound, probe);
    }

    #[test]
    fn lowest_entry_priority_and_default_deny_match_the_model(
        entries in proptest::collection::vec(arb_entry(), 0..PMP_ENTRIES),
        addr in any::<u32>(),
        access_sel in any::<u8>(),
    ) {
        check_against_model(&entries, addr, access_sel);
    }
}
