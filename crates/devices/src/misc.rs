//! Configuration-class peripherals: RCC (clock control), DMA
//! controllers, and general-purpose timers.
//!
//! These exist because the real HAL init paths (`System_Init`,
//! `Uart_Init`, ...) configure them, and OPEC must grant each operation
//! access to exactly the peripherals it configures. Their register
//! behaviour is storage plus a couple of self-clearing ready bits.

use opec_armv7m::mem::MemRegion;
use opec_armv7m::MmioDevice;

/// Reset and clock control. Writes stick; the PLL-ready flag (offset
/// 0x00, bit 25) reads as set once the PLL-on bit (bit 24) was written.
#[derive(Clone)]
pub struct Rcc {
    base: u32,
    cr: u32,
    regs: [u32; 32],
}

impl Rcc {
    /// Creates the RCC at `base`.
    pub fn new(base: u32) -> Rcc {
        Rcc { base, cr: 0, regs: [0; 32] }
    }
}

impl MmioDevice for Rcc {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn clone_box(&self) -> Option<Box<dyn MmioDevice>> {
        Some(Box::new(self.clone()))
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
    fn copy_state_from(&mut self, src: &dyn MmioDevice) -> bool {
        opec_armv7m::copy_device_state(self, src)
    }
    fn name(&self) -> &str {
        "RCC"
    }

    fn region(&self) -> MemRegion {
        MemRegion::new(self.base, 0x400)
    }

    fn read(&mut self, offset: u32, _len: u32) -> u32 {
        if offset == 0 {
            // PLLRDY mirrors PLLON.
            self.cr | ((self.cr >> 24) & 1) << 25
        } else {
            self.regs.get((offset / 4) as usize).copied().unwrap_or(0)
        }
    }

    fn write(&mut self, offset: u32, _len: u32, value: u32) {
        if offset == 0 {
            self.cr = value;
        } else if let Some(slot) = self.regs.get_mut((offset / 4) as usize) {
            *slot = value;
        }
    }
}

/// A DMA controller modelled as a register file; channel-enable bits
/// complete instantly (transfer-complete flag at offset 0x00).
#[derive(Clone)]
pub struct Dma {
    name: String,
    base: u32,
    regs: [u32; 64],
    complete: u32,
}

impl Dma {
    /// Creates a DMA controller at `base`.
    pub fn new(name: impl Into<String>, base: u32) -> Dma {
        Dma { name: name.into(), base, regs: [0; 64], complete: 0 }
    }
}

impl MmioDevice for Dma {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn clone_box(&self) -> Option<Box<dyn MmioDevice>> {
        Some(Box::new(self.clone()))
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
    fn copy_state_from(&mut self, src: &dyn MmioDevice) -> bool {
        opec_armv7m::copy_device_state(self, src)
    }
    fn name(&self) -> &str {
        &self.name
    }

    fn region(&self) -> MemRegion {
        MemRegion::new(self.base, 0x400)
    }

    fn read(&mut self, offset: u32, _len: u32) -> u32 {
        if offset == 0 {
            self.complete
        } else {
            self.regs.get((offset / 4) as usize).copied().unwrap_or(0)
        }
    }

    fn write(&mut self, offset: u32, _len: u32, value: u32) {
        if offset == 0x04 {
            // Channel enable: transfers are instantaneous in the model.
            self.complete |= value;
        } else if let Some(slot) = self.regs.get_mut((offset / 4) as usize) {
            *slot = value;
        }
    }
}

/// A plain register file: every word offset is storage. Used for
/// configuration-only peripherals (PWR, EXTI-style blocks) whose only
/// observable behaviour is retaining what firmware wrote.
#[derive(Clone)]
pub struct RegFile {
    name: String,
    base: u32,
    regs: [u32; 64],
}

impl RegFile {
    /// Creates a register file at `base` with a 0x400 window.
    pub fn new(name: impl Into<String>, base: u32) -> RegFile {
        RegFile { name: name.into(), base, regs: [0; 64] }
    }
}

impl MmioDevice for RegFile {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn clone_box(&self) -> Option<Box<dyn MmioDevice>> {
        Some(Box::new(self.clone()))
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
    fn copy_state_from(&mut self, src: &dyn MmioDevice) -> bool {
        opec_armv7m::copy_device_state(self, src)
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn region(&self) -> MemRegion {
        MemRegion::new(self.base, 0x400)
    }
    fn read(&mut self, offset: u32, _len: u32) -> u32 {
        self.regs.get((offset / 4) as usize).copied().unwrap_or(0)
    }
    fn write(&mut self, offset: u32, _len: u32, value: u32) {
        if let Some(slot) = self.regs.get_mut((offset / 4) as usize) {
            *slot = value;
        }
    }
}

/// A free-running timer; `CNT` (offset 0x24) advances with machine time
/// divided by the prescaler (offset 0x28, default 1).
#[derive(Clone)]
pub struct Timer {
    name: String,
    base: u32,
    cycles: u64,
    prescaler: u32,
    cr: u32,
}

impl Timer {
    /// Creates a timer at `base`.
    pub fn new(name: impl Into<String>, base: u32) -> Timer {
        Timer { name: name.into(), base, cycles: 0, prescaler: 1, cr: 0 }
    }
}

impl MmioDevice for Timer {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn clone_box(&self) -> Option<Box<dyn MmioDevice>> {
        Some(Box::new(self.clone()))
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
    fn copy_state_from(&mut self, src: &dyn MmioDevice) -> bool {
        opec_armv7m::copy_device_state(self, src)
    }
    fn name(&self) -> &str {
        &self.name
    }

    fn region(&self) -> MemRegion {
        MemRegion::new(self.base, 0x400)
    }

    fn read(&mut self, offset: u32, _len: u32) -> u32 {
        match offset {
            0x00 => self.cr,
            0x24 => (self.cycles / u64::from(self.prescaler.max(1))) as u32,
            0x28 => self.prescaler,
            _ => 0,
        }
    }

    fn write(&mut self, offset: u32, _len: u32, value: u32) {
        match offset {
            0x00 => self.cr = value,
            0x28 => self.prescaler = value.max(1),
            _ => {}
        }
    }

    fn tick(&mut self, cycles: u64) {
        if self.cr & 1 != 0 {
            self.cycles += cycles;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rcc_pll_ready_follows_pll_on() {
        let mut rcc = Rcc::new(0x4002_3800);
        assert_eq!(rcc.read(0x00, 4) & (1 << 25), 0);
        rcc.write(0x00, 4, 1 << 24);
        assert_ne!(rcc.read(0x00, 4) & (1 << 25), 0);
    }

    #[test]
    fn rcc_registers_are_storage() {
        let mut rcc = Rcc::new(0x4002_3800);
        rcc.write(0x30, 4, 0xFFFF);
        assert_eq!(rcc.read(0x30, 4), 0xFFFF);
    }

    #[test]
    fn dma_enable_completes_instantly() {
        let mut dma = Dma::new("DMA2", 0x4002_6400);
        assert_eq!(dma.read(0x00, 4), 0);
        dma.write(0x04, 4, 0b101);
        assert_eq!(dma.read(0x00, 4), 0b101);
    }

    #[test]
    fn regfile_is_storage() {
        let mut r = RegFile::new("PWR", 0x4000_7000);
        r.write(0x00, 4, 0x4000);
        assert_eq!(r.read(0x00, 4), 0x4000);
        assert_eq!(r.read(0x3C, 4), 0);
    }

    #[test]
    fn timer_counts_when_enabled() {
        let mut t = Timer::new("TIM2", 0x4000_0000);
        t.tick(100);
        assert_eq!(t.read(0x24, 4), 0); // disabled
        t.write(0x00, 4, 1);
        t.tick(100);
        assert_eq!(t.read(0x24, 4), 100);
        t.write(0x28, 4, 10);
        t.tick(100);
        assert_eq!(t.read(0x24, 4), 20);
    }
}
