//! LCD controller model (LTDC-flavoured).
//!
//! | Offset | Register | Behaviour |
//! |--------|----------|-----------|
//! | 0x00   | `CTRL`   | bit0 enable |
//! | 0x04   | `X`      | cursor column |
//! | 0x08   | `Y`      | cursor row |
//! | 0x0C   | `PIXEL`  | write paints at (X, Y) and advances X |
//! | 0x10   | `STATUS` | bit0 vsync (toggles every [`Lcd::VSYNC_CYCLES`]) |
//! | 0x14   | `BRIGHT` | backlight brightness (fade effects write this) |
//!
//! The framebuffer is host-visible so tests can assert on rendered
//! pictures; the workloads only need "pixels were written" semantics.

use opec_armv7m::mem::MemRegion;
use opec_armv7m::MmioDevice;

/// A small LCD panel.
#[derive(Clone)]
pub struct Lcd {
    base: u32,
    /// Panel width in pixels.
    pub width: u32,
    /// Panel height in pixels.
    pub height: u32,
    fb: Vec<u32>,
    x: u32,
    y: u32,
    ctrl: u32,
    bright: u32,
    cycles: u64,
    /// Total pixels painted since reset.
    pub pixels_written: u64,
}

impl Lcd {
    /// Cycles per vsync-flag toggle.
    pub const VSYNC_CYCLES: u64 = 10_000;

    /// Creates an LCD at `base`.
    pub fn new(base: u32, width: u32, height: u32) -> Lcd {
        Lcd {
            base,
            width,
            height,
            fb: vec![0; (width * height) as usize],
            x: 0,
            y: 0,
            ctrl: 0,
            bright: 0,
            cycles: 0,
            pixels_written: 0,
        }
    }

    /// Host view of pixel (x, y).
    pub fn pixel(&self, x: u32, y: u32) -> Option<u32> {
        if x < self.width && y < self.height {
            Some(self.fb[(y * self.width + x) as usize])
        } else {
            None
        }
    }

    /// Current backlight brightness (fade effects are observable here).
    pub fn brightness(&self) -> u32 {
        self.bright
    }
}

impl MmioDevice for Lcd {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn clone_box(&self) -> Option<Box<dyn MmioDevice>> {
        Some(Box::new(self.clone()))
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
    fn copy_state_from(&mut self, src: &dyn MmioDevice) -> bool {
        opec_armv7m::copy_device_state(self, src)
    }
    fn name(&self) -> &str {
        "LCD"
    }

    fn region(&self) -> MemRegion {
        MemRegion::new(self.base, 0x400)
    }

    fn read(&mut self, offset: u32, _len: u32) -> u32 {
        match offset {
            0x00 => self.ctrl,
            0x04 => self.x,
            0x08 => self.y,
            0x10 => u32::from((self.cycles / Lcd::VSYNC_CYCLES).is_multiple_of(2)),
            0x14 => self.bright,
            _ => 0,
        }
    }

    fn write(&mut self, offset: u32, _len: u32, value: u32) {
        match offset {
            0x00 => self.ctrl = value,
            0x04 => self.x = value,
            0x08 => self.y = value,
            0x0C => {
                if self.x < self.width && self.y < self.height {
                    self.fb[(self.y * self.width + self.x) as usize] = value;
                    self.pixels_written += 1;
                }
                self.x += 1;
                if self.x >= self.width {
                    self.x = 0;
                    self.y = (self.y + 1) % self.height.max(1);
                }
            }
            0x14 => self.bright = value,
            _ => {}
        }
    }

    fn tick(&mut self, cycles: u64) {
        self.cycles += cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixels_paint_and_advance() {
        let mut lcd = Lcd::new(0x4001_6800, 4, 2);
        lcd.write(0x04, 4, 0);
        lcd.write(0x08, 4, 0);
        lcd.write(0x0C, 4, 0xFF0000);
        lcd.write(0x0C, 4, 0x00FF00);
        assert_eq!(lcd.pixel(0, 0), Some(0xFF0000));
        assert_eq!(lcd.pixel(1, 0), Some(0x00FF00));
        assert_eq!(lcd.pixels_written, 2);
    }

    #[test]
    fn cursor_wraps_rows() {
        let mut lcd = Lcd::new(0x4001_6800, 2, 2);
        for i in 0..4 {
            lcd.write(0x0C, 4, i);
        }
        assert_eq!(lcd.pixel(0, 1), Some(2));
        assert_eq!(lcd.pixel(1, 1), Some(3));
    }

    #[test]
    fn brightness_is_observable() {
        let mut lcd = Lcd::new(0x4001_6800, 2, 2);
        lcd.write(0x14, 4, 55);
        assert_eq!(lcd.brightness(), 55);
        assert_eq!(lcd.read(0x14, 4), 55);
    }

    #[test]
    fn vsync_toggles_with_time() {
        let mut lcd = Lcd::new(0x4001_6800, 2, 2);
        let v0 = lcd.read(0x10, 4);
        lcd.tick(Lcd::VSYNC_CYCLES);
        let v1 = lcd.read(0x10, 4);
        assert_ne!(v0, v1);
    }

    #[test]
    fn out_of_range_pixel_read_is_none() {
        let lcd = Lcd::new(0x4001_6800, 2, 2);
        assert_eq!(lcd.pixel(5, 0), None);
    }
}
