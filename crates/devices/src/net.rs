//! Ethernet MAC model for the TCP-Echo workload.
//!
//! | Offset | Register    | Behaviour |
//! |--------|-------------|-----------|
//! | 0x00   | `RX_STATUS` | 0 when idle; length of the head frame otherwise |
//! | 0x04   | `RX_DATA`   | 32-bit FIFO over the head frame; popping past the end discards it |
//! | 0x08   | `TX_DATA`   | 32-bit FIFO into the staging frame |
//! | 0x0C   | `TX_CTRL`   | write N = commit the first N bytes of the staged frame |
//!
//! The host pushes raw frames with [`EthMac::push_frame`] and collects
//! transmissions with [`EthMac::take_tx_frames`]. The lwIP-like stack in
//! `opec-apps` parses these frames itself — the MAC only moves bytes.

use std::collections::VecDeque;

use opec_armv7m::mem::MemRegion;
use opec_armv7m::MmioDevice;

/// A polled Ethernet MAC with host-visible frame queues.
#[derive(Clone)]
pub struct EthMac {
    base: u32,
    rx: VecDeque<Vec<u8>>,
    rx_cursor: usize,
    tx_stage: Vec<u8>,
    tx_done: Vec<Vec<u8>>,
    frame_gap: u64,
    elapsed: u64,
    next_frame_at: u64,
}

impl EthMac {
    /// Creates a MAC at `base`.
    pub fn new(base: u32) -> EthMac {
        EthMac {
            base,
            rx: VecDeque::new(),
            rx_cursor: 0,
            tx_stage: Vec::new(),
            tx_done: Vec::new(),
            frame_gap: 0,
            elapsed: 0,
            next_frame_at: 0,
        }
    }

    /// Paces reception: after a frame is consumed, the next one becomes
    /// visible only `cycles` machine cycles later (inter-arrival time).
    pub fn with_frame_gap(mut self, cycles: u64) -> EthMac {
        self.frame_gap = cycles;
        self
    }

    fn frame_visible(&self) -> bool {
        !self.rx.is_empty() && self.elapsed >= self.next_frame_at
    }

    /// Host side: enqueues a received frame.
    pub fn push_frame(&mut self, frame: &[u8]) {
        self.rx.push_back(frame.to_vec());
    }

    /// Host side: drains transmitted frames.
    pub fn take_tx_frames(&mut self) -> Vec<Vec<u8>> {
        core::mem::take(&mut self.tx_done)
    }

    /// Frames still queued for reception.
    pub fn rx_pending(&self) -> usize {
        self.rx.len()
    }
}

impl MmioDevice for EthMac {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn clone_box(&self) -> Option<Box<dyn MmioDevice>> {
        Some(Box::new(self.clone()))
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
    fn copy_state_from(&mut self, src: &dyn MmioDevice) -> bool {
        opec_armv7m::copy_device_state(self, src)
    }
    fn name(&self) -> &str {
        "ETH"
    }

    fn region(&self) -> MemRegion {
        MemRegion::new(self.base, 0x400)
    }

    fn read(&mut self, offset: u32, _len: u32) -> u32 {
        match offset {
            0x00 if self.frame_visible() => self.rx.front().map(|f| f.len() as u32).unwrap_or(0),
            0x04 => {
                if !self.frame_visible() {
                    return 0;
                }
                let Some(frame) = self.rx.front() else { return 0 };
                let mut word = [0u8; 4];
                for (i, b) in word.iter_mut().enumerate() {
                    *b = frame.get(self.rx_cursor + i).copied().unwrap_or(0);
                }
                self.rx_cursor += 4;
                if self.rx_cursor >= frame.len() {
                    self.rx.pop_front();
                    self.rx_cursor = 0;
                    self.next_frame_at = self.elapsed + self.frame_gap;
                }
                u32::from_le_bytes(word)
            }
            _ => 0,
        }
    }

    fn write(&mut self, offset: u32, _len: u32, value: u32) {
        match offset {
            0x08 => self.tx_stage.extend_from_slice(&value.to_le_bytes()),
            0x0C => {
                let n = (value as usize).min(self.tx_stage.len());
                let frame = self.tx_stage[..n].to_vec();
                self.tx_stage.clear();
                self.tx_done.push(frame);
            }
            _ => {}
        }
    }

    fn irq_pending(&self) -> bool {
        self.frame_visible()
    }

    fn tick(&mut self, cycles: u64) {
        self.elapsed += cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_reception_word_by_word() {
        let mut mac = EthMac::new(0x4002_8000);
        mac.push_frame(&[1, 2, 3, 4, 5, 6]);
        assert_eq!(mac.read(0x00, 4), 6);
        assert_eq!(mac.read(0x04, 4), u32::from_le_bytes([1, 2, 3, 4]));
        assert_eq!(mac.read(0x04, 4), u32::from_le_bytes([5, 6, 0, 0]));
        // Frame consumed.
        assert_eq!(mac.read(0x00, 4), 0);
    }

    #[test]
    fn multiple_frames_queue() {
        let mut mac = EthMac::new(0x4002_8000);
        mac.push_frame(&[0xAA; 4]);
        mac.push_frame(&[0xBB; 4]);
        assert_eq!(mac.rx_pending(), 2);
        let _ = mac.read(0x04, 4);
        assert_eq!(mac.rx_pending(), 1);
        assert_eq!(mac.read(0x04, 4), 0xBBBB_BBBB);
        assert_eq!(mac.rx_pending(), 0);
    }

    #[test]
    fn transmission_commits_staged_bytes() {
        let mut mac = EthMac::new(0x4002_8000);
        mac.write(0x08, 4, u32::from_le_bytes(*b"ping"));
        mac.write(0x08, 4, u32::from_le_bytes(*b"pong"));
        mac.write(0x0C, 4, 6); // commit first 6 bytes
        let frames = mac.take_tx_frames();
        assert_eq!(frames, vec![b"pingpo".to_vec()]);
    }

    #[test]
    fn rx_irq_reflects_queue() {
        let mut mac = EthMac::new(0x4002_8000);
        assert!(!mac.irq_pending());
        mac.push_frame(&[0; 4]);
        assert!(mac.irq_pending());
    }

    #[test]
    fn frame_gap_paces_arrival() {
        let mut mac = EthMac::new(0x4002_8000).with_frame_gap(500);
        mac.push_frame(&[1, 2, 3, 4]);
        mac.push_frame(&[5, 6, 7, 8]);
        // First frame visible immediately; consume it.
        assert_eq!(mac.read(0x00, 4), 4);
        let _ = mac.read(0x04, 4);
        // Second frame held back for the inter-arrival gap.
        assert_eq!(mac.read(0x00, 4), 0);
        mac.tick(499);
        assert_eq!(mac.read(0x00, 4), 0);
        mac.tick(1);
        assert_eq!(mac.read(0x00, 4), 4);
    }

    #[test]
    fn reading_empty_rx_yields_zero() {
        let mut mac = EthMac::new(0x4002_8000);
        assert_eq!(mac.read(0x04, 4), 0);
    }
}
