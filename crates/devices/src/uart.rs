//! UART model (USART-style registers).
//!
//! Register map (offsets from the device base):
//!
//! | Offset | Register | Behaviour |
//! |--------|----------|-----------|
//! | 0x00   | `SR`     | bit0 RXNE (rx data ready), bit1 TXE (always 1) |
//! | 0x04   | `DR`     | read pops the rx queue; write appends to the tx log |
//! | 0x08   | `BRR`    | baud-rate divisor (plain storage) |
//! | 0x0C   | `CR1`    | control (bit0 enable, bit5 RXNEIE) |
//!
//! The host (test harness / workload driver) feeds input with
//! [`Uart::feed`] and observes output with [`Uart::take_tx`].

use std::collections::VecDeque;

use opec_armv7m::mem::MemRegion;
use opec_armv7m::MmioDevice;

/// `SR` bit: receive data register not empty.
pub const SR_RXNE: u32 = 1 << 0;
/// `SR` bit: transmit data register empty.
pub const SR_TXE: u32 = 1 << 1;

/// A polled UART with host-visible FIFOs.
#[derive(Clone)]
pub struct Uart {
    name: String,
    base: u32,
    rx: VecDeque<u8>,
    tx: Vec<u8>,
    brr: u32,
    cr1: u32,
    byte_delay: u64,
    elapsed: u64,
    ready_at: u64,
}

impl Uart {
    /// Creates a UART at `base` with a 0x400-byte window. Bytes are
    /// available immediately; see [`Uart::with_byte_delay`] for baud
    /// pacing.
    pub fn new(name: impl Into<String>, base: u32) -> Uart {
        Uart {
            name: name.into(),
            base,
            rx: VecDeque::new(),
            tx: Vec::new(),
            brr: 0,
            cr1: 0,
            byte_delay: 0,
            elapsed: 0,
            ready_at: 0,
        }
    }

    /// Paces reception: each byte becomes visible `cycles` machine
    /// cycles after the previous one was read — the wire-time the
    /// paper's I/O-bound workloads spend waiting on.
    pub fn with_byte_delay(mut self, cycles: u64) -> Uart {
        self.byte_delay = cycles;
        self
    }

    fn rx_ready(&self) -> bool {
        !self.rx.is_empty() && self.elapsed >= self.ready_at
    }

    /// Host side: queues bytes for the firmware to receive.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.rx.extend(bytes.iter().copied());
    }

    /// Host side: drains everything the firmware transmitted.
    pub fn take_tx(&mut self) -> Vec<u8> {
        core::mem::take(&mut self.tx)
    }

    /// Bytes still waiting in the receive queue.
    pub fn rx_pending(&self) -> usize {
        self.rx.len()
    }
}

impl MmioDevice for Uart {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn clone_box(&self) -> Option<Box<dyn MmioDevice>> {
        Some(Box::new(self.clone()))
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
    fn copy_state_from(&mut self, src: &dyn MmioDevice) -> bool {
        opec_armv7m::copy_device_state(self, src)
    }
    fn name(&self) -> &str {
        &self.name
    }

    fn region(&self) -> MemRegion {
        MemRegion::new(self.base, 0x400)
    }

    fn read(&mut self, offset: u32, _len: u32) -> u32 {
        match offset {
            0x00 => {
                let mut sr = SR_TXE;
                if self.rx_ready() {
                    sr |= SR_RXNE;
                }
                sr
            }
            0x04 => {
                if !self.rx_ready() {
                    return 0;
                }
                let b = self.rx.pop_front().unwrap_or(0);
                self.ready_at = self.elapsed + self.byte_delay;
                u32::from(b)
            }
            0x08 => self.brr,
            0x0C => self.cr1,
            _ => 0,
        }
    }

    fn write(&mut self, offset: u32, _len: u32, value: u32) {
        match offset {
            0x04 => self.tx.push((value & 0xFF) as u8),
            0x08 => self.brr = value,
            0x0C => self.cr1 = value,
            _ => {}
        }
    }

    fn irq_pending(&self) -> bool {
        // Level-triggered: RXNEIE enabled and a byte is ready.
        self.cr1 & (1 << 5) != 0 && self.rx_ready()
    }

    fn tick(&mut self, cycles: u64) {
        self.elapsed += cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rx_path_pops_in_order() {
        let mut u = Uart::new("USART2", 0x4000_4400);
        assert_eq!(u.read(0x00, 4) & SR_RXNE, 0);
        u.feed(b"ok");
        assert_eq!(u.read(0x00, 4) & SR_RXNE, SR_RXNE);
        assert_eq!(u.read(0x04, 4), u32::from(b'o'));
        assert_eq!(u.read(0x04, 4), u32::from(b'k'));
        assert_eq!(u.read(0x00, 4) & SR_RXNE, 0);
        // Reading an empty DR yields 0 rather than stalling.
        assert_eq!(u.read(0x04, 4), 0);
    }

    #[test]
    fn tx_path_collects_writes() {
        let mut u = Uart::new("USART2", 0x4000_4400);
        for b in b"UNLOCKED" {
            u.write(0x04, 4, u32::from(*b));
        }
        assert_eq!(u.take_tx(), b"UNLOCKED");
        assert!(u.take_tx().is_empty());
    }

    #[test]
    fn txe_always_set() {
        let mut u = Uart::new("u", 0x4000_4400);
        assert_eq!(u.read(0x00, 4) & SR_TXE, SR_TXE);
    }

    #[test]
    fn irq_is_level_triggered_on_rxneie() {
        let mut u = Uart::new("u", 0x4000_4400);
        u.feed(b"x");
        // Data ready but the interrupt is masked.
        assert!(!u.irq_pending());
        // Enabling RXNEIE raises the line for already-queued data.
        u.write(0x0C, 4, 1 << 5);
        assert!(u.irq_pending());
        // Draining the data register clears the source.
        let _ = u.read(0x04, 4);
        assert!(!u.irq_pending());
    }

    #[test]
    fn byte_delay_paces_reception() {
        let mut u = Uart::new("u", 0x4000_4400).with_byte_delay(100);
        u.feed(b"ab");
        // First byte available immediately.
        assert_eq!(u.read(0x00, 4) & SR_RXNE, SR_RXNE);
        assert_eq!(u.read(0x04, 4), u32::from(b'a'));
        // Second byte is on the wire for 100 cycles.
        assert_eq!(u.read(0x00, 4) & SR_RXNE, 0);
        assert_eq!(u.read(0x04, 4), 0);
        u.tick(99);
        assert_eq!(u.read(0x00, 4) & SR_RXNE, 0);
        u.tick(1);
        assert_eq!(u.read(0x00, 4) & SR_RXNE, SR_RXNE);
        assert_eq!(u.read(0x04, 4), u32::from(b'b'));
    }

    #[test]
    fn config_registers_are_storage() {
        let mut u = Uart::new("u", 0x4000_4400);
        u.write(0x08, 4, 0x683);
        assert_eq!(u.read(0x08, 4), 0x683);
    }
}
