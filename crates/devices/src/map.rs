//! The "datasheet": peripheral address windows for the simulated SoC,
//! and a helper that installs the standard device set into a machine.
//!
//! OPEC-Compiler identifies peripheral accesses by comparing constant
//! addresses against this list (paper Section 4.2: "We obtain the
//! addresses of peripherals from the SoC datasheet"). The layout follows
//! the STM32F4 family: APB/AHB windows of 0x400 bytes, AHB2 devices for
//! USB and DCMI, and core peripherals on the PPB.

use opec_armv7m::Machine;

use crate::camera::Dcmi;
use crate::display::Lcd;
use crate::gpio::{Button, Gpio};
use crate::misc::{Dma, Rcc, RegFile, Timer};
use crate::net::EthMac;
use crate::storage::{SdCard, UsbMsc};
use crate::uart::Uart;

/// One datasheet row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeripheralInfo {
    /// Peripheral name.
    pub name: &'static str,
    /// Window base address.
    pub base: u32,
    /// Window size in bytes.
    pub size: u32,
    /// Core peripherals live on the PPB (privileged access only).
    pub is_core: bool,
}

/// Well-known base addresses.
pub mod bases {
    /// TIM2 general-purpose timer.
    pub const TIM2: u32 = 0x4000_0000;
    /// TIM3 general-purpose timer.
    pub const TIM3: u32 = 0x4000_0400;
    /// USART2 (PinLock's console).
    pub const USART2: u32 = 0x4000_4400;
    /// Power control.
    pub const PWR: u32 = 0x4000_7000;
    /// USART1.
    pub const USART1: u32 = 0x4001_1000;
    /// SDIO (SD card controller).
    pub const SDIO: u32 = 0x4001_2C00;
    /// EXTI (and the user-button latch in our model).
    pub const EXTI: u32 = 0x4001_3C00;
    /// LCD controller.
    pub const LCD: u32 = 0x4001_6800;
    /// GPIO port A.
    pub const GPIOA: u32 = 0x4002_0000;
    /// GPIO port B.
    pub const GPIOB: u32 = 0x4002_0400;
    /// GPIO port C.
    pub const GPIOC: u32 = 0x4002_0800;
    /// GPIO port D.
    pub const GPIOD: u32 = 0x4002_0C00;
    /// Reset and clock control.
    pub const RCC: u32 = 0x4002_3800;
    /// DMA1 controller.
    pub const DMA1: u32 = 0x4002_6000;
    /// DMA2 controller.
    pub const DMA2: u32 = 0x4002_6400;
    /// Ethernet MAC.
    pub const ETH: u32 = 0x4002_8000;
    /// USB OTG FS (mass storage in our model).
    pub const USB: u32 = 0x5000_0000;
    /// DCMI camera interface.
    pub const DCMI: u32 = 0x5005_0000;
    /// DWT (core).
    pub const DWT: u32 = 0xE000_1000;
    /// SysTick (core).
    pub const SYSTICK: u32 = 0xE000_E010;
    /// NVIC (core).
    pub const NVIC: u32 = 0xE000_E100;
    /// System control block (core).
    pub const SCB: u32 = 0xE000_ED00;
    /// MPU register window (core).
    pub const MPU: u32 = 0xE000_ED90;
}

/// The full datasheet table.
pub fn datasheet() -> Vec<PeripheralInfo> {
    use bases::*;
    vec![
        PeripheralInfo { name: "TIM2", base: TIM2, size: 0x400, is_core: false },
        PeripheralInfo { name: "TIM3", base: TIM3, size: 0x400, is_core: false },
        PeripheralInfo { name: "USART2", base: USART2, size: 0x400, is_core: false },
        PeripheralInfo { name: "PWR", base: PWR, size: 0x400, is_core: false },
        PeripheralInfo { name: "USART1", base: USART1, size: 0x400, is_core: false },
        PeripheralInfo { name: "SDIO", base: SDIO, size: 0x400, is_core: false },
        PeripheralInfo { name: "EXTI", base: EXTI, size: 0x400, is_core: false },
        PeripheralInfo { name: "LCD", base: LCD, size: 0x400, is_core: false },
        PeripheralInfo { name: "GPIOA", base: GPIOA, size: 0x400, is_core: false },
        PeripheralInfo { name: "GPIOB", base: GPIOB, size: 0x400, is_core: false },
        PeripheralInfo { name: "GPIOC", base: GPIOC, size: 0x400, is_core: false },
        PeripheralInfo { name: "GPIOD", base: GPIOD, size: 0x400, is_core: false },
        PeripheralInfo { name: "RCC", base: RCC, size: 0x400, is_core: false },
        PeripheralInfo { name: "DMA1", base: DMA1, size: 0x400, is_core: false },
        PeripheralInfo { name: "DMA2", base: DMA2, size: 0x400, is_core: false },
        PeripheralInfo { name: "ETH", base: ETH, size: 0x400, is_core: false },
        PeripheralInfo { name: "USB", base: USB, size: 0x400, is_core: false },
        PeripheralInfo { name: "DCMI", base: DCMI, size: 0x400, is_core: false },
        PeripheralInfo { name: "DWT", base: DWT, size: 0x1000, is_core: true },
        PeripheralInfo { name: "SYSTICK", base: SYSTICK, size: 0x10, is_core: true },
        PeripheralInfo { name: "NVIC", base: NVIC, size: 0x300, is_core: true },
        PeripheralInfo { name: "SCB", base: SCB, size: 0x90, is_core: true },
        PeripheralInfo { name: "MPU", base: MPU, size: 0x20, is_core: true },
    ]
}

/// Standard device-set parameters.
#[derive(Debug, Clone, Copy)]
pub struct DeviceConfig {
    /// SD card capacity in 512-byte blocks.
    pub sd_blocks: u32,
    /// USB disk capacity in blocks.
    pub usb_blocks: u32,
    /// LCD panel width.
    pub lcd_width: u32,
    /// LCD panel height.
    pub lcd_height: u32,
    /// Camera frame size in bytes.
    pub camera_frame_bytes: u32,
    /// UART byte pacing in machine cycles (wire time per byte).
    pub uart_byte_delay: u64,
    /// SD card busy period per block command.
    pub sd_busy_cycles: u64,
    /// USB disk busy period per block command.
    pub usb_busy_cycles: u64,
    /// Ethernet inter-frame arrival gap.
    pub eth_frame_gap: u64,
    /// Camera exposure/transfer delay per capture.
    pub dcmi_capture_delay: u64,
}

impl Default for DeviceConfig {
    fn default() -> DeviceConfig {
        DeviceConfig {
            sd_blocks: 1024,
            usb_blocks: 256,
            lcd_width: 64,
            lcd_height: 48,
            camera_frame_bytes: 1024,
            // Timing defaults approximate real interface speeds on a
            // 168 MHz part: ~100 kbaud UART, sub-millisecond block
            // commands, sub-millisecond packet pacing. They make the
            // workloads I/O-bound, as the paper observes its apps are.
            uart_byte_delay: 12_000,
            sd_busy_cycles: 100_000,
            usb_busy_cycles: 100_000,
            eth_frame_gap: 100_000,
            dcmi_capture_delay: 200_000,
        }
    }
}

/// Installs the full standard device set (UARTs, SD card, LCD, Ethernet,
/// camera, USB disk, button, GPIO ports, RCC, DMA, timers) into a
/// machine. Devices are later retrieved by name through
/// [`Machine::device_mut`].
pub fn install_standard_devices(machine: &mut Machine, cfg: DeviceConfig) -> Result<(), String> {
    use bases::*;
    machine.add_device(Box::new(Timer::new("TIM2", TIM2)))?;
    machine.add_device(Box::new(Timer::new("TIM3", TIM3)))?;
    machine
        .add_device(Box::new(Uart::new("USART2", USART2).with_byte_delay(cfg.uart_byte_delay)))?;
    machine
        .add_device(Box::new(Uart::new("USART1", USART1).with_byte_delay(cfg.uart_byte_delay)))?;
    machine.add_device(Box::new(
        SdCard::new(SDIO, cfg.sd_blocks).with_busy_cycles(cfg.sd_busy_cycles),
    ))?;
    machine.add_device(Box::new(Button::new(EXTI, 0)))?;
    machine.add_device(Box::new(Lcd::new(LCD, cfg.lcd_width, cfg.lcd_height)))?;
    machine.add_device(Box::new(Gpio::new("GPIOA", GPIOA)))?;
    machine.add_device(Box::new(Gpio::new("GPIOB", GPIOB)))?;
    machine.add_device(Box::new(Gpio::new("GPIOC", GPIOC)))?;
    machine.add_device(Box::new(Gpio::new("GPIOD", GPIOD)))?;
    machine.add_device(Box::new(RegFile::new("PWR", PWR)))?;
    machine.add_device(Box::new(Rcc::new(RCC)))?;
    machine.add_device(Box::new(Dma::new("DMA1", DMA1)))?;
    machine.add_device(Box::new(Dma::new("DMA2", DMA2)))?;
    machine.add_device(Box::new(EthMac::new(ETH).with_frame_gap(cfg.eth_frame_gap)))?;
    machine.add_device(Box::new(
        UsbMsc::new(USB, cfg.usb_blocks).with_busy_cycles(cfg.usb_busy_cycles),
    ))?;
    machine.add_device(Box::new(
        Dcmi::new(DCMI, cfg.camera_frame_bytes).with_capture_delay(cfg.dcmi_capture_delay),
    ))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use opec_armv7m::{Board, Mode};

    #[test]
    fn datasheet_windows_do_not_overlap() {
        let list = datasheet();
        for (i, a) in list.iter().enumerate() {
            for b in &list[i + 1..] {
                let disjoint = a.base + a.size <= b.base || b.base + b.size <= a.base;
                assert!(disjoint, "{} overlaps {}", a.name, b.name);
            }
        }
    }

    #[test]
    fn core_flag_matches_ppb_addresses() {
        for p in datasheet() {
            assert_eq!(
                p.is_core,
                p.base >= 0xE000_0000,
                "{} core flag inconsistent with its address",
                p.name
            );
        }
    }

    #[test]
    fn standard_devices_install_cleanly() {
        let mut m = Machine::new(Board::stm32479i_eval());
        install_standard_devices(&mut m, DeviceConfig::default()).unwrap();
        // A couple of spot checks through the bus.
        assert!(m.load(bases::USART2, 4, Mode::Privileged).is_ok());
        assert!(m.load(bases::SDIO + 0x0C, 4, Mode::Privileged).is_ok());
        assert!(m.load(bases::LCD, 4, Mode::Privileged).is_ok());
        assert!(m.device_mut("DCMI").is_some());
        assert!(m.device_mut("NOPE").is_none());
    }

    #[test]
    fn uart_reachable_through_machine_bus() {
        let mut m = Machine::new(Board::stm32f4_discovery());
        install_standard_devices(&mut m, DeviceConfig::default()).unwrap();
        // Feed a byte host-side, then read DR through the bus.
        {
            let dev = m.device_mut("USART2").unwrap();
            // Downcast via the register interface: feed using write is
            // not possible, so use the typed handle instead.
            let _ = dev;
        }
        // Drive through registers directly: DR write then take_tx is
        // device-internal; here we only verify SR reads as TXE.
        let sr = m.load(bases::USART2, 4, Mode::Privileged).unwrap();
        assert_eq!(sr & crate::uart::SR_TXE, crate::uart::SR_TXE);
    }
}
