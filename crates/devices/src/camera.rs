//! DCMI camera model for the Camera workload.
//!
//! | Offset | Register | Behaviour |
//! |--------|----------|-----------|
//! | 0x00   | `CTRL`   | write 1 = start a capture |
//! | 0x04   | `STATUS` | bit0 frame ready |
//! | 0x08   | `DATA`   | 32-bit FIFO over the captured frame |
//! | 0x0C   | `SIZE`   | frame size in bytes |
//!
//! Captured frames are deterministic pseudo-images so a saved photo can
//! be verified byte-for-byte by the harness.

use opec_armv7m::mem::MemRegion;
use opec_armv7m::MmioDevice;

/// The DCMI camera interface.
#[derive(Clone)]
pub struct Dcmi {
    base: u32,
    frame_bytes: u32,
    ready: bool,
    cursor: u32,
    capture_count: u32,
    capture_delay: u64,
    elapsed: u64,
    ready_at: u64,
}

impl Dcmi {
    /// Creates a camera producing frames of `frame_bytes` bytes
    /// (rounded up to a word).
    pub fn new(base: u32, frame_bytes: u32) -> Dcmi {
        Dcmi {
            base,
            frame_bytes: (frame_bytes + 3) & !3,
            ready: false,
            cursor: 0,
            capture_count: 0,
            capture_delay: 0,
            elapsed: 0,
            ready_at: 0,
        }
    }

    /// Models exposure/DMA time: a capture's frame becomes ready only
    /// `cycles` machine cycles after `CTRL` starts it.
    pub fn with_capture_delay(mut self, cycles: u64) -> Dcmi {
        self.capture_delay = cycles;
        self
    }

    /// The deterministic pixel word at byte offset `off` of capture `n`.
    pub fn expected_word(capture: u32, off: u32) -> u32 {
        (capture.wrapping_mul(0x9E37_79B9)) ^ off.wrapping_mul(0x85EB_CA6B)
    }

    /// Number of captures started.
    pub fn captures(&self) -> u32 {
        self.capture_count
    }
}

impl MmioDevice for Dcmi {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn clone_box(&self) -> Option<Box<dyn MmioDevice>> {
        Some(Box::new(self.clone()))
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
    fn copy_state_from(&mut self, src: &dyn MmioDevice) -> bool {
        opec_armv7m::copy_device_state(self, src)
    }
    fn name(&self) -> &str {
        "DCMI"
    }

    fn region(&self) -> MemRegion {
        MemRegion::new(self.base, 0x400)
    }

    fn read(&mut self, offset: u32, _len: u32) -> u32 {
        match offset {
            0x04 => u32::from(self.ready && self.elapsed >= self.ready_at),
            0x08 => {
                if !self.ready || self.elapsed < self.ready_at {
                    return 0;
                }
                let v = Dcmi::expected_word(self.capture_count, self.cursor);
                self.cursor += 4;
                if self.cursor >= self.frame_bytes {
                    self.ready = false;
                }
                v
            }
            0x0C => self.frame_bytes,
            _ => 0,
        }
    }

    fn write(&mut self, offset: u32, _len: u32, value: u32) {
        if offset == 0x00 && value == 1 {
            self.capture_count += 1;
            self.ready = true;
            self.cursor = 0;
            self.ready_at = self.elapsed + self.capture_delay;
        }
    }

    fn tick(&mut self, cycles: u64) {
        self.elapsed += cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_produces_deterministic_frame() {
        let mut cam = Dcmi::new(0x5005_0000, 16);
        assert_eq!(cam.read(0x04, 4), 0);
        cam.write(0x00, 4, 1);
        assert_eq!(cam.read(0x04, 4), 1);
        for off in (0..16).step_by(4) {
            assert_eq!(cam.read(0x08, 4), Dcmi::expected_word(1, off));
        }
        // Frame drained.
        assert_eq!(cam.read(0x04, 4), 0);
        assert_eq!(cam.captures(), 1);
    }

    #[test]
    fn second_capture_differs() {
        let mut cam = Dcmi::new(0x5005_0000, 8);
        cam.write(0x00, 4, 1);
        let a = cam.read(0x08, 4);
        let _ = cam.read(0x08, 4);
        cam.write(0x00, 4, 1);
        let b = cam.read(0x08, 4);
        assert_ne!(a, b);
    }

    #[test]
    fn data_without_capture_is_zero() {
        let mut cam = Dcmi::new(0x5005_0000, 8);
        assert_eq!(cam.read(0x08, 4), 0);
    }

    #[test]
    fn capture_delay_models_exposure() {
        let mut cam = Dcmi::new(0x5005_0000, 8).with_capture_delay(1000);
        cam.write(0x00, 4, 1);
        assert_eq!(cam.read(0x04, 4), 0, "not ready during exposure");
        assert_eq!(cam.read(0x08, 4), 0);
        cam.tick(1000);
        assert_eq!(cam.read(0x04, 4), 1);
        assert_eq!(cam.read(0x08, 4), Dcmi::expected_word(1, 0));
    }

    #[test]
    fn size_register_reports_frame_bytes() {
        let mut cam = Dcmi::new(0x5005_0000, 13);
        assert_eq!(cam.read(0x0C, 4), 16); // rounded to a word
    }
}
