//! Peripheral device models for the OPEC evaluation boards.
//!
//! The paper's workloads exercise a UART (PinLock), an SD card over SDIO
//! (Animation, FatFs-uSD, LCD-uSD), an LCD controller (Animation,
//! LCD-uSD), an Ethernet MAC (TCP-Echo), a DCMI camera and USB
//! mass-storage disk (Camera), buttons/GPIO, and the core peripherals on
//! the PPB (SysTick, DWT, NVIC, SCB, MPU). This crate provides
//! register-level models of each, implementing
//! [`opec_armv7m::MmioDevice`], plus [`map`] — the "datasheet" address
//! list OPEC-Compiler matches constant addresses against.
//!
//! Register interfaces are deliberately simple (status/data/control
//! ports) but behave like real hardware in the ways the isolation layer
//! cares about: every access is memory-mapped, devices sit in the
//! Peripheral address region, and firmware must poll status flags and
//! move data through data ports one word at a time.

#![warn(missing_docs)]

pub mod camera;
pub mod display;
pub mod gpio;
pub mod map;
pub mod misc;
pub mod net;
pub mod storage;
pub mod uart;

pub use camera::Dcmi;
pub use display::Lcd;
pub use gpio::{Button, Gpio};
pub use map::{datasheet, install_standard_devices, DeviceConfig, PeripheralInfo};
pub use misc::{Dma, Rcc, RegFile, Timer};
pub use net::EthMac;
pub use storage::{BlockDevice, SdCard, UsbMsc};
pub use uart::Uart;
