//! GPIO port and user-button models.
//!
//! GPIO register map (a thin slice of the STM32 one):
//!
//! | Offset | Register | Behaviour |
//! |--------|----------|-----------|
//! | 0x00   | `MODER`  | pin mode bits (plain storage) |
//! | 0x10   | `IDR`    | input data (host-settable pin states) |
//! | 0x14   | `ODR`    | output data |
//!
//! [`Button`] is a host-side convenience wrapping one input pin.

use opec_armv7m::mem::MemRegion;
use opec_armv7m::MmioDevice;

/// One GPIO port (16 pins).
#[derive(Clone)]
pub struct Gpio {
    name: String,
    base: u32,
    moder: u32,
    idr: u32,
    odr: u32,
}

impl Gpio {
    /// Creates a port at `base`.
    pub fn new(name: impl Into<String>, base: u32) -> Gpio {
        Gpio { name: name.into(), base, moder: 0, idr: 0, odr: 0 }
    }

    /// Host side: drives input pin `pin` to `high`.
    pub fn set_input(&mut self, pin: u8, high: bool) {
        if high {
            self.idr |= 1 << pin;
        } else {
            self.idr &= !(1 << pin);
        }
    }

    /// Host side: reads output pin `pin`.
    pub fn output(&self, pin: u8) -> bool {
        self.odr & (1 << pin) != 0
    }
}

impl MmioDevice for Gpio {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn clone_box(&self) -> Option<Box<dyn MmioDevice>> {
        Some(Box::new(self.clone()))
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
    fn copy_state_from(&mut self, src: &dyn MmioDevice) -> bool {
        opec_armv7m::copy_device_state(self, src)
    }
    fn name(&self) -> &str {
        &self.name
    }

    fn region(&self) -> MemRegion {
        MemRegion::new(self.base, 0x400)
    }

    fn read(&mut self, offset: u32, _len: u32) -> u32 {
        match offset {
            0x00 => self.moder,
            0x10 => self.idr,
            0x14 => self.odr,
            _ => 0,
        }
    }

    fn write(&mut self, offset: u32, _len: u32, value: u32) {
        match offset {
            0x00 => self.moder = value,
            0x14 => self.odr = value,
            _ => {}
        }
    }
}

/// A debounced user button on one GPIO pin, scripted from the host.
///
/// The Camera workload waits for a press; tests schedule one with
/// [`Button::press_after`].
#[derive(Clone)]
pub struct Button {
    gpio_base: u32,
    pin: u8,
    press_at: Option<u64>,
    elapsed: u64,
    pressed: bool,
}

impl Button {
    /// Creates a button on `pin` of the GPIO port at `gpio_base`.
    /// The button device itself owns a small window above the port for
    /// its latch register at offset 0: reads return 1 once pressed.
    pub fn new(gpio_base: u32, pin: u8) -> Button {
        Button { gpio_base, pin, press_at: None, elapsed: 0, pressed: false }
    }

    /// Schedules a press after `cycles` machine cycles.
    pub fn press_after(&mut self, cycles: u64) {
        self.press_at = Some(cycles);
    }

    /// Presses the button immediately.
    pub fn press_now(&mut self) {
        self.pressed = true;
    }
}

impl MmioDevice for Button {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn clone_box(&self) -> Option<Box<dyn MmioDevice>> {
        Some(Box::new(self.clone()))
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
    fn copy_state_from(&mut self, src: &dyn MmioDevice) -> bool {
        opec_armv7m::copy_device_state(self, src)
    }
    fn name(&self) -> &str {
        "BUTTON"
    }

    fn region(&self) -> MemRegion {
        // The latch register lives in the EXTI-adjacent window.
        MemRegion::new(self.gpio_base, 0x20)
    }

    fn read(&mut self, offset: u32, _len: u32) -> u32 {
        match offset {
            0x00 => u32::from(self.pressed),
            0x04 => u32::from(self.pin),
            _ => 0,
        }
    }

    fn write(&mut self, offset: u32, _len: u32, value: u32) {
        // Writing 1 to the latch clears it (write-one-to-clear).
        if offset == 0x00 && value == 1 {
            self.pressed = false;
        }
    }

    fn tick(&mut self, cycles: u64) {
        self.elapsed += cycles;
        if let Some(at) = self.press_at {
            if self.elapsed >= at {
                self.pressed = true;
                self.press_at = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpio_input_output() {
        let mut g = Gpio::new("GPIOA", 0x4002_0000);
        g.set_input(3, true);
        assert_eq!(g.read(0x10, 4), 1 << 3);
        g.write(0x14, 4, 1 << 5);
        assert!(g.output(5));
        assert!(!g.output(4));
    }

    #[test]
    fn gpio_moder_is_storage() {
        let mut g = Gpio::new("GPIOA", 0x4002_0000);
        g.write(0x00, 4, 0x5555);
        assert_eq!(g.read(0x00, 4), 0x5555);
    }

    #[test]
    fn button_press_after_delay() {
        let mut b = Button::new(0x4001_3C00, 0);
        b.press_after(100);
        assert_eq!(b.read(0x00, 4), 0);
        b.tick(50);
        assert_eq!(b.read(0x00, 4), 0);
        b.tick(60);
        assert_eq!(b.read(0x00, 4), 1);
        // Write-one-to-clear.
        b.write(0x00, 4, 1);
        assert_eq!(b.read(0x00, 4), 0);
    }

    #[test]
    fn button_immediate_press() {
        let mut b = Button::new(0x4001_3C00, 13);
        b.press_now();
        assert_eq!(b.read(0x00, 4), 1);
        assert_eq!(b.read(0x04, 4), 13);
    }
}
