//! Block-storage models: the SD card (SDIO) and the USB mass-storage
//! disk used by the Camera workload.
//!
//! Both expose the same simple block interface:
//!
//! | Offset | Register | Behaviour |
//! |--------|----------|-----------|
//! | 0x00   | `CMD`    | write 1 = read block, 2 = write block |
//! | 0x04   | `ARG`    | block number |
//! | 0x08   | `DATA`   | 32-bit FIFO port into the 512-byte block buffer |
//! | 0x0C   | `STATUS` | bit0 ready (always), bit1 error (bad block) |
//!
//! A read command fills the internal buffer from the backing store and
//! resets the FIFO cursor; a write command flushes the buffer to the
//! backing store. Firmware moves data one word at a time through `DATA`,
//! exactly the polling pattern the real HAL drivers use between DMA
//! transfers.

use std::collections::HashMap;

use opec_armv7m::mem::MemRegion;
use opec_armv7m::MmioDevice;

/// Block size in bytes.
pub const BLOCK_SIZE: usize = 512;
/// Words per block through the `DATA` FIFO.
pub const BLOCK_WORDS: usize = BLOCK_SIZE / 4;

/// `CMD` value: fill the buffer from block `ARG`.
pub const CMD_READ_BLOCK: u32 = 1;
/// `CMD` value: flush the buffer to block `ARG`.
pub const CMD_WRITE_BLOCK: u32 = 2;

/// Sparse block store shared by both storage devices.
#[derive(Debug, Clone, Default)]
pub struct BlockDevice {
    blocks: HashMap<u32, [u8; BLOCK_SIZE]>,
    capacity_blocks: u32,
}

impl BlockDevice {
    /// Creates a store with the given capacity.
    pub fn new(capacity_blocks: u32) -> BlockDevice {
        BlockDevice { blocks: HashMap::new(), capacity_blocks }
    }

    /// Reads a block (zeroes if never written).
    pub fn read_block(&self, n: u32) -> Option<[u8; BLOCK_SIZE]> {
        if n >= self.capacity_blocks {
            return None;
        }
        Some(self.blocks.get(&n).copied().unwrap_or([0; BLOCK_SIZE]))
    }

    /// Writes a block.
    pub fn write_block(&mut self, n: u32, data: [u8; BLOCK_SIZE]) -> bool {
        if n >= self.capacity_blocks {
            return false;
        }
        self.blocks.insert(n, data);
        true
    }

    /// Number of blocks that have been written.
    pub fn written_blocks(&self) -> usize {
        self.blocks.len()
    }
}

/// Shared register-level implementation.
#[derive(Clone)]
struct BlockPort {
    store: BlockDevice,
    buffer: [u8; BLOCK_SIZE],
    cursor: usize,
    arg: u32,
    error: bool,
    busy_cycles: u64,
    elapsed: u64,
    busy_until: u64,
}

impl BlockPort {
    fn new(store: BlockDevice) -> BlockPort {
        BlockPort {
            store,
            buffer: [0; BLOCK_SIZE],
            cursor: 0,
            arg: 0,
            error: false,
            busy_cycles: 0,
            elapsed: 0,
            busy_until: 0,
        }
    }

    fn tick(&mut self, cycles: u64) {
        self.elapsed += cycles;
    }

    fn read(&mut self, offset: u32) -> u32 {
        match offset {
            0x08 => {
                let w = self.cursor.min(BLOCK_SIZE - 4);
                let v = u32::from_le_bytes(self.buffer[w..w + 4].try_into().unwrap());
                self.cursor = (self.cursor + 4).min(BLOCK_SIZE);
                v
            }
            0x0C => {
                let ready = self.elapsed >= self.busy_until;
                u32::from(ready) | u32::from(self.error) << 1
            }
            0x04 => self.arg,
            _ => 0,
        }
    }

    fn write(&mut self, offset: u32, value: u32) {
        match offset {
            0x00 => {
                // Every command starts a busy period (media access
                // time); STATUS.ready clears until it elapses.
                self.busy_until = self.elapsed + self.busy_cycles;
                match value {
                    CMD_READ_BLOCK => match self.store.read_block(self.arg) {
                        Some(b) => {
                            self.buffer = b;
                            self.cursor = 0;
                            self.error = false;
                        }
                        None => self.error = true,
                    },
                    CMD_WRITE_BLOCK => {
                        self.error = !self.store.write_block(self.arg, self.buffer);
                        self.cursor = 0;
                    }
                    // Other command codes (init/status commands) are
                    // accepted but have no data effect.
                    _ => {}
                }
            }
            0x04 => {
                // Selecting a block starts a new transaction: the FIFO
                // cursor rewinds.
                self.arg = value;
                self.cursor = 0;
            }
            0x08 => {
                let w = self.cursor.min(BLOCK_SIZE - 4);
                self.buffer[w..w + 4].copy_from_slice(&value.to_le_bytes());
                self.cursor = (self.cursor + 4).min(BLOCK_SIZE);
            }
            _ => {}
        }
    }
}

/// The SD card behind the SDIO controller window.
#[derive(Clone)]
pub struct SdCard {
    port: BlockPort,
    base: u32,
}

impl SdCard {
    /// Creates an SD card model at `base` with `capacity_blocks` blocks.
    pub fn new(base: u32, capacity_blocks: u32) -> SdCard {
        SdCard { port: BlockPort::new(BlockDevice::new(capacity_blocks)), base }
    }

    /// Models media access time: each block command keeps the card busy
    /// for `cycles` machine cycles.
    pub fn with_busy_cycles(mut self, cycles: u64) -> SdCard {
        self.port.busy_cycles = cycles;
        self
    }

    /// Pre-loads a block (e.g. pictures or a FAT image prepared by the
    /// host).
    pub fn preload(&mut self, block: u32, data: &[u8]) {
        let mut b = [0u8; BLOCK_SIZE];
        b[..data.len().min(BLOCK_SIZE)].copy_from_slice(&data[..data.len().min(BLOCK_SIZE)]);
        self.port.store.write_block(block, b);
    }

    /// Host-side view of a block.
    pub fn block(&self, n: u32) -> Option<[u8; BLOCK_SIZE]> {
        self.port.store.read_block(n)
    }
}

impl MmioDevice for SdCard {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn clone_box(&self) -> Option<Box<dyn MmioDevice>> {
        Some(Box::new(self.clone()))
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
    fn copy_state_from(&mut self, src: &dyn MmioDevice) -> bool {
        opec_armv7m::copy_device_state(self, src)
    }
    fn name(&self) -> &str {
        "SDIO"
    }
    fn region(&self) -> MemRegion {
        MemRegion::new(self.base, 0x400)
    }
    fn read(&mut self, offset: u32, _len: u32) -> u32 {
        self.port.read(offset)
    }
    fn write(&mut self, offset: u32, _len: u32, value: u32) {
        self.port.write(offset, value)
    }
    fn tick(&mut self, cycles: u64) {
        self.port.tick(cycles)
    }
}

/// The USB mass-storage disk (Camera saves captured photos to it).
#[derive(Clone)]
pub struct UsbMsc {
    port: BlockPort,
    base: u32,
}

impl UsbMsc {
    /// Creates a USB disk at `base`.
    pub fn new(base: u32, capacity_blocks: u32) -> UsbMsc {
        UsbMsc { port: BlockPort::new(BlockDevice::new(capacity_blocks)), base }
    }

    /// Models media access time per block command.
    pub fn with_busy_cycles(mut self, cycles: u64) -> UsbMsc {
        self.port.busy_cycles = cycles;
        self
    }

    /// Host-side view of a block.
    pub fn block(&self, n: u32) -> Option<[u8; BLOCK_SIZE]> {
        self.port.store.read_block(n)
    }

    /// Number of blocks written by the firmware.
    pub fn written_blocks(&self) -> usize {
        self.port.store.written_blocks()
    }
}

impl MmioDevice for UsbMsc {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn clone_box(&self) -> Option<Box<dyn MmioDevice>> {
        Some(Box::new(self.clone()))
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
    fn copy_state_from(&mut self, src: &dyn MmioDevice) -> bool {
        opec_armv7m::copy_device_state(self, src)
    }
    fn name(&self) -> &str {
        "USB_MSC"
    }
    fn region(&self) -> MemRegion {
        MemRegion::new(self.base, 0x400)
    }
    fn read(&mut self, offset: u32, _len: u32) -> u32 {
        self.port.read(offset)
    }
    fn write(&mut self, offset: u32, _len: u32, value: u32) {
        self.port.write(offset, value)
    }
    fn tick(&mut self, cycles: u64) {
        self.port.tick(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_store_bounds() {
        let mut bd = BlockDevice::new(4);
        assert!(bd.write_block(3, [1; BLOCK_SIZE]));
        assert!(!bd.write_block(4, [1; BLOCK_SIZE]));
        assert_eq!(bd.read_block(3).unwrap()[0], 1);
        assert_eq!(bd.read_block(0).unwrap()[0], 0);
        assert!(bd.read_block(9).is_none());
    }

    #[test]
    fn sd_read_block_through_fifo() {
        let mut sd = SdCard::new(0x4001_2C00, 16);
        let mut data = [0u8; BLOCK_SIZE];
        data[0..4].copy_from_slice(&0xAABBCCDDu32.to_le_bytes());
        data[4..8].copy_from_slice(&0x11223344u32.to_le_bytes());
        sd.preload(2, &data);
        sd.write(0x04, 4, 2); // ARG = block 2
        sd.write(0x00, 4, CMD_READ_BLOCK);
        assert_eq!(sd.read(0x0C, 4) & 0b10, 0); // no error
        assert_eq!(sd.read(0x08, 4), 0xAABBCCDD);
        assert_eq!(sd.read(0x08, 4), 0x11223344);
    }

    #[test]
    fn sd_write_block_roundtrip() {
        let mut sd = SdCard::new(0x4001_2C00, 16);
        sd.write(0x04, 4, 5);
        for i in 0..BLOCK_WORDS as u32 {
            sd.write(0x08, 4, i);
        }
        sd.write(0x00, 4, CMD_WRITE_BLOCK);
        let b = sd.block(5).unwrap();
        assert_eq!(u32::from_le_bytes(b[0..4].try_into().unwrap()), 0);
        assert_eq!(u32::from_le_bytes(b[8..12].try_into().unwrap()), 2);
        // Read it back through the FIFO.
        sd.write(0x00, 4, CMD_READ_BLOCK);
        assert_eq!(sd.read(0x08, 4), 0);
        assert_eq!(sd.read(0x08, 4), 1);
    }

    #[test]
    fn out_of_range_block_sets_error() {
        let mut sd = SdCard::new(0x4001_2C00, 2);
        sd.write(0x04, 4, 99);
        sd.write(0x00, 4, CMD_READ_BLOCK);
        assert_eq!(sd.read(0x0C, 4) & 0b10, 0b10);
    }

    #[test]
    fn busy_cycles_gate_the_ready_flag() {
        let mut sd = SdCard::new(0x4001_2C00, 4).with_busy_cycles(2000);
        sd.write(0x04, 4, 1);
        sd.write(0x00, 4, CMD_READ_BLOCK);
        assert_eq!(sd.read(0x0C, 4) & 1, 0, "busy right after the command");
        sd.tick(1999);
        assert_eq!(sd.read(0x0C, 4) & 1, 0);
        sd.tick(1);
        assert_eq!(sd.read(0x0C, 4) & 1, 1);
    }

    #[test]
    fn usb_disk_counts_writes() {
        let mut usb = UsbMsc::new(0x5000_0000, 64);
        assert_eq!(usb.written_blocks(), 0);
        usb.write(0x04, 4, 0);
        usb.write(0x08, 4, 0xFEED);
        usb.write(0x00, 4, CMD_WRITE_BLOCK);
        assert_eq!(usb.written_blocks(), 1);
        assert_eq!(u32::from_le_bytes(usb.block(0).unwrap()[0..4].try_into().unwrap()), 0xFEED);
    }
}
