//! The ACES compartment-switching runtime.
//!
//! Implements [`Supervisor`]: on a cross-compartment call it reloads
//! the MPU with the callee compartment's data-region grants and merged
//! peripheral window; same-compartment calls are declined via
//! `wants_switch` and stay ordinary calls. Compartments whose resource
//! needs include core (PPB) peripherals run **privileged** — the
//! privilege lifting the OPEC paper criticises (Table 2's PAC column).
//!
//! Differences from OPEC that the evaluation measures:
//! * no global-variable shadowing → no sync cost, but merged regions
//!   over-grant (partition-time over-privilege);
//! * the whole stack stays accessible to every compartment (ACES's
//!   micro-emulator makes stack faults recoverable, so its effective
//!   permission is oversized — modelled here as a fully open stack);
//! * no MPU virtualization: each compartment's peripherals are fused
//!   into a single covering region, over-granting when they are spread
//!   out;
//! * no core-peripheral emulation: privilege lifting instead.

use opec_armv7m::mem::MemRegion;
use opec_armv7m::mpu::{region_size_for, MpuRegion, RegionAttr};
use opec_armv7m::{Board, FaultInfo, Machine, Mode};
use opec_ir::Module;
use opec_obs::{Event, Obs};
use opec_vm::{CpuContext, FaultFixup, OpId, Supervisor, SwitchRequest, TrapCause, TrapError};

use crate::regions::DataRegions;
use crate::strategy::Compartments;

/// Runtime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AcesStats {
    /// Cross-compartment switches performed.
    pub switches: u64,
    /// Calls that stayed within a compartment (no switch).
    pub same_comp_calls: u64,
}

/// The ACES runtime.
#[derive(Clone)]
pub struct AcesRuntime {
    comps: Compartments,
    regions: DataRegions,
    periph_region: Vec<Option<MpuRegion>>,
    privileged: Vec<bool>,
    board: Board,
    stack: MemRegion,
    main_comp: OpId,
    current: Vec<OpId>,
    obs: Obs,
    /// Counters for the evaluation.
    pub stats: AcesStats,
}

impl AcesRuntime {
    /// Creates the runtime from a compile output.
    pub fn new(
        module: &Module,
        comps: Compartments,
        regions: DataRegions,
        board: Board,
        stack: MemRegion,
        main_comp: OpId,
    ) -> AcesRuntime {
        // One covering peripheral region per compartment: the smallest
        // aligned power-of-two window spanning *all* its peripherals.
        let mut periph_region = Vec::with_capacity(comps.comps.len());
        let mut privileged = Vec::with_capacity(comps.comps.len());
        for c in &comps.comps {
            let windows: Vec<MemRegion> = c
                .resources
                .peripherals
                .iter()
                .map(|&pi| MemRegion::new(module.peripherals[pi].base, module.peripherals[pi].size))
                .collect();
            periph_region.push(covering_all(&windows));
            privileged.push(c.privileged);
        }
        AcesRuntime {
            comps,
            regions,
            periph_region,
            privileged,
            board,
            stack,
            main_comp,
            current: Vec::new(),
            obs: Obs::disabled(),
            stats: AcesStats::default(),
        }
    }

    /// The currently executing compartment.
    pub fn current_comp(&self) -> OpId {
        self.current.last().copied().unwrap_or(self.main_comp)
    }

    /// Read access to the compartmentalisation.
    pub fn comps(&self) -> &Compartments {
        &self.comps
    }

    /// Read access to the data-region assignment.
    pub fn regions(&self) -> &DataRegions {
        &self.regions
    }

    fn load_mpu_for(&self, machine: &mut Machine, comp: OpId) -> Result<(), String> {
        let mut regions: Vec<(usize, MpuRegion)> = vec![
            // Region 0: code + SRAM read-only background.
            (0, MpuRegion::new(0, 0x4000_0000, RegionAttr::priv_rw_unpriv_ro(true))),
            // Region 1: flash executable.
            (
                1,
                MpuRegion::new(
                    self.board.flash.base,
                    region_size_for(self.board.flash.size),
                    RegionAttr::read_only(false),
                ),
            ),
            // Region 2: the whole stack, read-write (oversized).
            (2, MpuRegion::new(self.stack.base, self.stack.size, RegionAttr::read_write_xn())),
        ];
        // Regions 3–6: granted data groups.
        let granted = self.regions.granted.get(&comp).cloned().unwrap_or_default();
        for (i, gi) in granted.iter().take(crate::regions::DATA_REGIONS).enumerate() {
            let r = self.regions.group_regions[*gi];
            regions.push((3 + i, MpuRegion::new(r.base, r.size, RegionAttr::read_write_xn())));
        }
        // Region 7: the merged peripheral window.
        if let Some(p) = self.periph_region[usize::from(comp)] {
            regions.push((7, p));
        }
        machine.clock.tick(opec_armv7m::clock::costs::MPU_REGION_WRITE * regions.len() as u64);
        self.obs.set_now(machine.clock.now());
        machine
            .mpu_mut()
            .load_regions(&regions)
            .map_err(|e| format!("ACES MPU programming: {e}"))?;
        self.obs.emit(|| Event::CompartmentMode {
            comp,
            privileged: self.privileged[usize::from(comp)],
        });
        Ok(())
    }

    fn mode_for(&self, comp: OpId) -> Mode {
        if self.privileged[usize::from(comp)] {
            Mode::Privileged
        } else {
            Mode::Unprivileged
        }
    }
}

/// The smallest MPU-legal region covering all windows (none → `None`).
fn covering_all(windows: &[MemRegion]) -> Option<MpuRegion> {
    let first = windows.first()?;
    let lo = windows.iter().map(|w| w.base).min().unwrap_or(first.base);
    let hi = windows.iter().map(|w| w.end()).max().unwrap_or(first.end());
    let mut size = region_size_for(hi - lo);
    loop {
        let base = lo & !(size - 1);
        if hi <= base.saturating_add(size) {
            return Some(MpuRegion::new(base, size, RegionAttr::read_write_xn()));
        }
        size = size.checked_mul(2)?;
    }
}

impl Supervisor for AcesRuntime {
    fn attach_obs(&mut self, obs: &Obs) {
        self.obs = obs.clone();
    }

    fn wants_switch(&mut self, op: u8) -> bool {
        if op == self.current_comp() {
            self.stats.same_comp_calls += 1;
            false
        } else {
            true
        }
    }

    fn on_reset(&mut self, machine: &mut Machine) -> Result<(), TrapError> {
        self.current = vec![self.main_comp];
        self.load_mpu_for(machine, self.main_comp)?;
        machine.mpu_mut().enabled = true;
        machine.mpu_mut().priv_default_enabled = true;
        machine.mode = self.mode_for(self.main_comp);
        Ok(())
    }

    fn on_operation_enter(
        &mut self,
        machine: &mut Machine,
        req: &mut SwitchRequest<'_>,
    ) -> Result<(), TrapError> {
        machine.clock.tick(opec_armv7m::clock::costs::SWITCH_FIXED + crate::ACES_SWITCH_CYCLES);
        self.stats.switches += 1;
        if usize::from(req.op) >= self.comps.comps.len() {
            return Err(TrapError::new(
                self.current_comp(),
                TrapCause::BadSwitch { detail: format!("unknown compartment id {}", req.op) },
            ));
        }
        self.load_mpu_for(machine, req.op)?;
        *req.app_mode = self.mode_for(req.op);
        self.current.push(req.op);
        Ok(())
    }

    fn on_operation_exit(
        &mut self,
        machine: &mut Machine,
        req: &mut SwitchRequest<'_>,
    ) -> Result<(), TrapError> {
        machine.clock.tick(opec_armv7m::clock::costs::SWITCH_FIXED + crate::ACES_SWITCH_CYCLES);
        let top = self.current.pop().ok_or_else(|| {
            TrapError::new(
                req.op,
                TrapCause::BadSwitch { detail: "ACES exit without enter".into() },
            )
        })?;
        if top != req.op {
            return Err(TrapError::new(
                req.op,
                TrapCause::BadSwitch {
                    detail: format!("ACES context mismatch: exiting {} on top of {top}", req.op),
                },
            ));
        }
        let back = self.current_comp();
        self.load_mpu_for(machine, back)?;
        *req.app_mode = self.mode_for(back);
        Ok(())
    }

    fn on_mem_fault(
        &mut self,
        _machine: &mut Machine,
        fault: FaultInfo,
        _cpu: &mut CpuContext,
    ) -> FaultFixup {
        FaultFixup::Abort(TrapError::new(
            self.current_comp(),
            TrapCause::PolicyDeniedMem { address: fault.address, write: fault.kind.is_write() },
        ))
    }

    fn on_bus_fault(
        &mut self,
        _machine: &mut Machine,
        fault: FaultInfo,
        _cpu: &mut CpuContext,
    ) -> FaultFixup {
        // ACES has no core-peripheral emulation: an unprivileged PPB
        // access in a non-lifted compartment is fatal.
        FaultFixup::Abort(TrapError::new(
            self.current_comp(),
            TrapCause::BusFault { address: fault.address },
        ))
    }

    fn on_quarantine(
        &mut self,
        machine: &mut Machine,
        comp: OpId,
        resume_mode: &mut Mode,
    ) -> Result<(), TrapError> {
        machine.clock.tick(opec_armv7m::clock::costs::SWITCH_FIXED + crate::ACES_SWITCH_CYCLES);
        if self.current.len() > 1 && self.current.last() == Some(&comp) {
            self.current.pop();
        }
        let back = self.current_comp();
        self.load_mpu_for(machine, back)?;
        *resume_mode = self.mode_for(back);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::build_aces_image;
    use crate::strategy::AcesStrategy;
    use opec_ir::{ModuleBuilder, Operand, Ty};
    use opec_vm::{RunOutcome, Vm, VmError};

    const FUEL: u64 = 10_000_000;

    fn boot(module: Module, strategy: AcesStrategy) -> Vm<AcesRuntime> {
        let board = Board::stm32f4_discovery();
        let out = build_aces_image(module, board, strategy).unwrap();
        let main = out.image.entry;
        let main_comp = out.comps.of(main);
        let rt = AcesRuntime::new(
            &out.image.module,
            out.comps,
            out.regions,
            board,
            out.stack,
            main_comp,
        );
        Vm::builder(Machine::new(board), out.image).supervisor(rt).build().unwrap()
    }

    fn sample() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let shared = mb.global("shared", Ty::I32, "main.c");
        let helper = mb.func("helper", vec![], Some(Ty::I32), "x.c", |fb| {
            let v = fb.load_global(shared, 0, 4);
            let v2 = fb.bin(opec_ir::BinOp::Add, Operand::Reg(v), Operand::Imm(1));
            fb.store_global(shared, 0, Operand::Reg(v2), 4);
            fb.ret(Operand::Reg(v2));
        });
        let local = mb.func("local_fn", vec![], None, "main.c", |fb| {
            fb.store_global(shared, 0, Operand::Imm(41), 4);
            fb.ret_void();
        });
        mb.func("main", vec![], Some(Ty::I32), "main.c", |fb| {
            fb.call_void(local, vec![]);
            let r = fb.call(helper, vec![]);
            fb.ret(Operand::Reg(r));
        });
        mb.finish()
    }

    #[test]
    fn cross_compartment_calls_switch_same_compartment_calls_do_not() {
        let mut vm = boot(sample(), AcesStrategy::FilenameNoOpt);
        match vm.run(FUEL).unwrap() {
            RunOutcome::Returned { value, .. } => assert_eq!(value, Some(42)),
            other => panic!("unexpected outcome {other:?}"),
        }
        // helper (x.c) is cross-compartment, local_fn (main.c) is not.
        assert_eq!(vm.supervisor.stats.switches, 1);
        assert_eq!(vm.supervisor.stats.same_comp_calls, 1);
    }

    #[test]
    fn granted_region_is_accessible_unneeded_memory_is_not() {
        let mut mb = ModuleBuilder::new("t");
        let own = mb.global("own", Ty::I32, "a.c");
        let attack = mb.func("attack", vec![], None, "a.c", |fb| {
            let p = fb.addr_of_global(own, 0);
            fb.store(Operand::Reg(p), Operand::Imm(1), 4); // fine
            let evil = fb.bin(opec_ir::BinOp::Add, Operand::Reg(p), Operand::Imm(0x8000));
            fb.store(Operand::Reg(evil), Operand::Imm(2), 4); // outside any grant
            fb.ret_void();
        });
        mb.func("main", vec![], None, "main.c", |fb| {
            fb.call_void(attack, vec![]);
            fb.halt();
            fb.ret_void();
        });
        let mut vm = boot(mb.finish(), AcesStrategy::FilenameNoOpt);
        match vm.run(FUEL).unwrap_err() {
            VmError::Aborted { trap, .. } => {
                let reason = trap.to_string();
                assert!(reason.contains("denied"), "{reason}")
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn lifted_compartment_runs_privileged_and_reaches_ppb() {
        let mut mb = ModuleBuilder::new("t");
        mb.peripheral("SysTick", 0xE000_E010, 0x10, true);
        let cfg = mb.func("tick_cfg", vec![], Some(Ty::I32), "sys.c", |fb| {
            fb.mmio_write(0xE000_E014, Operand::Imm(123), 4);
            let v = fb.mmio_read(0xE000_E014, 4);
            fb.ret(Operand::Reg(v));
        });
        mb.func("main", vec![], Some(Ty::I32), "main.c", |fb| {
            let v = fb.call(cfg, vec![]);
            fb.ret(Operand::Reg(v));
        });
        let mut vm = boot(mb.finish(), AcesStrategy::FilenameNoOpt);
        match vm.run(FUEL).unwrap() {
            RunOutcome::Returned { value, .. } => assert_eq!(value, Some(123)),
            other => panic!("unexpected outcome {other:?}"),
        }
        // No emulation in ACES: the access succeeded because the
        // compartment ran privileged, not through a fault.
        assert_eq!(vm.stats.faults_emulated, 0);
    }

    #[test]
    fn unprivileged_compartment_cannot_reach_ppb() {
        let mut mb = ModuleBuilder::new("t");
        // SysTick is NOT in the datasheet, so the analysis grants no
        // core peripheral and the compartment is not lifted.
        let zero_src = mb.global("zero_src", Ty::I32, "a.c");
        let t = mb.func("sneaky", vec![], None, "a.c", |fb| {
            let z = fb.load_global(zero_src, 0, 4);
            let addr = fb.bin(opec_ir::BinOp::Add, Operand::Reg(z), Operand::Imm(0xE000_E014));
            fb.store(Operand::Reg(addr), Operand::Imm(1), 4);
            fb.ret_void();
        });
        mb.func("main", vec![], None, "main.c", |fb| {
            fb.call_void(t, vec![]);
            fb.halt();
            fb.ret_void();
        });
        let mut vm = boot(mb.finish(), AcesStrategy::FilenameNoOpt);
        match vm.run(FUEL).unwrap_err() {
            VmError::Aborted { trap, .. } => {
                let reason = trap.to_string();
                assert!(reason.contains("bus fault"), "{reason}")
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn covering_all_spans_scattered_windows() {
        let r =
            covering_all(&[MemRegion::new(0x4000_0000, 0x400), MemRegion::new(0x4002_0000, 0x400)])
                .unwrap();
        assert!(r.range().contains(0x4000_0000));
        assert!(r.range().contains(0x4002_03FF));
        assert_eq!(r.base % r.size, 0);
        assert!(covering_all(&[]).is_none());
    }
}
