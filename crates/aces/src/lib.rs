//! ACES baseline: automatic compartments for embedded systems.
//!
//! A reimplementation of the comparison system from the OPEC paper's
//! evaluation (Clements et al., USENIX Security '18), at the fidelity
//! the comparison needs:
//!
//! * [`strategy`] — the three partitioning strategies the OPEC paper
//!   evaluates: **ACES1** (filename with merge optimisation), **ACES2**
//!   (filename without optimisation), **ACES3** (peripheral-based);
//! * [`regions`] — global variables grouped into contiguous memory
//!   regions by compartment-access signature, then *merged* whenever a
//!   compartment would need more data regions than the MPU offers —
//!   this merging is exactly the **partition-time over-privilege** the
//!   OPEC paper measures (Figure 3 / Figure 10);
//! * [`image`] — ACES image generation: fixed global addresses inside
//!   grouped regions, every function marked with its compartment so the
//!   VM raises switch events on cross-compartment calls;
//! * [`runtime`] — the compartment-switching runtime: MPU reload on
//!   each cross-compartment call, whole-stack accessibility (ACES's
//!   oversized stack permissions), one merged peripheral region, and
//!   **privilege lifting** for compartments that touch core peripherals
//!   (the paper's "Privileged Application Code" column in Table 2).

#![warn(missing_docs)]

pub mod image;
pub mod regions;
pub mod runtime;
pub mod strategy;

pub use image::{build_aces_image, AcesCompileOutput};
pub use regions::{DataRegions, RegionGroup};
pub use runtime::AcesRuntime;
pub use strategy::{AcesStrategy, Compartment, Compartments};

/// Modelled ACES runtime code size in bytes. ACES's runtime carries
/// the micro-emulator and its profiling-derived allow lists; the ACES
/// paper reports a markedly larger Flash cost than OPEC's monitor.
pub const ACES_RT_BYTES: u32 = 7200;

/// Modelled per-compartment Flash metadata: MPU configurations, the
/// data-region table, and the micro-emulator's stack allow-list.
pub const ACES_COMP_METADATA_BYTES: u32 = 256;

/// Modelled per-switch cycles beyond the exception entry/exit the VM
/// charges: ACES's switch walks the compartment descriptor in Flash,
/// validates the transition against the compartment graph, and
/// reprograms the full MPU region file — substantially more work than
/// OPEC's policy-indexed reload (the ACES paper reports multi-x
/// runtime overheads dominated by switching).
pub const ACES_SWITCH_CYCLES: u64 = 800;
