//! Global-variable region grouping and merging — the source of ACES's
//! partition-time over-privilege (OPEC paper, Section 3.1 / Figure 3).
//!
//! ACES rearranges global variables so that each *access signature*
//! (the set of compartments needing a variable) forms one contiguous
//! region. A compartment then needs one MPU region per signature group
//! it participates in. With only [`DATA_REGIONS`] MPU regions available
//! for data, compartments that participate in too many groups force
//! ACES to **merge** groups — the union of the signatures — granting
//! some compartments variables they never asked for. The per-
//! compartment set of *granted-but-unneeded* bytes is exactly the PT
//! metric of the paper's Equation 1.

use std::collections::{BTreeMap, BTreeSet};

use opec_armv7m::mem::MemRegion;
use opec_armv7m::mpu::{align_up, region_size_for};
use opec_ir::{GlobalId, Module};
use opec_vm::OpId;

use crate::strategy::Compartments;

/// MPU regions ACES can spend on data. ACES's layout dedicates regions
/// to the default flash/RAM maps, the stack, the compartment's code,
/// and its peripheral window, leaving **two** regions for data — the
/// scarcity that forces the region merging of the paper's Figure 3.
pub const DATA_REGIONS: usize = 2;

/// Upper bound on the total number of data-region groups ACES lays
/// out. Every group costs a power-of-two-aligned placement, so ACES's
/// lowering merges groups system-wide until the count fits — a second
/// source of signature widening beyond the per-compartment budget.
pub const MAX_TOTAL_GROUPS: usize = 8;

/// One contiguous group of globals with a common access signature
/// (possibly widened by merging).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionGroup {
    /// Compartments granted access to the whole group.
    pub signature: BTreeSet<OpId>,
    /// Variables placed in the group.
    pub globals: Vec<GlobalId>,
    /// Total used bytes.
    pub bytes: u32,
}

/// The final data-region assignment.
#[derive(Debug, Clone)]
pub struct DataRegions {
    /// Groups after merging.
    pub groups: Vec<RegionGroup>,
    /// Group memberships per compartment (indices into `groups`).
    pub granted: BTreeMap<OpId, Vec<usize>>,
    /// Concrete placement: global → address (filled by `place`).
    pub addrs: BTreeMap<GlobalId, u32>,
    /// Concrete placement: group → MPU-legal region.
    pub group_regions: Vec<MemRegion>,
    /// SRAM consumed including alignment fragments.
    pub sram_used: u32,
    /// Number of merges performed (diagnostics).
    pub merges: usize,
}

impl DataRegions {
    /// Groups the globals of `module` by compartment-access signature
    /// and merges until every compartment fits in [`DATA_REGIONS`]
    /// regions.
    pub fn build(module: &Module, comps: &Compartments) -> DataRegions {
        // Access signatures. Constants stay in flash; unused globals get
        // an empty signature group of their own.
        let mut by_sig: BTreeMap<BTreeSet<OpId>, Vec<GlobalId>> = BTreeMap::new();
        for (i, g) in module.globals.iter().enumerate() {
            if g.is_const {
                continue;
            }
            let gid = GlobalId(i as u32);
            let sig: BTreeSet<OpId> = comps
                .comps
                .iter()
                .filter(|c| c.resources.globals().contains(&gid))
                .map(|c| c.id)
                .collect();
            by_sig.entry(sig).or_default().push(gid);
        }
        let mut groups: Vec<RegionGroup> = by_sig
            .into_iter()
            .map(|(signature, globals)| {
                let bytes = globals.iter().map(|g| module.global_size(*g).max(1)).sum();
                RegionGroup { signature, globals, bytes }
            })
            .collect();
        // Merge until every compartment needs at most DATA_REGIONS
        // groups.
        let mut merges = 0;
        loop {
            let mut need: BTreeMap<OpId, Vec<usize>> = BTreeMap::new();
            for (gi, g) in groups.iter().enumerate() {
                for c in &g.signature {
                    need.entry(*c).or_default().push(gi);
                }
            }
            let worst = need.iter().max_by_key(|(_, v)| v.len());
            match worst {
                Some((_, v)) if v.len() > DATA_REGIONS => {
                    // Merge the two smallest groups this compartment
                    // needs (by bytes) — ACES's region-count reduction,
                    // which widens signatures and creates PT.
                    let mut candidates = v.clone();
                    candidates.sort_by_key(|&gi| groups[gi].bytes);
                    let (a, b) = (candidates[0], candidates[1]);
                    let (lo, hi) = (a.min(b), a.max(b));
                    let merged_in = groups.remove(hi);
                    let target = &mut groups[lo];
                    target.signature.extend(merged_in.signature);
                    target.globals.extend(merged_in.globals);
                    target.bytes += merged_in.bytes;
                    merges += 1;
                }
                _ => break,
            }
        }
        // System-wide lowering: cap the total group count by fusing the
        // smallest groups (cannot increase any compartment's group
        // count, so the per-compartment budget stays satisfied).
        while groups.len() > MAX_TOTAL_GROUPS {
            let mut order: Vec<usize> = (0..groups.len()).collect();
            order.sort_by_key(|&gi| groups[gi].bytes);
            let (a, b) = (order[0], order[1]);
            let (lo, hi) = (a.min(b), a.max(b));
            let merged_in = groups.remove(hi);
            let target = &mut groups[lo];
            target.signature.extend(merged_in.signature);
            target.globals.extend(merged_in.globals);
            target.bytes += merged_in.bytes;
            merges += 1;
        }
        let mut granted: BTreeMap<OpId, Vec<usize>> = BTreeMap::new();
        for c in &comps.comps {
            granted.insert(c.id, Vec::new());
        }
        for (gi, g) in groups.iter().enumerate() {
            for c in &g.signature {
                granted.entry(*c).or_default().push(gi);
            }
        }
        DataRegions {
            groups,
            granted,
            addrs: BTreeMap::new(),
            group_regions: Vec::new(),
            sram_used: 0,
            merges,
        }
    }

    /// Places the groups in SRAM starting at `base`: each group becomes
    /// one MPU-legal (power-of-two, size-aligned) region. Returns the
    /// first free address after placement.
    pub fn place(&mut self, module: &Module, base: u32) -> u32 {
        // Large groups first to limit fragmentation.
        let mut order: Vec<usize> = (0..self.groups.len()).collect();
        order.sort_by_key(|&gi| std::cmp::Reverse(region_size_for(self.groups[gi].bytes.max(1))));
        self.group_regions = vec![MemRegion::new(0, 0); self.groups.len()];
        let mut cursor = base;
        for gi in order {
            let size = region_size_for(self.groups[gi].bytes.max(1));
            cursor = align_up(cursor, size);
            self.group_regions[gi] = MemRegion::new(cursor, size);
            let mut off = cursor;
            for g in &self.groups[gi].globals {
                let align = module.types.align_of(&module.global(*g).ty).max(4);
                off = align_up(off, align);
                self.addrs.insert(*g, off);
                off += module.global_size(*g).max(1);
            }
            cursor += size;
        }
        self.sram_used = cursor - base;
        cursor
    }

    /// Bytes of globals a compartment was *granted* (everything in its
    /// groups).
    pub fn granted_bytes(&self, module: &Module, comp: OpId) -> u32 {
        self.granted
            .get(&comp)
            .map(|groups| {
                groups
                    .iter()
                    .flat_map(|&gi| self.groups[gi].globals.iter())
                    .map(|g| module.global_size(*g).max(1))
                    .sum()
            })
            .unwrap_or(0)
    }

    /// The globals a compartment was granted.
    pub fn granted_globals(&self, comp: OpId) -> BTreeSet<GlobalId> {
        self.granted
            .get(&comp)
            .map(|groups| {
                groups.iter().flat_map(|&gi| self.groups[gi].globals.iter().copied()).collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{AcesStrategy, Compartments};
    use opec_analysis::{CallGraph, PointsTo, ResourceAnalysis};
    use opec_ir::{ModuleBuilder, Operand, Ty};

    /// Builds a module where compartment "hub.c" touches many distinct
    /// signature groups, forcing merges.
    fn hub_module(num_sats: usize) -> Module {
        let mut mb = ModuleBuilder::new("hub");
        let mut sats = Vec::new();
        for i in 0..num_sats {
            let g = mb.global(format!("pair_{i}"), Ty::I32, "hub.c");
            let own = mb.global(format!("own_{i}"), Ty::Array(Box::new(Ty::I32), 2), "hub.c");
            let sat = mb.func(format!("sat_{i}"), vec![], None, &format!("sat_{i}.c"), move |fb| {
                fb.store_global(g, 0, Operand::Imm(i as u32), 4);
                fb.store_global(own, 0, Operand::Imm(1), 4);
                fb.ret_void();
            });
            sats.push((sat, g));
        }
        let hub_g: Vec<_> = sats.iter().map(|(_, g)| *g).collect();
        let sat_fns: Vec<_> = sats.iter().map(|(f, _)| *f).collect();
        mb.func("hub", vec![], None, "hub.c", move |fb| {
            for g in &hub_g {
                let _ = fb.load_global(*g, 0, 4);
            }
            fb.ret_void();
        });
        mb.func("main", vec![], None, "main.c", move |fb| {
            for f in &sat_fns {
                fb.call_void(*f, vec![]);
            }
            fb.halt();
            fb.ret_void();
        });
        mb.finish()
    }

    fn comps(m: &Module) -> Compartments {
        let pt = PointsTo::analyze(m);
        let cg = CallGraph::build(m, &pt);
        let ra = ResourceAnalysis::analyze(m, &pt);
        Compartments::build(m, &cg, &ra, AcesStrategy::FilenameNoOpt)
    }

    #[test]
    fn no_merging_when_everything_fits() {
        let m = hub_module(2);
        let c = comps(&m);
        let dr = DataRegions::build(&m, &c);
        assert_eq!(dr.merges, 0);
        // Each compartment granted exactly its needed globals → no PT.
        for comp in &c.comps {
            let granted = dr.granted_globals(comp.id);
            assert_eq!(granted, comp.resources.globals());
        }
    }

    #[test]
    fn merging_kicks_in_and_creates_over_privilege() {
        // Six satellite files sharing one variable each with hub.c:
        // hub.c participates in six signature groups (> 4 regions).
        let m = hub_module(6);
        let c = comps(&m);
        let dr = DataRegions::build(&m, &c);
        assert!(dr.merges >= 2, "merges: {}", dr.merges);
        // Every compartment now fits within the region budget.
        for groups in dr.granted.values() {
            assert!(groups.len() <= DATA_REGIONS);
        }
        // At least one satellite compartment was granted a global it
        // never needed (partition-time over-privilege).
        let over = c.comps.iter().any(|comp| {
            let granted = dr.granted_globals(comp.id);
            !granted.is_subset(&comp.resources.globals())
                || granted.len() > comp.resources.globals().len()
        });
        assert!(over, "expected over-privilege after merging");
    }

    #[test]
    fn placement_is_mpu_legal_and_disjoint() {
        let m = hub_module(6);
        let c = comps(&m);
        let mut dr = DataRegions::build(&m, &c);
        let end = dr.place(&m, 0x2000_0000);
        assert!(end > 0x2000_0000);
        for r in &dr.group_regions {
            assert!(r.size.is_power_of_two() && r.size >= 32);
            assert_eq!(r.base % r.size, 0);
        }
        for (i, a) in dr.group_regions.iter().enumerate() {
            for b in &dr.group_regions[i + 1..] {
                assert!(!a.overlaps(b));
            }
        }
        // Every global placed inside its group's region.
        for (gi, g) in dr.groups.iter().enumerate() {
            for gid in &g.globals {
                let addr = dr.addrs[gid];
                assert!(dr.group_regions[gi].contains(addr));
            }
        }
        assert!(dr.sram_used >= dr.groups.iter().map(|g| g.bytes).sum::<u32>());
    }

    #[test]
    fn granted_bytes_accounts_merged_groups() {
        let m = hub_module(6);
        let c = comps(&m);
        let dr = DataRegions::build(&m, &c);
        for comp in &c.comps {
            let needed: u32 =
                comp.resources.globals().iter().map(|g| m.global_size(*g).max(1)).sum();
            assert!(dr.granted_bytes(&m, comp.id) >= needed);
        }
    }
}
