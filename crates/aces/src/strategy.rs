//! Compartment formation under the three ACES strategies the OPEC
//! paper evaluates (filename, filename-without-optimisation,
//! peripheral).
//!
//! Unlike OPEC's operations, ACES compartments partition the program
//! **disjointly**: every function belongs to exactly one compartment,
//! and the execution of one task may cross many compartments (the
//! execution-time over-privilege and switch-frequency issues of
//! Section 3.1).

use std::collections::{BTreeMap, BTreeSet};

use opec_analysis::{CallGraph, FuncResources, ResourceAnalysis};
use opec_ir::{FuncId, Inst, Module};
use opec_vm::OpId;

/// The three partitioning strategies from the OPEC paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AcesStrategy {
    /// "Filename" — one compartment per source file, then the merge
    /// optimisation that fuses the most call-coupled compartments to
    /// reduce switch frequency (ACES1).
    Filename,
    /// "Filename without optimization" — one compartment per source
    /// file, no merging (ACES2).
    FilenameNoOpt,
    /// "Peripheral" — functions grouped by the set of peripherals they
    /// access; peripheral-free functions fall back to per-file groups
    /// (ACES3).
    Peripheral,
}

impl AcesStrategy {
    /// Short label used in tables ("ACES1"… like the paper).
    pub fn label(self) -> &'static str {
        match self {
            AcesStrategy::Filename => "ACES-1",
            AcesStrategy::FilenameNoOpt => "ACES-2",
            AcesStrategy::Peripheral => "ACES-3",
        }
    }
}

/// One ACES compartment.
#[derive(Debug, Clone)]
pub struct Compartment {
    /// Compartment id.
    pub id: OpId,
    /// Diagnostic name (file name or peripheral signature).
    pub name: String,
    /// Member functions (disjoint across compartments).
    pub funcs: BTreeSet<FuncId>,
    /// Merged resource needs of the members.
    pub resources: FuncResources,
    /// Compartments that access core (PPB) peripherals are lifted to
    /// the privileged level — ACES's workaround that OPEC's emulation
    /// avoids.
    pub privileged: bool,
}

/// A full compartmentalisation.
#[derive(Debug, Clone)]
pub struct Compartments {
    /// The strategy that produced it.
    pub strategy: AcesStrategy,
    /// Compartments; index = id.
    pub comps: Vec<Compartment>,
    /// Function → owning compartment.
    pub owner: BTreeMap<FuncId, OpId>,
}

impl Compartments {
    /// Forms compartments for `module` under `strategy`.
    pub fn build(
        module: &Module,
        cg: &CallGraph,
        resources: &ResourceAnalysis,
        strategy: AcesStrategy,
    ) -> Compartments {
        let mut groups: BTreeMap<String, BTreeSet<FuncId>> = BTreeMap::new();
        for (i, f) in module.funcs.iter().enumerate() {
            let fid = FuncId(i as u32);
            let key = match strategy {
                AcesStrategy::Filename | AcesStrategy::FilenameNoOpt => f.source_file.clone(),
                AcesStrategy::Peripheral => {
                    let res = resources.of(fid);
                    if res.peripherals.is_empty() && res.core_peripherals.is_empty() {
                        format!("file:{}", f.source_file)
                    } else {
                        let mut names: Vec<&str> = res
                            .peripherals
                            .iter()
                            .chain(res.core_peripherals.iter())
                            .map(|&pi| module.peripherals[pi].name.as_str())
                            .collect();
                        names.sort_unstable();
                        format!("periph:{}", names.join("+"))
                    }
                }
            };
            groups.entry(key).or_default().insert(fid);
        }
        let mut comp_sets: Vec<(String, BTreeSet<FuncId>)> = groups.into_iter().collect();
        if strategy == AcesStrategy::Filename {
            merge_optimisation(module, cg, &mut comp_sets);
        }
        let comps: Vec<Compartment> = comp_sets
            .into_iter()
            .enumerate()
            .map(|(i, (name, funcs))| {
                let res = resources.merged(funcs.iter().copied());
                let privileged = !res.core_peripherals.is_empty();
                Compartment { id: i as OpId, name, funcs, resources: res, privileged }
            })
            .collect();
        let mut owner = BTreeMap::new();
        for c in &comps {
            for f in &c.funcs {
                owner.insert(*f, c.id);
            }
        }
        Compartments { strategy, comps, owner }
    }

    /// The compartment owning function `f`.
    pub fn of(&self, f: FuncId) -> OpId {
        self.owner[&f]
    }

    /// Total modelled code bytes of privileged (lifted) compartments —
    /// the numerator of the paper's PAC metric.
    pub fn privileged_code_bytes(&self, module: &Module) -> u32 {
        self.comps
            .iter()
            .filter(|c| c.privileged)
            .flat_map(|c| c.funcs.iter())
            .map(|f| module.func(*f).code_size())
            .sum()
    }
}

/// ACES1's merge optimisation: repeatedly fuse the pair of compartments
/// with the highest cross-call count, stopping when no pair exchanges
/// more than one call edge or the compartment count has halved. This
/// reduces switch frequency at the cost of coarser isolation — the
/// trade the OPEC paper describes for the optimised filename strategy.
fn merge_optimisation(
    module: &Module,
    cg: &CallGraph,
    comps: &mut Vec<(String, BTreeSet<FuncId>)>,
) {
    let target = (comps.len() / 2).max(1);
    loop {
        if comps.len() <= target {
            break;
        }
        // Count call edges between compartments.
        let owner: BTreeMap<FuncId, usize> = comps
            .iter()
            .enumerate()
            .flat_map(|(i, (_, fs))| fs.iter().map(move |f| (*f, i)))
            .collect();
        // Weight = number of *call sites* crossing the pair (dedup
        // would hide hot boundaries).
        let mut weight: BTreeMap<(usize, usize), u32> = BTreeMap::new();
        for (fi, func) in module.funcs.iter().enumerate() {
            let f = FuncId(fi as u32);
            let a = owner[&f];
            let mut add = |callee: FuncId| {
                let b = owner[&callee];
                if a != b {
                    let key = (a.min(b), a.max(b));
                    *weight.entry(key).or_default() += 1;
                }
            };
            for block in &func.blocks {
                for inst in &block.insts {
                    if let Inst::Call { callee, .. } = inst {
                        add(*callee);
                    }
                }
            }
            let _ = cg;
        }
        let Some((&(a, b), &w)) = weight.iter().max_by_key(|(k, w)| (**w, std::cmp::Reverse(**k)))
        else {
            break;
        };
        if w <= 1 {
            break;
        }
        let (bname, bfuncs) = comps.remove(b);
        comps[a].0 = format!("{}+{}", comps[a].0, bname);
        comps[a].1.extend(bfuncs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opec_analysis::PointsTo;
    use opec_ir::{ModuleBuilder, Operand, Ty};

    fn sample() -> Module {
        let mut mb = ModuleBuilder::new("t");
        mb.peripheral("USART2", 0x4000_4400, 0x400, false);
        mb.peripheral("SysTick", 0xE000_E010, 0x10, true);
        let g = mb.global("g", Ty::I32, "main.c");
        let uart_send = mb.func("uart_send", vec![("b", Ty::I32)], None, "uart.c", |fb| {
            fb.mmio_write(0x4000_4404, Operand::Reg(fb.param(0)), 4);
            fb.ret_void();
        });
        let tick_cfg = mb.func("tick_cfg", vec![], None, "sys.c", |fb| {
            fb.mmio_write(0xE000_E014, Operand::Imm(100), 4);
            fb.ret_void();
        });
        let helper = mb.func("helper", vec![], None, "main.c", |fb| {
            fb.store_global(g, 0, Operand::Imm(1), 4);
            fb.ret_void();
        });
        mb.func("main", vec![], None, "main.c", |fb| {
            fb.call_void(tick_cfg, vec![]);
            fb.call_void(helper, vec![]);
            fb.call_void(uart_send, vec![Operand::Imm(0x41)]);
            fb.call_void(uart_send, vec![Operand::Imm(0x42)]);
            fb.call_void(uart_send, vec![Operand::Imm(0x43)]);
            fb.halt();
            fb.ret_void();
        });
        mb.finish()
    }

    fn build(strategy: AcesStrategy) -> (Module, Compartments) {
        let m = sample();
        let pt = PointsTo::analyze(&m);
        let cg = CallGraph::build(&m, &pt);
        let ra = ResourceAnalysis::analyze(&m, &pt);
        let c = Compartments::build(&m, &cg, &ra, strategy);
        (m, c)
    }

    #[test]
    fn filename_no_opt_gives_one_compartment_per_file() {
        let (m, c) = build(AcesStrategy::FilenameNoOpt);
        assert_eq!(c.comps.len(), 3); // uart.c, sys.c, main.c
                                      // Disjoint and complete.
        let total: usize = c.comps.iter().map(|x| x.funcs.len()).sum();
        assert_eq!(total, m.funcs.len());
        for f in 0..m.funcs.len() {
            assert!(c.owner.contains_key(&FuncId(f as u32)));
        }
    }

    #[test]
    fn filename_opt_merges_call_coupled_files() {
        let (_, c) = build(AcesStrategy::Filename);
        // main.c calls uart.c three times — the optimisation fuses them.
        assert!(c.comps.len() < 3);
        let merged = c.comps.iter().find(|x| x.name.contains('+')).expect("a merged comp");
        assert!(merged.name.contains("main.c") && merged.name.contains("uart.c"));
    }

    #[test]
    fn peripheral_strategy_groups_by_signature() {
        let (m, c) = build(AcesStrategy::Peripheral);
        let uart = m.func_by_name("uart_send").unwrap();
        let tick = m.func_by_name("tick_cfg").unwrap();
        let helper = m.func_by_name("helper").unwrap();
        assert_ne!(c.of(uart), c.of(tick));
        assert_ne!(c.of(uart), c.of(helper));
        let uart_comp = &c.comps[usize::from(c.of(uart))];
        assert!(uart_comp.name.contains("USART2"));
    }

    #[test]
    fn core_peripheral_compartments_are_lifted() {
        let (m, c) = build(AcesStrategy::FilenameNoOpt);
        let tick = m.func_by_name("tick_cfg").unwrap();
        assert!(c.comps[usize::from(c.of(tick))].privileged);
        let uart = m.func_by_name("uart_send").unwrap();
        assert!(!c.comps[usize::from(c.of(uart))].privileged);
        assert!(c.privileged_code_bytes(&m) > 0);
    }

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(AcesStrategy::Filename.label(), "ACES-1");
        assert_eq!(AcesStrategy::FilenameNoOpt.label(), "ACES-2");
        assert_eq!(AcesStrategy::Peripheral.label(), "ACES-3");
    }
}
