//! ACES image generation.
//!
//! Produces a [`LoadedImage`] where every global has a fixed address
//! inside its (possibly merged) region group, and every function is
//! marked with its compartment id so the VM raises switch events. The
//! [`crate::runtime::AcesRuntime`] declines same-compartment switches
//! via `wants_switch`, so only genuine cross-compartment calls pay the
//! SVC + MPU-reload cost, as on real ACES.

use std::collections::BTreeMap;

use opec_armv7m::{Board, Mode};
use opec_ir::{GlobalId, Module};
use opec_vm::image::layout_code;
use opec_vm::{GlobalSlot, LoadedImage};

use crate::regions::DataRegions;
use crate::strategy::{AcesStrategy, Compartments};
use crate::ACES_RT_BYTES;

/// Everything an ACES compile produces.
pub struct AcesCompileOutput {
    /// The linked image.
    pub image: LoadedImage,
    /// The compartmentalisation.
    pub comps: Compartments,
    /// The data-region assignment (with placement).
    pub regions: DataRegions,
    /// Stack window (whole-stack accessible — ACES's oversized stack
    /// permission).
    pub stack: opec_armv7m::MemRegion,
}

/// Errors from ACES image generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AcesImageError {
    /// No `main` function.
    NoMain,
    /// Data + stack exceed SRAM.
    SramOverflow,
}

impl core::fmt::Display for AcesImageError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AcesImageError::NoMain => write!(f, "module has no main"),
            AcesImageError::SramOverflow => write!(f, "ACES data image exceeds SRAM"),
        }
    }
}

impl std::error::Error for AcesImageError {}

/// Compiles `module` with ACES under `strategy`.
pub fn build_aces_image(
    module: Module,
    board: Board,
    strategy: AcesStrategy,
) -> Result<AcesCompileOutput, AcesImageError> {
    let pt = opec_analysis::PointsTo::analyze(&module);
    let cg = opec_analysis::CallGraph::build(&module, &pt);
    let ra = opec_analysis::ResourceAnalysis::analyze(&module, &pt);
    let comps = Compartments::build(&module, &cg, &ra, strategy);
    let mut regions = DataRegions::build(&module, &comps);

    let entry = module.func_by_name("main").ok_or(AcesImageError::NoMain)?;
    let code_base = board.flash.base + ACES_RT_BYTES;
    let (func_addrs, inst_addrs, code_end) = layout_code(&module, code_base);

    // Place grouped data regions.
    let data_end = regions.place(&module, board.sram.base);

    // Stack at the top of SRAM.
    let stack_size: u32 = 0x1000;
    let stack_base = (board.sram.end() - stack_size) & !(stack_size - 1);
    let stack = opec_armv7m::MemRegion::new(stack_base, stack_size);
    if data_end > stack.base {
        return Err(AcesImageError::SramOverflow);
    }

    // Constant globals to flash; mutable globals at their region slots.
    let mut flash_cursor = (code_end + 3) & !3;
    let mut const_addrs: BTreeMap<GlobalId, u32> = BTreeMap::new();
    let mut flash_init = Vec::new();
    for (i, g) in module.globals.iter().enumerate() {
        if !g.is_const {
            continue;
        }
        let gid = GlobalId(i as u32);
        let size = module.types.size_of(&g.ty).max(1);
        let align = module.types.align_of(&g.ty).max(4);
        flash_cursor = flash_cursor.div_ceil(align) * align;
        const_addrs.insert(gid, flash_cursor);
        let mut bytes = g.init.clone();
        bytes.resize(size as usize, 0);
        flash_init.push((flash_cursor, bytes));
        flash_cursor += size;
    }
    // Compartment metadata: per compartment, MPU configurations, the
    // region table, and micro-emulator allow lists.
    let metadata = comps.comps.len() as u32 * crate::ACES_COMP_METADATA_BYTES;
    let flash_used = (flash_cursor - board.flash.base) + metadata;

    let mut global_slots = Vec::with_capacity(module.globals.len());
    let mut sram_init = Vec::new();
    for (i, g) in module.globals.iter().enumerate() {
        let gid = GlobalId(i as u32);
        if g.is_const {
            global_slots.push(GlobalSlot::Fixed(const_addrs[&gid]));
            continue;
        }
        let addr = regions.addrs[&gid];
        global_slots.push(GlobalSlot::Fixed(addr));
        if !g.init.is_empty() {
            let size = module.types.size_of(&g.ty).max(1);
            let mut bytes = g.init.clone();
            bytes.resize(size as usize, 0);
            sram_init.push((addr, bytes));
        }
    }

    // Every function (except main itself) is a potential compartment
    // boundary.
    let op_entries = (0..module.funcs.len())
        .map(|i| opec_ir::FuncId(i as u32))
        .filter(|f| *f != entry)
        .map(|f| (f, comps.of(f)))
        .collect();

    let sram_used = (data_end - board.sram.base) + stack_size;
    let image = LoadedImage {
        module,
        func_addrs,
        inst_addrs,
        global_slots,
        entry,
        op_entries,
        irq_vector: std::collections::HashMap::new(),
        stack,
        app_mode: Mode::Unprivileged,
        flash_init,
        sram_init,
        flash_used,
        sram_used,
    };
    Ok(AcesCompileOutput { image, comps, regions, stack })
}

#[cfg(test)]
mod tests {
    use super::*;
    use opec_ir::{ModuleBuilder, Operand, Ty};

    fn sample() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let a = mb.global_init("a", Ty::I32, vec![7, 0, 0, 0], "x.c");
        let helper = mb.func("helper", vec![], None, "x.c", |fb| {
            fb.store_global(a, 0, Operand::Imm(1), 4);
            fb.ret_void();
        });
        mb.func("main", vec![], None, "main.c", |fb| {
            fb.call_void(helper, vec![]);
            fb.halt();
            fb.ret_void();
        });
        mb.finish()
    }

    #[test]
    fn image_builds_with_fixed_slots_and_markers() {
        let out =
            build_aces_image(sample(), Board::stm32f4_discovery(), AcesStrategy::FilenameNoOpt)
                .unwrap();
        let a = out.image.module.global_by_name("a").unwrap();
        assert!(matches!(out.image.global_slots[a.0 as usize], GlobalSlot::Fixed(_)));
        let helper = out.image.module.func_by_name("helper").unwrap();
        let main = out.image.module.func_by_name("main").unwrap();
        assert!(out.image.op_entries.contains_key(&helper));
        assert!(!out.image.op_entries.contains_key(&main));
        assert!(out.image.flash_used > crate::ACES_RT_BYTES - 1);
        assert_eq!(out.image.op_entries[&helper], out.comps.of(helper));
    }

    #[test]
    fn initialisers_staged_at_region_addresses() {
        let out =
            build_aces_image(sample(), Board::stm32f4_discovery(), AcesStrategy::FilenameNoOpt)
                .unwrap();
        let a = out.image.module.global_by_name("a").unwrap();
        let addr = out.regions.addrs[&a];
        assert!(out.image.sram_init.iter().any(|(x, b)| *x == addr && b[0] == 7));
    }
}
