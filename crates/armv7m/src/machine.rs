//! The composed machine: Flash, SRAM, MPU, privilege, clock, devices.
//!
//! [`Machine`] is the single chokepoint for every memory access the
//! simulated firmware makes. It applies, in order:
//!
//! 1. the PPB privilege rule — unprivileged access to
//!    `0xE0000000..0xE0100000` raises a [`Exception::BusFault`];
//! 2. the MPU permission check — a denial raises
//!    [`Exception::MemManage`];
//! 3. routing — Flash, SRAM, a registered [`MmioDevice`], the built-in
//!    PPB register file, or a BusFault for unmapped addresses.
//!
//! The OPEC-Monitor performs its privileged work through the same API
//! with [`Mode::Privileged`], exactly as the paper's monitor is ordinary
//! privileged code.

use std::collections::HashMap;

use crate::board::Board;
use crate::clock::Clock;
use crate::exception::{AccessKind, Exception, FaultCause, FaultInfo};
use crate::mem::{ppb, AddressClass, MemRegion};
use crate::mpu::{Mpu, MpuDecision};
use crate::prot::ProtectionUnit;
use crate::Mode;

/// A memory-mapped peripheral model.
///
/// Devices own a fixed address window; reads and writes arrive with the
/// offset from the window base. Device register semantics (FIFO pops,
/// status flags, side effects) live in the `opec-devices` crate.
pub trait MmioDevice {
    /// Stable device name (used for peripheral address maps and traces).
    fn name(&self) -> &str;
    /// The address window the device occupies.
    fn region(&self) -> MemRegion;
    /// Reads `len` (1, 2 or 4) bytes at `offset` from the window base.
    fn read(&mut self, offset: u32, len: u32) -> u32;
    /// Writes `len` bytes of `value` at `offset` from the window base.
    fn write(&mut self, offset: u32, len: u32, value: u32);
    /// Advances device-internal time (DMA progress, baud timing, ...).
    fn tick(&mut self, _cycles: u64) {}
    /// Returns `true` if the device is asserting its interrupt line.
    fn irq_pending(&self) -> bool {
        false
    }
    /// Downcasting hook so hosts (test harnesses, workload drivers) can
    /// reach a device's typed interface, e.g. to feed a UART.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
    /// Clones the device's full state for snapshotting. The default
    /// returns `None`, which makes [`Machine::snapshot`] fail with the
    /// device's name: a device that cannot reproduce its state must
    /// opt out of snapshot/restore loudly, not silently desync.
    fn clone_box(&self) -> Option<Box<dyn MmioDevice>> {
        None
    }
    /// Borrowing downcast hook for the restore fast path. Devices that
    /// support in-place state copy return `Some(self)`; the default
    /// opts out, which routes restores through [`Self::clone_box`].
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
    /// Copies `src`'s state into `self` without allocating, returning
    /// `false` when the concrete types differ (or the device opts
    /// out). [`Machine::restore`] and [`Machine::apply_delta`] run
    /// every spawn/quantum of a snapshot-pooled fleet, so reusing the
    /// existing boxes instead of re-cloning each device is what keeps
    /// restore in the microsecond range for small firmwares.
    fn copy_state_from(&mut self, _src: &dyn MmioDevice) -> bool {
        false
    }
}

/// The standard [`MmioDevice::copy_state_from`] body for a `Clone`
/// device: borrow-downcast `src` to `T` and `clone_from` it in place
/// (reusing `T`'s buffers where its `Clone` impl allows).
pub fn copy_device_state<T: MmioDevice + Clone + 'static>(
    dst: &mut T,
    src: &dyn MmioDevice,
) -> bool {
    match src.as_any().and_then(|a| a.downcast_ref::<T>()) {
        Some(s) => {
            dst.clone_from(s);
            true
        }
        None => false,
    }
}

/// Counters the evaluation reads out of the machine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Data loads performed.
    pub loads: u64,
    /// Data stores performed.
    pub stores: u64,
    /// Peripheral (device or PPB) accesses performed.
    pub mmio_accesses: u64,
    /// MemManage faults raised.
    pub mem_faults: u64,
    /// Bus faults raised.
    pub bus_faults: u64,
}

/// Dirty-page granularity for snapshot tracking, in bytes. Small enough
/// that a typical campaign run touching a few KiB of SRAM restores in a
/// handful of `memcpy`s, large enough that the bitmap stays tiny.
const SNAP_PAGE: usize = 256;

/// A full machine checkpoint taken by [`Machine::snapshot`].
///
/// Holds golden copies of Flash, SRAM, devices, MPU, clock and counters.
/// [`Machine::restore`] copies back only the pages dirtied since the
/// snapshot was taken (tracked by a write barrier in the store path), so
/// a restore after a short run costs microseconds, not a full memcpy of
/// the address space.
pub struct MachineSnapshot {
    id: u64,
    mode: Mode,
    clock: Clock,
    current_pc: u32,
    stats: MachineStats,
    prot: Box<dyn ProtectionUnit>,
    ppb_regs: HashMap<u32, u32>,
    flash: Vec<u8>,
    sram: Vec<u8>,
    devices: Vec<Box<dyn MmioDevice>>,
}

/// The divergence of a machine from the golden snapshot its dirty
/// bitmap is armed against, captured by [`Machine::delta`].
///
/// Where [`MachineSnapshot`] holds full golden copies of Flash and
/// SRAM, a delta holds only the dirtied pages plus register-level
/// state, so thousands of parked logical devices forked from one
/// golden image cost a few pages each instead of a full address space.
pub struct MachineDelta {
    /// Snapshot id the pages are relative to; [`Machine::apply_delta`]
    /// refuses a machine armed against any other snapshot.
    snap_id: u64,
    mode: Mode,
    clock: Clock,
    current_pc: u32,
    stats: MachineStats,
    prot: Box<dyn ProtectionUnit>,
    ppb_regs: HashMap<u32, u32>,
    /// `(byte offset, page contents)` for each dirty Flash page.
    flash_pages: Vec<(usize, Vec<u8>)>,
    /// `(byte offset, page contents)` for each dirty SRAM page.
    sram_pages: Vec<(usize, Vec<u8>)>,
    devices: Vec<Box<dyn MmioDevice>>,
}

impl MachineDelta {
    /// Total bytes of page payload the delta carries — the per-device
    /// memory cost a fleet pays to keep this device parked.
    pub fn page_bytes(&self) -> usize {
        self.flash_pages.iter().map(|(_, p)| p.len()).sum::<usize>()
            + self.sram_pages.iter().map(|(_, p)| p.len()).sum::<usize>()
    }
}

/// The simulated microcontroller.
pub struct Machine {
    /// Board profile (flash/SRAM geometry).
    pub board: Board,
    flash: Vec<u8>,
    sram: Vec<u8>,
    /// The pluggable memory-protection unit consulted on every checked
    /// access (ARMv7-M MPU by default; swapped by backends).
    prot: Box<dyn ProtectionUnit>,
    /// Current execution privilege.
    pub mode: Mode,
    /// Cycle clock.
    pub clock: Clock,
    /// PC of the instruction currently executing; recorded into fault
    /// information so handlers can fetch and decode it.
    pub current_pc: u32,
    /// Access counters.
    pub stats: MachineStats,
    devices: Vec<Box<dyn MmioDevice>>,
    /// Backing store for PPB registers without dedicated models.
    ppb_regs: HashMap<u32, u32>,
    /// Dirty-page bitmaps relative to snapshot `snap_id`. Empty until a
    /// snapshot is taken (tracking costs nothing before that).
    flash_dirty: Vec<u64>,
    sram_dirty: Vec<u64>,
    /// Id of the snapshot the dirty bits are relative to (0 = none).
    snap_id: u64,
    next_snap_id: u64,
}

impl Machine {
    /// Creates a machine for `board` with zeroed Flash and SRAM, MPU
    /// disabled, running privileged (the reset state).
    pub fn new(board: Board) -> Machine {
        Machine::with_protection(board, Box::new(Mpu::new()))
    }

    /// Creates a machine for `board` with a caller-chosen protection
    /// unit (backends install their own model here).
    pub fn with_protection(board: Board, prot: Box<dyn ProtectionUnit>) -> Machine {
        Machine {
            board,
            flash: vec![0; board.flash.size as usize],
            sram: vec![0; board.sram.size as usize],
            prot,
            mode: Mode::Privileged,
            clock: Clock::new(),
            current_pc: board.flash.base,
            stats: MachineStats::default(),
            devices: Vec::new(),
            ppb_regs: HashMap::new(),
            flash_dirty: Vec::new(),
            sram_dirty: Vec::new(),
            snap_id: 0,
            next_snap_id: 1,
        }
    }

    /// The installed protection unit.
    pub fn protection(&self) -> &dyn ProtectionUnit {
        self.prot.as_ref()
    }

    /// The installed protection unit, mutably.
    pub fn protection_mut(&mut self) -> &mut dyn ProtectionUnit {
        self.prot.as_mut()
    }

    /// Replaces the installed protection unit.
    pub fn set_protection(&mut self, prot: Box<dyn ProtectionUnit>) {
        self.prot = prot;
    }

    /// The installed unit downcast to the ARMv7-M [`Mpu`], if it is one.
    pub fn try_mpu(&self) -> Option<&Mpu> {
        self.prot.as_any().downcast_ref::<Mpu>()
    }

    /// The installed unit downcast to the ARMv7-M [`Mpu`].
    ///
    /// Panics if another protection model is installed — for ARM-only
    /// call sites (ACES runtime, ARMv7-M tests) where a different unit
    /// is a logic error, not a recoverable condition.
    pub fn mpu(&self) -> &Mpu {
        self.try_mpu().expect("machine protection unit is not the ARMv7-M MPU")
    }

    /// Mutable ARMv7-M [`Mpu`] downcast; panics like [`Machine::mpu`].
    pub fn mpu_mut(&mut self) -> &mut Mpu {
        self.prot
            .as_any_mut()
            .downcast_mut::<Mpu>()
            .expect("machine protection unit is not the ARMv7-M MPU")
    }

    /// Marks the pages covering `off..off + len` dirty. No-op until a
    /// snapshot has armed the bitmap.
    fn mark_dirty(bits: &mut [u64], off: usize, len: usize) {
        if bits.is_empty() || len == 0 {
            return;
        }
        let first = off / SNAP_PAGE;
        let last = (off + len - 1) / SNAP_PAGE;
        for page in first..=last {
            bits[page / 64] |= 1u64 << (page % 64);
        }
    }

    /// Captures a full checkpoint of the machine and arms dirty-page
    /// tracking so a later [`Machine::restore`] of this snapshot copies
    /// back only what the run touched. Fails if any registered device
    /// does not implement [`MmioDevice::clone_box`].
    pub fn snapshot(&mut self) -> Result<MachineSnapshot, String> {
        let mut devices = Vec::with_capacity(self.devices.len());
        for d in &self.devices {
            devices.push(
                d.clone_box()
                    .ok_or_else(|| format!("device {} does not support snapshotting", d.name()))?,
            );
        }
        let id = self.next_snap_id;
        self.next_snap_id += 1;
        self.snap_id = id;
        self.flash_dirty = vec![0; self.flash.len().div_ceil(SNAP_PAGE).div_ceil(64)];
        self.sram_dirty = vec![0; self.sram.len().div_ceil(SNAP_PAGE).div_ceil(64)];
        Ok(MachineSnapshot {
            id,
            mode: self.mode,
            clock: self.clock.clone(),
            current_pc: self.current_pc,
            stats: self.stats,
            prot: self.prot.clone_unit(),
            ppb_regs: self.ppb_regs.clone(),
            flash: self.flash.clone(),
            sram: self.sram.clone(),
            devices,
        })
    }

    /// Rolls the machine back to `snap`. When `snap` is the snapshot the
    /// dirty bitmap is armed against (the fork-server pattern: snapshot
    /// once, restore per seed), only dirtied pages are copied; restoring
    /// any other snapshot falls back to a full memory copy and re-arms
    /// tracking against it.
    pub fn restore(&mut self, snap: &MachineSnapshot) {
        if self.snap_id == snap.id && !self.flash_dirty.is_empty() {
            Self::copy_dirty(&mut self.flash, &snap.flash, &mut self.flash_dirty);
            Self::copy_dirty(&mut self.sram, &snap.sram, &mut self.sram_dirty);
        } else {
            self.flash.copy_from_slice(&snap.flash);
            self.sram.copy_from_slice(&snap.sram);
            self.flash_dirty = vec![0; self.flash.len().div_ceil(SNAP_PAGE).div_ceil(64)];
            self.sram_dirty = vec![0; self.sram.len().div_ceil(SNAP_PAGE).div_ceil(64)];
            self.snap_id = snap.id;
        }
        self.mode = snap.mode;
        self.clock = snap.clock.clone();
        self.current_pc = snap.current_pc;
        self.stats = snap.stats;
        if !self.prot.copy_unit_from(snap.prot.as_ref()) {
            self.prot = snap.prot.clone_unit();
        }
        self.ppb_regs.clone_from(&snap.ppb_regs);
        self.restore_devices(&snap.devices, "snapshotted");
    }

    /// Restores device state from `src` — in place when every device
    /// supports [`MmioDevice::copy_state_from`] (no allocation, the
    /// hot fleet path), falling back to a full re-clone otherwise.
    /// The fallback re-clones every device, so a partial in-place pass
    /// cannot leave mixed state behind.
    fn restore_devices(&mut self, src: &[Box<dyn MmioDevice>], what: &str) {
        let mut in_place = self.devices.len() == src.len();
        if in_place {
            for (dst, s) in self.devices.iter_mut().zip(src) {
                if !dst.copy_state_from(s.as_ref()) {
                    in_place = false;
                    break;
                }
            }
        }
        if !in_place {
            self.devices.clear();
            for d in src {
                self.devices.push(
                    d.clone_box().unwrap_or_else(|| panic!("{what} device must stay cloneable")),
                );
            }
        }
    }

    fn copy_dirty(dst: &mut [u8], golden: &[u8], bits: &mut [u64]) {
        for (w, word) in bits.iter_mut().enumerate() {
            let mut v = *word;
            while v != 0 {
                let b = v.trailing_zeros() as usize;
                v &= v - 1;
                let start = (w * 64 + b) * SNAP_PAGE;
                let end = (start + SNAP_PAGE).min(dst.len());
                if start < dst.len() {
                    dst[start..end].copy_from_slice(&golden[start..end]);
                }
            }
            *word = 0;
        }
    }

    fn dirty_pages(mem: &[u8], bits: &[u64]) -> Vec<(usize, Vec<u8>)> {
        let mut pages = Vec::new();
        for (w, word) in bits.iter().enumerate() {
            let mut v = *word;
            while v != 0 {
                let b = v.trailing_zeros() as usize;
                v &= v - 1;
                let start = (w * 64 + b) * SNAP_PAGE;
                if start < mem.len() {
                    let end = (start + SNAP_PAGE).min(mem.len());
                    pages.push((start, mem[start..end].to_vec()));
                }
            }
        }
        pages
    }

    /// Captures the machine's divergence from the armed snapshot: the
    /// dirtied pages plus the (small) register-level state. The dirty
    /// bitmap is read without being cleared, so a subsequent
    /// [`Machine::restore`] of the golden snapshot undoes exactly these
    /// pages — the park half of the fleet scheduler's park/unpark
    /// cycle. Fails when no snapshot is armed or a device cannot clone
    /// its state.
    pub fn delta(&self) -> Result<MachineDelta, String> {
        if self.snap_id == 0 {
            return Err("delta requires an armed snapshot (call snapshot first)".into());
        }
        let mut devices = Vec::with_capacity(self.devices.len());
        for d in &self.devices {
            devices.push(
                d.clone_box()
                    .ok_or_else(|| format!("device {} does not support snapshotting", d.name()))?,
            );
        }
        Ok(MachineDelta {
            snap_id: self.snap_id,
            mode: self.mode,
            clock: self.clock.clone(),
            current_pc: self.current_pc,
            stats: self.stats,
            prot: self.prot.clone_unit(),
            ppb_regs: self.ppb_regs.clone(),
            flash_pages: Self::dirty_pages(&self.flash, &self.flash_dirty),
            sram_pages: Self::dirty_pages(&self.sram, &self.sram_dirty),
            devices,
        })
    }

    /// Re-applies a delta captured by [`Machine::delta`] onto a machine
    /// freshly restored to the same golden snapshot (the unpark half).
    /// Pages are re-marked dirty so the next restore-to-golden undoes
    /// them again. Fails on a snapshot-id mismatch — applying a delta
    /// over the wrong golden image would silently corrupt device state.
    pub fn apply_delta(&mut self, d: &MachineDelta) -> Result<(), String> {
        if self.snap_id != d.snap_id {
            return Err(format!(
                "delta is relative to snapshot {} but the machine is armed against {}",
                d.snap_id, self.snap_id
            ));
        }
        for (start, page) in &d.flash_pages {
            self.flash[*start..start + page.len()].copy_from_slice(page);
            Self::mark_dirty(&mut self.flash_dirty, *start, page.len());
        }
        for (start, page) in &d.sram_pages {
            self.sram[*start..start + page.len()].copy_from_slice(page);
            Self::mark_dirty(&mut self.sram_dirty, *start, page.len());
        }
        self.mode = d.mode;
        self.clock = d.clock.clone();
        self.current_pc = d.current_pc;
        self.stats = d.stats;
        if !self.prot.copy_unit_from(d.prot.as_ref()) {
            self.prot = d.prot.clone_unit();
        }
        self.ppb_regs.clone_from(&d.ppb_regs);
        self.restore_devices(&d.devices, "parked");
        Ok(())
    }

    /// Registers a memory-mapped device. Returns an error if its window
    /// overlaps an already registered device.
    pub fn add_device(&mut self, dev: Box<dyn MmioDevice>) -> Result<(), String> {
        let region = dev.region();
        for existing in &self.devices {
            if existing.region().overlaps(&region) {
                return Err(format!(
                    "device {} overlaps {} at {:#010x}",
                    dev.name(),
                    existing.name(),
                    region.base
                ));
            }
        }
        self.devices.push(dev);
        Ok(())
    }

    /// Looks a registered device up by name.
    pub fn device_mut(&mut self, name: &str) -> Option<&mut (dyn MmioDevice + '_)> {
        self.devices.iter_mut().find(|d| d.name() == name).map(|d| d.as_mut() as _)
    }

    /// Looks a device up by name and downcasts it to its concrete type.
    pub fn device_as<T: 'static>(&mut self, name: &str) -> Option<&mut T> {
        self.devices
            .iter_mut()
            .find(|d| d.name() == name)
            .and_then(|d| d.as_any_mut().downcast_mut::<T>())
    }

    /// Advances all devices by `cycles`. On the interpreter's per-ALU-op
    /// hot path — inline so the no-device case folds to a loop over an
    /// empty slice.
    #[inline]
    pub fn tick_devices(&mut self, cycles: u64) {
        for d in &mut self.devices {
            d.tick(cycles);
        }
    }

    /// Returns the names of devices currently asserting interrupts.
    pub fn pending_irqs(&self) -> Vec<&str> {
        self.devices.iter().filter(|d| d.irq_pending()).map(|d| d.name()).collect()
    }

    fn fault(
        &self,
        address: u32,
        len: u32,
        kind: AccessKind,
        cause: FaultCause,
        write_value: Option<u32>,
    ) -> FaultInfo {
        FaultInfo { address, len, kind, cause, pc: self.current_pc, write_value }
    }

    /// Performs a data load of `len` bytes (1, 2 or 4) at `addr` in
    /// `mode`, applying the privilege and MPU rules.
    pub fn load(&mut self, addr: u32, len: u32, mode: Mode) -> Result<u32, Exception> {
        debug_assert!(matches!(len, 1 | 2 | 4));
        let class = AddressClass::of(addr);
        if class == AddressClass::Ppb {
            if !mode.is_privileged() {
                self.stats.bus_faults += 1;
                return Err(Exception::BusFault(self.fault(
                    addr,
                    len,
                    AccessKind::Read,
                    FaultCause::PpbUnprivileged,
                    None,
                )));
            }
            self.stats.loads += 1;
            self.stats.mmio_accesses += 1;
            return Ok(self.ppb_read(addr));
        }
        if self.prot.check_data(addr, len, false, mode) == MpuDecision::Denied {
            self.stats.mem_faults += 1;
            return Err(Exception::MemManage(self.fault(
                addr,
                len,
                AccessKind::Read,
                FaultCause::MpuViolation,
                None,
            )));
        }
        self.stats.loads += 1;
        self.route_load(addr, len).ok_or_else(|| {
            self.stats.bus_faults += 1;
            Exception::BusFault(self.fault(addr, len, AccessKind::Read, FaultCause::Unmapped, None))
        })
    }

    /// Performs a data store of `len` bytes at `addr` in `mode`.
    pub fn store(&mut self, addr: u32, len: u32, value: u32, mode: Mode) -> Result<(), Exception> {
        debug_assert!(matches!(len, 1 | 2 | 4));
        let class = AddressClass::of(addr);
        if class == AddressClass::Ppb {
            if !mode.is_privileged() {
                self.stats.bus_faults += 1;
                return Err(Exception::BusFault(self.fault(
                    addr,
                    len,
                    AccessKind::Write,
                    FaultCause::PpbUnprivileged,
                    Some(value),
                )));
            }
            self.stats.stores += 1;
            self.stats.mmio_accesses += 1;
            self.ppb_write(addr, value);
            return Ok(());
        }
        if self.prot.check_data(addr, len, true, mode) == MpuDecision::Denied {
            self.stats.mem_faults += 1;
            return Err(Exception::MemManage(self.fault(
                addr,
                len,
                AccessKind::Write,
                FaultCause::MpuViolation,
                Some(value),
            )));
        }
        self.stats.stores += 1;
        if self.route_store(addr, len, value) {
            Ok(())
        } else {
            self.stats.bus_faults += 1;
            Err(Exception::BusFault(self.fault(
                addr,
                len,
                AccessKind::Write,
                FaultCause::Unmapped,
                Some(value),
            )))
        }
    }

    fn route_load(&mut self, addr: u32, len: u32) -> Option<u32> {
        if self.board.flash.contains_range(addr, len) {
            let off = (addr - self.board.flash.base) as usize;
            return Some(read_le(&self.flash, off, len));
        }
        if self.board.sram.contains_range(addr, len) {
            let off = (addr - self.board.sram.base) as usize;
            return Some(read_le(&self.sram, off, len));
        }
        for d in &mut self.devices {
            let r = d.region();
            if r.contains_range(addr, len) {
                self.stats.mmio_accesses += 1;
                return Some(d.read(addr - r.base, len));
            }
        }
        None
    }

    fn route_store(&mut self, addr: u32, len: u32, value: u32) -> bool {
        // Flash is not writable at runtime (programming it needs the
        // flash controller, which the firmware never does mid-run).
        if self.board.sram.contains_range(addr, len) {
            let off = (addr - self.board.sram.base) as usize;
            Self::mark_dirty(&mut self.sram_dirty, off, len as usize);
            write_le(&mut self.sram, off, len, value);
            return true;
        }
        for d in &mut self.devices {
            let r = d.region();
            if r.contains_range(addr, len) {
                self.stats.mmio_accesses += 1;
                d.write(addr - r.base, len, value);
                return true;
            }
        }
        false
    }

    fn ppb_read(&mut self, addr: u32) -> u32 {
        match addr {
            ppb::DWT_CYCCNT => self.clock.now() as u32,
            _ => self.ppb_regs.get(&addr).copied().unwrap_or(0),
        }
    }

    fn ppb_write(&mut self, addr: u32, value: u32) {
        // Protection-unit control registers are live state (MPU_CTRL
        // ENABLE/PRIVDEFENA drive the modelled MPU), so privileged code
        // that reaches them really does turn protection off. The unit
        // decides which addresses it owns.
        self.prot.ppb_ctrl_write(addr, value);
        // DWT_CYCCNT writes reset the counter on real silicon; our clock
        // is the ground truth for the whole run, so we record the offset.
        self.ppb_regs.insert(addr, value);
    }

    /// Unchecked read used by loaders, the monitor's introspection, and
    /// tests. Returns `None` for unmapped addresses.
    pub fn peek(&self, addr: u32, len: u32) -> Option<u32> {
        if self.board.flash.contains_range(addr, len) {
            return Some(read_le(&self.flash, (addr - self.board.flash.base) as usize, len));
        }
        if self.board.sram.contains_range(addr, len) {
            return Some(read_le(&self.sram, (addr - self.board.sram.base) as usize, len));
        }
        if AddressClass::of(addr) == AddressClass::Ppb {
            return Some(self.ppb_regs.get(&addr).copied().unwrap_or(0));
        }
        None
    }

    /// Unchecked write used by loaders and tests.
    pub fn poke(&mut self, addr: u32, len: u32, value: u32) -> bool {
        if self.board.flash.contains_range(addr, len) {
            let off = (addr - self.board.flash.base) as usize;
            Self::mark_dirty(&mut self.flash_dirty, off, len as usize);
            write_le(&mut self.flash, off, len, value);
            return true;
        }
        if self.board.sram.contains_range(addr, len) {
            let off = (addr - self.board.sram.base) as usize;
            Self::mark_dirty(&mut self.sram_dirty, off, len as usize);
            write_le(&mut self.sram, off, len, value);
            return true;
        }
        false
    }

    /// Flips bit `bit` (0–7) of the byte at `addr`, bypassing privilege
    /// and MPU checks — a physical memory fault (fault injection).
    /// Returns `false` if the address is not backed by Flash or SRAM.
    pub fn flip_bit(&mut self, addr: u32, bit: u8) -> bool {
        let Some(byte) = self.peek(addr, 1) else { return false };
        self.poke(addr, 1, byte ^ (1u32 << (bit & 7)))
    }

    /// Name and address window of every registered device (used by
    /// attack libraries to find mapped peripheral registers).
    pub fn device_regions(&self) -> Vec<(String, MemRegion)> {
        self.devices.iter().map(|d| (d.name().to_string(), d.region())).collect()
    }

    /// Copies `bytes` into Flash at `addr` (image loading).
    pub fn load_flash(&mut self, addr: u32, bytes: &[u8]) -> Result<(), String> {
        let len = bytes.len() as u32;
        if !self.board.flash.contains_range(addr, len.max(1)) {
            return Err(format!("flash write out of range: {addr:#010x}+{len:#x}"));
        }
        let off = (addr - self.board.flash.base) as usize;
        Self::mark_dirty(&mut self.flash_dirty, off, bytes.len());
        self.flash[off..off + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Copies `bytes` into SRAM at `addr` (section initialisation).
    pub fn load_sram(&mut self, addr: u32, bytes: &[u8]) -> Result<(), String> {
        let len = bytes.len() as u32;
        if !self.board.sram.contains_range(addr, len.max(1)) {
            return Err(format!("sram write out of range: {addr:#010x}+{len:#x}"));
        }
        let off = (addr - self.board.sram.base) as usize;
        Self::mark_dirty(&mut self.sram_dirty, off, bytes.len());
        self.sram[off..off + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }
}

fn read_le(buf: &[u8], off: usize, len: u32) -> u32 {
    let mut v = 0u32;
    for i in 0..len as usize {
        v |= u32::from(buf[off + i]) << (8 * i);
    }
    v
}

fn write_le(buf: &mut [u8], off: usize, len: u32, value: u32) {
    for i in 0..len as usize {
        buf[off + i] = (value >> (8 * i)) as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpu::{MpuRegion, RegionAttr};

    fn machine() -> Machine {
        Machine::new(Board::stm32f4_discovery())
    }

    #[test]
    fn sram_roundtrip_little_endian() {
        let mut m = machine();
        m.store(0x2000_0000, 4, 0xA1B2_C3D4, Mode::Privileged).unwrap();
        assert_eq!(m.load(0x2000_0000, 4, Mode::Privileged).unwrap(), 0xA1B2_C3D4);
        assert_eq!(m.load(0x2000_0000, 1, Mode::Privileged).unwrap(), 0xD4);
        assert_eq!(m.load(0x2000_0001, 1, Mode::Privileged).unwrap(), 0xC3);
        assert_eq!(m.load(0x2000_0002, 2, Mode::Privileged).unwrap(), 0xA1B2);
    }

    #[test]
    fn flash_is_readonly_at_runtime() {
        let mut m = machine();
        m.load_flash(0x0800_0000, &[1, 2, 3, 4]).unwrap();
        assert_eq!(m.load(0x0800_0000, 4, Mode::Privileged).unwrap(), 0x0403_0201);
        let err = m.store(0x0800_0000, 4, 0, Mode::Privileged).unwrap_err();
        assert!(matches!(err, Exception::BusFault(fi) if fi.cause == FaultCause::Unmapped));
    }

    #[test]
    fn ppb_requires_privilege() {
        let mut m = machine();
        let err = m.load(ppb::SYST_CSR, 4, Mode::Unprivileged).unwrap_err();
        match err {
            Exception::BusFault(fi) => {
                assert_eq!(fi.cause, FaultCause::PpbUnprivileged);
                assert_eq!(fi.address, ppb::SYST_CSR);
            }
            other => panic!("expected BusFault, got {other:?}"),
        }
        assert!(m.load(ppb::SYST_CSR, 4, Mode::Privileged).is_ok());
        assert_eq!(m.stats.bus_faults, 1);
    }

    #[test]
    fn dwt_cyccnt_reads_clock() {
        let mut m = machine();
        m.clock.tick(1234);
        assert_eq!(m.load(ppb::DWT_CYCCNT, 4, Mode::Privileged).unwrap(), 1234);
    }

    #[test]
    fn mpu_denial_raises_memmanage_with_pc() {
        let mut m = machine();
        m.mpu_mut().enabled = true;
        m.current_pc = 0x0800_1234;
        let err = m.store(0x2000_0000, 4, 7, Mode::Unprivileged).unwrap_err();
        match err {
            Exception::MemManage(fi) => {
                assert_eq!(fi.pc, 0x0800_1234);
                assert_eq!(fi.write_value, Some(7));
                assert_eq!(fi.cause, FaultCause::MpuViolation);
            }
            other => panic!("expected MemManage, got {other:?}"),
        }
        assert_eq!(m.stats.mem_faults, 1);
    }

    #[test]
    fn mpu_region_grants_unprivileged_access() {
        let mut m = machine();
        m.mpu_mut().enabled = true;
        m.mpu_mut()
            .set_region(2, MpuRegion::new(0x2000_0000, 0x100, RegionAttr::read_write_xn()))
            .unwrap();
        m.store(0x2000_0010, 4, 42, Mode::Unprivileged).unwrap();
        assert_eq!(m.load(0x2000_0010, 4, Mode::Unprivileged).unwrap(), 42);
    }

    #[test]
    fn unmapped_address_bus_faults() {
        let mut m = machine();
        let err = m.load(0x6000_0000, 4, Mode::Privileged).unwrap_err();
        assert!(matches!(err, Exception::BusFault(fi) if fi.cause == FaultCause::Unmapped));
    }

    #[test]
    fn device_routing() {
        struct Reg {
            region: MemRegion,
            value: u32,
        }
        impl MmioDevice for Reg {
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
            fn name(&self) -> &str {
                "reg"
            }
            fn region(&self) -> MemRegion {
                self.region
            }
            fn read(&mut self, offset: u32, _len: u32) -> u32 {
                assert_eq!(offset, 4);
                self.value
            }
            fn write(&mut self, offset: u32, _len: u32, value: u32) {
                assert_eq!(offset, 4);
                self.value = value;
            }
        }
        let mut m = machine();
        m.add_device(Box::new(Reg { region: MemRegion::new(0x4000_0000, 0x400), value: 9 }))
            .unwrap();
        assert_eq!(m.load(0x4000_0004, 4, Mode::Privileged).unwrap(), 9);
        m.store(0x4000_0004, 4, 11, Mode::Privileged).unwrap();
        assert_eq!(m.load(0x4000_0004, 4, Mode::Privileged).unwrap(), 11);
        assert_eq!(m.stats.mmio_accesses, 3);
        // Overlapping registration is refused.
        let err = m
            .add_device(Box::new(Reg { region: MemRegion::new(0x4000_0200, 0x400), value: 0 }))
            .unwrap_err();
        assert!(err.contains("overlaps"));
    }

    #[test]
    fn flip_bit_is_physical_and_bounds_checked() {
        let mut m = machine();
        m.mpu_mut().enabled = true; // flips bypass the MPU entirely
        m.poke(0x2000_0000, 1, 0b0000_0100);
        assert!(m.flip_bit(0x2000_0000, 2));
        assert_eq!(m.peek(0x2000_0000, 1), Some(0));
        assert!(m.flip_bit(0x2000_0000, 7));
        assert_eq!(m.peek(0x2000_0000, 1), Some(0x80));
        assert!(!m.flip_bit(0x7000_0000, 0));
    }

    #[test]
    fn mpu_ctrl_write_drives_the_mpu() {
        let mut m = machine();
        m.mpu_mut().enabled = true;
        m.mpu_mut().priv_default_enabled = true;
        m.store(ppb::MPU_CTRL, 4, 0, Mode::Privileged).unwrap();
        assert!(!m.mpu().enabled);
        m.store(ppb::MPU_CTRL, 4, 0b101, Mode::Privileged).unwrap();
        assert!(m.mpu().enabled);
        assert!(m.mpu().priv_default_enabled);
        assert_eq!(m.load(ppb::MPU_CTRL, 4, Mode::Privileged).unwrap(), 0b101);
    }

    #[test]
    fn loader_bounds_checked() {
        let mut m = machine();
        assert!(m.load_flash(0x0800_0000 + (1 << 20) - 2, &[1, 2, 3]).is_err());
        assert!(m.load_sram(0x2000_0000 + 192 * 1024 - 1, &[1, 2]).is_err());
        assert!(m.load_sram(0x2000_0000, &[1, 2]).is_ok());
    }
}
