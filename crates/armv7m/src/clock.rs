//! Cycle accounting.
//!
//! The paper measures runtime overhead with the DWT cycle counter
//! (Section 6.3). Our machine keeps a monotonically increasing cycle
//! count that every executed instruction and every monitor action charges
//! into; the simulated DWT peripheral exposes it at `DWT_CYCCNT`. Costs
//! follow Cortex-M4 rules of thumb — only *ratios* between an OPEC build
//! and a baseline build are meaningful, which is all the evaluation uses.

/// Nominal per-action cycle costs (Cortex-M4-flavoured).
pub mod costs {
    /// Simple ALU / move instruction.
    pub const ALU: u64 = 1;
    /// Single load or store to SRAM/Flash.
    pub const MEM: u64 = 2;
    /// Load or store to a peripheral (bus wait states).
    pub const MMIO: u64 = 4;
    /// Not-taken branch.
    pub const BRANCH_NOT_TAKEN: u64 = 1;
    /// Taken branch (pipeline refill).
    pub const BRANCH_TAKEN: u64 = 3;
    /// Call (BL/BLX) including pipeline refill.
    pub const CALL: u64 = 4;
    /// Return.
    pub const RET: u64 = 3;
    /// Exception entry (stacking).
    pub const EXC_ENTRY: u64 = 12;
    /// Exception return (unstacking).
    pub const EXC_RETURN: u64 = 10;
    /// Writing one MPU region (RNR + RBAR + RASR).
    pub const MPU_REGION_WRITE: u64 = 6;
    /// Copying one 32-bit word in the monitor (load + store).
    pub const COPY_WORD: u64 = 4;
    /// Range check of one sanitized variable.
    pub const SANITIZE_CHECK: u64 = 6;
    /// Decoding a faulting instruction in the emulation path.
    pub const DECODE: u64 = 10;
    /// Fixed bookkeeping per operation switch (context save/restore).
    pub const SWITCH_FIXED: u64 = 40;
}

/// A monotonically increasing cycle counter shared by the core and the
/// monitor.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    cycles: u64,
}

impl Clock {
    /// Creates a clock at cycle zero.
    pub fn new() -> Clock {
        Clock::default()
    }

    /// Current cycle count.
    #[inline]
    pub fn now(&self) -> u64 {
        self.cycles
    }

    /// Advances the clock by `cycles`.
    #[inline]
    pub fn tick(&mut self, cycles: u64) {
        self.cycles = self.cycles.saturating_add(cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_accumulates() {
        let mut c = Clock::new();
        assert_eq!(c.now(), 0);
        c.tick(costs::ALU);
        c.tick(costs::MEM);
        assert_eq!(c.now(), 3);
    }

    #[test]
    fn clock_saturates() {
        let mut c = Clock::new();
        c.tick(u64::MAX);
        c.tick(10);
        assert_eq!(c.now(), u64::MAX);
    }
}
