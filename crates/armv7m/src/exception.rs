//! Exception model: the faults and supervisor calls OPEC-Monitor hooks.
//!
//! OPEC configures three handlers (Section 5.1 of the paper): the
//! supervisor call (SVC) used for operation switches, the memory
//! management fault used for MPU-region virtualization, and the bus fault
//! used to emulate unprivileged accesses to core peripherals on the PPB.

/// The kind of memory access that raised a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Execute,
}

impl AccessKind {
    /// Returns `true` for a data write.
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// Why an access faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultCause {
    /// The MPU denied the access (MemManage: DACCVIOL / IACCVIOL).
    MpuViolation,
    /// Unprivileged access to the Private Peripheral Bus (BusFault).
    PpbUnprivileged,
    /// The address maps to no implemented memory or device (BusFault).
    Unmapped,
}

/// Details of a faulting access, mirroring what a handler learns from the
/// fault status and fault address registers plus the stacked frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultInfo {
    /// Faulting data address (MMFAR / BFAR).
    pub address: u32,
    /// Access size in bytes.
    pub len: u32,
    /// Read, write, or execute.
    pub kind: AccessKind,
    /// Cause classification.
    pub cause: FaultCause,
    /// Address of the faulting instruction (stacked PC). The monitor's
    /// emulation path fetches and decodes the instruction at this
    /// address.
    pub pc: u32,
    /// For a write, the value the instruction attempted to store.
    pub write_value: Option<u32>,
}

/// An exception delivered to the supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exception {
    /// Supervisor call with its 8-bit immediate.
    Svc(u8),
    /// MPU violation.
    MemManage(FaultInfo),
    /// Bus error (PPB privilege violation or unmapped address).
    BusFault(FaultInfo),
    /// Undefined operation (e.g. indirect call to a non-function address).
    UsageFault,
    /// Escalated unrecoverable fault.
    HardFault,
}

impl Exception {
    /// Short mnemonic used in traces and error messages.
    pub fn name(&self) -> &'static str {
        match self {
            Exception::Svc(_) => "SVC",
            Exception::MemManage(_) => "MemManage",
            Exception::BusFault(_) => "BusFault",
            Exception::UsageFault => "UsageFault",
            Exception::HardFault => "HardFault",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(Exception::Svc(1).name(), "SVC");
        let fi = FaultInfo {
            address: 0xE000_ED94,
            len: 4,
            kind: AccessKind::Write,
            cause: FaultCause::PpbUnprivileged,
            pc: 0x0800_0100,
            write_value: Some(5),
        };
        assert_eq!(Exception::BusFault(fi).name(), "BusFault");
        assert_eq!(Exception::MemManage(fi).name(), "MemManage");
        assert!(fi.kind.is_write());
    }
}
