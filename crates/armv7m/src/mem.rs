//! The fixed ARMv7-M memory map.
//!
//! ARMv7-M divides the 4 GiB address space into architecturally defined
//! regions (ARMv7-M ARM, B3.1). OPEC cares about five of them: Code
//! (where Flash lives), SRAM (data, stacks, operation data sections),
//! Peripheral (general memory-mapped peripherals), the Private Peripheral
//! Bus (core peripherals such as the MPU, SysTick and DWT — privileged
//! access only), and the vendor-specific region.

/// Base of the Code region (Flash and aliases).
pub const CODE_BASE: u32 = 0x0000_0000;
/// Exclusive end of the Code region.
pub const CODE_END: u32 = 0x2000_0000;
/// Base of the SRAM region.
pub const SRAM_BASE: u32 = 0x2000_0000;
/// Exclusive end of the SRAM region.
pub const SRAM_END: u32 = 0x4000_0000;
/// Base of the Peripheral region.
pub const PERIPH_BASE: u32 = 0x4000_0000;
/// Exclusive end of the Peripheral region.
pub const PERIPH_END: u32 = 0x6000_0000;
/// Base of the External RAM region.
pub const EXT_RAM_BASE: u32 = 0x6000_0000;
/// Exclusive end of the External RAM region.
pub const EXT_RAM_END: u32 = 0xA000_0000;
/// Base of the External Device region.
pub const EXT_DEV_BASE: u32 = 0xA000_0000;
/// Exclusive end of the External Device region.
pub const EXT_DEV_END: u32 = 0xE000_0000;
/// Base of the Private Peripheral Bus.
pub const PPB_BASE: u32 = 0xE000_0000;
/// Exclusive end of the Private Peripheral Bus.
pub const PPB_END: u32 = 0xE010_0000;
/// Base of the vendor-specific region.
pub const VENDOR_BASE: u32 = 0xE010_0000;

/// Well-known PPB component addresses used by the workloads and monitor.
pub mod ppb {
    /// DWT cycle counter (`DWT_CYCCNT`).
    pub const DWT_CYCCNT: u32 = 0xE000_1004;
    /// DWT control register (`DWT_CTRL`).
    pub const DWT_CTRL: u32 = 0xE000_1000;
    /// SysTick control and status register.
    pub const SYST_CSR: u32 = 0xE000_E010;
    /// SysTick reload value register.
    pub const SYST_RVR: u32 = 0xE000_E014;
    /// SysTick current value register.
    pub const SYST_CVR: u32 = 0xE000_E018;
    /// MPU type register.
    pub const MPU_TYPE: u32 = 0xE000_ED90;
    /// MPU control register.
    pub const MPU_CTRL: u32 = 0xE000_ED94;
    /// NVIC interrupt set-enable register 0.
    pub const NVIC_ISER0: u32 = 0xE000_E100;
    /// System control block: vector table offset register.
    pub const SCB_VTOR: u32 = 0xE000_ED08;
}

/// Architectural classification of an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddressClass {
    /// Code region (Flash).
    Code,
    /// SRAM region.
    Sram,
    /// Peripheral region.
    Peripheral,
    /// External RAM region.
    ExternalRam,
    /// External Device region.
    ExternalDevice,
    /// Private Peripheral Bus (privileged-only).
    Ppb,
    /// Vendor-specific memory.
    Vendor,
}

impl AddressClass {
    /// Classifies an address according to the ARMv7-M memory map.
    pub fn of(addr: u32) -> AddressClass {
        match addr {
            a if a < CODE_END => AddressClass::Code,
            a if a < SRAM_END => AddressClass::Sram,
            a if a < PERIPH_END => AddressClass::Peripheral,
            a if a < EXT_RAM_END => AddressClass::ExternalRam,
            a if a < EXT_DEV_END => AddressClass::ExternalDevice,
            a if a < PPB_END => AddressClass::Ppb,
            _ => AddressClass::Vendor,
        }
    }

    /// Returns `true` if the class maps a peripheral of some kind
    /// (general peripheral, external device, or core peripheral).
    pub fn is_peripheral(self) -> bool {
        matches!(self, AddressClass::Peripheral | AddressClass::ExternalDevice | AddressClass::Ppb)
    }
}

/// A contiguous, half-open address range `[base, base + size)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRegion {
    /// First address of the range.
    pub base: u32,
    /// Size of the range in bytes.
    pub size: u32,
}

impl MemRegion {
    /// Creates a new region. `size` may be zero (an empty region).
    pub fn new(base: u32, size: u32) -> MemRegion {
        MemRegion { base, size }
    }

    /// Exclusive end address, saturating at the top of the address space.
    pub fn end(&self) -> u32 {
        self.base.saturating_add(self.size)
    }

    /// Returns `true` if `addr` lies within the region.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && (addr - self.base) < self.size
    }

    /// Returns `true` if `[addr, addr + len)` lies entirely within the
    /// region. A zero-length access is contained iff `addr` is.
    pub fn contains_range(&self, addr: u32, len: u32) -> bool {
        if len == 0 {
            return self.contains(addr);
        }
        self.contains(addr) && addr.checked_add(len - 1).is_some_and(|last| self.contains(last))
    }

    /// Returns `true` if the two regions share at least one address.
    pub fn overlaps(&self, other: &MemRegion) -> bool {
        self.size != 0 && other.size != 0 && self.base < other.end() && other.base < self.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_map_boundaries() {
        assert_eq!(AddressClass::of(0x0000_0000), AddressClass::Code);
        assert_eq!(AddressClass::of(0x1FFF_FFFF), AddressClass::Code);
        assert_eq!(AddressClass::of(0x2000_0000), AddressClass::Sram);
        assert_eq!(AddressClass::of(0x3FFF_FFFF), AddressClass::Sram);
        assert_eq!(AddressClass::of(0x4000_0000), AddressClass::Peripheral);
        assert_eq!(AddressClass::of(0x6000_0000), AddressClass::ExternalRam);
        assert_eq!(AddressClass::of(0xA000_0000), AddressClass::ExternalDevice);
        assert_eq!(AddressClass::of(0xE000_0000), AddressClass::Ppb);
        assert_eq!(AddressClass::of(0xE000_ED94), AddressClass::Ppb);
        assert_eq!(AddressClass::of(0xE010_0000), AddressClass::Vendor);
        assert_eq!(AddressClass::of(0xFFFF_FFFF), AddressClass::Vendor);
    }

    #[test]
    fn peripheral_classes() {
        assert!(AddressClass::Peripheral.is_peripheral());
        assert!(AddressClass::Ppb.is_peripheral());
        assert!(AddressClass::ExternalDevice.is_peripheral());
        assert!(!AddressClass::Sram.is_peripheral());
        assert!(!AddressClass::Code.is_peripheral());
    }

    #[test]
    fn region_contains() {
        let r = MemRegion::new(0x2000_0000, 0x100);
        assert!(r.contains(0x2000_0000));
        assert!(r.contains(0x2000_00FF));
        assert!(!r.contains(0x2000_0100));
        assert!(!r.contains(0x1FFF_FFFF));
        assert!(r.contains_range(0x2000_00F0, 0x10));
        assert!(!r.contains_range(0x2000_00F0, 0x11));
    }

    #[test]
    fn region_contains_range_at_top_of_address_space() {
        let r = MemRegion::new(0xFFFF_FF00, 0x100);
        assert!(r.contains_range(0xFFFF_FFFC, 4));
        assert!(!r.contains_range(0xFFFF_FFFC, 8));
    }

    #[test]
    fn region_overlap() {
        let a = MemRegion::new(0x100, 0x100);
        let b = MemRegion::new(0x1FF, 0x10);
        let c = MemRegion::new(0x200, 0x10);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(!a.overlaps(&MemRegion::new(0x0, 0)));
    }
}
