//! The ARMv7-M Memory Protection Unit (PMSAv7).
//!
//! The MPU defines up to eight regions. Each region has a base address, a
//! power-of-two size of at least 32 bytes, a base aligned to that size,
//! separate privileged/unprivileged access permissions, and an
//! execute-never bit. Regions are prioritised by number: if two enabled
//! regions cover the same address, the higher-numbered one decides the
//! permission. Every region of 256 bytes or more is split into eight
//! equal sub-regions that can be disabled individually; a disabled
//! sub-region behaves as if the region did not cover that range, so a
//! lower-numbered region (or the background map) takes over. OPEC leans
//! on this for its stack protection (Section 5.2 of the paper).

use crate::mem::MemRegion;
use crate::Mode;

/// Number of MPU regions implemented (Cortex-M4: 8).
pub const MPU_NUM_REGIONS: usize = 8;
/// Smallest permitted region size in bytes.
pub const MPU_MIN_REGION_SIZE: u32 = 32;
/// Number of sub-regions per region.
pub const MPU_SUBREGIONS: u32 = 8;
/// Smallest region size for which sub-regions are supported.
pub const MPU_MIN_SUBREGION_REGION_SIZE: u32 = 256;

/// Access permission for one privilege level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPerm {
    /// No access.
    NoAccess,
    /// Read-only access.
    ReadOnly,
    /// Read and write access.
    ReadWrite,
}

impl AccessPerm {
    /// Returns `true` if the permission allows a read.
    pub fn allows_read(self) -> bool {
        !matches!(self, AccessPerm::NoAccess)
    }

    /// Returns `true` if the permission allows a write.
    pub fn allows_write(self) -> bool {
        matches!(self, AccessPerm::ReadWrite)
    }
}

/// Per-region attributes: permissions for each level plus execute-never.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionAttr {
    /// Permission applied to privileged accesses.
    pub privileged: AccessPerm,
    /// Permission applied to unprivileged accesses.
    pub unprivileged: AccessPerm,
    /// Execute-never: instruction fetches from the region fault.
    pub execute_never: bool,
}

impl RegionAttr {
    /// Both levels read-write, executable.
    pub const fn full_access() -> RegionAttr {
        RegionAttr {
            privileged: AccessPerm::ReadWrite,
            unprivileged: AccessPerm::ReadWrite,
            execute_never: false,
        }
    }

    /// Both levels read-only.
    pub const fn read_only(execute_never: bool) -> RegionAttr {
        RegionAttr {
            privileged: AccessPerm::ReadOnly,
            unprivileged: AccessPerm::ReadOnly,
            execute_never,
        }
    }

    /// Privileged read-write, unprivileged read-only.
    pub const fn priv_rw_unpriv_ro(execute_never: bool) -> RegionAttr {
        RegionAttr {
            privileged: AccessPerm::ReadWrite,
            unprivileged: AccessPerm::ReadOnly,
            execute_never,
        }
    }

    /// Privileged read-write, unprivileged no access.
    pub const fn priv_only() -> RegionAttr {
        RegionAttr {
            privileged: AccessPerm::ReadWrite,
            unprivileged: AccessPerm::NoAccess,
            execute_never: true,
        }
    }

    /// Both levels read-write, not executable (data regions).
    pub const fn read_write_xn() -> RegionAttr {
        RegionAttr {
            privileged: AccessPerm::ReadWrite,
            unprivileged: AccessPerm::ReadWrite,
            execute_never: true,
        }
    }

    /// Permission for the given privilege level.
    pub fn perm(&self, mode: Mode) -> AccessPerm {
        match mode {
            Mode::Privileged => self.privileged,
            Mode::Unprivileged => self.unprivileged,
        }
    }
}

/// Errors raised when programming an invalid region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpuConfigError {
    /// The region number is `>= MPU_NUM_REGIONS`.
    BadRegionNumber(usize),
    /// The size is not a power of two or is below the 32-byte minimum.
    BadSize(u32),
    /// The base address is not aligned to the region size.
    Misaligned {
        /// The offending base address.
        base: u32,
        /// The region size the base must align to.
        size: u32,
    },
    /// Sub-region disable bits were given for a region under 256 bytes.
    SubregionsUnsupported {
        /// The (too small) region size.
        size: u32,
    },
}

impl core::fmt::Display for MpuConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MpuConfigError::BadRegionNumber(n) => write!(f, "MPU region number {n} out of range"),
            MpuConfigError::BadSize(s) => {
                write!(f, "MPU region size {s:#x} is not a power of two >= 32")
            }
            MpuConfigError::Misaligned { base, size } => {
                write!(f, "MPU region base {base:#010x} not aligned to size {size:#x}")
            }
            MpuConfigError::SubregionsUnsupported { size } => {
                write!(f, "sub-region disable unsupported for region size {size:#x} < 256")
            }
        }
    }
}

impl std::error::Error for MpuConfigError {}

/// One programmed MPU region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpuRegion {
    /// Base address; must be aligned to `size`.
    pub base: u32,
    /// Size in bytes; a power of two, at least 32.
    pub size: u32,
    /// Access attributes.
    pub attr: RegionAttr,
    /// Sub-region disable mask; bit *i* set disables sub-region *i*
    /// (the *i*-th eighth of the region, counting from the base).
    pub srd: u8,
}

impl MpuRegion {
    /// Creates a region with all sub-regions enabled.
    pub fn new(base: u32, size: u32, attr: RegionAttr) -> MpuRegion {
        MpuRegion { base, size, attr, srd: 0 }
    }

    /// Validates the architectural constraints on this region.
    pub fn validate(&self) -> Result<(), MpuConfigError> {
        if !self.size.is_power_of_two() || self.size < MPU_MIN_REGION_SIZE {
            return Err(MpuConfigError::BadSize(self.size));
        }
        if !self.base.is_multiple_of(self.size) {
            return Err(MpuConfigError::Misaligned { base: self.base, size: self.size });
        }
        if self.srd != 0 && self.size < MPU_MIN_SUBREGION_REGION_SIZE {
            return Err(MpuConfigError::SubregionsUnsupported { size: self.size });
        }
        Ok(())
    }

    /// The address range covered by the region (ignoring sub-region
    /// disables).
    pub fn range(&self) -> MemRegion {
        MemRegion::new(self.base, self.size)
    }

    /// Returns `true` if the region covers `addr` *and* the covering
    /// sub-region is enabled.
    pub fn matches(&self, addr: u32) -> bool {
        if !self.range().contains(addr) {
            return false;
        }
        if self.srd == 0 || self.size < MPU_MIN_SUBREGION_REGION_SIZE {
            return true;
        }
        let sub = ((addr - self.base) / (self.size / MPU_SUBREGIONS)) as u8;
        self.srd & (1 << sub) == 0
    }
}

/// The result of an MPU permission check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpuDecision {
    /// The access is permitted.
    Allowed,
    /// The access is denied; a MemManage fault is raised.
    Denied,
}

/// The Memory Protection Unit: eight prioritised regions plus control
/// state.
#[derive(Debug, Clone)]
pub struct Mpu {
    regions: [Option<MpuRegion>; MPU_NUM_REGIONS],
    /// Master enable (MPU_CTRL.ENABLE).
    pub enabled: bool,
    /// When set, privileged accesses that match no region use the default
    /// (background) memory map instead of faulting (MPU_CTRL.PRIVDEFENA).
    pub priv_default_enabled: bool,
    /// Observability handle; region writes are emitted as events
    /// (disabled by default, attached by the VM builder).
    obs: opec_obs::Obs,
}

impl Default for Mpu {
    fn default() -> Mpu {
        Mpu::new()
    }
}

impl Mpu {
    /// Creates a disabled MPU with no regions programmed.
    pub fn new() -> Mpu {
        Mpu {
            regions: [None; MPU_NUM_REGIONS],
            enabled: false,
            priv_default_enabled: true,
            obs: opec_obs::Obs::disabled(),
        }
    }

    /// Attaches an observability handle; every subsequent region write
    /// emits an [`opec_obs::Event::MpuRegionWrite`]. The MPU has no
    /// clock, so events carry the stream's last timestamp (the
    /// emitting supervisor advances it via
    /// [`opec_obs::Obs::set_now`]).
    pub fn attach_obs(&mut self, obs: opec_obs::Obs) {
        self.obs = obs;
    }

    /// Programs region `number`, validating architectural constraints.
    pub fn set_region(&mut self, number: usize, region: MpuRegion) -> Result<(), MpuConfigError> {
        if number >= MPU_NUM_REGIONS {
            return Err(MpuConfigError::BadRegionNumber(number));
        }
        region.validate()?;
        self.regions[number] = Some(region);
        self.obs.emit(|| opec_obs::Event::MpuRegionWrite {
            slot: number as u8,
            base: region.base,
            size: region.size,
            srd: region.srd,
        });
        Ok(())
    }

    /// Disables (clears) region `number`.
    pub fn clear_region(&mut self, number: usize) -> Result<(), MpuConfigError> {
        if number >= MPU_NUM_REGIONS {
            return Err(MpuConfigError::BadRegionNumber(number));
        }
        self.regions[number] = None;
        Ok(())
    }

    /// Returns the programmed region `number`, if any.
    pub fn region(&self, number: usize) -> Option<&MpuRegion> {
        self.regions.get(number).and_then(|r| r.as_ref())
    }

    /// Replaces the entire region file at once (used during operation
    /// switches, which reload the MPU from the operation's policy).
    pub fn load_regions(&mut self, regions: &[(usize, MpuRegion)]) -> Result<(), MpuConfigError> {
        let mut fresh: [Option<MpuRegion>; MPU_NUM_REGIONS] = [None; MPU_NUM_REGIONS];
        for &(number, region) in regions {
            if number >= MPU_NUM_REGIONS {
                return Err(MpuConfigError::BadRegionNumber(number));
            }
            region.validate()?;
            fresh[number] = Some(region);
        }
        self.regions = fresh;
        self.obs.emit(|| opec_obs::Event::MpuLoad { regions: regions.len() as u8 });
        Ok(())
    }

    /// Finds the highest-numbered enabled region whose enabled sub-region
    /// covers `addr`. This is the region whose attributes decide the
    /// access, per the PMSAv7 priority rule.
    pub fn matching_region(&self, addr: u32) -> Option<(usize, &MpuRegion)> {
        self.regions
            .iter()
            .enumerate()
            .rev()
            .find_map(|(i, r)| r.as_ref().filter(|r| r.matches(addr)).map(|r| (i, r)))
    }

    /// Checks a data access of `len` bytes at `addr` by `mode`.
    ///
    /// Every byte of the access must be permitted; an access straddling a
    /// region boundary is checked per byte like real hardware checks each
    /// transaction.
    pub fn check_data(&self, addr: u32, len: u32, write: bool, mode: Mode) -> MpuDecision {
        if !self.enabled {
            return MpuDecision::Allowed;
        }
        let mut offset = 0;
        while offset < len.max(1) {
            let Some(byte_addr) = addr.checked_add(offset) else {
                return MpuDecision::Denied;
            };
            if self.check_byte(byte_addr, write, mode) == MpuDecision::Denied {
                return MpuDecision::Denied;
            }
            offset += 1;
        }
        MpuDecision::Allowed
    }

    /// Checks an instruction fetch from `addr` by `mode`.
    pub fn check_exec(&self, addr: u32, mode: Mode) -> MpuDecision {
        if !self.enabled {
            return MpuDecision::Allowed;
        }
        match self.matching_region(addr) {
            Some((_, r)) => {
                if r.attr.execute_never || !r.attr.perm(mode).allows_read() {
                    MpuDecision::Denied
                } else {
                    MpuDecision::Allowed
                }
            }
            None => self.background(mode),
        }
    }

    fn check_byte(&self, addr: u32, write: bool, mode: Mode) -> MpuDecision {
        match self.matching_region(addr) {
            Some((_, r)) => {
                let perm = r.attr.perm(mode);
                let ok = if write { perm.allows_write() } else { perm.allows_read() };
                if ok {
                    MpuDecision::Allowed
                } else {
                    MpuDecision::Denied
                }
            }
            None => self.background(mode),
        }
    }

    /// Background-map decision when no region matches: privileged code
    /// may fall through to the default map if PRIVDEFENA is set;
    /// unprivileged code always faults.
    fn background(&self, mode: Mode) -> MpuDecision {
        if mode.is_privileged() && self.priv_default_enabled {
            MpuDecision::Allowed
        } else {
            MpuDecision::Denied
        }
    }
}

impl crate::prot::ProtectionUnit for Mpu {
    fn name(&self) -> &'static str {
        "armv7m-mpu"
    }

    fn check_data(&self, addr: u32, len: u32, write: bool, mode: Mode) -> MpuDecision {
        Mpu::check_data(self, addr, len, write, mode)
    }

    fn check_exec(&self, addr: u32, mode: Mode) -> MpuDecision {
        Mpu::check_exec(self, addr, mode)
    }

    fn enforcing(&self) -> bool {
        self.enabled
    }

    fn attach_obs(&mut self, obs: opec_obs::Obs) {
        Mpu::attach_obs(self, obs);
    }

    fn ppb_ctrl_write(&mut self, addr: u32, value: u32) {
        // MPU_CTRL is live state: ENABLE (bit 0) and PRIVDEFENA (bit 2)
        // drive the modelled MPU, so privileged code that reaches this
        // register really does turn protection off.
        if addr == crate::mem::ppb::MPU_CTRL {
            self.enabled = value & 1 != 0;
            self.priv_default_enabled = value & 4 != 0;
        }
    }

    fn clone_unit(&self) -> Box<dyn crate::prot::ProtectionUnit> {
        Box::new(self.clone())
    }

    fn copy_unit_from(&mut self, src: &dyn crate::prot::ProtectionUnit) -> bool {
        match src.as_any().downcast_ref::<Mpu>() {
            Some(s) => {
                self.regions = s.regions;
                self.enabled = s.enabled;
                self.priv_default_enabled = s.priv_default_enabled;
                // `obs` is configuration, not state: the live unit and
                // the snapshotted one were attached to the same stream.
                true
            }
            None => false,
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Rounds `size` up to the smallest legal MPU region size that can cover
/// it (a power of two, at least 32 bytes).
pub fn region_size_for(size: u32) -> u32 {
    size.max(MPU_MIN_REGION_SIZE).next_power_of_two()
}

/// Aligns `addr` up to `align` (a power of two).
pub fn align_up(addr: u32, align: u32) -> u32 {
    debug_assert!(align.is_power_of_two());
    (addr + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rw_region(base: u32, size: u32) -> MpuRegion {
        MpuRegion::new(base, size, RegionAttr::full_access())
    }

    #[test]
    fn region_validation() {
        assert!(rw_region(0x2000_0000, 32).validate().is_ok());
        assert_eq!(rw_region(0x2000_0000, 48).validate(), Err(MpuConfigError::BadSize(48)));
        assert_eq!(rw_region(0x2000_0000, 16).validate(), Err(MpuConfigError::BadSize(16)));
        assert_eq!(
            rw_region(0x2000_0020, 0x100).validate(),
            Err(MpuConfigError::Misaligned { base: 0x2000_0020, size: 0x100 })
        );
        let mut r = rw_region(0x2000_0000, 64);
        r.srd = 0x01;
        assert_eq!(r.validate(), Err(MpuConfigError::SubregionsUnsupported { size: 64 }));
    }

    #[test]
    fn disabled_mpu_allows_everything() {
        let mpu = Mpu::new();
        assert_eq!(mpu.check_data(0xDEAD_BEEF, 4, true, Mode::Unprivileged), MpuDecision::Allowed);
    }

    #[test]
    fn unprivileged_background_denied() {
        let mut mpu = Mpu::new();
        mpu.enabled = true;
        assert_eq!(mpu.check_data(0x2000_0000, 4, false, Mode::Unprivileged), MpuDecision::Denied);
        assert_eq!(mpu.check_data(0x2000_0000, 4, false, Mode::Privileged), MpuDecision::Allowed);
    }

    #[test]
    fn privdefena_off_denies_privileged_background() {
        let mut mpu = Mpu::new();
        mpu.enabled = true;
        mpu.priv_default_enabled = false;
        assert_eq!(mpu.check_data(0x2000_0000, 4, false, Mode::Privileged), MpuDecision::Denied);
    }

    #[test]
    fn higher_region_wins() {
        let mut mpu = Mpu::new();
        mpu.enabled = true;
        // Region 0: large read-only window.
        mpu.set_region(0, MpuRegion::new(0x2000_0000, 0x1000, RegionAttr::read_only(true)))
            .unwrap();
        // Region 3: small read-write window inside it.
        mpu.set_region(3, rw_region(0x2000_0400, 0x100)).unwrap();
        assert_eq!(mpu.check_data(0x2000_0000, 4, true, Mode::Unprivileged), MpuDecision::Denied);
        assert_eq!(mpu.check_data(0x2000_0400, 4, true, Mode::Unprivileged), MpuDecision::Allowed);
        // Straddling the boundary between RW and RO must deny.
        assert_eq!(mpu.check_data(0x2000_04FE, 4, true, Mode::Unprivileged), MpuDecision::Denied);
    }

    #[test]
    fn subregion_disable_falls_through() {
        let mut mpu = Mpu::new();
        mpu.enabled = true;
        mpu.set_region(0, MpuRegion::new(0x2000_0000, 0x1000, RegionAttr::read_only(true)))
            .unwrap();
        let mut stack = rw_region(0x2000_0000, 0x800);
        stack.srd = 0b1000_0000; // disable the top eighth: [0x700, 0x800)
        mpu.set_region(2, stack).unwrap();
        assert_eq!(mpu.check_data(0x2000_0100, 4, true, Mode::Unprivileged), MpuDecision::Allowed);
        // The disabled sub-region falls through to region 0 (read-only).
        assert_eq!(mpu.check_data(0x2000_0700, 4, true, Mode::Unprivileged), MpuDecision::Denied);
        assert_eq!(mpu.check_data(0x2000_0700, 4, false, Mode::Unprivileged), MpuDecision::Allowed);
    }

    #[test]
    fn subregion_boundaries_are_eighths() {
        let mut r = rw_region(0x2000_0000, 0x800);
        r.srd = 0b0000_0100; // disable sub-region 2: [0x200, 0x300)
        assert!(r.matches(0x2000_01FF));
        assert!(!r.matches(0x2000_0200));
        assert!(!r.matches(0x2000_02FF));
        assert!(r.matches(0x2000_0300));
    }

    #[test]
    fn exec_checks_xn() {
        let mut mpu = Mpu::new();
        mpu.enabled = true;
        mpu.set_region(1, MpuRegion::new(0x0800_0000, 0x10_0000, RegionAttr::read_only(false)))
            .unwrap();
        mpu.set_region(2, MpuRegion::new(0x2000_0000, 0x1000, RegionAttr::read_write_xn()))
            .unwrap();
        assert_eq!(mpu.check_exec(0x0800_0100, Mode::Unprivileged), MpuDecision::Allowed);
        assert_eq!(mpu.check_exec(0x2000_0100, Mode::Unprivileged), MpuDecision::Denied);
    }

    #[test]
    fn load_regions_replaces_all() {
        let mut mpu = Mpu::new();
        mpu.enabled = true;
        mpu.set_region(5, rw_region(0x2000_0000, 0x100)).unwrap();
        mpu.load_regions(&[(1, rw_region(0x2000_1000, 0x100))]).unwrap();
        assert!(mpu.region(5).is_none());
        assert!(mpu.region(1).is_some());
    }

    #[test]
    fn region_size_rounding() {
        assert_eq!(region_size_for(1), 32);
        assert_eq!(region_size_for(32), 32);
        assert_eq!(region_size_for(33), 64);
        assert_eq!(region_size_for(4096), 4096);
        assert_eq!(region_size_for(5000), 8192);
    }

    #[test]
    fn align_up_rounds() {
        assert_eq!(align_up(0x101, 0x100), 0x200);
        assert_eq!(align_up(0x100, 0x100), 0x100);
        assert_eq!(align_up(0, 32), 0);
    }

    #[test]
    fn data_check_rejects_address_wraparound() {
        let mut mpu = Mpu::new();
        mpu.enabled = true;
        assert_eq!(mpu.check_data(0xFFFF_FFFE, 4, false, Mode::Privileged), MpuDecision::Denied);
    }
}
