//! The protection-unit abstraction.
//!
//! [`Machine`](crate::Machine) checks every data access and every
//! instruction fetch through one pluggable [`ProtectionUnit`] instead of
//! a hard-wired ARMv7-M MPU. The unit decides *allow or deny* for a
//! `(address, length, direction, privilege)` query; everything above it
//! — fault delivery, routing, emulation — is shared machine substrate.
//!
//! Two units ship with the reproduction: the ARMv7-M MPU
//! ([`crate::mpu::Mpu`], eight prioritised power-of-two regions with
//! sub-region disables, highest region number wins) and the RISC-V PMP
//! (`opec-pmp`, sixteen TOR/NAPOT entries, lowest entry number wins).
//! Backend-specific *programming* — region files, entry files, switch
//! costs — lives behind the `opec-core` backend trait; this trait is
//! only the machine-facing *checking* surface, which is why it is
//! object-safe and deliberately small.

use std::any::Any;

use crate::mpu::MpuDecision;
use crate::Mode;

/// A pluggable memory-protection model the [`crate::Machine`] consults
/// on every checked access.
///
/// Implementations are behavioural models (the ARMv7-M MPU, the RISC-V
/// PMP): they answer permission queries and expose enough hooks for the
/// machine to snapshot them and for privileged code to reach their
/// memory-mapped/CSR control state. They never route memory themselves.
pub trait ProtectionUnit {
    /// Stable unit name (`"armv7m-mpu"`, `"rv32-pmp"`), used in
    /// diagnostics and reports.
    fn name(&self) -> &'static str;

    /// Permission decision for a data access of `len` bytes at `addr`.
    fn check_data(&self, addr: u32, len: u32, write: bool, mode: Mode) -> MpuDecision;

    /// Permission decision for an instruction fetch at `addr`.
    fn check_exec(&self, addr: u32, mode: Mode) -> MpuDecision;

    /// Whether the unit currently enforces anything (reset state is
    /// disabled / allow-all for both shipped models).
    fn enforcing(&self) -> bool;

    /// Attaches the observability handle so the unit can emit
    /// reprogramming events.
    fn attach_obs(&mut self, _obs: opec_obs::Obs) {}

    /// Hook for writes to the unit's memory-mapped control registers
    /// (the ARMv7-M MPU_CTRL lives on the PPB; the PMP has no such
    /// window and ignores this). Called for every PPB register write.
    fn ppb_ctrl_write(&mut self, _addr: u32, _value: u32) {}

    /// Clones the unit's full state for machine snapshots.
    fn clone_unit(&self) -> Box<dyn ProtectionUnit>;

    /// Copies `src`'s enforcement state into `self` without
    /// allocating, returning `false` when the concrete types differ.
    /// Snapshot restores run this every device spawn of a pooled
    /// fleet; the default falls back to [`Self::clone_unit`].
    fn copy_unit_from(&mut self, _src: &dyn ProtectionUnit) -> bool {
        false
    }

    /// Downcasting hook so backend code can reach the concrete model.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcasting hook (backends program the concrete model).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl std::fmt::Debug for dyn ProtectionUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ProtectionUnit({})", self.name())
    }
}
