//! ARMv7-M machine model for the OPEC reproduction.
//!
//! This crate models the subset of the ARMv7-M architecture that the OPEC
//! paper (EuroSys '22) relies on for its isolation guarantees:
//!
//! * the fixed 4 GiB memory map (Code / SRAM / Peripheral / External /
//!   Private Peripheral Bus / Vendor) — [`mem`];
//! * two privilege levels and the rule that Private Peripheral Bus (PPB)
//!   accesses from unprivileged code raise a bus fault — [`Mode`];
//! * the Memory Protection Unit with eight prioritised regions,
//!   power-of-two size and alignment constraints, and eight individually
//!   disableable sub-regions per region — [`mpu`];
//! * the exception kinds OPEC-Monitor hooks (SVC, MemManage, BusFault) —
//!   [`exception`];
//! * a cycle clock with Cortex-M4-style costs — [`clock`];
//! * a Thumb-2 load/store encoder/decoder used by the monitor's
//!   core-peripheral emulation path — [`thumb`];
//! * the composed [`machine::Machine`] that owns Flash, SRAM, the MPU and
//!   memory-mapped devices and enforces all of the above on every access.
//!
//! The model is deliberately a *behavioural* one: it enforces the same
//! access-control rules as real silicon (region priority, sub-region
//! fall-through, PPB privilege, alignment) without interpreting real
//! Thumb-2 code, except in the instruction-emulation path where real
//! encodings are decoded.

#![warn(missing_docs)]

pub mod board;
pub mod clock;
pub mod exception;
pub mod machine;
pub mod mem;
pub mod mpu;
pub mod prot;
pub mod thumb;

pub use board::Board;
pub use clock::{costs, Clock};
pub use exception::{AccessKind, Exception, FaultCause, FaultInfo};
pub use machine::{copy_device_state, Machine, MachineDelta, MachineSnapshot, MmioDevice};
pub use mem::{AddressClass, MemRegion};
pub use mpu::{AccessPerm, Mpu, MpuRegion, RegionAttr, MPU_MIN_REGION_SIZE, MPU_NUM_REGIONS};
pub use prot::ProtectionUnit;

/// Processor privilege level.
///
/// ARMv7-M thread mode runs either privileged or unprivileged; handler
/// mode is always privileged. OPEC runs all application code unprivileged
/// and only OPEC-Monitor (exception handlers) privileged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Privileged execution (handler mode / privileged thread mode).
    Privileged,
    /// Unprivileged thread mode; the level OPEC assigns to application code.
    Unprivileged,
}

impl Mode {
    /// Returns `true` for privileged execution.
    pub fn is_privileged(self) -> bool {
        matches!(self, Mode::Privileged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_predicates() {
        assert!(Mode::Privileged.is_privileged());
        assert!(!Mode::Unprivileged.is_privileged());
    }
}
