//! Board profiles for the two evaluation boards used in the paper.

use crate::mem::{MemRegion, SRAM_BASE};

/// Flash base address on STM32F4-family parts.
pub const STM32_FLASH_BASE: u32 = 0x0800_0000;

/// Static description of a development board.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Board {
    /// Human-readable name.
    pub name: &'static str,
    /// Flash range.
    pub flash: MemRegion,
    /// SRAM range.
    pub sram: MemRegion,
}

impl Board {
    /// STM32F4-Discovery: 1 MiB Flash, 192 KiB SRAM (paper, Section 6.3).
    pub const fn stm32f4_discovery() -> Board {
        Board {
            name: "STM32F4-Discovery",
            flash: MemRegion { base: STM32_FLASH_BASE, size: 1024 * 1024 },
            sram: MemRegion { base: SRAM_BASE, size: 192 * 1024 },
        }
    }

    /// STM32479I-EVAL: 2 MiB Flash, 288 KiB SRAM (paper, Section 6.3).
    pub const fn stm32479i_eval() -> Board {
        Board {
            name: "STM32479I-EVAL",
            flash: MemRegion { base: STM32_FLASH_BASE, size: 2 * 1024 * 1024 },
            sram: MemRegion { base: SRAM_BASE, size: 288 * 1024 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn board_sizes_match_paper() {
        let disco = Board::stm32f4_discovery();
        assert_eq!(disco.flash.size, 1 << 20);
        assert_eq!(disco.sram.size, 192 << 10);
        let eval = Board::stm32479i_eval();
        assert_eq!(eval.flash.size, 2 << 20);
        assert_eq!(eval.sram.size, 288 << 10);
        assert_eq!(disco.flash.base, 0x0800_0000);
        assert_eq!(disco.sram.base, 0x2000_0000);
    }
}
