//! Property tests for the MPU sub-region disable (SRD) encoding and
//! regression coverage for the >4-peripheral-window round-robin
//! virtualization discipline the OPEC monitor layers on top of
//! [`Mpu::set_region`] / [`Mpu::load_regions`].
//!
//! The SRD tests round-trip the bit mask through the observable
//! behaviour: bit `i` set must disable exactly the `i`-th eighth of the
//! region — at its boundaries, in its interior, and through the full
//! per-byte [`Mpu::check_data`] decision — and re-deriving the mask
//! from those observations must reproduce the original bits.
//!
//! The property bodies live in plain functions (panics shrink fine
//! under proptest) so the `proptest!` blocks stay small; the macro's
//! token muncher still needs a bumped recursion limit.

#![recursion_limit = "256"]

use opec_armv7m::mpu::{
    Mpu, MpuConfigError, MpuDecision, MpuRegion, RegionAttr, MPU_MIN_SUBREGION_REGION_SIZE,
};
use opec_armv7m::Mode;
use proptest::prelude::*;

/// A random region eligible for sub-regions: power-of-two size in
/// 256..=64 KiB, base aligned to the size, arbitrary SRD mask.
fn subregion_region() -> impl Strategy<Value = (u32, u32, u8)> {
    (8u32..17, 0u32..64, any::<u8>()).prop_map(|(exp, slot, srd)| {
        let size = 1u32 << exp;
        (0x2000_0000 + slot * size, size, srd)
    })
}

/// Builds an enabled MPU whose only region is `region` in slot 0.
fn mpu_with(region: MpuRegion) -> Mpu {
    let mut mpu = Mpu::new();
    mpu.enabled = true;
    mpu.set_region(0, region).expect("region validates");
    mpu
}

/// SRD bits ↔ enabled byte-ranges round-trip. Forward: bit `i` clear
/// makes every byte of eighth `i` match (and bit `i` set makes none
/// match). Reverse: the mask re-derived from `matches` at each
/// eighth's base equals the original.
fn check_srd_round_trip(base: u32, size: u32, srd: u8) {
    let mut region = MpuRegion::new(base, size, RegionAttr::full_access());
    region.srd = srd;
    assert_eq!(region.validate(), Ok(()));
    let mpu = mpu_with(region);

    let sub = size / 8;
    for i in 0..8u32 {
        let enabled = srd & (1u8 << i) == 0;
        let lo = base + i * sub;
        for addr in [lo, lo + sub / 2, lo + sub - 1] {
            assert_eq!(
                region.matches(addr),
                enabled,
                "eighth {i} at {addr:#010x} with srd {srd:#04x}"
            );
            let decision = mpu.check_data(addr, 1, true, Mode::Unprivileged);
            assert_eq!(
                decision == MpuDecision::Allowed,
                enabled,
                "check_data at {addr:#010x} with srd {srd:#04x}"
            );
        }
    }

    let mut derived = 0u8;
    for i in 0..8u32 {
        if !region.matches(base + i * sub) {
            derived |= 1 << i;
        }
    }
    assert_eq!(derived, srd, "re-derived mask differs from the programmed one");

    // Outside the covering range nothing matches, whatever the mask.
    assert!(!region.matches(base - 1));
    assert!(!region.matches(base + size));
}

/// A multi-byte access is allowed iff every byte it touches lands in
/// an enabled eighth — straddling a disabled sub-region denies.
fn check_multibyte_straddle(base: u32, size: u32, srd: u8, start_eighth: u32, len: u32) {
    let mut region = MpuRegion::new(base, size, RegionAttr::full_access());
    region.srd = srd;
    let mpu = mpu_with(region);

    let sub = size / 8;
    // Start just below an eighth boundary so len > 1 can straddle.
    let addr = base + start_eighth * sub + sub - 1;
    let all_enabled = (0..len).all(|off| {
        let eighth = (addr + off - base) / sub;
        eighth < 8 && srd & (1u8 << eighth) == 0
    });
    let decision = mpu.check_data(addr, len, false, Mode::Unprivileged);
    assert_eq!(
        decision == MpuDecision::Allowed,
        all_enabled,
        "{len}-byte access at {addr:#010x} with srd {srd:#04x}"
    );
}

/// Regions below 256 bytes cannot carry SRD bits: `validate` rejects
/// them, and the (defensive) `matches` ignores the mask.
fn check_small_region_rejects_srd(exp: u32, slot: u32, srd: u8) {
    let size = 1u32 << exp;
    assert!(size < MPU_MIN_SUBREGION_REGION_SIZE);
    let base = 0x2000_0000 + slot * size;
    let mut region = MpuRegion::new(base, size, RegionAttr::full_access());
    region.srd = srd;
    assert_eq!(region.validate(), Err(MpuConfigError::SubregionsUnsupported { size }));
    for off in [0, size / 2, size - 1] {
        assert!(region.matches(base + off));
    }
}

proptest! {
    #[test]
    fn srd_bits_round_trip_through_enabled_ranges(region in subregion_region()) {
        let (base, size, srd) = region;
        check_srd_round_trip(base, size, srd);
    }

    #[test]
    fn multibyte_access_denied_iff_it_touches_a_disabled_eighth(
        region in subregion_region(),
        start_eighth in 0u32..8,
        len in 1u32..5,
    ) {
        let (base, size, srd) = region;
        check_multibyte_straddle(base, size, srd, start_eighth, len);
    }

    #[test]
    fn small_regions_reject_srd_bits(exp in 5u32..8, slot in 0u32..256, srd in 0u8..255) {
        check_small_region_rejects_srd(exp, slot, srd + 1);
    }
}

// ---------------------------------------------------------------------
// Round-robin window virtualization (regression for the >4-window fix).
//
// The OPEC monitor reserves MPU slots 4..8 for peripheral windows: the
// first four are preloaded index-aligned, and a MemManage fault on a
// fifth (or later) window swaps its prepared region into the victim
// slot `4 + rr % 4`, `rr += 1` (see `OpecMonitor::on_mem_fault`). These
// tests drive that exact discipline against the MPU model and assert
// the region file tracks the slot bookkeeping at every step.
// ---------------------------------------------------------------------

const WINDOW_STRIDE: u32 = 0x1000;
const WINDOW_SIZE: u32 = 0x400;

fn window(widx: u32) -> MpuRegion {
    MpuRegion::new(0x4000_0000 + widx * WINDOW_STRIDE, WINDOW_SIZE, RegionAttr::read_write_xn())
}

fn unpriv_allowed(mpu: &Mpu, addr: u32) -> bool {
    mpu.check_data(addr, 4, true, Mode::Unprivileged) == MpuDecision::Allowed
}

/// The monitor's virtualization bookkeeping, replayed over a bare MPU.
struct VirtFile {
    mpu: Mpu,
    virt_slots: [Option<u8>; 4],
    rr: usize,
}

impl VirtFile {
    fn new() -> VirtFile {
        let mut f = VirtFile { mpu: Mpu::new(), virt_slots: [None; 4], rr: 0 };
        f.mpu.enabled = true;
        f.reload();
        f
    }

    /// Mirrors `OpecMonitor::load_regions_for`: full reprogram with the
    /// first four windows index-aligned in slots 4..8, bookkeeping and
    /// round-robin cursor reset.
    fn reload(&mut self) {
        let regions: Vec<(usize, MpuRegion)> =
            (0..4).map(|i| (4 + i as usize, window(i))).collect();
        self.mpu.load_regions(&regions).expect("preload regions");
        self.virt_slots = [None; 4];
        for i in 0..4u32 {
            self.virt_slots[i as usize] = Some(i as u8);
        }
        self.rr = 0;
    }

    /// Mirrors `OpecMonitor::on_mem_fault` for an access to window
    /// `widx`: if the region file denies it, swap the window's region
    /// into the round-robin victim slot and retry.
    fn touch(&mut self, widx: u32) {
        let addr = window(widx).base;
        if !unpriv_allowed(&self.mpu, addr) {
            let victim = 4 + (self.rr % 4);
            self.rr += 1;
            self.virt_slots[victim - 4] = Some(widx as u8);
            self.mpu.set_region(victim, window(widx)).expect("swap window in");
        }
        assert!(unpriv_allowed(&self.mpu, addr), "window {widx} still denied after swap");
    }

    /// Asserts the region file allows exactly the windows the slot
    /// bookkeeping says it holds, out of `total` windows.
    fn assert_resident(&self, total: u32) {
        let resident: Vec<u8> = self.virt_slots.iter().flatten().copied().collect();
        for widx in 0..total {
            assert_eq!(
                unpriv_allowed(&self.mpu, window(widx).base),
                resident.contains(&(widx as u8)),
                "window {widx} vs slots {:?}",
                self.virt_slots,
            );
        }
    }
}

#[test]
fn round_robin_swaps_track_the_region_file_beyond_four_windows() {
    let mut f = VirtFile::new();
    f.assert_resident(6);

    // Window 4 faults in: victim is slot 4, evicting window 0.
    f.touch(4);
    assert_eq!(f.virt_slots, [Some(4), Some(1), Some(2), Some(3)]);
    f.assert_resident(6);
    assert!(!unpriv_allowed(&f.mpu, window(0).base), "evicted window 0 must deny again");

    // Window 5 faults in: victim is slot 5, evicting window 1.
    f.touch(5);
    assert_eq!(f.virt_slots, [Some(4), Some(5), Some(2), Some(3)]);
    f.assert_resident(6);

    // Evicted windows fault back in, walking the remaining victims.
    f.touch(0);
    f.touch(1);
    assert_eq!(f.virt_slots, [Some(4), Some(5), Some(0), Some(1)]);
    f.assert_resident(6);

    // The cursor wraps: the next miss takes slot 4 again.
    f.touch(2);
    assert_eq!(f.virt_slots, [Some(2), Some(5), Some(0), Some(1)]);
    f.assert_resident(6);

    // Resident windows never trigger a swap.
    let rr_before = f.rr;
    f.touch(5);
    f.touch(0);
    assert_eq!(f.rr, rr_before, "hits must not advance the round-robin cursor");

    // A full reprogram (operation switch) clears every stale slot.
    f.reload();
    f.assert_resident(6);
    assert_eq!(f.rr, 0);
}

/// Any access sequence over more windows than slots keeps the MPU
/// region file and the slot bookkeeping in lockstep: after every
/// access the touched window is resident, and exactly the windows the
/// slots claim are allowed.
fn check_sequence_lockstep(accesses: &[u32]) {
    let mut f = VirtFile::new();
    for &widx in accesses {
        f.touch(widx);
        assert!(unpriv_allowed(&f.mpu, window(widx).base));
        f.assert_resident(6);
    }
}

proptest! {
    #[test]
    fn random_access_sequences_keep_slots_and_region_file_in_lockstep(
        accesses in proptest::collection::vec(0u32..6, 1..40),
    ) {
        check_sequence_lockstep(&accesses);
    }
}
