//! Inter-procedural constant-address analysis.
//!
//! The paper's compiler "uses the backward slicing at IR level to examine
//! whether the operand of a load/store instruction contains a constant
//! memory address" (Section 4.2). In the real firmware those constants
//! often arrive *through arguments* (`HAL_GPIO_Init(GPIOA, ...)`), so the
//! slicing must cross calls. We implement the equivalent as a forward
//! constant propagation over a **k-limited constant-set lattice**
//! (`⊥ → {c₁…c₈} → ⊤`), with parameter states accumulated from every
//! call site until fixpoint. An access whose address operand evaluates
//! to a set of constants is reported with the whole set — conservative
//! in the same direction as the paper's analysis (all possibly-touched
//! peripherals become dependencies).

use std::collections::{BTreeSet, HashMap};

use opec_ir::module::{BinOp, UnOp};
use opec_ir::{FuncId, Inst, Module, Operand, Terminator};

/// Maximum constants tracked per value before widening to ⊤.
const K: usize = 8;

/// Dataflow lattice over one register: unreached, a small set of
/// possible constants, or unknown.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Lattice {
    Bottom,
    Consts(BTreeSet<u32>),
    Top,
}

impl Lattice {
    fn single(v: u32) -> Lattice {
        Lattice::Consts([v].into_iter().collect())
    }

    fn join(&self, other: &Lattice) -> Lattice {
        match (self, other) {
            (Lattice::Bottom, x) | (x, Lattice::Bottom) => x.clone(),
            (Lattice::Top, _) | (_, Lattice::Top) => Lattice::Top,
            (Lattice::Consts(a), Lattice::Consts(b)) => {
                let u: BTreeSet<u32> = a.union(b).copied().collect();
                if u.len() > K {
                    Lattice::Top
                } else {
                    Lattice::Consts(u)
                }
            }
        }
    }
}

/// A memory access whose address operand evaluates to constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstAccess {
    /// Block index.
    pub block: u32,
    /// Instruction index within the block.
    pub inst: u32,
    /// The possible constant effective addresses.
    pub addresses: BTreeSet<u32>,
    /// `true` for a store.
    pub is_store: bool,
    /// Access size in bytes.
    pub size: u8,
}

/// Whole-module constant analysis: per-function parameter states.
pub struct ConstAnalysis {
    param_states: Vec<Vec<Lattice>>,
}

impl ConstAnalysis {
    /// Runs the inter-procedural fixpoint over `module`.
    pub fn analyze(module: &Module) -> ConstAnalysis {
        let mut param_states: Vec<Vec<Lattice>> =
            module.funcs.iter().map(|f| vec![Lattice::Bottom; f.params.len()]).collect();
        // `main` is reached from reset with no arguments.
        // Address-taken functions may be invoked through icalls with
        // arbitrary arguments: widen their parameters.
        let mut address_taken: BTreeSet<FuncId> = BTreeSet::new();
        let mut has_icalls = false;
        for f in &module.funcs {
            for b in &f.blocks {
                for i in &b.insts {
                    match i {
                        Inst::AddrOfFunc { func, .. } => {
                            address_taken.insert(*func);
                        }
                        Inst::CallIndirect { .. } => has_icalls = true,
                        _ => {}
                    }
                }
            }
        }
        if has_icalls {
            for f in &address_taken {
                for p in param_states[f.0 as usize].iter_mut() {
                    *p = Lattice::Top;
                }
            }
        }
        // Fixpoint: run each function and fold call-site argument values
        // into callee parameter states.
        loop {
            let mut changed = false;
            for (fi, func) in module.funcs.iter().enumerate() {
                let entry = param_states[fi].clone();
                let in_states = intra_dataflow(module, FuncId(fi as u32), &entry);
                // Walk again to collect call-site arguments.
                for (bi, block) in func.blocks.iter().enumerate() {
                    let Some(state) = in_states[bi].clone() else { continue };
                    let mut s = state;
                    for inst in &block.insts {
                        if let Inst::Call { callee, args, .. } = inst {
                            for (i, arg) in args.iter().enumerate() {
                                let v = eval(arg, &s);
                                let slot = &mut param_states[callee.0 as usize];
                                if i < slot.len() {
                                    let j = slot[i].join(&v);
                                    if j != slot[i] {
                                        slot[i] = j;
                                        changed = true;
                                    }
                                }
                            }
                        }
                        transfer(inst, &mut s);
                    }
                }
            }
            if !changed {
                return ConstAnalysis { param_states };
            }
        }
    }

    /// The constant-address accesses of `func`.
    pub fn accesses(&self, module: &Module, func: FuncId) -> Vec<ConstAccess> {
        let f = &module.funcs[func.0 as usize];
        if f.blocks.is_empty() {
            return Vec::new();
        }
        let entry = self.param_states[func.0 as usize].clone();
        let in_states = intra_dataflow(module, func, &entry);
        let mut out = Vec::new();
        for (bi, block) in f.blocks.iter().enumerate() {
            let Some(state) = in_states[bi].clone() else { continue };
            let mut s = state;
            for (ii, inst) in block.insts.iter().enumerate() {
                match inst {
                    Inst::Load { addr, size, .. } => {
                        if let Lattice::Consts(set) = eval(addr, &s) {
                            out.push(ConstAccess {
                                block: bi as u32,
                                inst: ii as u32,
                                addresses: set,
                                is_store: false,
                                size: *size,
                            });
                        }
                    }
                    Inst::Store { addr, size, .. } => {
                        if let Lattice::Consts(set) = eval(addr, &s) {
                            out.push(ConstAccess {
                                block: bi as u32,
                                inst: ii as u32,
                                addresses: set,
                                is_store: true,
                                size: *size,
                            });
                        }
                    }
                    _ => {}
                }
                transfer(inst, &mut s);
            }
        }
        out
    }
}

/// Intra-procedural dataflow with the given entry parameter states.
/// Returns the stable in-state of each block (`None` = unreachable).
fn intra_dataflow(module: &Module, func: FuncId, params: &[Lattice]) -> Vec<Option<Vec<Lattice>>> {
    let f = &module.funcs[func.0 as usize];
    let nregs = f.num_regs as usize;
    let mut in_states: Vec<Option<Vec<Lattice>>> = vec![None; f.blocks.len()];
    let mut entry = vec![Lattice::Bottom; nregs];
    for (i, p) in params.iter().enumerate().take(nregs) {
        entry[i] = p.clone();
    }
    in_states[0] = Some(entry);
    let mut work = vec![0usize];
    while let Some(b) = work.pop() {
        let Some(state) = in_states[b].clone() else { continue };
        let mut s = state;
        for inst in &f.blocks[b].insts {
            transfer(inst, &mut s);
        }
        let succs: Vec<usize> = match &f.blocks[b].term {
            Terminator::Br(t) => vec![t.0 as usize],
            Terminator::CondBr { then_to, else_to, .. } => {
                vec![then_to.0 as usize, else_to.0 as usize]
            }
            Terminator::Ret(_) | Terminator::Unreachable => vec![],
        };
        for succ in succs {
            let merged = match &in_states[succ] {
                None => s.clone(),
                Some(old) => old.iter().zip(s.iter()).map(|(a, b)| a.join(b)).collect(),
            };
            if in_states[succ].as_ref() != Some(&merged) {
                in_states[succ] = Some(merged);
                work.push(succ);
            }
        }
    }
    in_states
}

fn eval(op: &Operand, s: &[Lattice]) -> Lattice {
    match op {
        Operand::Imm(v) => Lattice::single(*v),
        Operand::Reg(r) => s.get(r.0 as usize).cloned().unwrap_or(Lattice::Top),
    }
}

fn transfer(inst: &Inst, s: &mut [Lattice]) {
    let set = |s: &mut [Lattice], r: opec_ir::RegId, v: Lattice| {
        if let Some(slot) = s.get_mut(r.0 as usize) {
            *slot = v;
        }
    };
    match inst {
        Inst::Mov { dst, src } => {
            let v = eval(src, s);
            set(s, *dst, v);
        }
        Inst::Un { dst, op, src } => {
            let v = match eval(src, s) {
                Lattice::Consts(xs) => {
                    let mapped: BTreeSet<u32> = xs
                        .iter()
                        .map(|&x| match op {
                            UnOp::Neg => x.wrapping_neg(),
                            UnOp::Not => !x,
                        })
                        .collect();
                    Lattice::Consts(mapped)
                }
                other => other_widen(other),
            };
            set(s, *dst, v);
        }
        Inst::Bin { dst, op, lhs, rhs } => {
            let v = match (eval(lhs, s), eval(rhs, s)) {
                (Lattice::Consts(a), Lattice::Consts(b)) => {
                    let mut out = BTreeSet::new();
                    'outer: for &x in &a {
                        for &y in &b {
                            out.insert(eval_bin(*op, x, y));
                            if out.len() > K {
                                break 'outer;
                            }
                        }
                    }
                    if out.len() > K {
                        Lattice::Top
                    } else {
                        Lattice::Consts(out)
                    }
                }
                (Lattice::Bottom, _) | (_, Lattice::Bottom) => Lattice::Bottom,
                _ => Lattice::Top,
            };
            set(s, *dst, v);
        }
        Inst::AddrOfGlobal { dst, .. }
        | Inst::AddrOfLocal { dst, .. }
        | Inst::AddrOfFunc { dst, .. }
        | Inst::LoadGlobal { dst, .. }
        | Inst::Load { dst, .. } => set(s, *dst, Lattice::Top),
        Inst::Call { dst, .. } | Inst::CallIndirect { dst, .. } => {
            if let Some(d) = dst {
                set(s, *d, Lattice::Top);
            }
        }
        Inst::StoreGlobal { .. }
        | Inst::Store { .. }
        | Inst::Memcpy { .. }
        | Inst::Memset { .. }
        | Inst::Svc { .. }
        | Inst::Halt
        | Inst::Nop => {}
    }
}

fn other_widen(l: Lattice) -> Lattice {
    match l {
        Lattice::Bottom => Lattice::Bottom,
        _ => Lattice::Top,
    }
}

fn eval_bin(op: BinOp, a: u32, b: u32) -> u32 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        // DIV by zero yields 0 (a Cortex-M with DIV_0_TRP clear).
        BinOp::UDiv => a.checked_div(b).unwrap_or(0),
        BinOp::URem => a.checked_rem(b).unwrap_or(0),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b),
        BinOp::Shr => a.wrapping_shr(b),
        BinOp::CmpEq => u32::from(a == b),
        BinOp::CmpNe => u32::from(a != b),
        BinOp::CmpLtU => u32::from(a < b),
        BinOp::CmpLtS => u32::from((a as i32) < (b as i32)),
    }
}

/// Convenience: full analysis, then one function's accesses.
pub fn constant_accesses(module: &Module, func: FuncId) -> Vec<ConstAccess> {
    ConstAnalysis::analyze(module).accesses(module, func)
}

/// Convenience: full analysis, accesses for every function.
pub fn all_constant_accesses(module: &Module) -> HashMap<FuncId, Vec<ConstAccess>> {
    let ca = ConstAnalysis::analyze(module);
    (0..module.funcs.len())
        .map(|i| {
            let f = FuncId(i as u32);
            (f, ca.accesses(module, f))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use opec_ir::{ModuleBuilder, Ty};

    #[test]
    fn mmio_helper_address_is_constant() {
        let mut mb = ModuleBuilder::new("t");
        let f = mb.func("drv", vec![], None, "drv.c", |fb| {
            let v = fb.mmio_read(0x4000_4400, 4);
            fb.mmio_write(0x4000_4404, opec_ir::Operand::Reg(v), 4);
            fb.ret_void();
        });
        let m = mb.finish();
        let accs = constant_accesses(&m, f);
        assert_eq!(accs.len(), 2);
        assert_eq!(accs[0].addresses, [0x4000_4400].into_iter().collect());
        assert!(!accs[0].is_store);
        assert_eq!(accs[1].addresses, [0x4000_4404].into_iter().collect());
        assert!(accs[1].is_store);
    }

    #[test]
    fn offset_arithmetic_is_folded() {
        let mut mb = ModuleBuilder::new("t");
        let f = mb.func("drv", vec![], None, "drv.c", |fb| {
            let base = fb.imm(0x4001_1000);
            let addr = fb.bin(BinOp::Add, opec_ir::Operand::Reg(base), opec_ir::Operand::Imm(0x24));
            fb.store(opec_ir::Operand::Reg(addr), opec_ir::Operand::Imm(1), 4);
            fb.ret_void();
        });
        let m = mb.finish();
        let accs = constant_accesses(&m, f);
        assert_eq!(accs.len(), 1);
        assert_eq!(accs[0].addresses, [0x4001_1024].into_iter().collect());
    }

    #[test]
    fn constants_flow_through_call_arguments() {
        // The HAL_GPIO_Init pattern: the base address is computed from
        // a parameter, and the callers pass constants.
        let mut mb = ModuleBuilder::new("t");
        let init = mb.func("gpio_init", vec![("port", Ty::I32)], None, "hal.c", |fb| {
            let stride = fb.bin(
                BinOp::Mul,
                opec_ir::Operand::Reg(fb.param(0)),
                opec_ir::Operand::Imm(0x400),
            );
            let addr = fb.bin(
                BinOp::Add,
                opec_ir::Operand::Imm(0x4002_0000),
                opec_ir::Operand::Reg(stride),
            );
            fb.store(opec_ir::Operand::Reg(addr), opec_ir::Operand::Imm(0x5555), 4);
            fb.ret_void();
        });
        mb.func("main", vec![], None, "main.c", |fb| {
            fb.call_void(init, vec![opec_ir::Operand::Imm(0)]);
            fb.call_void(init, vec![opec_ir::Operand::Imm(3)]);
            fb.ret_void();
        });
        let m = mb.finish();
        let accs = constant_accesses(&m, init);
        assert_eq!(accs.len(), 1);
        // Both possible ports are reported.
        assert_eq!(accs[0].addresses, [0x4002_0000, 0x4002_0C00].into_iter().collect());
    }

    #[test]
    fn divergent_runtime_values_are_not_constant() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global("opaque", Ty::I32, "a.c");
        let f = mb.func("drv", vec![], None, "drv.c", |fb| {
            let addr = fb.load_global(g, 0, 4);
            let _ = fb.load(opec_ir::Operand::Reg(addr), 4);
            fb.ret_void();
        });
        let m = mb.finish();
        assert!(constant_accesses(&m, f).is_empty());
    }

    #[test]
    fn widening_beyond_k_constants() {
        let mut mb = ModuleBuilder::new("t");
        let sink = mb.declare("sink", vec![("a", Ty::I32)], None, "a.c");
        mb.define(sink, |fb| {
            let _ = fb.load(opec_ir::Operand::Reg(fb.param(0)), 4);
            fb.ret_void();
        });
        mb.func("main", vec![], None, "a.c", |fb| {
            for i in 0..12u32 {
                fb.call_void(sink, vec![opec_ir::Operand::Imm(0x4000_0000 + i * 0x400)]);
            }
            fb.ret_void();
        });
        let m = mb.finish();
        // More than K call-site constants widen to ⊤: no reported
        // access (the conservative fallback the paper's slicing also
        // has when the address set explodes).
        assert!(constant_accesses(&m, sink).is_empty());
    }

    #[test]
    fn icall_targets_get_widened_params() {
        let mut mb = ModuleBuilder::new("t");
        let h = mb.func("handler", vec![("x", Ty::I32)], None, "a.c", |fb| {
            let _ = fb.load(opec_ir::Operand::Reg(fb.param(0)), 4);
            fb.ret_void();
        });
        let sig = mb.sig_of(h);
        mb.func("main", vec![], None, "a.c", |fb| {
            let fp = fb.addr_of_func(h);
            fb.icall_void(opec_ir::Operand::Reg(fp), sig, vec![opec_ir::Operand::Imm(0x4000_0000)]);
            fb.ret_void();
        });
        let m = mb.finish();
        // The icall widens handler's parameter, so no constant access is
        // claimed (sound, conservative).
        assert!(constant_accesses(&m, h).is_empty());
    }

    #[test]
    fn loop_reaches_fixpoint() {
        let mut mb = ModuleBuilder::new("t");
        let f = mb.func("f", vec![("n", Ty::I32)], None, "a.c", |fb| {
            let i = fb.reg();
            fb.mov(i, opec_ir::Operand::Imm(0));
            let head = fb.block();
            let body = fb.block();
            let exit = fb.block();
            fb.br(head);
            fb.switch_to(head);
            let c =
                fb.bin(BinOp::CmpLtU, opec_ir::Operand::Reg(i), opec_ir::Operand::Reg(fb.param(0)));
            fb.cond_br(opec_ir::Operand::Reg(c), body, exit);
            fb.switch_to(body);
            let _ = fb.mmio_read(0x4002_0014, 4);
            let i2 = fb.bin(BinOp::Add, opec_ir::Operand::Reg(i), opec_ir::Operand::Imm(1));
            fb.mov(i, opec_ir::Operand::Reg(i2));
            fb.br(head);
            fb.switch_to(exit);
            fb.ret_void();
        });
        let m = mb.finish();
        let accs = constant_accesses(&m, f);
        assert_eq!(accs.len(), 1);
        assert_eq!(accs[0].addresses, [0x4002_0014].into_iter().collect());
    }
}
