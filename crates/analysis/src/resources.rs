//! Per-function resource dependency analysis (paper Section 4.2).
//!
//! For every function this computes:
//!
//! * the global variables it accesses **directly** (def-use on
//!   `LoadGlobal`/`StoreGlobal`);
//! * the globals it accesses **indirectly** (points-to sets of the
//!   pointer operands of `Load`/`Store`/`Memcpy`/`Memset`);
//! * the peripherals it touches, discovered by constant-address analysis
//!   and matched against the datasheet list, split into general
//!   peripherals and core peripherals (PPB) exactly as the compiler
//!   needs for privilege decisions.

use std::collections::BTreeSet;

use opec_ir::{FuncId, GlobalId, Inst, Module, Operand, RegId};

use crate::consts::ConstAnalysis;
use crate::points_to::PointsTo;

/// Index into `Module::peripherals`.
pub type PeripheralIdx = usize;

/// Resources needed by one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuncResources {
    /// Globals read (directly or through pointers).
    pub globals_read: BTreeSet<GlobalId>,
    /// Globals written (directly or through pointers).
    pub globals_written: BTreeSet<GlobalId>,
    /// General peripherals accessed (indices into the datasheet list).
    pub peripherals: BTreeSet<PeripheralIdx>,
    /// Core (PPB) peripherals accessed; these force either privileged
    /// execution (ACES) or instruction emulation (OPEC).
    pub core_peripherals: BTreeSet<PeripheralIdx>,
}

impl FuncResources {
    /// All globals the function depends on (read or written).
    pub fn globals(&self) -> BTreeSet<GlobalId> {
        self.globals_read.union(&self.globals_written).copied().collect()
    }

    /// Merges `other` into `self` (used when merging functions into an
    /// operation or compartment).
    pub fn merge(&mut self, other: &FuncResources) {
        self.globals_read.extend(&other.globals_read);
        self.globals_written.extend(&other.globals_written);
        self.peripherals.extend(&other.peripherals);
        self.core_peripherals.extend(&other.core_peripherals);
    }
}

/// Resource analysis over a whole module.
#[derive(Debug, Clone)]
pub struct ResourceAnalysis {
    per_func: Vec<FuncResources>,
}

impl ResourceAnalysis {
    /// Runs the analysis using a previously computed points-to result.
    pub fn analyze(module: &Module, pt: &PointsTo) -> ResourceAnalysis {
        let consts = ConstAnalysis::analyze(module);
        let per_func = (0..module.funcs.len())
            .map(|i| analyze_func(module, pt, &consts, FuncId(i as u32)))
            .collect();
        ResourceAnalysis { per_func }
    }

    /// Resources of function `f`.
    pub fn of(&self, f: FuncId) -> &FuncResources {
        &self.per_func[f.0 as usize]
    }

    /// Merged resources of a set of functions.
    pub fn merged(&self, funcs: impl IntoIterator<Item = FuncId>) -> FuncResources {
        let mut out = FuncResources::default();
        for f in funcs {
            out.merge(self.of(f));
        }
        out
    }
}

fn analyze_func(
    module: &Module,
    pt: &PointsTo,
    consts: &ConstAnalysis,
    fid: FuncId,
) -> FuncResources {
    let f = &module.funcs[fid.0 as usize];
    let mut res = FuncResources::default();
    // Constant-address peripheral accesses (all possible constants of
    // each access are attributed — conservative like the paper's
    // slicing).
    for acc in consts.accesses(module, fid) {
        for addr in &acc.addresses {
            if let Some(pi) = module.peripherals.iter().position(|p| p.contains(*addr)) {
                if module.peripherals[pi].is_core {
                    res.core_peripherals.insert(pi);
                } else {
                    res.peripherals.insert(pi);
                }
            }
        }
    }
    let globals_of = |op: &Operand| -> BTreeSet<GlobalId> {
        match op {
            Operand::Reg(r) => pt.reg_globals(fid, *r),
            Operand::Imm(_) => BTreeSet::new(),
        }
    };
    for block in &f.blocks {
        for inst in &block.insts {
            match inst {
                Inst::LoadGlobal { global, .. } => {
                    res.globals_read.insert(*global);
                }
                Inst::StoreGlobal { global, .. } => {
                    res.globals_written.insert(*global);
                }
                Inst::Load { addr, .. } => {
                    res.globals_read.extend(globals_of(addr));
                }
                Inst::Store { addr, .. } => {
                    res.globals_written.extend(globals_of(addr));
                }
                Inst::Memcpy { dst, src, .. } => {
                    res.globals_written.extend(globals_of(dst));
                    res.globals_read.extend(globals_of(src));
                }
                Inst::Memset { dst, .. } => {
                    res.globals_written.extend(globals_of(dst));
                }
                _ => {}
            }
        }
    }
    let _ = RegId(0);
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use opec_ir::{ModuleBuilder, Operand, Ty};

    #[test]
    fn direct_global_accesses_split_read_write() {
        let mut mb = ModuleBuilder::new("t");
        let a = mb.global("a", Ty::I32, "x.c");
        let b = mb.global("b", Ty::I32, "x.c");
        let f = mb.func("f", vec![], None, "x.c", |fb| {
            let v = fb.load_global(a, 0, 4);
            fb.store_global(b, 0, Operand::Reg(v), 4);
            fb.ret_void();
        });
        let m = mb.finish();
        let pt = PointsTo::analyze(&m);
        let ra = ResourceAnalysis::analyze(&m, &pt);
        let res = ra.of(f);
        assert!(res.globals_read.contains(&a));
        assert!(res.globals_written.contains(&b));
        assert!(!res.globals_written.contains(&a));
    }

    #[test]
    fn indirect_access_via_pointer_found_by_points_to() {
        let mut mb = ModuleBuilder::new("t");
        let buf = mb.global("buf", Ty::Array(Box::new(Ty::I8), 32), "x.c");
        let sink = mb.declare("sink", vec![("p", Ty::Ptr(Box::new(Ty::I8)))], None, "y.c");
        mb.func("driver", vec![], None, "x.c", |fb| {
            let p = fb.addr_of_global(buf, 0);
            fb.call_void(sink, vec![Operand::Reg(p)]);
            fb.ret_void();
        });
        mb.define(sink, |fb| {
            let p = fb.param(0);
            fb.store(Operand::Reg(p), Operand::Imm(0x41), 1);
            fb.ret_void();
        });
        let m = mb.finish();
        let pt = PointsTo::analyze(&m);
        let ra = ResourceAnalysis::analyze(&m, &pt);
        // `sink` writes to `buf` through the pointer parameter.
        assert!(ra.of(sink).globals_written.contains(&buf));
    }

    #[test]
    fn peripherals_classified_core_vs_general() {
        let mut mb = ModuleBuilder::new("t");
        mb.peripheral("USART2", 0x4000_4400, 0x400, false);
        mb.peripheral("SysTick", 0xE000_E010, 0x10, true);
        let f = mb.func("init", vec![], None, "drv.c", |fb| {
            fb.mmio_write(0x4000_4408, Operand::Imm(0x55), 4);
            fb.mmio_write(0xE000_E014, Operand::Imm(1000), 4);
            fb.ret_void();
        });
        let m = mb.finish();
        let pt = PointsTo::analyze(&m);
        let ra = ResourceAnalysis::analyze(&m, &pt);
        let res = ra.of(f);
        assert_eq!(res.peripherals.iter().copied().collect::<Vec<_>>(), vec![0]);
        assert_eq!(res.core_peripherals.iter().copied().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn merged_resources_union() {
        let mut mb = ModuleBuilder::new("t");
        let a = mb.global("a", Ty::I32, "x.c");
        let b = mb.global("b", Ty::I32, "x.c");
        let f1 = mb.func("f1", vec![], None, "x.c", |fb| {
            let _ = fb.load_global(a, 0, 4);
            fb.ret_void();
        });
        let f2 = mb.func("f2", vec![], None, "x.c", |fb| {
            fb.store_global(b, 0, Operand::Imm(1), 4);
            fb.ret_void();
        });
        let m = mb.finish();
        let pt = PointsTo::analyze(&m);
        let ra = ResourceAnalysis::analyze(&m, &pt);
        let merged = ra.merged([f1, f2]);
        assert_eq!(merged.globals(), [a, b].into_iter().collect());
    }

    #[test]
    fn memset_counts_as_write() {
        let mut mb = ModuleBuilder::new("t");
        let buf = mb.global("zbuf", Ty::Array(Box::new(Ty::I8), 64), "x.c");
        let f = mb.func("clear", vec![], None, "x.c", |fb| {
            let p = fb.addr_of_global(buf, 0);
            fb.memset(Operand::Reg(p), Operand::Imm(0), Operand::Imm(64));
            fb.ret_void();
        });
        let m = mb.finish();
        let pt = PointsTo::analyze(&m);
        let ra = ResourceAnalysis::analyze(&m, &pt);
        assert!(ra.of(f).globals_written.contains(&buf));
    }
}
