//! Static analyses used by OPEC-Compiler (paper Sections 4.1–4.2).
//!
//! * [`points_to`] — an inclusion-based (Andersen) points-to analysis
//!   with on-the-fly indirect-call resolution; the stand-in for SVF.
//!   Like SVF it is conservative: sound but over-approximate, which is
//!   what makes the paper's false-positive effects reproducible.
//! * [`callgraph`] — call-graph construction. Indirect calls are
//!   resolved by points-to first and by type-signature matching as a
//!   fallback; per-site provenance is recorded so Table 3 can be
//!   regenerated.
//! * [`consts`] — intra-procedural constant propagation, the backward
//!   slicing stand-in that recovers constant peripheral addresses from
//!   load/store operands.
//! * [`resources`] — per-function resource dependency: directly accessed
//!   globals (def-use), indirectly accessed globals (points-to on
//!   load/store pointer operands), and peripherals discovered by
//!   constant-address slicing matched against the datasheet list.

#![warn(missing_docs)]

pub mod bitset;
pub mod callgraph;
pub mod consts;
pub mod points_to;
pub mod resources;

pub use callgraph::{CallGraph, IcallResolution, IcallSite};
pub use points_to::{AbsObj, PointsTo, PointsToStats};
pub use resources::{FuncResources, ResourceAnalysis};
