//! The bitset behind the points-to solver.
//!
//! Points-to sets are tiny for most nodes (a register usually aims at
//! one or two abstract objects) and only a handful of hub nodes grow
//! large, so the set is hybrid: up to [`SMALL_CAP`] elements live in a
//! sorted inline array with no heap allocation; past that the set
//! spills to a dense `u64` word vector. The dense paths are written for
//! the solver's inner loop: unions skip zero source words, never grow
//! the destination for an all-zero tail, and [`BitSet::union_into_delta`]
//! fuses "union + which bits are new" for difference propagation.

/// Maximum number of elements stored inline before spilling to the
/// dense representation.
pub const SMALL_CAP: usize = 8;

#[derive(Debug, Clone)]
enum Repr {
    /// Sorted, deduplicated element indices; first `len` slots valid.
    Small { len: u8, elems: [u32; SMALL_CAP] },
    /// Dense bit words; the tail may contain zero words.
    Dense(Vec<u64>),
}

/// A growable set of `usize` indices, hybrid small-inline/dense.
#[derive(Debug, Clone)]
pub struct BitSet {
    repr: Repr,
}

impl Default for BitSet {
    fn default() -> BitSet {
        BitSet::new()
    }
}

impl BitSet {
    /// Creates an empty set.
    pub fn new() -> BitSet {
        BitSet { repr: Repr::Small { len: 0, elems: [0; SMALL_CAP] } }
    }

    /// Inserts `bit`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, bit: usize) -> bool {
        match &mut self.repr {
            Repr::Small { len, elems } => {
                let bit32 = bit as u32;
                debug_assert_eq!(bit32 as usize, bit, "index exceeds u32 range");
                let n = *len as usize;
                let pos = elems[..n].partition_point(|&e| e < bit32);
                if pos < n && elems[pos] == bit32 {
                    return false;
                }
                if n < SMALL_CAP {
                    elems.copy_within(pos..n, pos + 1);
                    elems[pos] = bit32;
                    *len += 1;
                    return true;
                }
                self.spill();
                self.insert(bit)
            }
            Repr::Dense(words) => {
                let (w, b) = (bit / 64, bit % 64);
                if w >= words.len() {
                    words.resize(w + 1, 0);
                }
                let mask = 1u64 << b;
                let newly = words[w] & mask == 0;
                words[w] |= mask;
                newly
            }
        }
    }

    /// Converts the inline representation to the dense one.
    fn spill(&mut self) {
        if let Repr::Small { len, elems } = &self.repr {
            let mut words = Vec::new();
            for &e in &elems[..*len as usize] {
                let (w, b) = (e as usize / 64, e % 64);
                if w >= words.len() {
                    words.resize(w + 1, 0);
                }
                words[w] |= 1u64 << b;
            }
            self.repr = Repr::Dense(words);
        }
    }

    /// Returns `true` if `bit` is present.
    pub fn contains(&self, bit: usize) -> bool {
        match &self.repr {
            Repr::Small { len, elems } => {
                elems[..*len as usize].binary_search(&(bit as u32)).is_ok()
            }
            Repr::Dense(words) => {
                let (w, b) = (bit / 64, bit % 64);
                words.get(w).is_some_and(|word| word & (1 << b) != 0)
            }
        }
    }

    /// Removes every element but keeps any dense allocation for reuse.
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Small { len, .. } => *len = 0,
            Repr::Dense(words) => words.fill(0),
        }
    }

    /// Replaces `self` with an empty set, returning the old contents.
    pub fn take(&mut self) -> BitSet {
        std::mem::take(self)
    }

    /// Unions `other` into `self`; returns `true` if anything changed.
    /// Never grows for `other`'s zero tail words, and skips zero source
    /// words entirely.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        match &other.repr {
            Repr::Small { len, elems } => {
                let mut changed = false;
                for &e in &elems[..*len as usize] {
                    changed |= self.insert(e as usize);
                }
                changed
            }
            Repr::Dense(src) => {
                let effective = dense_effective_len(src);
                if effective == 0 {
                    return false;
                }
                if matches!(self.repr, Repr::Small { .. })
                    && self.len() + dense_count(&src[..effective]) > SMALL_CAP
                {
                    self.spill();
                }
                match &mut self.repr {
                    Repr::Small { .. } => {
                        // Small destination and the union provably fits.
                        let mut changed = false;
                        for bit in DenseIter::new(&src[..effective]) {
                            changed |= self.insert(bit);
                        }
                        changed
                    }
                    Repr::Dense(dst) => {
                        if effective > dst.len() {
                            dst.resize(effective, 0);
                        }
                        let mut changed = false;
                        for (d, &s) in dst.iter_mut().zip(&src[..effective]) {
                            if s == 0 {
                                continue;
                            }
                            let merged = *d | s;
                            if merged != *d {
                                *d = merged;
                                changed = true;
                            }
                        }
                        changed
                    }
                }
            }
        }
    }

    /// Unions `src` into `self`, inserting every *newly added* bit into
    /// `delta` as well. Returns `true` if `self` changed. This is the
    /// difference-propagation primitive: the caller forwards only
    /// `delta`, never the whole set.
    pub fn union_into_delta(&mut self, src: &BitSet, delta: &mut BitSet) -> bool {
        match (&mut self.repr, &src.repr) {
            (Repr::Dense(dst), Repr::Dense(srcw)) => {
                let effective = dense_effective_len(srcw);
                if effective > dst.len() {
                    dst.resize(effective, 0);
                }
                let mut changed = false;
                for (wi, (d, &s)) in dst.iter_mut().zip(&srcw[..effective]).enumerate() {
                    let new = s & !*d;
                    if new != 0 {
                        *d |= new;
                        changed = true;
                        for bit in DenseIter::new(std::slice::from_ref(&new)) {
                            delta.insert(wi * 64 + bit);
                        }
                    }
                }
                changed
            }
            _ => {
                let mut changed = false;
                // Collect first: `src` may alias patterns where insert
                // spills `self` mid-iteration; iterating a snapshot of
                // src's elements is always safe because src is `&`.
                for bit in src.iter() {
                    if self.insert(bit) {
                        delta.insert(bit);
                        changed = true;
                    }
                }
                changed
            }
        }
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Small { len, .. } => *len as usize,
            Repr::Dense(words) => dense_count(words),
        }
    }

    /// Returns `true` if no bits are set.
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            Repr::Small { len, .. } => *len == 0,
            Repr::Dense(words) => words.iter().all(|w| *w == 0),
        }
    }

    /// Iterates over set bit indices in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        match &self.repr {
            Repr::Small { len, elems } => Iter::Small(elems[..*len as usize].iter()),
            Repr::Dense(words) => Iter::Dense(DenseIter::new(words)),
        }
    }
}

fn dense_count(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// Length of `words` with trailing zero words trimmed.
fn dense_effective_len(words: &[u64]) -> usize {
    words.iter().rposition(|&w| w != 0).map_or(0, |i| i + 1)
}

/// Ascending iterator over set bits of either representation.
pub enum Iter<'a> {
    /// Inline representation: sorted element slice.
    Small(std::slice::Iter<'a, u32>),
    /// Dense representation: word scanner.
    Dense(DenseIter<'a>),
}

impl Iterator for Iter<'_> {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        match self {
            Iter::Small(it) => it.next().map(|&e| e as usize),
            Iter::Dense(it) => it.next(),
        }
    }
}

/// Word-skipping set-bit iterator over dense words.
pub struct DenseIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl<'a> DenseIter<'a> {
    fn new(words: &'a [u64]) -> DenseIter<'a> {
        DenseIter { words, word_idx: 0, current: words.first().copied().unwrap_or(0) }
    }
}

impl Iterator for DenseIter<'_> {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let b = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + b);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

impl PartialEq for BitSet {
    fn eq(&self, other: &BitSet) -> bool {
        // Semantic equality across representations.
        self.iter().eq(other.iter())
    }
}

impl Eq for BitSet {}

impl FromIterator<usize> for BitSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> BitSet {
        let mut s = BitSet::new();
        for b in iter {
            s.insert(b);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = BitSet::new();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(1000));
        assert!(s.contains(3));
        assert!(s.contains(1000));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn union_reports_change() {
        let a: BitSet = [1, 2, 3].into_iter().collect();
        let mut b: BitSet = [2].into_iter().collect();
        assert!(b.union_with(&a));
        assert!(!b.union_with(&a));
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn iter_ascending() {
        let s: BitSet = [65, 2, 190].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 65, 190]);
    }

    #[test]
    fn empty_set() {
        let s = BitSet::new();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn spills_past_inline_capacity_and_stays_correct() {
        let mut s = BitSet::new();
        let vals: Vec<usize> = (0..SMALL_CAP + 5).map(|i| i * 37).collect();
        for &v in &vals {
            assert!(s.insert(v));
        }
        assert_eq!(s.len(), vals.len());
        assert_eq!(s.iter().collect::<Vec<_>>(), vals);
        for &v in &vals {
            assert!(s.contains(v));
            assert!(!s.insert(v));
        }
    }

    #[test]
    fn union_does_not_grow_for_zero_tail() {
        // A dense set whose high words are all zero after construction.
        let mut big: BitSet = [5000].into_iter().collect();
        let mut other = BitSet::new();
        other.insert(5000);
        // Make `big` small again semantically, then union: destination
        // capacity must track the *effective* source length only.
        let mut dst: BitSet = (0..SMALL_CAP + 1).collect();
        big.clear();
        big.insert(60); // dense repr, words len still spans to 5000/64
        assert!(dst.union_with(&big));
        if let Repr::Dense(words) = &dst.repr {
            assert!(words.len() <= 1, "grew to zero tail: {} words", words.len());
        }
        assert!(dst.contains(60));
    }

    #[test]
    fn clear_keeps_set_usable() {
        let mut s: BitSet = (0..100).collect();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.insert(7));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn take_leaves_empty() {
        let mut s: BitSet = [1, 2].into_iter().collect();
        let t = s.take();
        assert!(s.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn union_into_delta_reports_only_new_bits() {
        let mut dst: BitSet = [1, 64, 200].into_iter().collect();
        let src: BitSet = [1, 65, 200, 300].into_iter().collect();
        let mut delta = BitSet::new();
        assert!(dst.union_into_delta(&src, &mut delta));
        assert_eq!(delta.iter().collect::<Vec<_>>(), vec![65, 300]);
        assert_eq!(dst.iter().collect::<Vec<_>>(), vec![1, 64, 65, 200, 300]);
        let mut delta2 = BitSet::new();
        assert!(!dst.union_into_delta(&src, &mut delta2));
        assert!(delta2.is_empty());
    }

    #[test]
    fn union_into_delta_small_reprs() {
        let mut dst = BitSet::new();
        dst.insert(3);
        let mut src = BitSet::new();
        src.insert(3);
        src.insert(9);
        let mut delta = BitSet::new();
        assert!(dst.union_into_delta(&src, &mut delta));
        assert_eq!(delta.iter().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn semantic_equality_across_reprs() {
        let small: BitSet = [1, 2, 3].into_iter().collect();
        let mut dense: BitSet = (0..SMALL_CAP + 1).collect();
        dense.clear();
        for b in [1usize, 2, 3] {
            dense.insert(b);
        }
        assert_eq!(small, dense);
        assert_eq!(dense, small);
    }

    #[test]
    fn mixed_repr_unions() {
        // small ∪ dense, dense ∪ small, around the spill boundary.
        let dense: BitSet = (0..SMALL_CAP * 3).map(|i| i * 3).collect();
        let mut small = BitSet::new();
        small.insert(1);
        assert!(small.union_with(&dense));
        assert_eq!(small.len(), SMALL_CAP * 3 + 1);
        let mut dense2: BitSet = (0..SMALL_CAP * 3).map(|i| i * 3).collect();
        let tiny: BitSet = [1].into_iter().collect();
        assert!(dense2.union_with(&tiny));
        assert_eq!(small, dense2);
    }
}
