//! A small dense bitset used by the points-to solver.

/// A growable dense bitset over `usize` indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set.
    pub fn new() -> BitSet {
        BitSet::default()
    }

    /// Inserts `bit`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, bit: usize) -> bool {
        let (w, b) = (bit / 64, bit % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << b;
        let newly = self.words[w] & mask == 0;
        self.words[w] |= mask;
        newly
    }

    /// Returns `true` if `bit` is present.
    pub fn contains(&self, bit: usize) -> bool {
        let (w, b) = (bit / 64, bit % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Unions `other` into `self`; returns `true` if anything changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        for (dst, src) in self.words.iter_mut().zip(other.words.iter()) {
            let merged = *dst | *src;
            if merged != *dst {
                *dst = merged;
                changed = true;
            }
        }
        changed
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if no bits are set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Iterates over set bit indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| if w & (1 << b) != 0 { Some(wi * 64 + b) } else { None })
        })
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> BitSet {
        let mut s = BitSet::new();
        for b in iter {
            s.insert(b);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = BitSet::new();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(1000));
        assert!(s.contains(3));
        assert!(s.contains(1000));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn union_reports_change() {
        let a: BitSet = [1, 2, 3].into_iter().collect();
        let mut b: BitSet = [2].into_iter().collect();
        assert!(b.union_with(&a));
        assert!(!b.union_with(&a));
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn iter_ascending() {
        let s: BitSet = [65, 2, 190].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 65, 190]);
    }

    #[test]
    fn empty_set() {
        let s = BitSet::new();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}
